#!/usr/bin/env sh
# Regenerates the committed CI trace baseline (ci/trace_baseline.jsonl).
#
# The engine-smoke job traces a batch at these exact parameters and
# diffs it against the committed file, gating on zero sim-ms drift:
# simulated costs are deterministic by construction, so any drift means
# repair trajectories changed. After an *intentional* trajectory change
# (new rules, new model behaviour, pipeline reshaping), run this script
# and commit the refreshed baseline alongside the change that caused it.
#
# Wall-clock fields in the baseline are machine-specific and ignored by
# the gate; only span counts and simulated milliseconds are compared.
set -eu
cd "$(dirname "$0")/.."
cargo build --release
./target/release/rustbrain batch --jobs 2 --per-class 2 \
    --trace-out ci/trace_baseline.jsonl >/dev/null
echo "wrote ci/trace_baseline.jsonl"
