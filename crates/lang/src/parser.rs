//! Recursive-descent parser for the mini unsafe-Rust surface syntax.
//!
//! The syntax deliberately mirrors Rust so that the simulated language model
//! (which reasons over printed source text) sees realistic programs, and so
//! that printed programs round-trip: `parse(print(p)) == p` (a property
//! checked by the test-suite).

use crate::ast::{
    BinOp, Block, BuiltinKind, Expr, Function, IntTy, Lit, Mutability, Program, StaticDef, Stmt,
    Ty, UnOp, UnionDef,
};
use crate::error::{LangError, LangResult};
use crate::lexer::lex;
use crate::token::{Token, TokenKind};

/// Parses a full program from source text.
///
/// After parsing, variable references that name a declared `static` are
/// resolved to [`Expr::StaticRef`], making printing/parsing a round-trip.
///
/// # Errors
///
/// Returns [`LangError`] on lexical or syntactic problems.
///
/// ```
/// # use rb_lang::parser::parse_program;
/// let p = parse_program("fn main() { let x: i32 = 1; print(x); }").unwrap();
/// assert_eq!(p.funcs.len(), 1);
/// ```
pub fn parse_program(src: &str) -> LangResult<Program> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut prog = Program::default();
    while !p.at_eof() {
        if p.peek_ident("union") {
            prog.unions.push(p.parse_union()?);
        } else if p.peek_ident("static") {
            prog.statics.push(p.parse_static()?);
        } else if p.peek_ident("fn") || p.peek_ident("unsafe") {
            prog.funcs.push(p.parse_fn()?);
        } else {
            return Err(p.err("expected `union`, `static`, `fn` or `unsafe fn`"));
        }
    }
    resolve_statics(&mut prog);
    Ok(prog)
}

/// Parses a single expression, mainly for tests and tooling.
///
/// # Errors
///
/// Returns [`LangError`] on lexical or syntactic problems.
pub fn parse_expr(src: &str) -> LangResult<Expr> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let e = p.parse_expr_outer()?;
    p.expect(&TokenKind::Eof)?;
    Ok(e)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.toks[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].kind
    }

    fn offset(&self) -> usize {
        self.toks[self.pos].offset
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        k
    }

    fn err(&self, msg: &str) -> LangError {
        LangError::Parse {
            offset: self.offset(),
            message: format!("{msg}, found {}", self.peek()),
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> LangResult<()> {
        if self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.err(&format!("expected {kind}")))
        }
    }

    fn peek_ident(&self, name: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s == name)
    }

    fn eat_ident(&mut self, name: &str) -> bool {
        if self.peek_ident(name) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident_kw(&mut self, name: &str) -> LangResult<()> {
        if self.eat_ident(name) {
            Ok(())
        } else {
            Err(self.err(&format!("expected `{name}`")))
        }
    }

    fn parse_name(&mut self) -> LangResult<String> {
        match self.peek().clone() {
            TokenKind::Ident(s) if !is_keyword(&s) => {
                self.bump();
                Ok(s)
            }
            _ => Err(self.err("expected identifier")),
        }
    }

    // ---- items -----------------------------------------------------------

    fn parse_union(&mut self) -> LangResult<UnionDef> {
        self.expect_ident_kw("union")?;
        let name = self.parse_name()?;
        self.expect(&TokenKind::LBrace)?;
        let mut fields = Vec::new();
        while !matches!(self.peek(), TokenKind::RBrace) {
            let fname = self.parse_name()?;
            self.expect(&TokenKind::Colon)?;
            let ty = self.parse_ty()?;
            fields.push((fname, ty));
            if !matches!(self.peek(), TokenKind::RBrace) {
                self.expect(&TokenKind::Comma)?;
            }
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(UnionDef { name, fields })
    }

    fn parse_static(&mut self) -> LangResult<StaticDef> {
        self.expect_ident_kw("static")?;
        let mutable = self.eat_ident("mut");
        let name = self.parse_name()?;
        self.expect(&TokenKind::Colon)?;
        let ty = self.parse_ty()?;
        self.expect(&TokenKind::Eq)?;
        let init = self.parse_lit()?;
        self.expect(&TokenKind::Semi)?;
        Ok(StaticDef {
            name,
            ty,
            init,
            mutable,
        })
    }

    fn parse_fn(&mut self) -> LangResult<Function> {
        let is_unsafe = self.eat_ident("unsafe");
        self.expect_ident_kw("fn")?;
        let name = self.parse_name()?;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        while !matches!(self.peek(), TokenKind::RParen) {
            let pname = self.parse_name()?;
            self.expect(&TokenKind::Colon)?;
            let ty = self.parse_ty()?;
            params.push((pname, ty));
            if !matches!(self.peek(), TokenKind::RParen) {
                self.expect(&TokenKind::Comma)?;
            }
        }
        self.expect(&TokenKind::RParen)?;
        let ret = if matches!(self.peek(), TokenKind::Arrow) {
            self.bump();
            self.parse_ty()?
        } else {
            Ty::Unit
        };
        let body = self.parse_block()?;
        Ok(Function {
            name,
            params,
            ret,
            is_unsafe,
            body,
        })
    }

    // ---- types -----------------------------------------------------------

    fn parse_ty(&mut self) -> LangResult<Ty> {
        match self.peek().clone() {
            TokenKind::LParen => {
                self.bump();
                if matches!(self.peek(), TokenKind::RParen) {
                    self.bump();
                    return Ok(Ty::Unit);
                }
                let mut items = vec![self.parse_ty()?];
                while matches!(self.peek(), TokenKind::Comma) {
                    self.bump();
                    if matches!(self.peek(), TokenKind::RParen) {
                        break;
                    }
                    items.push(self.parse_ty()?);
                }
                self.expect(&TokenKind::RParen)?;
                if items.len() == 1 {
                    Ok(items.pop().expect("non-empty"))
                } else {
                    Ok(Ty::Tuple(items))
                }
            }
            TokenKind::LBracket => {
                self.bump();
                let elem = self.parse_ty()?;
                self.expect(&TokenKind::Semi)?;
                let n = self.parse_usize_lit()?;
                self.expect(&TokenKind::RBracket)?;
                Ok(Ty::Array(Box::new(elem), n))
            }
            TokenKind::Star => {
                self.bump();
                let m = if self.eat_ident("mut") {
                    Mutability::Mut
                } else {
                    self.expect_ident_kw("const")?;
                    Mutability::Not
                };
                Ok(Ty::RawPtr(Box::new(self.parse_ty()?), m))
            }
            TokenKind::Amp => {
                self.bump();
                let m = if self.eat_ident("mut") {
                    Mutability::Mut
                } else {
                    Mutability::Not
                };
                Ok(Ty::Ref(Box::new(self.parse_ty()?), m))
            }
            TokenKind::Ident(name) => {
                self.bump();
                match name.as_str() {
                    "bool" => Ok(Ty::Bool),
                    "i8" => Ok(Ty::Int(IntTy::I8)),
                    "i16" => Ok(Ty::Int(IntTy::I16)),
                    "i32" => Ok(Ty::Int(IntTy::I32)),
                    "i64" => Ok(Ty::Int(IntTy::I64)),
                    "isize" => Ok(Ty::Int(IntTy::Isize)),
                    "u8" => Ok(Ty::Int(IntTy::U8)),
                    "u16" => Ok(Ty::Int(IntTy::U16)),
                    "u32" => Ok(Ty::Int(IntTy::U32)),
                    "u64" => Ok(Ty::Int(IntTy::U64)),
                    "usize" => Ok(Ty::Int(IntTy::Usize)),
                    "fn" => {
                        self.expect(&TokenKind::LParen)?;
                        let mut params = Vec::new();
                        while !matches!(self.peek(), TokenKind::RParen) {
                            params.push(self.parse_ty()?);
                            if !matches!(self.peek(), TokenKind::RParen) {
                                self.expect(&TokenKind::Comma)?;
                            }
                        }
                        self.expect(&TokenKind::RParen)?;
                        let ret = if matches!(self.peek(), TokenKind::Arrow) {
                            self.bump();
                            self.parse_ty()?
                        } else {
                            Ty::Unit
                        };
                        Ok(Ty::FnPtr(params, Box::new(ret)))
                    }
                    "Box" => {
                        self.expect(&TokenKind::Lt)?;
                        let inner = self.parse_ty()?;
                        self.expect(&TokenKind::Gt)?;
                        Ok(Ty::Boxed(Box::new(inner)))
                    }
                    _ => Ok(Ty::Union(name)),
                }
            }
            _ => Err(self.err("expected type")),
        }
    }

    fn parse_usize_lit(&mut self) -> LangResult<usize> {
        match self.peek().clone() {
            TokenKind::Int(v, None) if v >= 0 => {
                self.bump();
                Ok(v as usize)
            }
            _ => Err(self.err("expected array length")),
        }
    }

    fn parse_lit(&mut self) -> LangResult<Lit> {
        match self.peek().clone() {
            TokenKind::Int(v, suffix) => {
                self.bump();
                let ty = match suffix.as_deref() {
                    None | Some("i32") => IntTy::I32,
                    Some("i8") => IntTy::I8,
                    Some("i16") => IntTy::I16,
                    Some("i64") => IntTy::I64,
                    Some("isize") => IntTy::Isize,
                    Some("u8") => IntTy::U8,
                    Some("u16") => IntTy::U16,
                    Some("u32") => IntTy::U32,
                    Some("u64") => IntTy::U64,
                    Some("usize") => IntTy::Usize,
                    Some(other) => {
                        return Err(LangError::Parse {
                            offset: self.offset(),
                            message: format!("unknown integer suffix `{other}`"),
                        })
                    }
                };
                Ok(Lit::Int(v, ty))
            }
            TokenKind::Minus => {
                self.bump();
                match self.parse_lit()? {
                    Lit::Int(v, t) => Ok(Lit::Int(-v, t)),
                    _ => Err(self.err("expected integer after `-`")),
                }
            }
            TokenKind::Ident(s) if s == "true" => {
                self.bump();
                Ok(Lit::Bool(true))
            }
            TokenKind::Ident(s) if s == "false" => {
                self.bump();
                Ok(Lit::Bool(false))
            }
            TokenKind::LParen if matches!(self.peek2(), TokenKind::RParen) => {
                self.bump();
                self.bump();
                Ok(Lit::Unit)
            }
            _ => Err(self.err("expected literal")),
        }
    }

    // ---- statements ------------------------------------------------------

    fn parse_block(&mut self) -> LangResult<Block> {
        self.expect(&TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !matches!(self.peek(), TokenKind::RBrace) {
            stmts.push(self.parse_stmt()?);
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(Block::new(stmts))
    }

    fn parse_stmt(&mut self) -> LangResult<Stmt> {
        match self.peek().clone() {
            TokenKind::Ident(kw) => match kw.as_str() {
                "let" => {
                    self.bump();
                    let name = self.parse_name()?;
                    self.expect(&TokenKind::Colon)?;
                    let ty = self.parse_ty()?;
                    self.expect(&TokenKind::Eq)?;
                    let init = self.parse_expr_outer()?;
                    self.expect(&TokenKind::Semi)?;
                    Ok(Stmt::Let { name, ty, init })
                }
                "unsafe" => {
                    self.bump();
                    Ok(Stmt::Unsafe(self.parse_block()?))
                }
                "if" => {
                    self.bump();
                    let cond = self.parse_expr_no_struct()?;
                    let then_blk = self.parse_block()?;
                    let else_blk = if self.eat_ident("else") {
                        Some(self.parse_block()?)
                    } else {
                        None
                    };
                    Ok(Stmt::If {
                        cond,
                        then_blk,
                        else_blk,
                    })
                }
                "while" => {
                    self.bump();
                    let cond = self.parse_expr_no_struct()?;
                    let body = self.parse_block()?;
                    Ok(Stmt::While { cond, body })
                }
                "assert" => {
                    self.bump();
                    self.expect(&TokenKind::LParen)?;
                    let cond = self.parse_expr_outer()?;
                    let msg = if matches!(self.peek(), TokenKind::Comma) {
                        self.bump();
                        match self.bump() {
                            TokenKind::Str(s) => s,
                            _ => return Err(self.err("expected string message")),
                        }
                    } else {
                        "assertion failed".to_owned()
                    };
                    self.expect(&TokenKind::RParen)?;
                    self.expect(&TokenKind::Semi)?;
                    Ok(Stmt::Assert { cond, msg })
                }
                "return" => {
                    self.bump();
                    if matches!(self.peek(), TokenKind::Semi) {
                        self.bump();
                        Ok(Stmt::Return(None))
                    } else {
                        let e = self.parse_expr_outer()?;
                        self.expect(&TokenKind::Semi)?;
                        Ok(Stmt::Return(Some(e)))
                    }
                }
                "spawn" => {
                    self.bump();
                    Ok(Stmt::Spawn(self.parse_block()?))
                }
                "join" => {
                    self.bump();
                    self.expect(&TokenKind::Semi)?;
                    Ok(Stmt::JoinAll)
                }
                "lock" => {
                    self.bump();
                    self.expect(&TokenKind::LParen)?;
                    let id = self.parse_usize_lit()? as u32;
                    self.expect(&TokenKind::RParen)?;
                    Ok(Stmt::Lock(id, self.parse_block()?))
                }
                "print" => {
                    self.bump();
                    self.expect(&TokenKind::LParen)?;
                    let e = self.parse_expr_outer()?;
                    self.expect(&TokenKind::RParen)?;
                    self.expect(&TokenKind::Semi)?;
                    Ok(Stmt::Print(e))
                }
                "tailcall" => {
                    self.bump();
                    let name = self.parse_name()?;
                    self.expect(&TokenKind::LParen)?;
                    let args = self.parse_args()?;
                    self.expect(&TokenKind::Semi)?;
                    Ok(Stmt::TailCall(name, args))
                }
                "nop" => {
                    self.bump();
                    self.expect(&TokenKind::Semi)?;
                    Ok(Stmt::Nop)
                }
                _ => self.parse_assign_or_expr_stmt(),
            },
            TokenKind::LBrace => Ok(Stmt::Scope(self.parse_block()?)),
            _ => self.parse_assign_or_expr_stmt(),
        }
    }

    fn parse_assign_or_expr_stmt(&mut self) -> LangResult<Stmt> {
        let e = self.parse_expr_outer()?;
        if matches!(self.peek(), TokenKind::Eq) {
            self.bump();
            let value = self.parse_expr_outer()?;
            self.expect(&TokenKind::Semi)?;
            Ok(Stmt::Assign { place: e, value })
        } else {
            self.expect(&TokenKind::Semi)?;
            Ok(Stmt::Expr(e))
        }
    }

    fn parse_args(&mut self) -> LangResult<Vec<Expr>> {
        let mut args = Vec::new();
        while !matches!(self.peek(), TokenKind::RParen) {
            args.push(self.parse_expr_outer()?);
            if !matches!(self.peek(), TokenKind::RParen) {
                self.expect(&TokenKind::Comma)?;
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(args)
    }

    // ---- expressions -----------------------------------------------------

    fn parse_expr_outer(&mut self) -> LangResult<Expr> {
        self.parse_expr_bp(0, true)
    }

    fn parse_expr_no_struct(&mut self) -> LangResult<Expr> {
        self.parse_expr_bp(0, false)
    }

    /// Pratt / precedence-climbing parser. `allow_struct` disables union
    /// literals in `if`/`while` conditions (mirroring Rust's restriction).
    fn parse_expr_bp(&mut self, min_bp: u8, allow_struct: bool) -> LangResult<Expr> {
        let mut lhs = self.parse_unary(allow_struct)?;
        // `as` casts bind tighter than any binary operator but looser than
        // unary operators, matching Rust (`&x as *const i32` is `(&x) as _`).
        while self.peek_ident("as") {
            self.bump();
            let ty = self.parse_ty()?;
            lhs = Expr::Cast(Box::new(lhs), ty);
        }
        while let Some((op, l_bp, r_bp)) = self.binop_at() {
            if l_bp < min_bp {
                break;
            }
            self.bump_binop(op);
            let rhs = self.parse_expr_bp(r_bp, allow_struct)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    /// Identifies a binary operator at the cursor and its binding powers.
    /// Adjacent `>` `>` tokens are fused into `>>` (see the lexer note).
    fn binop_at(&self) -> Option<(BinOp, u8, u8)> {
        let k = self.peek();
        let op = match k {
            TokenKind::PipePipe => BinOp::Or,
            TokenKind::AmpAmp => BinOp::And,
            TokenKind::EqEq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => {
                if matches!(self.peek2(), TokenKind::Gt)
                    && self.toks[self.pos + 1].offset == self.offset() + 1
                {
                    BinOp::Shr
                } else {
                    BinOp::Gt
                }
            }
            TokenKind::Ge => BinOp::Ge,
            TokenKind::Pipe => BinOp::BitOr,
            TokenKind::Caret => BinOp::BitXor,
            TokenKind::Amp => BinOp::BitAnd,
            TokenKind::Shl => BinOp::Shl,
            TokenKind::Plus => BinOp::Add,
            TokenKind::Minus => BinOp::Sub,
            TokenKind::Star => BinOp::Mul,
            TokenKind::Slash => BinOp::Div,
            TokenKind::Percent => BinOp::Rem,
            _ => return None,
        };
        let (l, r) = match op {
            BinOp::Or => (1, 2),
            BinOp::And => (3, 4),
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => (5, 6),
            BinOp::BitOr => (7, 8),
            BinOp::BitXor => (9, 10),
            BinOp::BitAnd => (11, 12),
            BinOp::Shl | BinOp::Shr => (13, 14),
            BinOp::Add | BinOp::Sub => (15, 16),
            BinOp::Mul | BinOp::Div | BinOp::Rem => (17, 18),
        };
        Some((op, l, r))
    }

    fn bump_binop(&mut self, op: BinOp) {
        self.bump();
        if op == BinOp::Shr {
            self.bump(); // second `>`
        }
    }

    fn parse_unary(&mut self, allow_struct: bool) -> LangResult<Expr> {
        match self.peek().clone() {
            TokenKind::Minus => {
                self.bump();
                // Fold negation into integer literals for natural round-trips.
                let inner = self.parse_unary(allow_struct)?;
                if let Expr::Lit(Lit::Int(v, t)) = inner {
                    Ok(Expr::Lit(Lit::Int(-v, t)))
                } else {
                    Ok(Expr::Unary(UnOp::Neg, Box::new(inner)))
                }
            }
            TokenKind::Bang => {
                self.bump();
                Ok(Expr::Unary(
                    UnOp::Not,
                    Box::new(self.parse_unary(allow_struct)?),
                ))
            }
            TokenKind::Star => {
                self.bump();
                Ok(Expr::Deref(Box::new(self.parse_unary(allow_struct)?)))
            }
            TokenKind::Amp => {
                self.bump();
                if self.eat_ident("raw") {
                    let m = if self.eat_ident("mut") {
                        Mutability::Mut
                    } else {
                        self.expect_ident_kw("const")?;
                        Mutability::Not
                    };
                    Ok(Expr::RawAddrOf(
                        m,
                        Box::new(self.parse_unary(allow_struct)?),
                    ))
                } else {
                    let m = if self.eat_ident("mut") {
                        Mutability::Mut
                    } else {
                        Mutability::Not
                    };
                    Ok(Expr::AddrOf(m, Box::new(self.parse_unary(allow_struct)?)))
                }
            }
            _ => self.parse_postfix(allow_struct),
        }
    }

    fn parse_postfix(&mut self, allow_struct: bool) -> LangResult<Expr> {
        let mut e = self.parse_primary(allow_struct)?;
        loop {
            match self.peek().clone() {
                TokenKind::LBracket => {
                    self.bump();
                    let idx = self.parse_expr_outer()?;
                    self.expect(&TokenKind::RBracket)?;
                    e = Expr::Index(Box::new(e), Box::new(idx));
                }
                TokenKind::Dot => {
                    self.bump();
                    match self.bump() {
                        TokenKind::Int(n, None) => e = Expr::Field(Box::new(e), n as usize),
                        TokenKind::Ident(fname) => {
                            e = Expr::UnionField(Box::new(e), fname);
                        }
                        _ => return Err(self.err("expected field index or name")),
                    }
                }
                TokenKind::LParen => {
                    // Indirect call through an expression value. Direct
                    // calls `f(args)` are consumed in `parse_primary`, so a
                    // `(` here always means a call through a value, e.g.
                    // `(f)(3)` on a function-pointer variable.
                    self.bump();
                    let args = self.parse_args()?;
                    e = Expr::CallPtr(Box::new(e), args);
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn parse_primary(&mut self, allow_struct: bool) -> LangResult<Expr> {
        match self.peek().clone() {
            TokenKind::Int(..) | TokenKind::Ident(_)
                if matches!(self.peek(), TokenKind::Int(..))
                    || self.peek_ident("true")
                    || self.peek_ident("false") =>
            {
                Ok(Expr::Lit(self.parse_lit()?))
            }
            TokenKind::LParen => {
                self.bump();
                if matches!(self.peek(), TokenKind::RParen) {
                    self.bump();
                    return Ok(Expr::Lit(Lit::Unit));
                }
                let first = self.parse_expr_outer()?;
                if matches!(self.peek(), TokenKind::Comma) {
                    let mut items = vec![first];
                    while matches!(self.peek(), TokenKind::Comma) {
                        self.bump();
                        if matches!(self.peek(), TokenKind::RParen) {
                            break;
                        }
                        items.push(self.parse_expr_outer()?);
                    }
                    self.expect(&TokenKind::RParen)?;
                    Ok(Expr::Tuple(items))
                } else {
                    self.expect(&TokenKind::RParen)?;
                    Ok(first)
                }
            }
            TokenKind::LBracket => {
                self.bump();
                if matches!(self.peek(), TokenKind::RBracket) {
                    self.bump();
                    return Ok(Expr::ArrayLit(Vec::new()));
                }
                let first = self.parse_expr_outer()?;
                if matches!(self.peek(), TokenKind::Semi) {
                    self.bump();
                    let n = self.parse_usize_lit()?;
                    self.expect(&TokenKind::RBracket)?;
                    Ok(Expr::ArrayRepeat(Box::new(first), n))
                } else {
                    let mut items = vec![first];
                    while matches!(self.peek(), TokenKind::Comma) {
                        self.bump();
                        if matches!(self.peek(), TokenKind::RBracket) {
                            break;
                        }
                        items.push(self.parse_expr_outer()?);
                    }
                    self.expect(&TokenKind::RBracket)?;
                    Ok(Expr::ArrayLit(items))
                }
            }
            TokenKind::Ident(name) if !is_keyword(&name) => {
                self.bump();
                // Builtin with explicit type arguments: `name::<T, U>(args)`.
                if matches!(self.peek(), TokenKind::ColonColon) {
                    let Some(b) = BuiltinKind::from_name(&name) else {
                        return Err(LangError::Parse {
                            offset: self.offset(),
                            message: format!("`{name}` is not a builtin with type arguments"),
                        });
                    };
                    self.bump();
                    self.expect(&TokenKind::Lt)?;
                    let mut tys = vec![self.parse_ty()?];
                    while matches!(self.peek(), TokenKind::Comma) {
                        self.bump();
                        tys.push(self.parse_ty()?);
                    }
                    self.expect(&TokenKind::Gt)?;
                    self.expect(&TokenKind::LParen)?;
                    let args = self.parse_args()?;
                    return Ok(Expr::Builtin(b, tys, args));
                }
                if matches!(self.peek(), TokenKind::LParen) {
                    self.bump();
                    let args = self.parse_args()?;
                    if let Some(b) = BuiltinKind::from_name(&name) {
                        return Ok(Expr::Builtin(b, Vec::new(), args));
                    }
                    return Ok(Expr::Call(name, args));
                }
                // Union literal `U { field: expr }`.
                if allow_struct
                    && matches!(self.peek(), TokenKind::LBrace)
                    && name.chars().next().is_some_and(char::is_uppercase)
                {
                    self.bump();
                    let fname = self.parse_name()?;
                    self.expect(&TokenKind::Colon)?;
                    let val = self.parse_expr_outer()?;
                    self.expect(&TokenKind::RBrace)?;
                    return Ok(Expr::UnionLit(name, fname, Box::new(val)));
                }
                Ok(Expr::Var(name))
            }
            _ => Err(self.err("expected expression")),
        }
    }
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "let"
            | "unsafe"
            | "if"
            | "else"
            | "while"
            | "assert"
            | "return"
            | "spawn"
            | "join"
            | "lock"
            | "print"
            | "tailcall"
            | "fn"
            | "static"
            | "union"
            | "mut"
            | "as"
            | "true"
            | "false"
            | "const"
            | "raw"
            | "nop"
    )
}

/// Rewrites `Var(name)` into `StaticRef(name)` wherever `name` is a declared
/// static, making the printed form unambiguous to re-parse.
fn resolve_statics(prog: &mut Program) {
    let names: Vec<String> = prog.statics.iter().map(|s| s.name.clone()).collect();
    if names.is_empty() {
        return;
    }
    for f in &mut prog.funcs {
        resolve_block(&mut f.body, &names);
    }
}

fn resolve_block(b: &mut Block, names: &[String]) {
    for s in &mut b.stmts {
        resolve_stmt(s, names);
    }
}

fn resolve_stmt(s: &mut Stmt, names: &[String]) {
    match s {
        Stmt::Let { init, .. } => resolve_expr(init, names),
        Stmt::Assign { place, value } => {
            resolve_expr(place, names);
            resolve_expr(value, names);
        }
        Stmt::Expr(e) | Stmt::Print(e) => resolve_expr(e, names),
        Stmt::Unsafe(b) | Stmt::Scope(b) | Stmt::Spawn(b) | Stmt::Lock(_, b) => {
            resolve_block(b, names);
        }
        Stmt::If {
            cond,
            then_blk,
            else_blk,
        } => {
            resolve_expr(cond, names);
            resolve_block(then_blk, names);
            if let Some(e) = else_blk {
                resolve_block(e, names);
            }
        }
        Stmt::While { cond, body } => {
            resolve_expr(cond, names);
            resolve_block(body, names);
        }
        Stmt::Assert { cond, .. } => resolve_expr(cond, names),
        Stmt::Return(Some(e)) => resolve_expr(e, names),
        Stmt::TailCall(_, args) => {
            for a in args {
                resolve_expr(a, names);
            }
        }
        Stmt::Return(None) | Stmt::JoinAll | Stmt::Nop => {}
    }
}

fn resolve_expr(e: &mut Expr, names: &[String]) {
    match e {
        Expr::Var(n) => {
            if names.iter().any(|s| s == n) {
                *e = Expr::StaticRef(n.clone());
            }
        }
        Expr::Unary(_, a)
        | Expr::Cast(a, _)
        | Expr::AddrOf(_, a)
        | Expr::RawAddrOf(_, a)
        | Expr::Deref(a)
        | Expr::Field(a, _)
        | Expr::ArrayRepeat(a, _)
        | Expr::UnionLit(_, _, a)
        | Expr::UnionField(a, _) => resolve_expr(a, names),
        Expr::Binary(_, a, b) | Expr::Index(a, b) => {
            resolve_expr(a, names);
            resolve_expr(b, names);
        }
        Expr::Tuple(xs) | Expr::ArrayLit(xs) => {
            for x in xs {
                resolve_expr(x, names);
            }
        }
        Expr::Call(_, xs) | Expr::Builtin(_, _, xs) => {
            for x in xs {
                resolve_expr(x, names);
            }
        }
        Expr::CallPtr(f, xs) => {
            resolve_expr(f, names);
            for x in xs {
                resolve_expr(x, names);
            }
        }
        Expr::Lit(_) | Expr::StaticRef(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_fn() {
        let p = parse_program("fn main() { let x: i32 = 1 + 2 * 3; print(x); }").unwrap();
        let f = p.func("main").unwrap();
        assert_eq!(f.body.stmts.len(), 2);
        match &f.body.stmts[0] {
            Stmt::Let { init, .. } => match init {
                Expr::Binary(BinOp::Add, _, rhs) => {
                    assert!(matches!(**rhs, Expr::Binary(BinOp::Mul, _, _)));
                }
                other => panic!("precedence wrong: {other:?}"),
            },
            other => panic!("expected let: {other:?}"),
        }
    }

    #[test]
    fn parse_unsafe_block_and_deref() {
        let p = parse_program(
            "fn main() { let x: i32 = 5; let p: *const i32 = &raw const x; unsafe { print(*p); } }",
        )
        .unwrap();
        assert!(matches!(p.funcs[0].body.stmts[2], Stmt::Unsafe(_)));
    }

    #[test]
    fn parse_builtin_with_ty_args() {
        let e = parse_expr("transmute::<[u8; 2], u32>(n1)").unwrap();
        match e {
            Expr::Builtin(BuiltinKind::Transmute, tys, args) => {
                assert_eq!(tys.len(), 2);
                assert_eq!(args.len(), 1);
                assert_eq!(tys[0], Ty::Array(Box::new(Ty::Int(IntTy::U8)), 2));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_shift_right_vs_generics() {
        let e = parse_expr("a >> 2").unwrap();
        assert!(matches!(e, Expr::Binary(BinOp::Shr, _, _)));
        // `>` `>` from generic closing must not fuse (non-adjacent).
        let e = parse_expr("ptr_read::<*mut u32>(p)").unwrap();
        assert!(matches!(e, Expr::Builtin(BuiltinKind::PtrRead, ..)));
    }

    #[test]
    fn parse_static_and_resolution() {
        let p = parse_program(
            "static mut COUNTER: i32 = 0; fn main() { unsafe { COUNTER = COUNTER + 1; } }",
        )
        .unwrap();
        assert!(p.statics[0].mutable);
        let Stmt::Unsafe(b) = &p.funcs[0].body.stmts[0] else {
            panic!()
        };
        let Stmt::Assign { place, value } = &b.stmts[0] else {
            panic!()
        };
        assert_eq!(*place, Expr::StaticRef("COUNTER".into()));
        assert!(
            matches!(value, Expr::Binary(BinOp::Add, a, _) if **a == Expr::StaticRef("COUNTER".into()))
        );
    }

    #[test]
    fn parse_union() {
        let p = parse_program(
            "union Bits { i: i32, u: u32 } fn main() { let b: Bits = Bits { i: -1 }; unsafe { print(b.u); } }",
        )
        .unwrap();
        assert_eq!(p.unions[0].fields.len(), 2);
    }

    #[test]
    fn parse_spawn_lock_join() {
        let p = parse_program(
            "static mut G: i32 = 0; fn main() { spawn { lock(1) { unsafe { G = 1; } } } join; }",
        )
        .unwrap();
        assert!(matches!(p.funcs[0].body.stmts[0], Stmt::Spawn(_)));
        assert!(matches!(p.funcs[0].body.stmts[1], Stmt::JoinAll));
    }

    #[test]
    fn parse_tailcall() {
        let p = parse_program("fn f(x: i32) { print(x); } fn main() { tailcall f(1); }").unwrap();
        assert!(
            matches!(&p.funcs[1].body.stmts[0], Stmt::TailCall(n, a) if n == "f" && a.len() == 1)
        );
    }

    #[test]
    fn parse_indirect_call() {
        let e = parse_expr("(f)(1, 2)").unwrap();
        assert!(matches!(e, Expr::CallPtr(..)));
    }

    #[test]
    fn parse_scope_stmt() {
        let p = parse_program("fn main() { { let x: i32 = 1; } }").unwrap();
        assert!(matches!(p.funcs[0].body.stmts[0], Stmt::Scope(_)));
    }

    #[test]
    fn parse_array_repeat_and_index() {
        let e = parse_expr("[0u8; 4]").unwrap();
        assert!(matches!(e, Expr::ArrayRepeat(_, 4)));
        let e = parse_expr("a[1]").unwrap();
        assert!(matches!(e, Expr::Index(..)));
    }

    #[test]
    fn parse_cast_chain() {
        let e = parse_expr("p as *const i32 as usize").unwrap();
        assert!(
            matches!(e, Expr::Cast(inner, Ty::Int(IntTy::Usize)) if matches!(*inner, Expr::Cast(..)))
        );
    }

    #[test]
    fn parse_negative_literal() {
        let e = parse_expr("-5").unwrap();
        assert_eq!(e, Expr::i32(-5));
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse_program("fn main() { let ; }").is_err());
        assert!(parse_program("garbage").is_err());
    }

    #[test]
    fn no_struct_literal_in_condition() {
        // `U { ... }` must not be parsed as a union literal in `if` heads.
        let p = parse_program("fn main() { let u: i32 = 0; if u == 0 { print(u); } }");
        assert!(p.is_ok());
    }
}
