//! Algorithm 1 of the paper: pruning irrelevant nodes from a program's AST.
//!
//! The abstract-reasoning agent vectorises *pruned* ASTs so that the
//! knowledge base keys on safety-relevant structure only. Pruning keeps:
//!
//! 1. every statement that performs an unsafe operation (or contains one),
//! 2. every statement that defines a variable used (transitively) by a kept
//!    statement — a backward slice over data dependencies,
//! 3. enclosing control structure of kept statements.
//!
//! Everything else is dropped. The result is a valid [`Program`] skeleton
//! (possibly not executable — pruning is for retrieval, not for running).

use crate::ast::{Block, Expr, Program, Stmt};
use crate::visit::{for_each_expr_in_stmt, vars_read, walk_expr};
use std::collections::HashSet;

/// Prunes a program according to Algorithm 1, returning the reduced program
/// and the number of statements removed.
///
/// ```
/// # use rb_lang::{parser::parse_program, prune::prune_program};
/// let p = parse_program(
///     "fn main() { let a: i32 = 1; let b: i32 = 2; print(b); \
///      let q: *const i32 = &raw const a; unsafe { print(*q); } }").unwrap();
/// let (pruned, removed) = prune_program(&p);
/// assert!(removed >= 1); // `let b` / `print(b)` are safety-irrelevant
/// assert!(pruned.stmt_count() < p.stmt_count());
/// ```
#[must_use]
pub fn prune_program(prog: &Program) -> (Program, usize) {
    let before = prog.stmt_count();
    let mut out = prog.clone();
    for f in &mut out.funcs {
        let keep_vars = collect_unsafe_deps(&f.body);
        prune_block(&mut f.body, &keep_vars);
    }
    // Drop functions that became empty and are never referenced by kept code,
    // except `main` which anchors the program.
    let referenced: HashSet<String> = {
        let mut set = HashSet::new();
        for f in &out.funcs {
            collect_called(&f.body, &mut set);
        }
        set
    };
    out.funcs
        .retain(|f| f.name == "main" || !f.body.stmts.is_empty() || referenced.contains(&f.name));
    let after = out.stmt_count();
    (out, before.saturating_sub(after))
}

fn collect_called(b: &Block, set: &mut HashSet<String>) {
    for s in &b.stmts {
        for_each_expr_in_stmt(s, |top| {
            walk_expr(top, &mut |e| {
                if let Expr::Call(n, _) = e {
                    set.insert(n.clone());
                }
                if let Expr::Var(n) = e {
                    set.insert(n.clone());
                }
            });
        });
        match s {
            Stmt::Unsafe(inner)
            | Stmt::Scope(inner)
            | Stmt::Spawn(inner)
            | Stmt::Lock(_, inner) => collect_called(inner, set),
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                collect_called(then_blk, set);
                if let Some(e) = else_blk {
                    collect_called(e, set);
                }
            }
            Stmt::While { body, .. } => collect_called(body, set),
            Stmt::TailCall(n, _) => {
                set.insert(n.clone());
            }
            _ => {}
        }
    }
}

/// Computes the set of variable names that unsafe statements depend on,
/// iterating the backward slice to a fixed point.
fn collect_unsafe_deps(body: &Block) -> HashSet<String> {
    let mut needed: HashSet<String> = HashSet::new();
    // Seed: variables read inside statements that touch unsafe constructs.
    seed_block(body, &mut needed);
    // Fixed point: if `let x = f(y)` and x is needed, y becomes needed.
    loop {
        let before = needed.len();
        expand_block(body, &mut needed);
        if needed.len() == before {
            break;
        }
    }
    needed
}

fn stmt_is_unsafe_relevant(s: &Stmt) -> bool {
    if matches!(s, Stmt::Unsafe(_)) {
        return true;
    }
    let mut relevant = false;
    for_each_expr_in_stmt(s, |top| {
        walk_expr(top, &mut |e| {
            if matches!(
                e,
                Expr::RawAddrOf(..) | Expr::UnionField(..) | Expr::UnionLit(..)
            ) || matches!(e, Expr::Builtin(b, ..) if b.is_unsafe())
                || matches!(e, Expr::Cast(_, t) if matches!(t, crate::ast::Ty::RawPtr(..) | crate::ast::Ty::FnPtr(..)))
            {
                relevant = true;
            }
        });
    });
    relevant
        || match s {
            Stmt::Spawn(b) | Stmt::Scope(b) | Stmt::Lock(_, b) => {
                b.stmts.iter().any(stmt_is_unsafe_relevant)
            }
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                then_blk.stmts.iter().any(stmt_is_unsafe_relevant)
                    || else_blk
                        .as_ref()
                        .is_some_and(|b| b.stmts.iter().any(stmt_is_unsafe_relevant))
            }
            Stmt::While { body, .. } => body.stmts.iter().any(stmt_is_unsafe_relevant),
            _ => false,
        }
}

fn seed_block(b: &Block, needed: &mut HashSet<String>) {
    for s in &b.stmts {
        if stmt_is_unsafe_relevant(s) {
            for_each_expr_in_stmt(s, |e| {
                for v in vars_read(e) {
                    needed.insert(v);
                }
            });
        }
        match s {
            Stmt::Unsafe(inner)
            | Stmt::Scope(inner)
            | Stmt::Spawn(inner)
            | Stmt::Lock(_, inner) => {
                // Everything inside an unsafe block is kept, so its reads
                // are needed; scopes/spawns recurse normally.
                if matches!(s, Stmt::Unsafe(_)) {
                    collect_all_reads(inner, needed);
                }
                seed_block(inner, needed);
            }
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                seed_block(then_blk, needed);
                if let Some(e) = else_blk {
                    seed_block(e, needed);
                }
            }
            Stmt::While { body, .. } => seed_block(body, needed),
            _ => {}
        }
    }
}

fn collect_all_reads(b: &Block, needed: &mut HashSet<String>) {
    for s in &b.stmts {
        for_each_expr_in_stmt(s, |e| {
            for v in vars_read(e) {
                needed.insert(v);
            }
        });
        match s {
            Stmt::Unsafe(i) | Stmt::Scope(i) | Stmt::Spawn(i) | Stmt::Lock(_, i) => {
                collect_all_reads(i, needed);
            }
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                collect_all_reads(then_blk, needed);
                if let Some(e) = else_blk {
                    collect_all_reads(e, needed);
                }
            }
            Stmt::While { body, .. } => collect_all_reads(body, needed),
            _ => {}
        }
    }
}

fn expand_block(b: &Block, needed: &mut HashSet<String>) {
    for s in &b.stmts {
        if let Stmt::Let { name, init, .. } = s {
            if needed.contains(name) {
                for v in vars_read(init) {
                    needed.insert(v);
                }
            }
        }
        if let Stmt::Assign { place, value } = s {
            let targets = vars_read(place);
            if targets.iter().any(|t| needed.contains(t)) {
                for v in vars_read(value) {
                    needed.insert(v);
                }
            }
        }
        match s {
            Stmt::Unsafe(i) | Stmt::Scope(i) | Stmt::Spawn(i) | Stmt::Lock(_, i) => {
                expand_block(i, needed);
            }
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                expand_block(then_blk, needed);
                if let Some(e) = else_blk {
                    expand_block(e, needed);
                }
            }
            Stmt::While { body, .. } => expand_block(body, needed),
            _ => {}
        }
    }
}

fn stmt_keep(s: &Stmt, needed: &HashSet<String>) -> bool {
    if stmt_is_unsafe_relevant(s) {
        return true;
    }
    match s {
        Stmt::Let { name, .. } => needed.contains(name),
        Stmt::Assign { place, .. } => vars_read(place).iter().any(|v| needed.contains(v)),
        Stmt::Spawn(_) | Stmt::JoinAll | Stmt::Return(_) | Stmt::TailCall(..) => true,
        Stmt::Scope(b) | Stmt::Lock(_, b) => b.stmts.iter().any(|s| stmt_keep(s, needed)),
        Stmt::If {
            then_blk, else_blk, ..
        } => {
            then_blk.stmts.iter().any(|s| stmt_keep(s, needed))
                || else_blk
                    .as_ref()
                    .is_some_and(|b| b.stmts.iter().any(|s| stmt_keep(s, needed)))
        }
        Stmt::While { body, .. } => body.stmts.iter().any(|s| stmt_keep(s, needed)),
        _ => false,
    }
}

fn prune_block(b: &mut Block, needed: &HashSet<String>) {
    b.stmts.retain(|s| stmt_keep(s, needed));
    for s in &mut b.stmts {
        match s {
            Stmt::Scope(i) | Stmt::Lock(_, i) | Stmt::Spawn(i) => prune_block(i, needed),
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                prune_block(then_blk, needed);
                if let Some(e) = else_blk {
                    prune_block(e, needed);
                }
            }
            Stmt::While { body, .. } => prune_block(body, needed),
            // Unsafe blocks are kept whole: they are the payload.
            Stmt::Unsafe(_) => {}
            _ => {}
        }
    }
}

/// Fraction of statements that survive pruning — a measure of how much
/// noise Algorithm 1 removes for the knowledge base.
#[must_use]
pub fn retention_ratio(prog: &Program) -> f64 {
    let total = prog.stmt_count();
    if total == 0 {
        return 1.0;
    }
    let (pruned, _) = prune_program(prog);
    pruned.stmt_count() as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::collect_metrics;
    use crate::parser::parse_program;

    #[test]
    fn keeps_unsafe_and_deps() {
        let p = parse_program(
            "fn main() { let a: i32 = 1; let noise: i32 = 42; print(noise); \
             let q: *const i32 = &raw const a; unsafe { print(*q); } }",
        )
        .unwrap();
        let (pruned, removed) = prune_program(&p);
        assert!(removed >= 2, "expected noise removed, got {removed}");
        let text = crate::printer::print_program(&pruned);
        assert!(text.contains("unsafe"));
        assert!(text.contains("let a"));
        assert!(!text.contains("noise"));
    }

    #[test]
    fn transitive_dependencies_kept() {
        let p = parse_program(
            "fn main() { let base: i32 = 7; let a: i32 = base + 1; \
             let q: *const i32 = &raw const a; unsafe { print(*q); } }",
        )
        .unwrap();
        let (pruned, _) = prune_program(&p);
        let text = crate::printer::print_program(&pruned);
        assert!(text.contains("let base"));
    }

    #[test]
    fn program_without_unsafe_prunes_heavily() {
        let p = parse_program("fn main() { let x: i32 = 1; print(x); }").unwrap();
        let (pruned, _) = prune_program(&p);
        assert_eq!(pruned.funcs[0].body.stmts.len(), 0);
    }

    #[test]
    fn pruned_has_no_more_unsafe_than_original() {
        let p = parse_program(
            "fn main() { unsafe { let p: *mut u8 = alloc(4usize, 4usize); dealloc(p, 4usize, 4usize); } }",
        )
        .unwrap();
        let (pruned, _) = prune_program(&p);
        let m0 = collect_metrics(&p);
        let m1 = collect_metrics(&pruned);
        assert_eq!(m0.unsafe_blocks, m1.unsafe_blocks);
        assert_eq!(m0.total_unsafe_ops(), m1.total_unsafe_ops());
    }

    #[test]
    fn retention_ratio_bounds() {
        let p = parse_program("fn main() { let x: i32 = 1; print(x); }").unwrap();
        let r = retention_ratio(&p);
        assert!((0.0..=1.0).contains(&r));
    }
}
