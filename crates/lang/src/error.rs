//! Error types for lexing, parsing and checking.

use std::error::Error;
use std::fmt;

/// Result alias for language-level operations.
pub type LangResult<T> = Result<T, LangError>;

/// Errors produced while lexing or parsing source text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LangError {
    /// Lexical error at a byte offset.
    Lex {
        /// Byte offset in the source.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// Parse error at a byte offset.
    Parse {
        /// Byte offset in the source.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex { offset, message } => {
                write!(f, "lex error at byte {offset}: {message}")
            }
            LangError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
        }
    }
}

impl Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = LangError::Lex {
            offset: 3,
            message: "bad".into(),
        };
        assert_eq!(e.to_string(), "lex error at byte 3: bad");
        let e = LangError::Parse {
            offset: 9,
            message: "worse".into(),
        };
        assert_eq!(e.to_string(), "parse error at byte 9: worse");
    }
}
