//! Static checking: name resolution, lenient type checking and the
//! `unsafe`-context rule (Rust's E0133). Programs must check cleanly before
//! the oracle interprets them; repairs that produce ill-formed programs are
//! counted as failed iterations, exactly as a non-compiling LLM patch would
//! be in the paper's pipeline.

use crate::ast::{
    BinOp, Block, BuiltinKind, Expr, Function, IntTy, Lit, Mutability, Program, Stmt, StmtPath, Ty,
    UnOp,
};
use std::collections::HashMap;
use std::fmt;

/// A static-check diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckError {
    /// Kind of problem.
    pub kind: CheckErrorKind,
    /// Statement where the problem was found, when known.
    pub path: Option<StmtPath>,
    /// Human-readable description.
    pub message: String,
}

/// Kinds of static-check diagnostics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CheckErrorKind {
    /// Use of an undeclared variable.
    UndefinedVar,
    /// Incompatible types.
    TypeMismatch,
    /// Assignment target is not a place expression.
    NotAPlace,
    /// Operation requires an `unsafe` context (E0133).
    RequiresUnsafe,
    /// Call to an unknown function.
    UnknownFunc,
    /// Wrong number of call arguments.
    ArityMismatch,
    /// Unknown union or union field.
    UnknownUnionField,
    /// Program has no `main` function.
    NoMain,
    /// Builtin used with wrong type arguments.
    BadBuiltin,
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.path {
            Some(p) => write!(f, "{:?} at {p}: {}", self.kind, self.message),
            None => write!(f, "{:?}: {}", self.kind, self.message),
        }
    }
}

/// Size and alignment of a union: max over fields.
#[must_use]
pub fn union_layout(prog: &Program, name: &str) -> Option<(usize, usize)> {
    let u = prog.union_def(name)?;
    let mut size = 0usize;
    let mut align = 1usize;
    for (_, t) in &u.fields {
        size = size.max(ty_size(prog, t)?);
        align = align.max(ty_align(prog, t)?);
    }
    Some((size, align))
}

/// Size of a type, resolving unions through the program.
#[must_use]
pub fn ty_size(prog: &Program, t: &Ty) -> Option<usize> {
    match t {
        Ty::Union(n) => union_layout(prog, n).map(|(s, _)| s),
        Ty::Array(inner, n) => ty_size(prog, inner).map(|s| s * n),
        Ty::Tuple(ts) => ts.iter().map(|t| ty_size(prog, t)).sum(),
        _ => t.size(),
    }
}

/// Alignment of a type, resolving unions through the program.
#[must_use]
pub fn ty_align(prog: &Program, t: &Ty) -> Option<usize> {
    match t {
        Ty::Union(n) => union_layout(prog, n).map(|(_, a)| a),
        Ty::Array(inner, _) => ty_align(prog, inner),
        Ty::Tuple(ts) => ts
            .iter()
            .map(|t| ty_align(prog, t))
            .try_fold(1usize, |a, b| b.map(|b| a.max(b))),
        _ => t.align(),
    }
}

/// Runs all static checks over a program, returning every diagnostic found.
///
/// ```
/// # use rb_lang::{parser::parse_program, check::check_program};
/// let p = parse_program("fn main() { let x: i32 = 1; print(x); }").unwrap();
/// assert!(check_program(&p).is_empty());
/// ```
#[must_use]
pub fn check_program(prog: &Program) -> Vec<CheckError> {
    let mut cx = Checker {
        prog,
        errors: Vec::new(),
        scopes: Vec::new(),
        in_unsafe: false,
        fn_sigs: prog
            .funcs
            .iter()
            .map(|f| {
                (
                    f.name.clone(),
                    (
                        f.params.iter().map(|(_, t)| t.clone()).collect::<Vec<_>>(),
                        f.ret.clone(),
                        f.is_unsafe,
                    ),
                )
            })
            .collect(),
    };
    if prog.func("main").is_none() {
        cx.errors.push(CheckError {
            kind: CheckErrorKind::NoMain,
            path: None,
            message: "program has no `main` function".into(),
        });
    }
    for (fi, f) in prog.funcs.iter().enumerate() {
        cx.check_fn(f, fi);
    }
    cx.errors
}

/// Returns `true` when the program has no static-check diagnostics.
#[must_use]
pub fn is_well_formed(prog: &Program) -> bool {
    check_program(prog).is_empty()
}

type FnSig = (Vec<Ty>, Ty, bool);

struct Checker<'p> {
    prog: &'p Program,
    errors: Vec<CheckError>,
    scopes: Vec<HashMap<String, Ty>>,
    in_unsafe: bool,
    fn_sigs: HashMap<String, FnSig>,
}

impl<'p> Checker<'p> {
    fn err(&mut self, kind: CheckErrorKind, path: &StmtPath, message: impl Into<String>) {
        self.errors.push(CheckError {
            kind,
            path: Some(path.clone()),
            message: message.into(),
        });
    }

    fn lookup(&self, name: &str) -> Option<&Ty> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn check_fn(&mut self, f: &Function, fi: usize) {
        self.scopes.clear();
        let mut top = HashMap::new();
        for (n, t) in &f.params {
            top.insert(n.clone(), t.clone());
        }
        self.scopes.push(top);
        self.in_unsafe = f.is_unsafe;
        let base = StmtPath {
            func: fi,
            steps: Vec::new(),
        };
        self.check_block(&f.body, &base, false);
        self.scopes.pop();
    }

    fn check_block(&mut self, b: &Block, base: &StmtPath, new_scope: bool) {
        if new_scope {
            self.scopes.push(HashMap::new());
        }
        for (i, s) in b.stmts.iter().enumerate() {
            let here = base.child(i, 0);
            self.check_stmt(s, &here);
        }
        if new_scope {
            self.scopes.pop();
        }
    }

    fn check_stmt(&mut self, s: &Stmt, path: &StmtPath) {
        match s {
            Stmt::Let { name, ty, init } => {
                if let Some(it) = self.check_expr(init, path) {
                    if !compatible(ty, &it) {
                        self.err(
                            CheckErrorKind::TypeMismatch,
                            path,
                            format!(
                                "let `{name}`: declared {} but initialiser has {}",
                                crate::printer::print_ty(ty),
                                crate::printer::print_ty(&it)
                            ),
                        );
                    }
                }
                self.scopes
                    .last_mut()
                    .expect("scope stack non-empty")
                    .insert(name.clone(), ty.clone());
            }
            Stmt::Assign { place, value } => {
                if !place.is_place() {
                    self.err(
                        CheckErrorKind::NotAPlace,
                        path,
                        "assignment target is not a place",
                    );
                }
                self.check_place_unsafety(place, path);
                let pt = self.check_expr(place, path);
                let vt = self.check_expr(value, path);
                if let (Some(pt), Some(vt)) = (pt, vt) {
                    if !compatible(&pt, &vt) {
                        self.err(
                            CheckErrorKind::TypeMismatch,
                            path,
                            format!(
                                "assignment of {} to place of type {}",
                                crate::printer::print_ty(&vt),
                                crate::printer::print_ty(&pt)
                            ),
                        );
                    }
                }
            }
            Stmt::Expr(e) | Stmt::Print(e) => {
                self.check_expr(e, path);
            }
            Stmt::Unsafe(b) => {
                let saved = self.in_unsafe;
                self.in_unsafe = true;
                let mut inner = path.clone();
                if let Some(s) = inner.steps.last_mut() {
                    s.1 = 0;
                }
                self.check_block(b, &inner, true);
                self.in_unsafe = saved;
            }
            Stmt::Scope(b) | Stmt::Spawn(b) | Stmt::Lock(_, b) => {
                let mut inner = path.clone();
                if let Some(s) = inner.steps.last_mut() {
                    s.1 = 0;
                }
                self.check_block(b, &inner, true);
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.expect_bool(cond, path);
                let mut t = path.clone();
                if let Some(s) = t.steps.last_mut() {
                    s.1 = 0;
                }
                self.check_block(then_blk, &t, true);
                if let Some(e) = else_blk {
                    let mut ep = path.clone();
                    if let Some(s) = ep.steps.last_mut() {
                        s.1 = 1;
                    }
                    self.check_block(e, &ep, true);
                }
            }
            Stmt::While { cond, body } => {
                self.expect_bool(cond, path);
                let mut inner = path.clone();
                if let Some(s) = inner.steps.last_mut() {
                    s.1 = 0;
                }
                self.check_block(body, &inner, true);
            }
            Stmt::Assert { cond, .. } => {
                self.expect_bool(cond, path);
            }
            Stmt::Return(e) => {
                if let Some(e) = e {
                    self.check_expr(e, path);
                }
            }
            Stmt::TailCall(name, args) => {
                match self.fn_sigs.get(name).cloned() {
                    Some((params, _, is_unsafe)) => {
                        if params.len() != args.len() {
                            self.err(
                                CheckErrorKind::ArityMismatch,
                                path,
                                format!("tailcall `{name}` expects {} args", params.len()),
                            );
                        }
                        if is_unsafe && !self.in_unsafe {
                            self.err(
                                CheckErrorKind::RequiresUnsafe,
                                path,
                                format!("tailcall to unsafe fn `{name}` requires unsafe"),
                            );
                        }
                    }
                    None => {
                        self.err(
                            CheckErrorKind::UnknownFunc,
                            path,
                            format!("unknown fn `{name}`"),
                        );
                    }
                }
                for a in args {
                    self.check_expr(a, path);
                }
            }
            Stmt::JoinAll | Stmt::Nop => {}
        }
    }

    fn expect_bool(&mut self, e: &Expr, path: &StmtPath) {
        if let Some(t) = self.check_expr(e, path) {
            if t != Ty::Bool {
                self.err(
                    CheckErrorKind::TypeMismatch,
                    path,
                    format!("condition has type {}", crate::printer::print_ty(&t)),
                );
            }
        }
    }

    /// Reports E0133 problems in a place expression used for writing.
    fn check_place_unsafety(&mut self, place: &Expr, path: &StmtPath) {
        if self.in_unsafe {
            return;
        }
        crate::visit::walk_expr(place, &mut |e| {
            let needs = match e {
                Expr::Deref(inner) => {
                    matches!(self.infer_quiet(inner), Some(Ty::RawPtr(..)))
                }
                Expr::StaticRef(n) => self.prog.static_def(n).is_some_and(|s| s.mutable),
                Expr::UnionField(..) => true,
                _ => false,
            };
            if needs {
                self.errors.push(CheckError {
                    kind: CheckErrorKind::RequiresUnsafe,
                    path: Some(path.clone()),
                    message: "operation requires an unsafe block (E0133)".into(),
                });
            }
        });
    }

    fn infer_quiet(&self, e: &Expr) -> Option<Ty> {
        match e {
            Expr::Var(n) => self.lookup(n).cloned(),
            Expr::StaticRef(n) => self.prog.static_def(n).map(|s| s.ty.clone()),
            Expr::Cast(_, t) => Some(t.clone()),
            Expr::Deref(inner) => {
                let t = self.infer_quiet(inner)?;
                t.pointee().cloned()
            }
            Expr::Lit(l) => Some(l.ty()),
            _ => None,
        }
    }

    /// Checks an expression, returning its inferred type when determinable.
    #[allow(clippy::too_many_lines)]
    fn check_expr(&mut self, e: &Expr, path: &StmtPath) -> Option<Ty> {
        match e {
            Expr::Lit(l) => Some(l.ty()),
            Expr::Var(n) => {
                if let Some(t) = self.lookup(n) {
                    Some(t.clone())
                } else if let Some(f) = self.prog.func(n) {
                    Some(f.fn_ptr_ty())
                } else {
                    self.err(
                        CheckErrorKind::UndefinedVar,
                        path,
                        format!("undefined variable `{n}`"),
                    );
                    None
                }
            }
            Expr::StaticRef(n) => match self.prog.static_def(n) {
                Some(s) => {
                    if s.mutable && !self.in_unsafe {
                        self.err(
                            CheckErrorKind::RequiresUnsafe,
                            path,
                            format!("access to `static mut {n}` requires unsafe (E0133)"),
                        );
                    }
                    Some(s.ty.clone())
                }
                None => {
                    self.err(
                        CheckErrorKind::UndefinedVar,
                        path,
                        format!("unknown static `{n}`"),
                    );
                    None
                }
            },
            Expr::Unary(op, a) => {
                let t = self.check_expr(a, path)?;
                match op {
                    UnOp::Neg => {
                        if !t.is_int() {
                            self.err(
                                CheckErrorKind::TypeMismatch,
                                path,
                                "negation of non-integer",
                            );
                        }
                        Some(t)
                    }
                    UnOp::Not => Some(t),
                }
            }
            Expr::Binary(op, a, b) => {
                let ta = self.check_expr(a, path);
                let tb = self.check_expr(b, path);
                if let (Some(ta), Some(tb)) = (&ta, &tb) {
                    let arith_ok = ta == tb
                        || matches!(op, BinOp::Shl | BinOp::Shr)
                        || ta.is_pointer_like()
                        || tb.is_pointer_like();
                    if !arith_ok {
                        self.err(
                            CheckErrorKind::TypeMismatch,
                            path,
                            format!(
                                "operands {} and {}",
                                crate::printer::print_ty(ta),
                                crate::printer::print_ty(tb)
                            ),
                        );
                    }
                }
                if op.is_comparison() || matches!(op, BinOp::And | BinOp::Or) {
                    Some(Ty::Bool)
                } else {
                    ta.or(tb)
                }
            }
            Expr::Cast(a, to) => {
                self.check_expr(a, path);
                Some(to.clone())
            }
            Expr::AddrOf(m, a) => {
                let t = self.check_expr(a, path)?;
                Some(Ty::Ref(Box::new(t), *m))
            }
            Expr::RawAddrOf(m, a) => {
                let t = self.check_expr(a, path)?;
                Some(Ty::RawPtr(Box::new(t), *m))
            }
            Expr::Deref(a) => {
                let t = self.check_expr(a, path)?;
                match &t {
                    Ty::RawPtr(inner, _) => {
                        if !self.in_unsafe {
                            self.err(
                                CheckErrorKind::RequiresUnsafe,
                                path,
                                "raw-pointer dereference requires unsafe (E0133)",
                            );
                        }
                        Some((**inner).clone())
                    }
                    Ty::Ref(inner, _) | Ty::Boxed(inner) => Some((**inner).clone()),
                    other => {
                        self.err(
                            CheckErrorKind::TypeMismatch,
                            path,
                            format!("cannot deref {}", crate::printer::print_ty(other)),
                        );
                        None
                    }
                }
            }
            Expr::Index(a, i) => {
                let it = self.check_expr(i, path);
                if let Some(it) = it {
                    if !it.is_int() {
                        self.err(
                            CheckErrorKind::TypeMismatch,
                            path,
                            "index is not an integer",
                        );
                    }
                }
                let t = self.check_expr(a, path)?;
                match t {
                    Ty::Array(inner, _) => Some(*inner),
                    Ty::Ref(b, _) => match *b {
                        Ty::Array(inner, _) => Some(*inner),
                        _ => None,
                    },
                    _ => None,
                }
            }
            Expr::Field(a, n) => {
                let t = self.check_expr(a, path)?;
                match t {
                    Ty::Tuple(items) => items.get(*n).cloned(),
                    _ => None,
                }
            }
            Expr::Tuple(xs) => {
                let ts: Vec<Ty> = xs
                    .iter()
                    .map(|x| self.check_expr(x, path).unwrap_or(Ty::Unit))
                    .collect();
                Some(Ty::Tuple(ts))
            }
            Expr::ArrayLit(xs) => {
                let mut elem = None;
                for x in xs {
                    elem = self.check_expr(x, path).or(elem);
                }
                elem.map(|t| Ty::Array(Box::new(t), xs.len()))
            }
            Expr::ArrayRepeat(v, n) => {
                let t = self.check_expr(v, path)?;
                Some(Ty::Array(Box::new(t), *n))
            }
            Expr::Call(name, args) => {
                for a in args {
                    self.check_expr(a, path);
                }
                if let Some((params, ret, is_unsafe)) = self.fn_sigs.get(name).cloned() {
                    if params.len() != args.len() {
                        self.err(
                            CheckErrorKind::ArityMismatch,
                            path,
                            format!("`{name}` expects {} args, got {}", params.len(), args.len()),
                        );
                    }
                    if is_unsafe && !self.in_unsafe {
                        self.err(
                            CheckErrorKind::RequiresUnsafe,
                            path,
                            format!("call to unsafe fn `{name}` requires unsafe (E0133)"),
                        );
                    }
                    Some(ret)
                } else if let Some(t) = self.lookup(name).cloned() {
                    // Call through a variable holding a function pointer.
                    match t {
                        Ty::FnPtr(_, ret) => Some(*ret),
                        _ => {
                            self.err(
                                CheckErrorKind::UnknownFunc,
                                path,
                                format!("`{name}` is not callable"),
                            );
                            None
                        }
                    }
                } else {
                    self.err(
                        CheckErrorKind::UnknownFunc,
                        path,
                        format!("unknown fn `{name}`"),
                    );
                    None
                }
            }
            Expr::CallPtr(c, args) => {
                let t = self.check_expr(c, path);
                for a in args {
                    self.check_expr(a, path);
                }
                match t {
                    Some(Ty::FnPtr(_, ret)) => Some(*ret),
                    Some(other) => {
                        self.err(
                            CheckErrorKind::TypeMismatch,
                            path,
                            format!(
                                "cannot call value of type {}",
                                crate::printer::print_ty(&other)
                            ),
                        );
                        None
                    }
                    None => None,
                }
            }
            Expr::Builtin(b, tys, args) => self.check_builtin(*b, tys, args, path),
            Expr::UnionLit(u, f, v) => {
                self.check_expr(v, path);
                match self.prog.union_def(u) {
                    Some(def) => {
                        if !def.fields.iter().any(|(n, _)| n == f) {
                            self.err(
                                CheckErrorKind::UnknownUnionField,
                                path,
                                format!("union `{u}` has no field `{f}`"),
                            );
                        }
                        Some(Ty::Union(u.clone()))
                    }
                    None => {
                        self.err(
                            CheckErrorKind::UnknownUnionField,
                            path,
                            format!("unknown union `{u}`"),
                        );
                        None
                    }
                }
            }
            Expr::UnionField(a, f) => {
                if !self.in_unsafe {
                    self.err(
                        CheckErrorKind::RequiresUnsafe,
                        path,
                        "union field access requires unsafe (E0133)",
                    );
                }
                let t = self.check_expr(a, path)?;
                match t {
                    Ty::Union(u) => {
                        let def = self.prog.union_def(&u)?;
                        match def.fields.iter().find(|(n, _)| n == f) {
                            Some((_, ft)) => Some(ft.clone()),
                            None => {
                                self.err(
                                    CheckErrorKind::UnknownUnionField,
                                    path,
                                    format!("union `{u}` has no field `{f}`"),
                                );
                                None
                            }
                        }
                    }
                    _ => None,
                }
            }
        }
    }

    fn check_builtin(
        &mut self,
        b: BuiltinKind,
        tys: &[Ty],
        args: &[Expr],
        path: &StmtPath,
    ) -> Option<Ty> {
        // Atomic builtins model `AtomicI32`-style statics: touching the
        // static through them is safe, so the first argument (the static)
        // is exempt from the static-mut E0133 rule.
        let skip_static_arg = matches!(b, BuiltinKind::AtomicLoad | BuiltinKind::AtomicStore);
        for (i, a) in args.iter().enumerate() {
            if skip_static_arg && i == 0 && matches!(a, Expr::StaticRef(_)) {
                continue;
            }
            self.check_expr(a, path);
        }
        if b.is_unsafe() && !self.in_unsafe {
            self.err(
                CheckErrorKind::RequiresUnsafe,
                path,
                format!("builtin `{}` requires unsafe (E0133)", b.name()),
            );
        }
        let expect_args = |cx: &mut Self, n: usize| {
            if args.len() != n {
                cx.err(
                    CheckErrorKind::ArityMismatch,
                    path,
                    format!(
                        "builtin `{}` expects {n} args, got {}",
                        b.name(),
                        args.len()
                    ),
                );
            }
        };
        let ty0 = tys.first().cloned();
        match b {
            BuiltinKind::Alloc => {
                expect_args(self, 2);
                Some(Ty::raw_u8_mut())
            }
            BuiltinKind::Dealloc => {
                expect_args(self, 3);
                Some(Ty::Unit)
            }
            BuiltinKind::PtrRead | BuiltinKind::AssumeInitRead => {
                expect_args(self, 1);
                ty0
            }
            BuiltinKind::PtrWrite => {
                expect_args(self, 2);
                Some(Ty::Unit)
            }
            BuiltinKind::PtrOffset => {
                expect_args(self, 2);
                ty0.map(|t| Ty::raw(t, Mutability::Mut))
            }
            BuiltinKind::Transmute => {
                expect_args(self, 1);
                if tys.len() != 2 {
                    self.err(
                        CheckErrorKind::BadBuiltin,
                        path,
                        "transmute needs two type arguments",
                    );
                    return None;
                }
                Some(tys[1].clone())
            }
            BuiltinKind::BoxNew => {
                expect_args(self, 1);
                ty0.map(|t| Ty::Boxed(Box::new(t)))
            }
            BuiltinKind::BoxIntoRaw => {
                expect_args(self, 1);
                ty0.map(|t| Ty::raw(t, Mutability::Mut))
            }
            BuiltinKind::BoxFromRaw => {
                expect_args(self, 1);
                ty0.map(|t| Ty::Boxed(Box::new(t)))
            }
            BuiltinKind::DropBox => {
                expect_args(self, 1);
                Some(Ty::Unit)
            }
            BuiltinKind::GetUnchecked => {
                expect_args(self, 2);
                ty0
            }
            BuiltinKind::UncheckedAdd
            | BuiltinKind::UncheckedSub
            | BuiltinKind::UncheckedMul
            | BuiltinKind::CheckedAdd
            | BuiltinKind::CheckedSub
            | BuiltinKind::CheckedMul => {
                expect_args(self, 2);
                ty0
            }
            BuiltinKind::AtomicLoad => {
                expect_args(self, 1);
                match args.first() {
                    Some(Expr::StaticRef(n)) => self.prog.static_def(n).map(|s| s.ty.clone()),
                    _ => {
                        self.err(
                            CheckErrorKind::BadBuiltin,
                            path,
                            "atomic_load takes a static",
                        );
                        None
                    }
                }
            }
            BuiltinKind::AtomicStore => {
                expect_args(self, 2);
                if !matches!(args.first(), Some(Expr::StaticRef(_))) {
                    self.err(
                        CheckErrorKind::BadBuiltin,
                        path,
                        "atomic_store takes a static",
                    );
                }
                Some(Ty::Unit)
            }
            BuiltinKind::FromLeBytes => {
                expect_args(self, 1);
                ty0
            }
            BuiltinKind::ToLeBytes => {
                expect_args(self, 1);
                match ty0 {
                    Some(Ty::Int(t)) => Some(Ty::Array(Box::new(Ty::Int(IntTy::U8)), t.size())),
                    _ => None,
                }
            }
            BuiltinKind::PtrAddr => {
                expect_args(self, 1);
                Some(Ty::Int(IntTy::Usize))
            }
            BuiltinKind::CopyNonoverlapping => {
                expect_args(self, 3);
                Some(Ty::Unit)
            }
            BuiltinKind::Abort => {
                expect_args(self, 0);
                Some(Ty::Unit)
            }
        }
    }
}

/// Loose compatibility: exact equality plus raw-pointer mutability
/// coercion (`*mut T` usable where `*const T` is expected), mirroring Rust.
fn compatible(expected: &Ty, actual: &Ty) -> bool {
    if expected == actual {
        return true;
    }
    match (expected, actual) {
        (Ty::RawPtr(a, Mutability::Not), Ty::RawPtr(b, _)) => a == b,
        (Ty::Ref(a, Mutability::Not), Ty::Ref(b, _)) => a == b,
        _ => false,
    }
}

/// Convenience predicate: checks whether a literal is valid for a type.
#[must_use]
pub fn lit_fits(l: &Lit, t: &Ty) -> bool {
    match (l, t) {
        (Lit::Unit, Ty::Unit) | (Lit::Bool(_), Ty::Bool) => true,
        (Lit::Int(v, _), Ty::Int(t)) => t.in_range(*v),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn errors_of(src: &str) -> Vec<CheckErrorKind> {
        check_program(&parse_program(src).unwrap())
            .into_iter()
            .map(|e| e.kind)
            .collect()
    }

    #[test]
    fn clean_program_checks() {
        assert!(errors_of("fn main() { let x: i32 = 1; print(x + 2); }").is_empty());
    }

    #[test]
    fn undefined_var() {
        assert!(errors_of("fn main() { print(y); }").contains(&CheckErrorKind::UndefinedVar));
    }

    #[test]
    fn raw_deref_requires_unsafe() {
        let errs =
            errors_of("fn main() { let x: i32 = 1; let p: *const i32 = &raw const x; print(*p); }");
        assert!(errs.contains(&CheckErrorKind::RequiresUnsafe));
        let errs = errors_of(
            "fn main() { let x: i32 = 1; let p: *const i32 = &raw const x; unsafe { print(*p); } }",
        );
        assert!(errs.is_empty());
    }

    #[test]
    fn static_mut_requires_unsafe() {
        let errs = errors_of("static mut G: i32 = 0; fn main() { G = 1; }");
        assert!(errs.contains(&CheckErrorKind::RequiresUnsafe));
        let errs = errors_of("static mut G: i32 = 0; fn main() { unsafe { G = 1; } }");
        assert!(errs.is_empty());
    }

    #[test]
    fn immutable_static_is_safe() {
        assert!(errors_of("static K: i32 = 7; fn main() { print(K); }").is_empty());
    }

    #[test]
    fn union_read_requires_unsafe() {
        let errs = errors_of(
            "union B { i: i32, u: u32 } fn main() { let b: B = B { i: 1 }; print(b.u); }",
        );
        assert!(errs.contains(&CheckErrorKind::RequiresUnsafe));
    }

    #[test]
    fn unsafe_fn_call_requires_unsafe() {
        let errs = errors_of("unsafe fn danger() { } fn main() { danger(); }");
        assert!(errs.contains(&CheckErrorKind::RequiresUnsafe));
        let errs = errors_of("unsafe fn danger() { } fn main() { unsafe { danger(); } }");
        assert!(errs.is_empty());
    }

    #[test]
    fn unsafe_fn_body_is_unsafe_context() {
        let errs = errors_of(
            "unsafe fn f(p: *const i32) -> i32 { return *p; } \
             fn main() { let x: i32 = 1; unsafe { print(f(&raw const x)); } }",
        );
        assert!(errs.is_empty());
    }

    #[test]
    fn type_mismatch_let() {
        let errs = errors_of("fn main() { let x: bool = 1; }");
        assert!(errs.contains(&CheckErrorKind::TypeMismatch));
    }

    #[test]
    fn arity_mismatch() {
        let errs = errors_of("fn f(x: i32) { print(x); } fn main() { f(1, 2); }");
        assert!(errs.contains(&CheckErrorKind::ArityMismatch));
    }

    #[test]
    fn unknown_function() {
        assert!(errors_of("fn main() { nope(); }").contains(&CheckErrorKind::UnknownFunc));
    }

    #[test]
    fn no_main() {
        assert!(errors_of("fn f() { }").contains(&CheckErrorKind::NoMain));
    }

    #[test]
    fn mut_ptr_coerces_to_const() {
        let errs = errors_of(
            "fn main() { let x: i32 = 1; let p: *const i32 = &raw mut x; unsafe { print(*p); } }",
        );
        assert!(errs.is_empty());
    }

    #[test]
    fn union_layout_max_of_fields() {
        let p = parse_program("union B { a: u8, b: u64 } fn main() { }").unwrap();
        assert_eq!(union_layout(&p, "B"), Some((8, 8)));
    }

    #[test]
    fn builtin_unsafe_enforced() {
        let errs = errors_of("fn main() { let p: *mut u8 = alloc(4usize, 4usize); }");
        assert!(errs.contains(&CheckErrorKind::RequiresUnsafe));
    }

    #[test]
    fn transmute_needs_two_ty_args() {
        let errs = errors_of("fn main() { unsafe { let x: u32 = transmute::<u32>(1u32); } }");
        assert!(errs.contains(&CheckErrorKind::BadBuiltin));
    }

    #[test]
    fn scope_shadows_and_expires() {
        // Inner scope declares y; using it after the scope is an error.
        let errs = errors_of("fn main() { { let y: i32 = 1; print(y); } print(y); }");
        assert!(errs.contains(&CheckErrorKind::UndefinedVar));
    }
}
