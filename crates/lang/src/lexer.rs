//! Lexer for the mini unsafe-Rust surface syntax.

use crate::error::{LangError, LangResult};
use crate::token::{Token, TokenKind};

/// Splits `src` into tokens, terminated by an [`TokenKind::Eof`] token.
///
/// # Errors
///
/// Returns [`LangError::Lex`] on unknown characters, malformed integers or
/// unterminated strings.
///
/// ```
/// # use rb_lang::lexer::lex;
/// let toks = lex("let x: i32 = 5;").unwrap();
/// assert_eq!(toks.len(), 8); // includes Eof
/// ```
pub fn lex(src: &str) -> LangResult<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => push1(&mut toks, TokenKind::LParen, &mut i, start),
            ')' => push1(&mut toks, TokenKind::RParen, &mut i, start),
            '{' => push1(&mut toks, TokenKind::LBrace, &mut i, start),
            '}' => push1(&mut toks, TokenKind::RBrace, &mut i, start),
            '[' => push1(&mut toks, TokenKind::LBracket, &mut i, start),
            ']' => push1(&mut toks, TokenKind::RBracket, &mut i, start),
            ',' => push1(&mut toks, TokenKind::Comma, &mut i, start),
            ';' => push1(&mut toks, TokenKind::Semi, &mut i, start),
            '.' => push1(&mut toks, TokenKind::Dot, &mut i, start),
            '+' => push1(&mut toks, TokenKind::Plus, &mut i, start),
            '%' => push1(&mut toks, TokenKind::Percent, &mut i, start),
            '^' => push1(&mut toks, TokenKind::Caret, &mut i, start),
            '/' => push1(&mut toks, TokenKind::Slash, &mut i, start),
            '*' => push1(&mut toks, TokenKind::Star, &mut i, start),
            ':' => {
                if bytes.get(i + 1) == Some(&b':') {
                    toks.push(Token {
                        kind: TokenKind::ColonColon,
                        offset: start,
                    });
                    i += 2;
                } else {
                    push1(&mut toks, TokenKind::Colon, &mut i, start);
                }
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    toks.push(Token {
                        kind: TokenKind::Arrow,
                        offset: start,
                    });
                    i += 2;
                } else {
                    push1(&mut toks, TokenKind::Minus, &mut i, start);
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Token {
                        kind: TokenKind::EqEq,
                        offset: start,
                    });
                    i += 2;
                } else {
                    push1(&mut toks, TokenKind::Eq, &mut i, start);
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Token {
                        kind: TokenKind::Ne,
                        offset: start,
                    });
                    i += 2;
                } else {
                    push1(&mut toks, TokenKind::Bang, &mut i, start);
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    toks.push(Token {
                        kind: TokenKind::Le,
                        offset: start,
                    });
                    i += 2;
                }
                Some(&b'<') => {
                    toks.push(Token {
                        kind: TokenKind::Shl,
                        offset: start,
                    });
                    i += 2;
                }
                _ => push1(&mut toks, TokenKind::Lt, &mut i, start),
            },
            '>' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    toks.push(Token {
                        kind: TokenKind::Ge,
                        offset: start,
                    });
                    i += 2;
                }
                // `>>` is never emitted as shift-right here because it would
                // conflict with closing nested generics like `::<[u8; 2]>>`;
                // the parser reconstructs shifts from adjacent `>` tokens.
                _ => push1(&mut toks, TokenKind::Gt, &mut i, start),
            },
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    toks.push(Token {
                        kind: TokenKind::AmpAmp,
                        offset: start,
                    });
                    i += 2;
                } else {
                    push1(&mut toks, TokenKind::Amp, &mut i, start);
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    toks.push(Token {
                        kind: TokenKind::PipePipe,
                        offset: start,
                    });
                    i += 2;
                } else {
                    push1(&mut toks, TokenKind::Pipe, &mut i, start);
                }
            }
            '"' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(LangError::Lex {
                                offset: start,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(&b'"') => {
                            i += 1;
                            break;
                        }
                        Some(&b'\\') => {
                            match bytes.get(i + 1) {
                                Some(&b'n') => s.push('\n'),
                                Some(&b'"') => s.push('"'),
                                Some(&b'\\') => s.push('\\'),
                                _ => {
                                    return Err(LangError::Lex {
                                        offset: i,
                                        message: "unknown escape sequence".into(),
                                    })
                                }
                            }
                            i += 2;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                toks.push(Token {
                    kind: TokenKind::Str(s),
                    offset: start,
                });
            }
            '0'..='9' => {
                let mut v: i128 = 0;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    v = v
                        .checked_mul(10)
                        .and_then(|v| v.checked_add(i128::from(bytes[i] - b'0')))
                        .ok_or_else(|| LangError::Lex {
                            offset: start,
                            message: "integer literal too large".into(),
                        })?;
                    i += 1;
                }
                // Optional type suffix, e.g. `0u8`.
                let suffix_start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                let suffix = if i > suffix_start {
                    Some(src[suffix_start..i].to_owned())
                } else {
                    None
                };
                toks.push(Token {
                    kind: TokenKind::Int(v, suffix),
                    offset: start,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                toks.push(Token {
                    kind: TokenKind::Ident(src[start..i].to_owned()),
                    offset: start,
                });
            }
            other => {
                return Err(LangError::Lex {
                    offset: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    toks.push(Token {
        kind: TokenKind::Eof,
        offset: src.len(),
    });
    Ok(toks)
}

fn push1(toks: &mut Vec<Token>, kind: TokenKind, i: &mut usize, start: usize) {
    toks.push(Token {
        kind,
        offset: start,
    });
    *i += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        let k = kinds("let x = 5;");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("let".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Eq,
                TokenKind::Int(5, None),
                TokenKind::Semi,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn int_suffix() {
        let k = kinds("255u8");
        assert_eq!(k[0], TokenKind::Int(255, Some("u8".into())));
    }

    #[test]
    fn two_char_operators() {
        let k = kinds(":: -> == != <= >= << && ||");
        assert_eq!(
            k,
            vec![
                TokenKind::ColonColon,
                TokenKind::Arrow,
                TokenKind::EqEq,
                TokenKind::Ne,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::Shl,
                TokenKind::AmpAmp,
                TokenKind::PipePipe,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn gt_gt_stays_split_for_generics() {
        let k = kinds(">>");
        assert_eq!(k, vec![TokenKind::Gt, TokenKind::Gt, TokenKind::Eof]);
    }

    #[test]
    fn string_literal_with_escape() {
        let k = kinds(r#""a\"b\n""#);
        assert_eq!(k[0], TokenKind::Str("a\"b\n".into()));
    }

    #[test]
    fn comments_skipped() {
        let k = kinds("x // comment\n y");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Ident("y".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("\"abc").is_err());
    }

    #[test]
    fn unknown_char_errors() {
        assert!(lex("let @x").is_err());
    }

    #[test]
    fn offsets_recorded() {
        let toks = lex("ab cd").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 3);
    }
}
