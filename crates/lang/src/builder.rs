//! Fluent builders for constructing IR programs in code, used heavily by
//! the dataset templates. The builder produces exactly the same [`Program`]
//! values the parser would.

use crate::ast::{Block, Expr, Function, Lit, Mutability, Program, StaticDef, Stmt, Ty, UnionDef};

/// Builds a [`Program`] item by item.
///
/// ```
/// # use rb_lang::builder::ProgramBuilder;
/// # use rb_lang::ast::{Expr, IntTy, Ty};
/// let prog = ProgramBuilder::new()
///     .func("main", &[], Ty::Unit, false, |f| {
///         f.let_("x", Ty::Int(IntTy::I32), Expr::i32(1));
///         f.print(Expr::var("x"));
///     })
///     .build();
/// assert!(prog.func("main").is_some());
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    prog: Program,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Adds a union declaration.
    #[must_use]
    pub fn union(mut self, name: &str, fields: &[(&str, Ty)]) -> Self {
        self.prog.unions.push(UnionDef {
            name: name.to_owned(),
            fields: fields
                .iter()
                .map(|(n, t)| ((*n).to_owned(), t.clone()))
                .collect(),
        });
        self
    }

    /// Adds an immutable static.
    #[must_use]
    pub fn static_item(mut self, name: &str, ty: Ty, init: Lit) -> Self {
        self.prog.statics.push(StaticDef {
            name: name.to_owned(),
            ty,
            init,
            mutable: false,
        });
        self
    }

    /// Adds a `static mut`.
    #[must_use]
    pub fn static_mut(mut self, name: &str, ty: Ty, init: Lit) -> Self {
        self.prog.statics.push(StaticDef {
            name: name.to_owned(),
            ty,
            init,
            mutable: true,
        });
        self
    }

    /// Adds a function whose body is built by `build`.
    #[must_use]
    pub fn func(
        mut self,
        name: &str,
        params: &[(&str, Ty)],
        ret: Ty,
        is_unsafe: bool,
        build: impl FnOnce(&mut BlockBuilder),
    ) -> Self {
        let mut b = BlockBuilder::default();
        build(&mut b);
        self.prog.funcs.push(Function {
            name: name.to_owned(),
            params: params
                .iter()
                .map(|(n, t)| ((*n).to_owned(), t.clone()))
                .collect(),
            ret,
            is_unsafe,
            body: b.finish(),
        });
        self
    }

    /// Finishes, returning the program.
    #[must_use]
    pub fn build(self) -> Program {
        self.prog
    }
}

/// Builds a [`Block`] statement by statement.
#[derive(Debug, Default)]
pub struct BlockBuilder {
    stmts: Vec<Stmt>,
}

impl BlockBuilder {
    /// Finishes, returning the block.
    #[must_use]
    pub fn finish(self) -> Block {
        Block::new(self.stmts)
    }

    /// Pushes an arbitrary statement.
    pub fn stmt(&mut self, s: Stmt) -> &mut Self {
        self.stmts.push(s);
        self
    }

    /// `let name: ty = init;`
    pub fn let_(&mut self, name: &str, ty: Ty, init: Expr) -> &mut Self {
        self.stmt(Stmt::Let {
            name: name.to_owned(),
            ty,
            init,
        })
    }

    /// `place = value;`
    pub fn assign(&mut self, place: Expr, value: Expr) -> &mut Self {
        self.stmt(Stmt::Assign { place, value })
    }

    /// Expression statement.
    pub fn expr(&mut self, e: Expr) -> &mut Self {
        self.stmt(Stmt::Expr(e))
    }

    /// `print(e);`
    pub fn print(&mut self, e: Expr) -> &mut Self {
        self.stmt(Stmt::Print(e))
    }

    /// `assert(cond, msg);`
    pub fn assert(&mut self, cond: Expr, msg: &str) -> &mut Self {
        self.stmt(Stmt::Assert {
            cond,
            msg: msg.to_owned(),
        })
    }

    /// `return e;`
    pub fn ret(&mut self, e: Expr) -> &mut Self {
        self.stmt(Stmt::Return(Some(e)))
    }

    /// `unsafe { ... }`
    pub fn unsafe_(&mut self, build: impl FnOnce(&mut BlockBuilder)) -> &mut Self {
        let mut b = BlockBuilder::default();
        build(&mut b);
        self.stmt(Stmt::Unsafe(b.finish()))
    }

    /// `{ ... }` lexical scope.
    pub fn scope(&mut self, build: impl FnOnce(&mut BlockBuilder)) -> &mut Self {
        let mut b = BlockBuilder::default();
        build(&mut b);
        self.stmt(Stmt::Scope(b.finish()))
    }

    /// `spawn { ... }`
    pub fn spawn(&mut self, build: impl FnOnce(&mut BlockBuilder)) -> &mut Self {
        let mut b = BlockBuilder::default();
        build(&mut b);
        self.stmt(Stmt::Spawn(b.finish()))
    }

    /// `lock(id) { ... }`
    pub fn lock(&mut self, id: u32, build: impl FnOnce(&mut BlockBuilder)) -> &mut Self {
        let mut b = BlockBuilder::default();
        build(&mut b);
        self.stmt(Stmt::Lock(id, b.finish()))
    }

    /// `join;`
    pub fn join(&mut self) -> &mut Self {
        self.stmt(Stmt::JoinAll)
    }

    /// `if cond { .. } else { .. }`
    pub fn if_else(
        &mut self,
        cond: Expr,
        then_build: impl FnOnce(&mut BlockBuilder),
        else_build: impl FnOnce(&mut BlockBuilder),
    ) -> &mut Self {
        let mut t = BlockBuilder::default();
        then_build(&mut t);
        let mut e = BlockBuilder::default();
        else_build(&mut e);
        self.stmt(Stmt::If {
            cond,
            then_blk: t.finish(),
            else_blk: Some(e.finish()),
        })
    }

    /// `if cond { .. }`
    pub fn if_(&mut self, cond: Expr, then_build: impl FnOnce(&mut BlockBuilder)) -> &mut Self {
        let mut t = BlockBuilder::default();
        then_build(&mut t);
        self.stmt(Stmt::If {
            cond,
            then_blk: t.finish(),
            else_blk: None,
        })
    }

    /// `while cond { .. }`
    pub fn while_(&mut self, cond: Expr, build: impl FnOnce(&mut BlockBuilder)) -> &mut Self {
        let mut b = BlockBuilder::default();
        build(&mut b);
        self.stmt(Stmt::While {
            cond,
            body: b.finish(),
        })
    }

    /// `tailcall f(args);`
    pub fn tailcall(&mut self, name: &str, args: Vec<Expr>) -> &mut Self {
        self.stmt(Stmt::TailCall(name.to_owned(), args))
    }
}

// ---- expression helpers ----------------------------------------------------

/// `&raw const place`.
#[must_use]
pub fn raw_const(place: Expr) -> Expr {
    Expr::RawAddrOf(Mutability::Not, Box::new(place))
}

/// `&raw mut place`.
#[must_use]
pub fn raw_mut(place: Expr) -> Expr {
    Expr::RawAddrOf(Mutability::Mut, Box::new(place))
}

/// `&place`.
#[must_use]
pub fn addr_of(place: Expr) -> Expr {
    Expr::AddrOf(Mutability::Not, Box::new(place))
}

/// `&mut place`.
#[must_use]
pub fn addr_of_mut(place: Expr) -> Expr {
    Expr::AddrOf(Mutability::Mut, Box::new(place))
}

/// `*e`.
#[must_use]
pub fn deref(e: Expr) -> Expr {
    Expr::Deref(Box::new(e))
}

/// `e as t`.
#[must_use]
pub fn cast(e: Expr, t: Ty) -> Expr {
    Expr::Cast(Box::new(e), t)
}

/// Binary operation helper.
#[must_use]
pub fn bin(op: crate::ast::BinOp, a: Expr, b: Expr) -> Expr {
    Expr::Binary(op, Box::new(a), Box::new(b))
}

/// Builtin-call helper.
#[must_use]
pub fn builtin(kind: crate::ast::BuiltinKind, tys: Vec<Ty>, args: Vec<Expr>) -> Expr {
    Expr::Builtin(kind, tys, args)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, IntTy};
    use crate::check::check_program;
    use crate::parser::parse_program;
    use crate::printer::print_program;

    #[test]
    fn builder_matches_parser() {
        let built = ProgramBuilder::new()
            .func("main", &[], Ty::Unit, false, |f| {
                f.let_("x", Ty::Int(IntTy::I32), Expr::i32(1));
                f.print(bin(BinOp::Add, Expr::var("x"), Expr::i32(2)));
            })
            .build();
        let parsed = parse_program("fn main() { let x: i32 = 1; print(x + 2); }").unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn built_programs_print_and_reparse() {
        let built = ProgramBuilder::new()
            .static_mut("G", Ty::Int(IntTy::I32), Lit::Int(0, IntTy::I32))
            .func("main", &[], Ty::Unit, false, |f| {
                f.unsafe_(|u| {
                    u.assign(Expr::StaticRef("G".into()), Expr::i32(3));
                    u.print(Expr::StaticRef("G".into()));
                });
            })
            .build();
        let text = print_program(&built);
        let reparsed = parse_program(&text).unwrap();
        assert_eq!(built, reparsed);
        assert!(check_program(&built).is_empty());
    }

    #[test]
    fn control_flow_builders() {
        let p = ProgramBuilder::new()
            .func("main", &[], Ty::Unit, false, |f| {
                f.let_("x", Ty::Int(IntTy::I32), Expr::i32(0));
                f.if_else(
                    bin(BinOp::Lt, Expr::var("x"), Expr::i32(5)),
                    |t| {
                        t.print(Expr::i32(1));
                    },
                    |e| {
                        e.print(Expr::i32(2));
                    },
                );
                f.while_(bin(BinOp::Lt, Expr::var("x"), Expr::i32(3)), |w| {
                    w.assign(
                        Expr::var("x"),
                        bin(BinOp::Add, Expr::var("x"), Expr::i32(1)),
                    );
                });
            })
            .build();
        assert!(check_program(&p).is_empty());
    }
}
