//! Pretty-printer emitting the surface syntax accepted by
//! [`crate::parser::parse_program`]. Printing then parsing yields the same
//! AST (round-trip property, exercised in the crate's tests).

use crate::ast::{BinOp, Block, Expr, Function, Lit, Program, StaticDef, Stmt, Ty, UnOp, UnionDef};
use std::fmt::Write as _;

/// Renders a whole program to source text.
///
/// ```
/// # use rb_lang::{parser::parse_program, printer::print_program};
/// let src = "fn main() {\n    print(1i32);\n}\n";
/// let p = parse_program(src).unwrap();
/// assert_eq!(print_program(&p), src);
/// ```
#[must_use]
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for u in &p.unions {
        print_union(&mut out, u);
    }
    for s in &p.statics {
        print_static(&mut out, s);
    }
    for (i, f) in p.funcs.iter().enumerate() {
        if i > 0 || !p.unions.is_empty() || !p.statics.is_empty() {
            out.push('\n');
        }
        print_fn(&mut out, f);
    }
    out
}

/// Renders a single expression.
#[must_use]
pub fn print_expr(e: &Expr) -> String {
    let mut s = String::new();
    expr(&mut s, e);
    s
}

/// Renders a single type.
#[must_use]
pub fn print_ty(t: &Ty) -> String {
    let mut s = String::new();
    ty(&mut s, t);
    s
}

/// Renders a single statement at the given indent level.
#[must_use]
pub fn print_stmt(s: &Stmt, indent: usize) -> String {
    let mut out = String::new();
    stmt(&mut out, s, indent);
    out
}

fn print_union(out: &mut String, u: &UnionDef) {
    let _ = write!(out, "union {} {{ ", u.name);
    for (i, (n, t)) in u.fields.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{n}: ");
        ty(out, t);
    }
    out.push_str(" }\n");
}

fn print_static(out: &mut String, s: &StaticDef) {
    let _ = write!(
        out,
        "static {}{}: ",
        if s.mutable { "mut " } else { "" },
        s.name
    );
    ty(out, &s.ty);
    out.push_str(" = ");
    lit(out, &s.init);
    out.push_str(";\n");
}

fn print_fn(out: &mut String, f: &Function) {
    if f.is_unsafe {
        out.push_str("unsafe ");
    }
    let _ = write!(out, "fn {}(", f.name);
    for (i, (n, t)) in f.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{n}: ");
        ty(out, t);
    }
    out.push(')');
    if f.ret != Ty::Unit {
        out.push_str(" -> ");
        ty(out, &f.ret);
    }
    out.push(' ');
    block(out, &f.body, 0);
    out.push('\n');
}

fn block(out: &mut String, b: &Block, indent: usize) {
    out.push_str("{\n");
    for s in &b.stmts {
        stmt(out, s, indent + 1);
    }
    pad(out, indent);
    out.push('}');
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("    ");
    }
}

fn stmt(out: &mut String, s: &Stmt, indent: usize) {
    pad(out, indent);
    match s {
        Stmt::Let { name, ty: t, init } => {
            let _ = write!(out, "let {name}: ");
            ty(out, t);
            out.push_str(" = ");
            expr(out, init);
            out.push_str(";\n");
        }
        Stmt::Assign { place, value } => {
            expr(out, place);
            out.push_str(" = ");
            expr(out, value);
            out.push_str(";\n");
        }
        Stmt::Expr(e) => {
            expr(out, e);
            out.push_str(";\n");
        }
        Stmt::Unsafe(b) => {
            out.push_str("unsafe ");
            block(out, b, indent);
            out.push('\n');
        }
        Stmt::Scope(b) => {
            block(out, b, indent);
            out.push('\n');
        }
        Stmt::If {
            cond,
            then_blk,
            else_blk,
        } => {
            out.push_str("if ");
            expr(out, cond);
            out.push(' ');
            block(out, then_blk, indent);
            if let Some(e) = else_blk {
                out.push_str(" else ");
                block(out, e, indent);
            }
            out.push('\n');
        }
        Stmt::While { cond, body } => {
            out.push_str("while ");
            expr(out, cond);
            out.push(' ');
            block(out, body, indent);
            out.push('\n');
        }
        Stmt::Assert { cond, msg } => {
            out.push_str("assert(");
            expr(out, cond);
            let _ = write!(
                out,
                ", \"{}\"",
                msg.replace('\\', "\\\\").replace('"', "\\\"")
            );
            out.push_str(");\n");
        }
        Stmt::Return(e) => {
            out.push_str("return");
            if let Some(e) = e {
                out.push(' ');
                expr(out, e);
            }
            out.push_str(";\n");
        }
        Stmt::Spawn(b) => {
            out.push_str("spawn ");
            block(out, b, indent);
            out.push('\n');
        }
        Stmt::JoinAll => out.push_str("join;\n"),
        Stmt::Lock(id, b) => {
            let _ = write!(out, "lock({id}) ");
            block(out, b, indent);
            out.push('\n');
        }
        Stmt::Print(e) => {
            out.push_str("print(");
            expr(out, e);
            out.push_str(");\n");
        }
        Stmt::TailCall(name, args) => {
            let _ = write!(out, "tailcall {name}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr(out, a);
            }
            out.push_str(");\n");
        }
        Stmt::Nop => out.push_str("nop;\n"),
    }
}

fn lit(out: &mut String, l: &Lit) {
    match l {
        Lit::Unit => out.push_str("()"),
        Lit::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Lit::Int(v, t) => {
            let _ = write!(out, "{v}{t}");
        }
    }
}

fn ty(out: &mut String, t: &Ty) {
    match t {
        Ty::Unit => out.push_str("()"),
        Ty::Bool => out.push_str("bool"),
        Ty::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Ty::RawPtr(inner, m) => {
            let _ = write!(out, "*{} ", if m.is_mut() { "mut" } else { "const" });
            ty(out, inner);
        }
        Ty::Ref(inner, m) => {
            out.push('&');
            if m.is_mut() {
                out.push_str("mut ");
            }
            ty(out, inner);
        }
        Ty::Array(inner, n) => {
            out.push('[');
            ty(out, inner);
            let _ = write!(out, "; {n}]");
        }
        Ty::Tuple(items) => {
            out.push('(');
            for (i, t) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                ty(out, t);
            }
            if items.len() == 1 {
                out.push(',');
            }
            out.push(')');
        }
        Ty::FnPtr(params, ret) => {
            out.push_str("fn(");
            for (i, t) in params.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                ty(out, t);
            }
            out.push(')');
            if **ret != Ty::Unit {
                out.push_str(" -> ");
                ty(out, ret);
            }
        }
        Ty::Union(name) => out.push_str(name),
        Ty::Boxed(inner) => {
            out.push_str("Box<");
            ty(out, inner);
            out.push('>');
        }
    }
}

/// Binding power of an expression for parenthesisation decisions; mirrors
/// the parser's table.
fn bp(e: &Expr) -> u8 {
    match e {
        Expr::Binary(op, ..) => match op {
            BinOp::Or => 1,
            BinOp::And => 3,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 5,
            BinOp::BitOr => 7,
            BinOp::BitXor => 9,
            BinOp::BitAnd => 11,
            BinOp::Shl | BinOp::Shr => 13,
            BinOp::Add | BinOp::Sub => 15,
            BinOp::Mul | BinOp::Div | BinOp::Rem => 17,
        },
        Expr::Cast(..) => 19,
        Expr::Unary(..) | Expr::Deref(_) | Expr::AddrOf(..) | Expr::RawAddrOf(..) => 21,
        _ => 100,
    }
}

fn expr(out: &mut String, e: &Expr) {
    expr_prec(out, e, 0);
}

fn paren_if(out: &mut String, e: &Expr, min: u8) {
    if bp(e) < min {
        out.push('(');
        expr_prec(out, e, 0);
        out.push(')');
    } else {
        expr_prec(out, e, 0);
    }
}

fn expr_prec(out: &mut String, e: &Expr, _min: u8) {
    match e {
        Expr::Lit(l) => lit(out, l),
        Expr::Var(n) | Expr::StaticRef(n) => out.push_str(n),
        Expr::Unary(op, a) => {
            out.push(match op {
                UnOp::Neg => '-',
                UnOp::Not => '!',
            });
            paren_if(out, a, 21);
        }
        Expr::Binary(op, a, b) => {
            let my = bp(e);
            paren_if(out, a, my);
            let s = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Rem => "%",
                BinOp::And => "&&",
                BinOp::Or => "||",
                BinOp::BitAnd => "&",
                BinOp::BitOr => "|",
                BinOp::BitXor => "^",
                BinOp::Shl => "<<",
                BinOp::Shr => ">>",
                BinOp::Eq => "==",
                BinOp::Ne => "!=",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
            };
            let _ = write!(out, " {s} ");
            paren_if(out, b, my + 1);
        }
        Expr::Cast(a, t) => {
            paren_if(out, a, 19);
            out.push_str(" as ");
            ty(out, t);
        }
        Expr::AddrOf(m, a) => {
            out.push('&');
            if m.is_mut() {
                out.push_str("mut ");
            }
            paren_if(out, a, 21);
        }
        Expr::RawAddrOf(m, a) => {
            let _ = write!(out, "&raw {} ", if m.is_mut() { "mut" } else { "const" });
            paren_if(out, a, 21);
        }
        Expr::Deref(a) => {
            out.push('*');
            paren_if(out, a, 21);
        }
        Expr::Index(a, i) => {
            paren_if(out, a, 22);
            out.push('[');
            expr(out, i);
            out.push(']');
        }
        Expr::Field(a, n) => {
            paren_if(out, a, 22);
            let _ = write!(out, ".{n}");
        }
        Expr::Tuple(items) => {
            out.push('(');
            for (i, it) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr(out, it);
            }
            if items.len() == 1 {
                out.push(',');
            }
            out.push(')');
        }
        Expr::ArrayLit(items) => {
            out.push('[');
            for (i, it) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr(out, it);
            }
            out.push(']');
        }
        Expr::ArrayRepeat(v, n) => {
            out.push('[');
            expr(out, v);
            let _ = write!(out, "; {n}]");
        }
        Expr::Call(name, args) => {
            out.push_str(name);
            call_args(out, args);
        }
        Expr::CallPtr(f, args) => {
            out.push('(');
            expr(out, f);
            out.push(')');
            call_args(out, args);
        }
        Expr::Builtin(b, tys, args) => {
            out.push_str(b.name());
            if !tys.is_empty() {
                out.push_str("::<");
                for (i, t) in tys.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    ty(out, t);
                }
                out.push('>');
            }
            call_args(out, args);
        }
        Expr::UnionLit(u, f, v) => {
            let _ = write!(out, "{u} {{ {f}: ");
            expr(out, v);
            out.push_str(" }");
        }
        Expr::UnionField(a, f) => {
            paren_if(out, a, 22);
            let _ = write!(out, ".{f}");
        }
    }
}

fn call_args(out: &mut String, args: &[Expr]) {
    out.push('(');
    for (i, a) in args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        expr(out, a);
    }
    out.push(')');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program};

    fn roundtrip(src: &str) {
        let p = parse_program(src).unwrap();
        let printed = print_program(&p);
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("reparse failed for:\n{printed}\nerror: {e}"));
        assert_eq!(p, reparsed, "round-trip mismatch for:\n{printed}");
    }

    #[test]
    fn roundtrip_simple() {
        roundtrip("fn main() { let x: i32 = 1 + 2 * 3; print(x); }");
    }

    #[test]
    fn roundtrip_unsafe_ptr() {
        roundtrip(
            "fn main() { let x: i32 = 5; let p: *const i32 = &raw const x; unsafe { print(*p); } }",
        );
    }

    #[test]
    fn roundtrip_statics_unions() {
        roundtrip(
            "union Bits { i: i32, u: u32 } static mut G: i32 = 0; \
             fn main() { let b: Bits = Bits { i: -1 }; unsafe { print(b.u); G = 2; } }",
        );
    }

    #[test]
    fn roundtrip_builtins() {
        roundtrip(
            "fn main() { unsafe { let p: *mut u8 = alloc(8usize, 8usize); \
             ptr_write::<i32>(p as *mut i32, 7i32); \
             print(ptr_read::<i32>(p as *const i32)); \
             dealloc(p, 8usize, 8usize); } }",
        );
    }

    #[test]
    fn roundtrip_threads() {
        roundtrip(
            "static mut G: i32 = 0; fn main() { spawn { lock(1) { unsafe { G = 1; } } } join; }",
        );
    }

    #[test]
    fn roundtrip_control_flow() {
        roundtrip(
            "fn f(x: i32) -> i32 { if x > 0 { return x; } else { return -x; } } \
             fn main() { let i: i32 = 0; while i < 3 { print(f(i)); } }",
        );
    }

    #[test]
    fn roundtrip_tailcall_fnptr() {
        roundtrip(
            "fn g(x: i32) -> i32 { return x; } \
             fn main() { let f: fn(i32) -> i32 = g; print((f)(3)); tailcall g(1); }",
        );
    }

    #[test]
    fn precedence_parens_emitted() {
        let e = parse_expr("(1 + 2) * 3").unwrap();
        assert_eq!(print_expr(&e), "(1i32 + 2i32) * 3i32");
    }

    #[test]
    fn cast_precedence() {
        let e = parse_expr("p as usize + 1").unwrap();
        assert_eq!(print_expr(&e), "p as usize + 1i32");
        let r = parse_expr(&print_expr(&e)).unwrap();
        assert_eq!(e, r);
    }

    #[test]
    fn ty_printing() {
        assert_eq!(print_ty(&Ty::raw_u8_mut()), "*mut u8");
        assert_eq!(
            print_ty(&Ty::FnPtr(
                vec![Ty::Int(crate::ast::IntTy::I32)],
                Box::new(Ty::Unit)
            )),
            "fn(i32)"
        );
        assert_eq!(print_ty(&Ty::Boxed(Box::new(Ty::Bool))), "Box<bool>");
    }
}
