//! Traversal utilities: enumerate statements with stable [`StmtPath`]s,
//! look them up, and mutate programs by path. These are the primitives the
//! repair agents use to apply edits at diagnostic locations.

use crate::ast::{Block, Expr, Program, Stmt, StmtPath};

/// Returns the child block of a statement selected by `branch`
/// (0 = then/body/inner block, 1 = else).
#[must_use]
pub fn child_block(stmt: &Stmt, branch: u8) -> Option<&Block> {
    match (stmt, branch) {
        (Stmt::Unsafe(b) | Stmt::Scope(b) | Stmt::Spawn(b) | Stmt::Lock(_, b), 0) => Some(b),
        (Stmt::If { then_blk, .. }, 0) => Some(then_blk),
        (Stmt::If { else_blk, .. }, 1) => else_blk.as_ref(),
        (Stmt::While { body, .. }, 0) => Some(body),
        _ => None,
    }
}

/// Mutable variant of [`child_block`].
pub fn child_block_mut(stmt: &mut Stmt, branch: u8) -> Option<&mut Block> {
    match (stmt, branch) {
        (Stmt::Unsafe(b) | Stmt::Scope(b) | Stmt::Spawn(b) | Stmt::Lock(_, b), 0) => Some(b),
        (Stmt::If { then_blk, .. }, 0) => Some(then_blk),
        (Stmt::If { else_blk, .. }, 1) => else_blk.as_mut(),
        (Stmt::While { body, .. }, 0) => Some(body),
        _ => None,
    }
}

/// Number of child blocks a statement has (for iteration).
#[must_use]
pub fn child_branches(stmt: &Stmt) -> u8 {
    match stmt {
        Stmt::Unsafe(_) | Stmt::Scope(_) | Stmt::Spawn(_) | Stmt::Lock(..) | Stmt::While { .. } => {
            1
        }
        Stmt::If { else_blk, .. } => 1 + u8::from(else_blk.is_some()),
        _ => 0,
    }
}

/// Visits every statement of the program in pre-order, passing its path.
pub fn for_each_stmt<F: FnMut(&Stmt, &StmtPath)>(prog: &Program, mut f: F) {
    for (fi, func) in prog.funcs.iter().enumerate() {
        let base = StmtPath {
            func: fi,
            steps: Vec::new(),
        };
        walk_block(&func.body, &base, &mut f);
    }
}

fn walk_block<F: FnMut(&Stmt, &StmtPath)>(b: &Block, base: &StmtPath, f: &mut F) {
    for (i, s) in b.stmts.iter().enumerate() {
        // The branch recorded at this step is filled in when descending.
        let here = base.child(i, 0);
        f(s, &here);
        for br in 0..child_branches(s) {
            if let Some(cb) = child_block(s, br) {
                let mut parent = base.child(i, br);
                parent.steps.last_mut().expect("non-empty").1 = br;
                walk_block(cb, &parent, f);
            }
        }
    }
}

/// Looks up a statement by path.
#[must_use]
pub fn get_stmt<'p>(prog: &'p Program, path: &StmtPath) -> Option<&'p Stmt> {
    let func = prog.funcs.get(path.func)?;
    let mut block = &func.body;
    let (last, rest) = path.steps.split_last()?;
    for (idx, branch) in rest {
        let s = block.stmts.get(*idx)?;
        block = child_block(s, *branch)?;
    }
    block.stmts.get(last.0)
}

/// Looks up the block containing the statement addressed by `path`,
/// returning the block and the statement index within it.
pub fn containing_block_mut<'p>(
    prog: &'p mut Program,
    path: &StmtPath,
) -> Option<(&'p mut Block, usize)> {
    let func = prog.funcs.get_mut(path.func)?;
    let mut block = &mut func.body;
    let (last, rest) = path.steps.split_last()?;
    for (idx, branch) in rest {
        let s = block.stmts.get_mut(*idx)?;
        block = child_block_mut(s, *branch)?;
    }
    if last.0 <= block.stmts.len() {
        Some((block, last.0))
    } else {
        None
    }
}

/// Mutable statement lookup by path.
pub fn get_stmt_mut<'p>(prog: &'p mut Program, path: &StmtPath) -> Option<&'p mut Stmt> {
    let (block, idx) = containing_block_mut(prog, path)?;
    block.stmts.get_mut(idx)
}

/// Replaces the statement at `path`; returns `false` when the path dangles.
pub fn replace_stmt(prog: &mut Program, path: &StmtPath, new: Stmt) -> bool {
    match get_stmt_mut(prog, path) {
        Some(slot) => {
            *slot = new;
            true
        }
        None => false,
    }
}

/// Inserts a statement *before* the one at `path`.
pub fn insert_before(prog: &mut Program, path: &StmtPath, new: Stmt) -> bool {
    match containing_block_mut(prog, path) {
        Some((block, idx)) if idx <= block.stmts.len() => {
            block.stmts.insert(idx, new);
            true
        }
        _ => false,
    }
}

/// Inserts a statement *after* the one at `path`.
pub fn insert_after(prog: &mut Program, path: &StmtPath, new: Stmt) -> bool {
    match containing_block_mut(prog, path) {
        Some((block, idx)) if idx < block.stmts.len() => {
            block.stmts.insert(idx + 1, new);
            true
        }
        _ => false,
    }
}

/// Removes the statement at `path` entirely (shifting later paths).
pub fn remove_stmt(prog: &mut Program, path: &StmtPath) -> Option<Stmt> {
    match containing_block_mut(prog, path) {
        Some((block, idx)) if idx < block.stmts.len() => Some(block.stmts.remove(idx)),
        _ => None,
    }
}

/// Visits every expression in a statement (not descending into child
/// statements/blocks).
pub fn for_each_expr_in_stmt<F: FnMut(&Expr)>(stmt: &Stmt, mut f: F) {
    match stmt {
        Stmt::Let { init, .. } => walk_expr(init, &mut f),
        Stmt::Assign { place, value } => {
            walk_expr(place, &mut f);
            walk_expr(value, &mut f);
        }
        Stmt::Expr(e) | Stmt::Print(e) => walk_expr(e, &mut f),
        Stmt::If { cond, .. } | Stmt::While { cond, .. } | Stmt::Assert { cond, .. } => {
            walk_expr(cond, &mut f);
        }
        Stmt::Return(Some(e)) => walk_expr(e, &mut f),
        Stmt::TailCall(_, args) => {
            for a in args {
                walk_expr(a, &mut f);
            }
        }
        Stmt::Unsafe(_)
        | Stmt::Scope(_)
        | Stmt::Spawn(_)
        | Stmt::Lock(..)
        | Stmt::Return(None)
        | Stmt::JoinAll
        | Stmt::Nop => {}
    }
}

/// Recursively visits an expression and its subexpressions in pre-order.
pub fn walk_expr<F: FnMut(&Expr)>(e: &Expr, f: &mut F) {
    f(e);
    match e {
        Expr::Unary(_, a)
        | Expr::Cast(a, _)
        | Expr::AddrOf(_, a)
        | Expr::RawAddrOf(_, a)
        | Expr::Deref(a)
        | Expr::Field(a, _)
        | Expr::ArrayRepeat(a, _)
        | Expr::UnionLit(_, _, a)
        | Expr::UnionField(a, _) => walk_expr(a, f),
        Expr::Binary(_, a, b) | Expr::Index(a, b) => {
            walk_expr(a, f);
            walk_expr(b, f);
        }
        Expr::Tuple(xs) | Expr::ArrayLit(xs) | Expr::Call(_, xs) | Expr::Builtin(_, _, xs) => {
            for x in xs {
                walk_expr(x, f);
            }
        }
        Expr::CallPtr(c, xs) => {
            walk_expr(c, f);
            for x in xs {
                walk_expr(x, f);
            }
        }
        Expr::Lit(_) | Expr::Var(_) | Expr::StaticRef(_) => {}
    }
}

/// Applies `f` to every expression of a statement (recursing into nested
/// blocks), bottom-up, allowing in-place rewriting.
pub fn map_exprs_in_stmt<F: FnMut(&mut Expr)>(stmt: &mut Stmt, f: &mut F) {
    match stmt {
        Stmt::Let { init, .. } => map_expr(init, f),
        Stmt::Assign { place, value } => {
            map_expr(place, f);
            map_expr(value, f);
        }
        Stmt::Expr(e) | Stmt::Print(e) => map_expr(e, f),
        Stmt::Unsafe(b) | Stmt::Scope(b) | Stmt::Spawn(b) | Stmt::Lock(_, b) => {
            for s in &mut b.stmts {
                map_exprs_in_stmt(s, f);
            }
        }
        Stmt::If {
            cond,
            then_blk,
            else_blk,
        } => {
            map_expr(cond, f);
            for s in &mut then_blk.stmts {
                map_exprs_in_stmt(s, f);
            }
            if let Some(e) = else_blk {
                for s in &mut e.stmts {
                    map_exprs_in_stmt(s, f);
                }
            }
        }
        Stmt::While { cond, body } => {
            map_expr(cond, f);
            for s in &mut body.stmts {
                map_exprs_in_stmt(s, f);
            }
        }
        Stmt::Assert { cond, .. } => map_expr(cond, f),
        Stmt::Return(Some(e)) => map_expr(e, f),
        Stmt::TailCall(_, args) => {
            for a in args {
                map_expr(a, f);
            }
        }
        Stmt::Return(None) | Stmt::JoinAll | Stmt::Nop => {}
    }
}

/// Applies `f` to an expression and all subexpressions, bottom-up.
pub fn map_expr<F: FnMut(&mut Expr)>(e: &mut Expr, f: &mut F) {
    match e {
        Expr::Unary(_, a)
        | Expr::Cast(a, _)
        | Expr::AddrOf(_, a)
        | Expr::RawAddrOf(_, a)
        | Expr::Deref(a)
        | Expr::Field(a, _)
        | Expr::ArrayRepeat(a, _)
        | Expr::UnionLit(_, _, a)
        | Expr::UnionField(a, _) => map_expr(a, f),
        Expr::Binary(_, a, b) | Expr::Index(a, b) => {
            map_expr(a, f);
            map_expr(b, f);
        }
        Expr::Tuple(xs) | Expr::ArrayLit(xs) | Expr::Call(_, xs) | Expr::Builtin(_, _, xs) => {
            for x in xs {
                map_expr(x, f);
            }
        }
        Expr::CallPtr(c, xs) => {
            map_expr(c, f);
            for x in xs {
                map_expr(x, f);
            }
        }
        Expr::Lit(_) | Expr::Var(_) | Expr::StaticRef(_) => {}
    }
    f(e);
}

/// Applies `f` to every expression in the whole program.
pub fn map_exprs<F: FnMut(&mut Expr)>(prog: &mut Program, f: &mut F) {
    for func in &mut prog.funcs {
        for s in &mut func.body.stmts {
            map_exprs_in_stmt(s, f);
        }
    }
}

/// Collects the names of variables read by an expression.
#[must_use]
pub fn vars_read(e: &Expr) -> Vec<String> {
    let mut out = Vec::new();
    walk_expr(e, &mut |x| {
        if let Expr::Var(n) = x {
            out.push(n.clone());
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn sample() -> Program {
        parse_program(
            "fn main() { let x: i32 = 1; if x > 0 { print(x); } else { unsafe { print(2i32); } } }",
        )
        .unwrap()
    }

    #[test]
    fn enumerate_all_statements() {
        let p = sample();
        let mut seen = Vec::new();
        for_each_stmt(&p, |_, path| seen.push(path.clone()));
        // let, if, print(then), unsafe(else), print(inside unsafe)
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn paths_resolve_back() {
        let p = sample();
        let mut ok = 0;
        let mut paths = Vec::new();
        for_each_stmt(&p, |_, path| paths.push(path.clone()));
        for path in &paths {
            if get_stmt(&p, path).is_some() {
                ok += 1;
            }
        }
        assert_eq!(ok, paths.len());
    }

    #[test]
    fn else_branch_navigation() {
        let p = sample();
        // fn#0.1 (if) -> else branch -> stmt 0 (unsafe) -> stmt 0 (print)
        let path = StmtPath {
            func: 0,
            steps: vec![(1, 1), (0, 0), (0, 0)],
        };
        let s = get_stmt(&p, &path).unwrap();
        assert!(matches!(s, Stmt::Print(_)));
    }

    #[test]
    fn replace_and_insert() {
        let mut p = sample();
        let path = StmtPath::top(0, 0);
        assert!(replace_stmt(&mut p, &path, Stmt::Nop));
        assert!(matches!(p.funcs[0].body.stmts[0], Stmt::Nop));
        assert!(insert_before(&mut p, &path, Stmt::JoinAll));
        assert!(matches!(p.funcs[0].body.stmts[0], Stmt::JoinAll));
        let after = StmtPath::top(0, 1);
        assert!(insert_after(&mut p, &after, Stmt::JoinAll));
        assert!(matches!(p.funcs[0].body.stmts[2], Stmt::JoinAll));
    }

    #[test]
    fn remove_shifts() {
        let mut p = sample();
        let removed = remove_stmt(&mut p, &StmtPath::top(0, 0)).unwrap();
        assert!(matches!(removed, Stmt::Let { .. }));
        assert_eq!(p.funcs[0].body.stmts.len(), 1);
    }

    #[test]
    fn dangling_path_safe() {
        let mut p = sample();
        let bad = StmtPath::top(0, 99);
        assert!(get_stmt(&p, &bad).is_none());
        assert!(!replace_stmt(&mut p, &bad, Stmt::Nop));
        assert!(remove_stmt(&mut p, &bad).is_none());
    }

    #[test]
    fn vars_read_collects() {
        let p = sample();
        if let Stmt::If { cond, .. } = &p.funcs[0].body.stmts[1] {
            assert_eq!(vars_read(cond), vec!["x".to_owned()]);
        } else {
            panic!();
        }
    }
}
