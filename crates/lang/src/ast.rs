//! Abstract syntax tree for the mini unsafe-Rust IR.
//!
//! The IR models the subset of Rust that matters for undefined-behaviour
//! repair: raw pointers, references, transmutes, unions, mutable statics,
//! heap allocation, threads and the `unsafe` marker. Every construct the
//! paper's five unsafe-operation categories mention is representable:
//!
//! 1. dereferencing raw pointers ([`Expr::Deref`] of a raw pointer),
//! 2. calling unsafe functions ([`Function::is_unsafe`], unsafe builtins),
//! 3. implementing unsafe traits (modelled by unsafe builtin contracts),
//! 4. accessing/modifying mutable statics ([`Expr::StaticRef`]),
//! 5. accessing union fields ([`Expr::UnionField`]).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Mutability marker used by references, raw pointers and statics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Mutability {
    /// Shared / read-only.
    Not,
    /// Exclusive / writable.
    Mut,
}

impl Mutability {
    /// Returns `true` for [`Mutability::Mut`].
    #[must_use]
    pub fn is_mut(self) -> bool {
        matches!(self, Mutability::Mut)
    }
}

impl fmt::Display for Mutability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mutability::Not => write!(f, "const"),
            Mutability::Mut => write!(f, "mut"),
        }
    }
}

/// Primitive integer types of the IR.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)] // the variants are the Rust primitive integer types
pub enum IntTy {
    I8,
    I16,
    I32,
    I64,
    Isize,
    U8,
    U16,
    U32,
    U64,
    Usize,
}

impl IntTy {
    /// Size of the type in bytes (the IR fixes `usize`/`isize` at 8 bytes).
    #[must_use]
    pub fn size(self) -> usize {
        match self {
            IntTy::I8 | IntTy::U8 => 1,
            IntTy::I16 | IntTy::U16 => 2,
            IntTy::I32 | IntTy::U32 => 4,
            IntTy::I64 | IntTy::U64 | IntTy::Isize | IntTy::Usize => 8,
        }
    }

    /// Required alignment in bytes (same as size for primitives).
    #[must_use]
    pub fn align(self) -> usize {
        self.size()
    }

    /// Whether the type is signed.
    #[must_use]
    pub fn signed(self) -> bool {
        matches!(
            self,
            IntTy::I8 | IntTy::I16 | IntTy::I32 | IntTy::I64 | IntTy::Isize
        )
    }

    /// Smallest representable value.
    #[must_use]
    pub fn min(self) -> i128 {
        if self.signed() {
            -(1i128 << (self.size() * 8 - 1))
        } else {
            0
        }
    }

    /// Largest representable value.
    #[must_use]
    pub fn max(self) -> i128 {
        if self.signed() {
            (1i128 << (self.size() * 8 - 1)) - 1
        } else {
            (1i128 << (self.size() * 8)) - 1
        }
    }

    /// Wraps `v` into the representable range of the type (two's complement).
    #[must_use]
    pub fn wrap(self, v: i128) -> i128 {
        let bits = (self.size() * 8) as u32;
        let mask: u128 = if bits == 128 {
            u128::MAX
        } else {
            (1u128 << bits) - 1
        };
        let raw = (v as u128) & mask;
        if self.signed() && bits < 128 && (raw >> (bits - 1)) & 1 == 1 {
            (raw as i128) - (1i128 << bits)
        } else {
            raw as i128
        }
    }

    /// Whether `v` is in range for the type.
    #[must_use]
    pub fn in_range(self, v: i128) -> bool {
        v >= self.min() && v <= self.max()
    }

    /// All integer types, useful for enumeration in generators and tests.
    pub const ALL: [IntTy; 10] = [
        IntTy::I8,
        IntTy::I16,
        IntTy::I32,
        IntTy::I64,
        IntTy::Isize,
        IntTy::U8,
        IntTy::U16,
        IntTy::U32,
        IntTy::U64,
        IntTy::Usize,
    ];
}

impl fmt::Display for IntTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IntTy::I8 => "i8",
            IntTy::I16 => "i16",
            IntTy::I32 => "i32",
            IntTy::I64 => "i64",
            IntTy::Isize => "isize",
            IntTy::U8 => "u8",
            IntTy::U16 => "u16",
            IntTy::U32 => "u32",
            IntTy::U64 => "u64",
            IntTy::Usize => "usize",
        };
        write!(f, "{s}")
    }
}

/// Types of the IR.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Ty {
    /// The unit type `()`.
    Unit,
    /// `bool`.
    Bool,
    /// Integer types.
    Int(IntTy),
    /// Raw pointer `*const T` / `*mut T`.
    RawPtr(Box<Ty>, Mutability),
    /// Reference `&T` / `&mut T`.
    Ref(Box<Ty>, Mutability),
    /// Fixed-size array `[T; N]`.
    Array(Box<Ty>, usize),
    /// Tuple `(T, U, ...)`; the empty tuple is [`Ty::Unit`].
    Tuple(Vec<Ty>),
    /// Function pointer `fn(A, B) -> R`.
    FnPtr(Vec<Ty>, Box<Ty>),
    /// A named union declared at program level.
    Union(String),
    /// An owning heap box `Box<T>`.
    Boxed(Box<Ty>),
}

impl Ty {
    /// Shorthand for `*const u8` (what `alloc` returns).
    #[must_use]
    pub fn raw_u8_mut() -> Ty {
        Ty::RawPtr(Box::new(Ty::Int(IntTy::U8)), Mutability::Mut)
    }

    /// Shorthand for a raw pointer to `t`.
    #[must_use]
    pub fn raw(t: Ty, m: Mutability) -> Ty {
        Ty::RawPtr(Box::new(t), m)
    }

    /// Shorthand for a reference to `t`.
    #[must_use]
    pub fn reference(t: Ty, m: Mutability) -> Ty {
        Ty::Ref(Box::new(t), m)
    }

    /// Size of the type in bytes. Unions need the program for field layout,
    /// so this returns `None` for them; use [`crate::check::union_layout`].
    #[must_use]
    pub fn size(&self) -> Option<usize> {
        match self {
            Ty::Unit => Some(0),
            Ty::Bool => Some(1),
            Ty::Int(t) => Some(t.size()),
            Ty::RawPtr(..) | Ty::Ref(..) | Ty::FnPtr(..) | Ty::Boxed(_) => Some(8),
            Ty::Array(t, n) => t.size().map(|s| s * n),
            Ty::Tuple(ts) => ts.iter().map(Ty::size).sum(),
            Ty::Union(_) => None,
        }
    }

    /// Alignment of the type in bytes (`None` for unions, like [`Ty::size`]).
    #[must_use]
    pub fn align(&self) -> Option<usize> {
        match self {
            Ty::Unit => Some(1),
            Ty::Bool => Some(1),
            Ty::Int(t) => Some(t.align()),
            Ty::RawPtr(..) | Ty::Ref(..) | Ty::FnPtr(..) | Ty::Boxed(_) => Some(8),
            Ty::Array(t, _) => t.align(),
            Ty::Tuple(ts) => ts
                .iter()
                .map(Ty::align)
                .try_fold(1usize, |a, b| b.map(|b| a.max(b))),
            Ty::Union(_) => None,
        }
    }

    /// Whether the type is any kind of pointer (raw, ref, fn or box).
    #[must_use]
    pub fn is_pointer_like(&self) -> bool {
        matches!(
            self,
            Ty::RawPtr(..) | Ty::Ref(..) | Ty::FnPtr(..) | Ty::Boxed(_)
        )
    }

    /// Whether this is an integer type.
    #[must_use]
    pub fn is_int(&self) -> bool {
        matches!(self, Ty::Int(_))
    }

    /// The pointee type, for raw pointers, references and boxes.
    #[must_use]
    pub fn pointee(&self) -> Option<&Ty> {
        match self {
            Ty::RawPtr(t, _) | Ty::Ref(t, _) | Ty::Boxed(t) => Some(t),
            _ => None,
        }
    }
}

/// Literal values.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Lit {
    /// The unit literal `()`.
    Unit,
    /// Boolean literal.
    Bool(bool),
    /// Integer literal with its type.
    Int(i128, IntTy),
}

impl Lit {
    /// Type of the literal.
    #[must_use]
    pub fn ty(&self) -> Ty {
        match self {
            Lit::Unit => Ty::Unit,
            Lit::Bool(_) => Ty::Bool,
            Lit::Int(_, t) => Ty::Int(*t),
        }
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Arithmetic negation `-x`.
    Neg,
    /// Logical / bitwise not `!x`.
    Not,
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // the variants are Rust's binary operators
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl BinOp {
    /// Whether the operator produces a boolean.
    #[must_use]
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// Built-in operations modelling the standard-library API surface that the
/// paper's repair categories touch. Unsafe builtins carry the obligations a
/// real `unsafe fn` would document in its `# Safety` section; violating them
/// is UB detected by the oracle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BuiltinKind {
    /// `alloc(size, align) -> *mut u8`: heap allocation, uninitialised.
    Alloc,
    /// `dealloc(ptr, size, align)`: frees; UB on layout mismatch/double free.
    Dealloc,
    /// `ptr_read::<T>(p) -> T`: unsafe typed read through a raw pointer.
    PtrRead,
    /// `ptr_write::<T>(p, v)`: unsafe typed write through a raw pointer.
    PtrWrite,
    /// `ptr_offset::<T>(p, n) -> ptr`: element offset (`n * size_of::<T>`).
    PtrOffset,
    /// `transmute::<A, B>(v) -> B`: bit reinterpretation; size mismatch and
    /// invalid values are UB.
    Transmute,
    /// `box_new::<T>(v) -> Box<T>`: heap-allocates and initialises.
    BoxNew,
    /// `box_into_raw::<T>(b) -> *mut T`: leaks the box, returning its pointer.
    BoxIntoRaw,
    /// `box_from_raw::<T>(p) -> Box<T>`: re-owns a raw pointer; UB if not
    /// from `box_into_raw` or already owned.
    BoxFromRaw,
    /// `drop_box::<T>(b)`: drops a box, freeing its allocation.
    DropBox,
    /// `get_unchecked::<T>(r, i) -> T`: unchecked array indexing; OOB is UB.
    GetUnchecked,
    /// `unchecked_add::<T>(a, b)`: UB on overflow.
    UncheckedAdd,
    /// `unchecked_sub::<T>(a, b)`: UB on overflow.
    UncheckedSub,
    /// `unchecked_mul::<T>(a, b)`: UB on overflow.
    UncheckedMul,
    /// `checked_add::<T>(a, b) -> T`: safe, panics on overflow (gold repair).
    CheckedAdd,
    /// `checked_sub::<T>(a, b) -> T`: safe, panics on overflow.
    CheckedSub,
    /// `checked_mul::<T>(a, b) -> T`: safe, panics on overflow.
    CheckedMul,
    /// `atomic_load(static) -> value`: synchronised read of a static.
    AtomicLoad,
    /// `atomic_store(static, v)`: synchronised write of a static.
    AtomicStore,
    /// `from_le_bytes::<T>(array) -> T`: safe byte conversion.
    FromLeBytes,
    /// `to_le_bytes::<T>(v) -> [u8; N]`: safe byte conversion.
    ToLeBytes,
    /// `ptr_addr(p) -> usize`: address without provenance (strict-provenance).
    PtrAddr,
    /// `copy_nonoverlapping::<T>(src, dst, n)`: UB on overlap or invalid ptrs.
    CopyNonoverlapping,
    /// `assume_init_read::<T>(p) -> T`: read promising initialisation; UB if
    /// the bytes are uninitialised.
    AssumeInitRead,
    /// `abort()` - terminates execution without UB (models `std::process::abort`).
    Abort,
}

impl BuiltinKind {
    /// Whether calling the builtin requires an `unsafe` context (E0133).
    #[must_use]
    pub fn is_unsafe(self) -> bool {
        match self {
            BuiltinKind::Alloc
            | BuiltinKind::Dealloc
            | BuiltinKind::PtrRead
            | BuiltinKind::PtrWrite
            | BuiltinKind::PtrOffset
            | BuiltinKind::Transmute
            | BuiltinKind::BoxFromRaw
            | BuiltinKind::GetUnchecked
            | BuiltinKind::UncheckedAdd
            | BuiltinKind::UncheckedSub
            | BuiltinKind::UncheckedMul
            | BuiltinKind::CopyNonoverlapping
            | BuiltinKind::AssumeInitRead => true,
            BuiltinKind::BoxNew
            | BuiltinKind::BoxIntoRaw
            | BuiltinKind::DropBox
            | BuiltinKind::CheckedAdd
            | BuiltinKind::CheckedSub
            | BuiltinKind::CheckedMul
            | BuiltinKind::AtomicLoad
            | BuiltinKind::AtomicStore
            | BuiltinKind::FromLeBytes
            | BuiltinKind::ToLeBytes
            | BuiltinKind::PtrAddr
            | BuiltinKind::Abort => false,
        }
    }

    /// Source-level name of the builtin.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BuiltinKind::Alloc => "alloc",
            BuiltinKind::Dealloc => "dealloc",
            BuiltinKind::PtrRead => "ptr_read",
            BuiltinKind::PtrWrite => "ptr_write",
            BuiltinKind::PtrOffset => "ptr_offset",
            BuiltinKind::Transmute => "transmute",
            BuiltinKind::BoxNew => "box_new",
            BuiltinKind::BoxIntoRaw => "box_into_raw",
            BuiltinKind::BoxFromRaw => "box_from_raw",
            BuiltinKind::DropBox => "drop_box",
            BuiltinKind::GetUnchecked => "get_unchecked",
            BuiltinKind::UncheckedAdd => "unchecked_add",
            BuiltinKind::UncheckedSub => "unchecked_sub",
            BuiltinKind::UncheckedMul => "unchecked_mul",
            BuiltinKind::CheckedAdd => "checked_add",
            BuiltinKind::CheckedSub => "checked_sub",
            BuiltinKind::CheckedMul => "checked_mul",
            BuiltinKind::AtomicLoad => "atomic_load",
            BuiltinKind::AtomicStore => "atomic_store",
            BuiltinKind::FromLeBytes => "from_le_bytes",
            BuiltinKind::ToLeBytes => "to_le_bytes",
            BuiltinKind::PtrAddr => "ptr_addr",
            BuiltinKind::CopyNonoverlapping => "copy_nonoverlapping",
            BuiltinKind::AssumeInitRead => "assume_init_read",
            BuiltinKind::Abort => "abort",
        }
    }

    /// Looks up a builtin by its source-level name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<BuiltinKind> {
        Self::ALL.iter().copied().find(|b| b.name() == name)
    }

    /// All builtins in a stable order.
    pub const ALL: [BuiltinKind; 25] = [
        BuiltinKind::Alloc,
        BuiltinKind::Dealloc,
        BuiltinKind::PtrRead,
        BuiltinKind::PtrWrite,
        BuiltinKind::PtrOffset,
        BuiltinKind::Transmute,
        BuiltinKind::BoxNew,
        BuiltinKind::BoxIntoRaw,
        BuiltinKind::BoxFromRaw,
        BuiltinKind::DropBox,
        BuiltinKind::GetUnchecked,
        BuiltinKind::UncheckedAdd,
        BuiltinKind::UncheckedSub,
        BuiltinKind::UncheckedMul,
        BuiltinKind::CheckedAdd,
        BuiltinKind::CheckedSub,
        BuiltinKind::CheckedMul,
        BuiltinKind::AtomicLoad,
        BuiltinKind::AtomicStore,
        BuiltinKind::FromLeBytes,
        BuiltinKind::ToLeBytes,
        BuiltinKind::PtrAddr,
        BuiltinKind::CopyNonoverlapping,
        BuiltinKind::AssumeInitRead,
        BuiltinKind::Abort,
    ];
}

/// Expressions.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// A literal.
    Lit(Lit),
    /// A variable reference.
    Var(String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation. Checked arithmetic: overflow and division by zero
    /// panic (matching release-mode Rust semantics under Miri's default).
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `expr as ty` cast: numeric truncation/extension, pointer-to-int and
    /// int-to-pointer (losing provenance), pointer-to-pointer.
    Cast(Box<Expr>, Ty),
    /// `&place` / `&mut place`: take a reference (retags under stacked
    /// borrows).
    AddrOf(Mutability, Box<Expr>),
    /// `&raw const place` / `&raw mut place`: take a raw pointer.
    RawAddrOf(Mutability, Box<Expr>),
    /// `*expr`: dereference. Unsafe when the operand is a raw pointer.
    Deref(Box<Expr>),
    /// `base[i]`: bounds-checked indexing (panics on OOB).
    Index(Box<Expr>, Box<Expr>),
    /// `base.N`: tuple field access.
    Field(Box<Expr>, usize),
    /// Tuple construction.
    Tuple(Vec<Expr>),
    /// Array literal `[a, b, c]`.
    ArrayLit(Vec<Expr>),
    /// Array repeat `[v; N]`.
    ArrayRepeat(Box<Expr>, usize),
    /// Call to a named user function.
    Call(String, Vec<Expr>),
    /// Call through a function-pointer value (unsafe when the pointer came
    /// from a transmute).
    CallPtr(Box<Expr>, Vec<Expr>),
    /// Built-in (std-API) call with explicit type arguments.
    Builtin(BuiltinKind, Vec<Ty>, Vec<Expr>),
    /// Union construction `U { field: expr }`.
    UnionLit(String, String, Box<Expr>),
    /// Union field read `u.field` (unsafe).
    UnionField(Box<Expr>, String),
    /// Reference to a static: `&STATIC` (or the static as a place).
    StaticRef(String),
}

impl Expr {
    /// Convenience integer literal.
    #[must_use]
    pub fn int(v: i128, ty: IntTy) -> Expr {
        Expr::Lit(Lit::Int(v, ty))
    }

    /// Convenience `i32` literal.
    #[must_use]
    pub fn i32(v: i32) -> Expr {
        Expr::int(i128::from(v), IntTy::I32)
    }

    /// Convenience `usize` literal.
    #[must_use]
    pub fn usize(v: usize) -> Expr {
        Expr::int(v as i128, IntTy::Usize)
    }

    /// Convenience variable reference.
    #[must_use]
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.to_owned())
    }

    /// Whether this expression is a syntactic place (can be assigned to /
    /// have its address taken).
    #[must_use]
    pub fn is_place(&self) -> bool {
        match self {
            Expr::Var(_) | Expr::StaticRef(_) => true,
            Expr::Deref(_) => true,
            Expr::Index(b, _) | Expr::Field(b, _) => b.is_place(),
            Expr::UnionField(b, _) => b.is_place(),
            _ => false,
        }
    }
}

/// A block of statements. `unsafe` blocks are represented by
/// [`Stmt::Unsafe`] wrapping a block.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Block {
    /// Statements in execution order.
    pub stmts: Vec<Stmt>,
}

impl Block {
    /// Creates a block from statements.
    #[must_use]
    pub fn new(stmts: Vec<Stmt>) -> Block {
        Block { stmts }
    }

    /// Number of statements, recursively.
    #[must_use]
    pub fn len_recursive(&self) -> usize {
        self.stmts.iter().map(Stmt::len_recursive).sum()
    }
}

/// Statements.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stmt {
    /// `let name: ty = init;` — introduces a stack slot.
    Let {
        /// Binding name.
        name: String,
        /// Declared type.
        ty: Ty,
        /// Initialiser.
        init: Expr,
    },
    /// `place = value;`
    Assign {
        /// Target place expression.
        place: Expr,
        /// Value to store.
        value: Expr,
    },
    /// Expression statement (value discarded).
    Expr(Expr),
    /// `unsafe { ... }` block.
    Unsafe(Block),
    /// Lexical scope `{ ... }`: locals die (stack slots invalidated) at the
    /// closing brace, which is how dangling pointers to locals arise.
    Scope(Block),
    /// `if cond { .. } else { .. }`.
    If {
        /// Condition (must evaluate to `bool`).
        cond: Expr,
        /// Then branch.
        then_blk: Block,
        /// Optional else branch.
        else_blk: Option<Block>,
    },
    /// `while cond { .. }`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// `assert(cond, "msg");` — panics when false.
    Assert {
        /// Condition that must hold.
        cond: Expr,
        /// Panic message.
        msg: String,
    },
    /// `return expr?;`
    Return(Option<Expr>),
    /// `spawn { ... }` — runs the block on another thread. The spawned block
    /// captures the current locals by value snapshot and shares statics and
    /// the heap.
    Spawn(Block),
    /// `join;` — waits for all spawned threads.
    JoinAll,
    /// `lock(N) { ... }` — runs the block while holding global lock `N`.
    Lock(u32, Block),
    /// `print(expr);` — observable output used for semantic-equivalence
    /// checking between the original, gold and repaired programs.
    Print(Expr),
    /// `tailcall f(args);` — a guaranteed tail call; signature mismatch with
    /// the current function is UB (models `become`-style ABI requirements).
    TailCall(String, Vec<Expr>),
    /// Explicit no-op (left behind by repairs that delete a statement).
    Nop,
}

impl Stmt {
    /// Number of statements in this statement, recursively (itself + nested).
    #[must_use]
    pub fn len_recursive(&self) -> usize {
        1 + match self {
            Stmt::Unsafe(b) | Stmt::Scope(b) | Stmt::Spawn(b) | Stmt::Lock(_, b) => {
                b.len_recursive()
            }
            Stmt::If {
                then_blk, else_blk, ..
            } => then_blk.len_recursive() + else_blk.as_ref().map_or(0, Block::len_recursive),
            Stmt::While { body, .. } => body.len_recursive(),
            _ => 0,
        }
    }

    /// Whether this statement syntactically contains an `unsafe` block or
    /// construct requiring `unsafe`.
    #[must_use]
    pub fn contains_unsafe(&self) -> bool {
        matches!(self, Stmt::Unsafe(_))
            || match self {
                Stmt::Scope(b) | Stmt::Spawn(b) | Stmt::Lock(_, b) => {
                    b.stmts.iter().any(Stmt::contains_unsafe)
                }
                Stmt::If {
                    then_blk, else_blk, ..
                } => {
                    then_blk.stmts.iter().any(Stmt::contains_unsafe)
                        || else_blk
                            .as_ref()
                            .is_some_and(|b| b.stmts.iter().any(Stmt::contains_unsafe))
                }
                Stmt::While { body, .. } => body.stmts.iter().any(Stmt::contains_unsafe),
                _ => false,
            }
    }
}

/// A function definition.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Function {
    /// Function name (unique within a program).
    pub name: String,
    /// Parameters (name, type).
    pub params: Vec<(String, Ty)>,
    /// Return type.
    pub ret: Ty,
    /// Whether the function is declared `unsafe fn`.
    pub is_unsafe: bool,
    /// Body.
    pub body: Block,
}

impl Function {
    /// Function-pointer type of this function.
    #[must_use]
    pub fn fn_ptr_ty(&self) -> Ty {
        Ty::FnPtr(
            self.params.iter().map(|(_, t)| t.clone()).collect(),
            Box::new(self.ret.clone()),
        )
    }
}

/// A `static` item. Mutable statics require `unsafe` to access.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StaticDef {
    /// Static name (conventionally SCREAMING_SNAKE_CASE).
    pub name: String,
    /// Type of the static.
    pub ty: Ty,
    /// Constant initialiser.
    pub init: Lit,
    /// Whether declared `static mut`.
    pub mutable: bool,
}

/// A `union` declaration.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct UnionDef {
    /// Union name.
    pub name: String,
    /// Fields (name, type) sharing storage.
    pub fields: Vec<(String, Ty)>,
}

/// A whole program: unions, statics and functions; execution starts at
/// `main`.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Program {
    /// Union declarations.
    pub unions: Vec<UnionDef>,
    /// Static items.
    pub statics: Vec<StaticDef>,
    /// Function definitions; must include `main`.
    pub funcs: Vec<Function>,
}

impl Program {
    /// Looks up a function by name.
    #[must_use]
    pub fn func(&self, name: &str) -> Option<&Function> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Looks up a union by name.
    #[must_use]
    pub fn union_def(&self, name: &str) -> Option<&UnionDef> {
        self.unions.iter().find(|u| u.name == name)
    }

    /// Looks up a static by name.
    #[must_use]
    pub fn static_def(&self, name: &str) -> Option<&StaticDef> {
        self.statics.iter().find(|s| s.name == name)
    }

    /// Total statement count across all functions (a simple size metric).
    #[must_use]
    pub fn stmt_count(&self) -> usize {
        self.funcs.iter().map(|f| f.body.len_recursive()).sum()
    }
}

/// A path addressing one statement inside a program, stable under edits to
/// unrelated statements. The first element is the function index; remaining
/// elements walk nested blocks: at each level the index selects a statement,
/// and descending into `If` uses `then_blk` when the next component's
/// `branch` bit is 0.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StmtPath {
    /// Index of the function in [`Program::funcs`].
    pub func: usize,
    /// Steps into nested blocks. Each step is `(stmt_index, branch)` where
    /// `branch` selects which child block of the statement to descend into
    /// (0 = then/body/block, 1 = else).
    pub steps: Vec<(usize, u8)>,
}

impl StmtPath {
    /// Path to a top-level statement of function `func`.
    #[must_use]
    pub fn top(func: usize, idx: usize) -> StmtPath {
        StmtPath {
            func,
            steps: vec![(idx, 0)],
        }
    }

    /// Returns a new path descending one nesting level.
    #[must_use]
    pub fn child(&self, idx: usize, branch: u8) -> StmtPath {
        let mut steps = self.steps.clone();
        steps.push((idx, branch));
        StmtPath {
            func: self.func,
            steps,
        }
    }

    /// The index of this statement within its innermost block.
    #[must_use]
    pub fn leaf_index(&self) -> usize {
        self.steps.last().map_or(0, |(i, _)| *i)
    }
}

impl fmt::Display for StmtPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn#{}", self.func)?;
        for (i, b) in &self.steps {
            write!(f, ".{i}")?;
            if *b != 0 {
                write!(f, "e")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_ty_sizes_and_ranges() {
        assert_eq!(IntTy::U8.size(), 1);
        assert_eq!(IntTy::Usize.size(), 8);
        assert_eq!(IntTy::I8.min(), -128);
        assert_eq!(IntTy::I8.max(), 127);
        assert_eq!(IntTy::U16.max(), 65535);
        assert!(IntTy::I32.in_range(-2_147_483_648));
        assert!(!IntTy::I32.in_range(2_147_483_648));
    }

    #[test]
    fn int_wrap_two_complement() {
        assert_eq!(IntTy::U8.wrap(256), 0);
        assert_eq!(IntTy::U8.wrap(257), 1);
        assert_eq!(IntTy::I8.wrap(128), -128);
        assert_eq!(IntTy::I8.wrap(-129), 127);
        assert_eq!(IntTy::U64.wrap(-1), u64::MAX as i128);
    }

    #[test]
    fn ty_sizes() {
        assert_eq!(Ty::Bool.size(), Some(1));
        assert_eq!(Ty::raw_u8_mut().size(), Some(8));
        assert_eq!(Ty::Array(Box::new(Ty::Int(IntTy::U16)), 3).size(), Some(6));
        assert_eq!(
            Ty::Tuple(vec![Ty::Int(IntTy::U8), Ty::Int(IntTy::U32)]).size(),
            Some(5)
        );
        assert_eq!(Ty::Union("U".into()).size(), None);
    }

    #[test]
    fn builtin_name_roundtrip() {
        for b in BuiltinKind::ALL {
            assert_eq!(BuiltinKind::from_name(b.name()), Some(b));
        }
        assert_eq!(BuiltinKind::from_name("nonsense"), None);
    }

    #[test]
    fn builtin_unsafety_matches_rust() {
        assert!(BuiltinKind::PtrRead.is_unsafe());
        assert!(BuiltinKind::Transmute.is_unsafe());
        assert!(!BuiltinKind::CheckedAdd.is_unsafe());
        assert!(!BuiltinKind::FromLeBytes.is_unsafe());
        assert!(!BuiltinKind::AtomicStore.is_unsafe());
    }

    #[test]
    fn place_expressions() {
        assert!(Expr::var("x").is_place());
        assert!(Expr::Deref(Box::new(Expr::var("p"))).is_place());
        assert!(Expr::Index(Box::new(Expr::var("a")), Box::new(Expr::i32(0))).is_place());
        assert!(!Expr::i32(3).is_place());
        assert!(!Expr::Tuple(vec![]).is_place());
    }

    #[test]
    fn stmt_recursive_len() {
        let s = Stmt::Unsafe(Block::new(vec![Stmt::Nop, Stmt::Nop]));
        assert_eq!(s.len_recursive(), 3);
        let s = Stmt::If {
            cond: Expr::Lit(Lit::Bool(true)),
            then_blk: Block::new(vec![Stmt::Nop]),
            else_blk: Some(Block::new(vec![Stmt::Nop, Stmt::Nop])),
        };
        assert_eq!(s.len_recursive(), 4);
    }

    #[test]
    fn stmt_path_display() {
        let p = StmtPath::top(0, 2).child(1, 0).child(0, 1);
        assert_eq!(p.to_string(), "fn#0.2.1.0e");
        assert_eq!(p.leaf_index(), 0);
    }
}
