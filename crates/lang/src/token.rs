//! Tokens produced by the [`crate::lexer`].

use std::fmt;

/// A lexical token with its source offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the token start in the source.
    pub offset: usize,
}

/// Kinds of token. Punctuation/operator variants mirror their glyphs.
#[derive(Clone, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum TokenKind {
    /// Identifier or keyword candidate.
    Ident(String),
    /// Integer literal (always non-negative at the lexical level) with an
    /// optional type suffix such as `5u8`.
    Int(i128, Option<String>),
    /// String literal (used by `assert` messages).
    Str(String),
    // Punctuation / operators below; names mirror their glyphs.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Colon,
    ColonColon,
    Arrow,
    Dot,
    Eq,
    EqEq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    AmpAmp,
    Pipe,
    PipePipe,
    Caret,
    Bang,
    Shl,
    Shr,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Int(v, _) => write!(f, "integer {v}"),
            TokenKind::Str(s) => write!(f, "string {s:?}"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::ColonColon => write!(f, "`::`"),
            TokenKind::Arrow => write!(f, "`->`"),
            TokenKind::Dot => write!(f, "`.`"),
            TokenKind::Eq => write!(f, "`=`"),
            TokenKind::EqEq => write!(f, "`==`"),
            TokenKind::Ne => write!(f, "`!=`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Percent => write!(f, "`%`"),
            TokenKind::Amp => write!(f, "`&`"),
            TokenKind::AmpAmp => write!(f, "`&&`"),
            TokenKind::Pipe => write!(f, "`|`"),
            TokenKind::PipePipe => write!(f, "`||`"),
            TokenKind::Caret => write!(f, "`^`"),
            TokenKind::Bang => write!(f, "`!`"),
            TokenKind::Shl => write!(f, "`<<`"),
            TokenKind::Shr => write!(f, "`>>`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}
