//! Structural metrics over programs: node counts, unsafe-operation counts
//! and nesting depth. Fast-thinking feature extraction builds on these.

use crate::ast::{Block, BuiltinKind, Expr, Program, Stmt};
use crate::visit::{for_each_expr_in_stmt, for_each_stmt, walk_expr};
use serde::{Deserialize, Serialize};

/// The five unsafe-operation categories of the Rust reference, as used by
/// the paper's fast-thinking classifier (§III-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum UnsafeOpKind {
    /// Dereferencing a raw pointer.
    RawDeref,
    /// Calling an unsafe function (incl. unsafe builtins).
    UnsafeCall,
    /// Implementing/invoking an unsafe-trait-style contract (modelled by
    /// contract-carrying builtins such as `assume_init_read`).
    UnsafeContract,
    /// Accessing or modifying a mutable static.
    StaticMutAccess,
    /// Accessing a union field.
    UnionFieldAccess,
}

impl UnsafeOpKind {
    /// All categories in stable order.
    pub const ALL: [UnsafeOpKind; 5] = [
        UnsafeOpKind::RawDeref,
        UnsafeOpKind::UnsafeCall,
        UnsafeOpKind::UnsafeContract,
        UnsafeOpKind::StaticMutAccess,
        UnsafeOpKind::UnionFieldAccess,
    ];
}

/// Aggregated structural metrics of a program.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ProgramMetrics {
    /// Total statements (recursive).
    pub stmts: usize,
    /// Total expressions.
    pub exprs: usize,
    /// Number of `unsafe` blocks.
    pub unsafe_blocks: usize,
    /// Statements lexically inside `unsafe` blocks.
    pub stmts_in_unsafe: usize,
    /// Maximum block-nesting depth.
    pub max_depth: usize,
    /// Counts per unsafe-operation category.
    pub unsafe_ops: [usize; 5],
    /// Number of functions.
    pub funcs: usize,
    /// Number of threads spawned syntactically.
    pub spawns: usize,
    /// Per-builtin usage counts, indexed by [`BuiltinKind::ALL`] position.
    pub builtin_uses: Vec<usize>,
}

impl ProgramMetrics {
    /// Total count of unsafe operations across all categories.
    #[must_use]
    pub fn total_unsafe_ops(&self) -> usize {
        self.unsafe_ops.iter().sum()
    }
}

/// Computes [`ProgramMetrics`] for a program.
///
/// ```
/// # use rb_lang::{parser::parse_program, metrics::collect_metrics};
/// let p = parse_program("fn main() { let x: i32 = 1; unsafe { print(x); } }").unwrap();
/// let m = collect_metrics(&p);
/// assert_eq!(m.unsafe_blocks, 1);
/// ```
#[must_use]
pub fn collect_metrics(prog: &Program) -> ProgramMetrics {
    let mut m = ProgramMetrics {
        funcs: prog.funcs.len(),
        builtin_uses: vec![0; BuiltinKind::ALL.len()],
        ..ProgramMetrics::default()
    };
    for f in &prog.funcs {
        visit_block(&f.body, 1, false, prog, &mut m);
    }
    m
}

fn visit_block(b: &Block, depth: usize, in_unsafe: bool, prog: &Program, m: &mut ProgramMetrics) {
    m.max_depth = m.max_depth.max(depth);
    for s in &b.stmts {
        m.stmts += 1;
        if in_unsafe {
            m.stmts_in_unsafe += 1;
        }
        if matches!(s, Stmt::Spawn(_)) {
            m.spawns += 1;
        }
        for_each_expr_in_stmt(s, |e| {
            count_expr(e, prog, m);
        });
        match s {
            Stmt::Unsafe(inner) => {
                m.unsafe_blocks += 1;
                visit_block(inner, depth + 1, true, prog, m);
            }
            Stmt::Scope(inner) | Stmt::Spawn(inner) | Stmt::Lock(_, inner) => {
                visit_block(inner, depth + 1, in_unsafe, prog, m);
            }
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                visit_block(then_blk, depth + 1, in_unsafe, prog, m);
                if let Some(e) = else_blk {
                    visit_block(e, depth + 1, in_unsafe, prog, m);
                }
            }
            Stmt::While { body, .. } => visit_block(body, depth + 1, in_unsafe, prog, m),
            _ => {}
        }
    }
}

fn count_expr(e: &Expr, prog: &Program, m: &mut ProgramMetrics) {
    m.exprs += 1;
    match e {
        Expr::Deref(inner)
            // A heuristic: deref of anything cast from/declared as raw.
            if (matches!(**inner, Expr::Cast(..) | Expr::RawAddrOf(..))
                || matches!(**inner, Expr::Var(_)))
            => {
                m.unsafe_ops[UnsafeOpKind::RawDeref as usize] += 1;
            }
        Expr::Builtin(b, ..) => {
            if let Some(pos) = BuiltinKind::ALL.iter().position(|x| x == b) {
                m.builtin_uses[pos] += 1;
            }
            if b.is_unsafe() {
                let k = if matches!(b, BuiltinKind::AssumeInitRead) {
                    UnsafeOpKind::UnsafeContract
                } else {
                    UnsafeOpKind::UnsafeCall
                };
                m.unsafe_ops[k as usize] += 1;
            }
        }
        Expr::Call(name, _)
            if prog.func(name).is_some_and(|f| f.is_unsafe) => {
                m.unsafe_ops[UnsafeOpKind::UnsafeCall as usize] += 1;
            }
        Expr::StaticRef(n)
            if prog.static_def(n).is_some_and(|s| s.mutable) => {
                m.unsafe_ops[UnsafeOpKind::StaticMutAccess as usize] += 1;
            }
        Expr::UnionField(..) => {
            m.unsafe_ops[UnsafeOpKind::UnionFieldAccess as usize] += 1;
        }
        _ => {}
    }
}

/// Counts occurrences of each statement discriminant, used as part of the
/// knowledge-base feature vector.
#[must_use]
pub fn stmt_kind_histogram(prog: &Program) -> [usize; 16] {
    let mut h = [0usize; 16];
    for_each_stmt(prog, |s, _| {
        let idx = match s {
            Stmt::Let { .. } => 0,
            Stmt::Assign { .. } => 1,
            Stmt::Expr(_) => 2,
            Stmt::Unsafe(_) => 3,
            Stmt::Scope(_) => 4,
            Stmt::If { .. } => 5,
            Stmt::While { .. } => 6,
            Stmt::Assert { .. } => 7,
            Stmt::Return(_) => 8,
            Stmt::Spawn(_) => 9,
            Stmt::JoinAll => 10,
            Stmt::Lock(..) => 11,
            Stmt::Print(_) => 12,
            Stmt::TailCall(..) => 13,
            Stmt::Nop => 14,
        };
        h[idx] += 1;
    });
    h
}

/// Counts occurrences of each expression discriminant.
#[must_use]
pub fn expr_kind_histogram(prog: &Program) -> [usize; 20] {
    let mut h = [0usize; 20];
    for_each_stmt(prog, |s, _| {
        for_each_expr_in_stmt(s, |top| {
            walk_expr(top, &mut |e| {
                let idx = match e {
                    Expr::Lit(_) => 0,
                    Expr::Var(_) => 1,
                    Expr::Unary(..) => 2,
                    Expr::Binary(..) => 3,
                    Expr::Cast(..) => 4,
                    Expr::AddrOf(..) => 5,
                    Expr::RawAddrOf(..) => 6,
                    Expr::Deref(_) => 7,
                    Expr::Index(..) => 8,
                    Expr::Field(..) => 9,
                    Expr::Tuple(_) => 10,
                    Expr::ArrayLit(_) => 11,
                    Expr::ArrayRepeat(..) => 12,
                    Expr::Call(..) => 13,
                    Expr::CallPtr(..) => 14,
                    Expr::Builtin(..) => 15,
                    Expr::UnionLit(..) => 16,
                    Expr::UnionField(..) => 17,
                    Expr::StaticRef(_) => 18,
                };
                h[idx] += 1;
            });
        });
    });
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn counts_unsafe_blocks_and_ops() {
        let p = parse_program(
            "static mut G: i32 = 0; fn main() { unsafe { G = G + 1; \
             let p: *mut u8 = alloc(4usize, 4usize); dealloc(p, 4usize, 4usize); } }",
        )
        .unwrap();
        let m = collect_metrics(&p);
        assert_eq!(m.unsafe_blocks, 1);
        assert_eq!(m.unsafe_ops[UnsafeOpKind::StaticMutAccess as usize], 2);
        assert_eq!(m.unsafe_ops[UnsafeOpKind::UnsafeCall as usize], 2);
    }

    #[test]
    fn depth_tracks_nesting() {
        let p = parse_program("fn main() { { { let x: i32 = 1; } } }").unwrap();
        assert_eq!(collect_metrics(&p).max_depth, 3);
    }

    #[test]
    fn histograms_nonzero() {
        let p = parse_program("fn main() { let x: i32 = 1 + 2; print(x); }").unwrap();
        let sh = stmt_kind_histogram(&p);
        assert_eq!(sh[0], 1); // let
        assert_eq!(sh[12], 1); // print
        let eh = expr_kind_histogram(&p);
        assert!(eh[0] >= 2); // literals
        assert!(eh[3] >= 1); // binary
    }

    #[test]
    fn spawn_counted() {
        let p = parse_program("fn main() { spawn { } spawn { } join; }").unwrap();
        assert_eq!(collect_metrics(&p).spawns, 2);
    }
}
