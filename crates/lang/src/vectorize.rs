//! AST vectorisation for the knowledge base (Fig. 6 of the paper): a pruned
//! AST is embedded into a fixed-dimension feature vector; the abstract
//! reasoning agent retrieves repairs for structurally similar errors by
//! cosine similarity.

use crate::ast::Program;
use crate::metrics::{collect_metrics, expr_kind_histogram, stmt_kind_histogram};
use serde::{Deserialize, Serialize};

/// Dimension of the embedding vector.
pub const VECTOR_DIM: usize = 64;

/// A fixed-dimension embedding of a (pruned) program AST.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AstVector {
    /// Raw (unnormalised) feature components.
    pub components: Vec<f64>,
}

impl AstVector {
    /// Embeds a program.
    ///
    /// The layout is: statement-kind histogram (16), expression-kind
    /// histogram (20), unsafe-op counts (5), builtin-use counts folded into
    /// 16 buckets, then scalar shape features (depth, funcs, spawns,
    /// stmts-in-unsafe ratio, ...). All counts are dampened with `ln(1+x)`
    /// so large programs do not dominate similarity.
    #[must_use]
    pub fn embed(prog: &Program) -> AstVector {
        let m = collect_metrics(prog);
        let sh = stmt_kind_histogram(prog);
        let eh = expr_kind_histogram(prog);
        let mut c = Vec::with_capacity(VECTOR_DIM);
        for v in sh {
            c.push(damp(v));
        }
        for v in eh {
            c.push(damp(v));
        }
        for v in m.unsafe_ops {
            c.push(2.0 * damp(v)); // unsafe ops weighted up: they carry signal
        }
        // Fold the builtin histogram into 16 buckets.
        let mut folded = [0usize; 16];
        for (i, v) in m.builtin_uses.iter().enumerate() {
            folded[i % 16] += v;
        }
        for v in folded.iter().take(VECTOR_DIM.saturating_sub(c.len() + 7)) {
            c.push(damp(*v));
        }
        c.push(m.max_depth as f64 / 8.0);
        c.push(damp(m.funcs));
        c.push(damp(m.spawns));
        c.push(if m.stmts == 0 {
            0.0
        } else {
            m.stmts_in_unsafe as f64 / m.stmts as f64
        });
        c.push(damp(m.stmts));
        c.push(damp(m.exprs));
        c.push(damp(m.unsafe_blocks));
        c.resize(VECTOR_DIM, 0.0);
        AstVector { components: c }
    }

    /// Euclidean norm.
    #[must_use]
    pub fn norm(&self) -> f64 {
        self.components.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Cosine similarity in `[-1, 1]`; zero vectors compare as 0.
    #[must_use]
    pub fn cosine(&self, other: &AstVector) -> f64 {
        let dot: f64 = self
            .components
            .iter()
            .zip(&other.components)
            .map(|(a, b)| a * b)
            .sum();
        let d = self.norm() * other.norm();
        if d == 0.0 {
            0.0
        } else {
            dot / d
        }
    }

    /// Euclidean distance, used in tests as a sanity cross-check.
    #[must_use]
    pub fn euclidean(&self, other: &AstVector) -> f64 {
        self.components
            .iter()
            .zip(&other.components)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

fn damp(v: usize) -> f64 {
    (1.0 + v as f64).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn embed(src: &str) -> AstVector {
        AstVector::embed(&parse_program(src).unwrap())
    }

    #[test]
    fn self_similarity_is_one() {
        let v = embed("fn main() { let x: i32 = 1; unsafe { print(x); } }");
        assert!((v.cosine(&v) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn similar_programs_score_higher() {
        let a = embed(
            "fn main() { let x: i32 = 5; let p: *const i32 = &raw const x; unsafe { print(*p); } }",
        );
        let b = embed(
            "fn main() { let y: i32 = 9; let q: *const i32 = &raw const y; unsafe { print(*q); } }",
        );
        let c = embed(
            "static mut G: i32 = 0; fn main() { spawn { unsafe { G = 1; } } spawn { unsafe { G = 2; } } join; }",
        );
        assert!(a.cosine(&b) > a.cosine(&c));
        assert!(a.cosine(&b) > 0.95);
    }

    #[test]
    fn dimension_fixed() {
        let v = embed("fn main() { }");
        assert_eq!(v.components.len(), VECTOR_DIM);
    }

    #[test]
    fn empty_program_zero_safe() {
        let v = AstVector {
            components: vec![0.0; VECTOR_DIM],
        };
        let w = embed("fn main() { let x: i32 = 1; }");
        assert_eq!(v.cosine(&w), 0.0);
    }

    #[test]
    fn euclidean_zero_iff_equal() {
        let a = embed("fn main() { let x: i32 = 1; }");
        let b = embed("fn main() { let x: i32 = 1; }");
        assert!(a.euclidean(&b) < 1e-12);
    }
}
