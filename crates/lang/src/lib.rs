//! # rb-lang — mini unsafe-Rust intermediate representation
//!
//! This crate defines the language substrate of the RustBrain reproduction:
//! a compact Rust-like IR covering exactly the unsafe surface that matters
//! for undefined-behaviour repair — raw pointers, references with stacked
//! borrows, transmutes, unions, mutable statics, heap allocation, threads,
//! and the `unsafe` marker — together with:
//!
//! - a lexer/parser for a Rust-like surface syntax ([`parser`]),
//! - a pretty-printer that round-trips ([`printer`]),
//! - a static checker with E0133-style unsafety enforcement ([`check`]),
//! - path-addressed AST editing primitives ([`visit`]),
//! - structural metrics ([`metrics`]),
//! - the paper's Algorithm 1 AST pruning ([`prune`]),
//! - AST feature-vector embedding for the knowledge base ([`vectorize`]),
//! - ergonomic program builders ([`builder`]).
//!
//! ## Example
//!
//! ```
//! use rb_lang::parser::parse_program;
//! use rb_lang::printer::print_program;
//! use rb_lang::check::check_program;
//!
//! let src = "fn main() { let x: i32 = 5; print(x); }";
//! let prog = parse_program(src)?;
//! assert!(check_program(&prog).is_empty());
//! assert_eq!(parse_program(&print_program(&prog))?, prog);
//! # Ok::<(), rb_lang::error::LangError>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod builder;
pub mod check;
pub mod error;
pub mod lexer;
pub mod metrics;
pub mod parser;
pub mod printer;
pub mod prune;
pub mod token;
pub mod vectorize;
pub mod visit;

pub use ast::{
    Block, BuiltinKind, Expr, Function, IntTy, Lit, Mutability, Program, Stmt, StmtPath, Ty,
};
pub use error::{LangError, LangResult};
