//! The corpus unit: a buggy program paired with its developer gold repair.

use rb_lang::parser::parse_program;
use rb_lang::printer::print_program;
use rb_lang::Program;
use rb_miri::{run_program, MiriReport, UbClass};
use serde::{Deserialize, Serialize};

/// One benchmark case: a program exhibiting UB of a known class, plus the
/// developer-repaired gold version used as the semantic-acceptability
/// reference (paper §II-A: "test benchmarks composed of developer-repaired
/// code").
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct UbCase {
    /// Stable identifier, e.g. `alloc/double_free/3`.
    pub id: String,
    /// UB class the case belongs to.
    pub class: UbClass,
    /// Template family name.
    pub template: String,
    /// The buggy program.
    pub buggy: Program,
    /// The developer gold repair.
    pub gold: Program,
    /// Short description of the defect.
    pub description: String,
}

impl UbCase {
    /// Builds a case from source text (panics on parse failure: templates
    /// are trusted, and generator tests keep them honest).
    #[must_use]
    pub fn from_sources(
        id: String,
        class: UbClass,
        template: &str,
        buggy_src: &str,
        gold_src: &str,
        description: &str,
    ) -> UbCase {
        let buggy = parse_program(buggy_src)
            .unwrap_or_else(|e| panic!("template {template}: buggy parse error {e}\n{buggy_src}"));
        let gold = parse_program(gold_src)
            .unwrap_or_else(|e| panic!("template {template}: gold parse error {e}\n{gold_src}"));
        UbCase {
            id,
            class,
            template: template.to_owned(),
            buggy,
            gold,
            description: description.to_owned(),
        }
    }

    /// Oracle report for the buggy program.
    #[must_use]
    pub fn run_buggy(&self) -> MiriReport {
        run_program(&self.buggy)
    }

    /// Oracle report for the gold program.
    #[must_use]
    pub fn run_gold(&self) -> MiriReport {
        run_program(&self.gold)
    }

    /// Reference outputs a semantically acceptable repair must reproduce.
    #[must_use]
    pub fn gold_outputs(&self) -> Vec<String> {
        self.run_gold().outputs
    }

    /// Source text of the buggy program (what the model "sees").
    #[must_use]
    pub fn buggy_source(&self) -> String {
        print_program(&self.buggy)
    }

    /// Validates the case invariants: the buggy program fails the oracle
    /// with the advertised class, and the gold program passes.
    pub fn validate(&self) -> Result<(), String> {
        let b = self.run_buggy();
        if b.passes() {
            return Err(format!("{}: buggy program passes the oracle", self.id));
        }
        if !b.errors.iter().any(|e| e.class() == self.class) {
            return Err(format!(
                "{}: expected class {}, oracle reported {:?}",
                self.id,
                self.class,
                b.classes()
            ));
        }
        let g = self.run_gold();
        if !g.passes() {
            return Err(format!(
                "{}: gold program fails the oracle: {:?}",
                self.id, g.errors
            ));
        }
        Ok(())
    }
}

/// Whether a repaired program's observable behaviour matches the gold
/// repair: it must pass the oracle *and* print the same outputs.
#[must_use]
pub fn semantically_acceptable(case: &UbCase, repaired: &Program) -> bool {
    let r = run_program(repaired);
    r.passes() && r.outputs == case.gold_outputs()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> UbCase {
        UbCase::from_sources(
            "test/double_free/0".into(),
            UbClass::Alloc,
            "double_free",
            "fn main() { unsafe { let p: *mut u8 = alloc(4usize, 4usize); \
             ptr_write::<i32>(p as *mut i32, 3i32); print(ptr_read::<i32>(p as *const i32)); \
             dealloc(p, 4usize, 4usize); dealloc(p, 4usize, 4usize); } }",
            "fn main() { unsafe { let p: *mut u8 = alloc(4usize, 4usize); \
             ptr_write::<i32>(p as *mut i32, 3i32); print(ptr_read::<i32>(p as *const i32)); \
             dealloc(p, 4usize, 4usize); } }",
            "double free of a heap allocation",
        )
    }

    #[test]
    fn case_validates() {
        sample().validate().unwrap();
    }

    #[test]
    fn gold_outputs_extracted() {
        assert_eq!(sample().gold_outputs(), vec!["3"]);
    }

    #[test]
    fn semantic_acceptance_requires_outputs() {
        let case = sample();
        // The gold itself is acceptable.
        assert!(semantically_acceptable(&case, &case.gold));
        // A repair that passes Miri but prints nothing is NOT acceptable.
        let silent = parse_program("fn main() { }").unwrap();
        assert!(!semantically_acceptable(&case, &silent));
        // The buggy program is not acceptable (fails the oracle).
        assert!(!semantically_acceptable(&case, &case.buggy));
    }

    #[test]
    fn validate_catches_wrong_class() {
        let mut case = sample();
        case.class = UbClass::DataRace;
        assert!(case.validate().is_err());
    }

    #[test]
    fn validate_catches_passing_buggy() {
        let mut case = sample();
        case.buggy = case.gold.clone();
        assert!(case.validate().is_err());
    }
}
