//! Corpus construction: seeded generation of validated [`UbCase`]s across
//! classes, with summary statistics.

use crate::case::UbCase;
use crate::templates::{all_templates, templates_for, CaseSources};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rb_miri::UbClass;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A generated benchmark corpus.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Corpus {
    /// All cases, grouped implicitly by [`UbCase::class`].
    pub cases: Vec<UbCase>,
    /// Seed the corpus was generated from.
    pub seed: u64,
}

impl Corpus {
    /// Generates `per_class` cases for each of the given classes, cycling
    /// through the class's template families.
    ///
    /// Every produced case is validated: the buggy program must fail the
    /// oracle with the advertised class and the gold program must pass.
    /// Instantiations that fail validation are skipped (a guard against
    /// unlucky parameter draws); templates are deterministic enough that in
    /// practice none are skipped, which the crate's tests assert.
    #[must_use]
    pub fn generate(seed: u64, per_class: usize, classes: &[UbClass]) -> Corpus {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut cases = Vec::new();
        for &class in classes {
            let templates = templates_for(class);
            assert!(!templates.is_empty(), "no templates for class {class}");
            let mut produced = 0usize;
            let mut attempt = 0usize;
            while produced < per_class && attempt < per_class * 4 {
                let t = templates[attempt % templates.len()];
                attempt += 1;
                let CaseSources {
                    buggy,
                    gold,
                    description,
                } = (t.make)(&mut rng);
                let case = UbCase::from_sources(
                    format!("{}/{}/{}", class.label(), t.name, produced),
                    class,
                    t.name,
                    &buggy,
                    &gold,
                    &description,
                );
                if case.validate().is_ok() {
                    cases.push(case);
                    produced += 1;
                }
            }
        }
        Corpus { cases, seed }
    }

    /// Generates the full corpus over every real UB class.
    #[must_use]
    pub fn generate_full(seed: u64, per_class: usize) -> Corpus {
        Corpus::generate(seed, per_class, &UbClass::ALL)
    }

    /// Cases of a given class.
    #[must_use]
    pub fn of_class(&self, class: UbClass) -> Vec<&UbCase> {
        self.cases.iter().filter(|c| c.class == class).collect()
    }

    /// Number of cases.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cases.len()
    }

    /// Whether the corpus is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cases.is_empty()
    }

    /// Per-class case counts.
    #[must_use]
    pub fn stats(&self) -> BTreeMap<UbClass, usize> {
        let mut m = BTreeMap::new();
        for c in &self.cases {
            *m.entry(c.class).or_insert(0) += 1;
        }
        m
    }

    /// Mean statement count of buggy programs (a size statistic).
    #[must_use]
    pub fn mean_stmts(&self) -> f64 {
        if self.cases.is_empty() {
            return 0.0;
        }
        let total: usize = self.cases.iter().map(|c| c.buggy.stmt_count()).sum();
        total as f64 / self.cases.len() as f64
    }
}

/// Validates every template family once (used by tests and the quickstart
/// example to prove corpus health).
#[must_use]
pub fn validate_all_templates(seed: u64) -> Vec<String> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut failures = Vec::new();
    for t in all_templates() {
        let CaseSources {
            buggy,
            gold,
            description,
        } = (t.make)(&mut rng);
        let case = UbCase::from_sources(
            format!("{}/{}/probe", t.class.label(), t.name),
            t.class,
            t.name,
            &buggy,
            &gold,
            &description,
        );
        if let Err(e) = case.validate() {
            failures.push(e);
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_templates_validate_across_seeds() {
        for seed in [0u64, 1, 7, 42, 1234] {
            let failures = validate_all_templates(seed);
            assert!(failures.is_empty(), "seed {seed}: {failures:#?}");
        }
    }

    #[test]
    fn corpus_has_requested_shape() {
        let c = Corpus::generate(7, 3, &[UbClass::Alloc, UbClass::Panic]);
        assert_eq!(c.len(), 6);
        assert_eq!(c.of_class(UbClass::Alloc).len(), 3);
        assert_eq!(c.of_class(UbClass::Panic).len(), 3);
    }

    #[test]
    fn full_corpus_covers_all_classes() {
        let c = Corpus::generate_full(11, 2);
        let stats = c.stats();
        for class in UbClass::ALL {
            assert_eq!(stats.get(&class), Some(&2), "missing {class}");
        }
        assert!(c.mean_stmts() > 2.0);
    }

    #[test]
    fn generation_is_reproducible() {
        let a = Corpus::generate_full(5, 1);
        let b = Corpus::generate_full(5, 1);
        assert_eq!(a.cases.len(), b.cases.len());
        for (x, y) in a.cases.iter().zip(&b.cases) {
            assert_eq!(x.buggy, y.buggy);
            assert_eq!(x.gold, y.gold);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Corpus::generate(1, 2, &[UbClass::Alloc]);
        let b = Corpus::generate(2, 2, &[UbClass::Alloc]);
        assert_ne!(
            a.cases.iter().map(|c| c.buggy.clone()).collect::<Vec<_>>(),
            b.cases.iter().map(|c| c.buggy.clone()).collect::<Vec<_>>()
        );
    }
}
