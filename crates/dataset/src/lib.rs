//! # rb-dataset — UB benchmark corpus
//!
//! A seeded generator of undefined-behaviour benchmark cases modelled on
//! the Miri test suite the paper evaluates on. Each case pairs a buggy
//! program with a developer *gold repair*; the gold program's observable
//! output is the reference for semantic-acceptability judgement (the
//! paper's "execution rate" metric).
//!
//! ```
//! use rb_dataset::Corpus;
//! use rb_miri::UbClass;
//!
//! let corpus = Corpus::generate(42, 2, &[UbClass::DanglingPointer]);
//! assert_eq!(corpus.len(), 2);
//! for case in &corpus.cases {
//!     case.validate().expect("buggy fails, gold passes");
//! }
//! ```

#![warn(missing_docs)]

pub mod case;
pub mod corpus;
pub mod templates;

pub use case::{semantically_acceptable, UbCase};
pub use corpus::{validate_all_templates, Corpus};
pub use templates::{all_templates, templates_for, CaseSources, Template};
