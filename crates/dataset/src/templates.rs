//! Template families: parametric generators producing (buggy, gold) source
//! pairs for every UB class of the paper's evaluation. Each template mirrors
//! a defect pattern from the Miri test suite; the gold program is the repair
//! a developer would write (safe substitution, guarding, or semantic
//! modification — the paper's Principle 2 triad).

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use rb_miri::UbClass;

/// Sources produced by one template instantiation.
#[derive(Clone, Debug)]
pub struct CaseSources {
    /// Buggy program source.
    pub buggy: String,
    /// Gold repaired source.
    pub gold: String,
    /// Defect description.
    pub description: String,
}

/// A template family.
#[derive(Clone, Copy)]
pub struct Template {
    /// Family name, used in case ids.
    pub name: &'static str,
    /// UB class all instances exhibit.
    pub class: UbClass,
    /// Instantiator.
    pub make: fn(&mut ChaCha8Rng) -> CaseSources,
}

impl std::fmt::Debug for Template {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Template")
            .field("name", &self.name)
            .field("class", &self.class)
            .finish()
    }
}

const NAMES: [&str; 8] = [
    "val", "data", "item", "num", "count", "total", "entry", "elem",
];
const PTRS: [&str; 6] = ["p", "ptr", "q", "cursor", "handle", "slot"];

fn name(rng: &mut ChaCha8Rng) -> &'static str {
    NAMES[rng.gen_range(0..NAMES.len())]
}

fn ptr(rng: &mut ChaCha8Rng) -> &'static str {
    PTRS[rng.gen_range(0..PTRS.len())]
}

fn ptr2(rng: &mut ChaCha8Rng, not: &str) -> &'static str {
    loop {
        let p = PTRS[rng.gen_range(0..PTRS.len())];
        if p != not {
            return p;
        }
    }
}

fn small(rng: &mut ChaCha8Rng) -> i64 {
    rng.gen_range(1..100)
}

// ============================= alloc =========================================

fn alloc_double_free(rng: &mut ChaCha8Rng) -> CaseSources {
    let p = ptr(rng);
    let v = small(rng);
    let s = [4usize, 8][rng.gen_range(0..2)];
    let common = format!(
        "fn main() {{ \
         let {p}: *mut u8 = 0 as *mut u8; \
         unsafe {{ {p} = alloc({s}usize, 4usize); ptr_write::<i32>({p} as *mut i32, {v}i32); }} \
         unsafe {{ print(ptr_read::<i32>({p} as *const i32)); }} \
         unsafe {{ dealloc({p}, {s}usize, 4usize); }}"
    );
    CaseSources {
        buggy: format!("{common} unsafe {{ dealloc({p}, {s}usize, 4usize); }} }}"),
        gold: format!("{common} }}"),
        description: "heap allocation freed twice".into(),
    }
}

fn alloc_layout_mismatch(rng: &mut ChaCha8Rng) -> CaseSources {
    let p = ptr(rng);
    let v = small(rng);
    let prelude = format!(
        "fn main() {{ \
         let {p}: *mut u8 = 0 as *mut u8; \
         unsafe {{ {p} = alloc(8usize, 4usize); ptr_write::<i32>({p} as *mut i32, {v}i32); }} \
         unsafe {{ print(ptr_read::<i32>({p} as *const i32)); }}"
    );
    CaseSources {
        buggy: format!("{prelude} unsafe {{ dealloc({p}, 4usize, 4usize); }} }}"),
        gold: format!("{prelude} unsafe {{ dealloc({p}, 8usize, 4usize); }} }}"),
        description: "dealloc called with a layout differing from the allocation's".into(),
    }
}

fn alloc_leak(rng: &mut ChaCha8Rng) -> CaseSources {
    let p = ptr(rng);
    let v = small(rng);
    let prelude = format!(
        "fn main() {{ \
         let {p}: *mut u8 = 0 as *mut u8; \
         unsafe {{ {p} = alloc(4usize, 4usize); ptr_write::<i32>({p} as *mut i32, {v}i32); }} \
         unsafe {{ print(ptr_read::<i32>({p} as *const i32)); }}"
    );
    CaseSources {
        buggy: format!("{prelude} }}"),
        gold: format!("{prelude} unsafe {{ dealloc({p}, 4usize, 4usize); }} }}"),
        description: "heap allocation never freed (memory leak)".into(),
    }
}

// ========================= dangling pointer ==================================

fn dangling_scope_escape(rng: &mut ChaCha8Rng) -> CaseSources {
    let x = name(rng);
    let q = ptr(rng);
    let v = small(rng);
    CaseSources {
        buggy: format!(
            "fn main() {{ \
             let {q}: *const i32 = 0 as *const i32; \
             {{ let {x}: i32 = {v}; {q} = &raw const {x}; }} \
             unsafe {{ print(*{q}); }} }}"
        ),
        gold: format!(
            "fn main() {{ \
             let {x}: i32 = {v}; \
             let {q}: *const i32 = &raw const {x}; \
             unsafe {{ print(*{q}); }} }}"
        ),
        description: "pointer to a local escapes its scope and is dereferenced".into(),
    }
}

fn dangling_use_after_free(rng: &mut ChaCha8Rng) -> CaseSources {
    let p = ptr(rng);
    let v = small(rng);
    let prelude = format!(
        "fn main() {{ \
         let {p}: *mut u8 = 0 as *mut u8; \
         unsafe {{ {p} = alloc(4usize, 4usize); ptr_write::<i32>({p} as *mut i32, {v}i32); }}"
    );
    CaseSources {
        buggy: format!(
            "{prelude} \
             unsafe {{ dealloc({p}, 4usize, 4usize); }} \
             unsafe {{ print(ptr_read::<i32>({p} as *const i32)); }} }}"
        ),
        gold: format!(
            "{prelude} \
             unsafe {{ print(ptr_read::<i32>({p} as *const i32)); }} \
             unsafe {{ dealloc({p}, 4usize, 4usize); }} }}"
        ),
        description: "read through a pointer after its allocation was freed".into(),
    }
}

fn dangling_oob_offset(rng: &mut ChaCha8Rng) -> CaseSources {
    let p = ptr(rng);
    let q = ptr2(rng, p);
    let v = rng.gen_range(1..120);
    let bad = rng.gen_range(9..20);
    let prelude = format!(
        "fn main() {{ \
         let {p}: *mut u8 = 0 as *mut u8; \
         unsafe {{ {p} = alloc(8usize, 4usize); ptr_write::<i32>({p} as *mut i32, {v}i32); }}"
    );
    let epilogue = format!("unsafe {{ dealloc({p}, 8usize, 4usize); }} }}");
    CaseSources {
        buggy: format!(
            "{prelude} \
             unsafe {{ let {q}: *mut u8 = ptr_offset::<u8>({p}, {bad}i32); \
             print(ptr_read::<u8>({q})); }} {epilogue}"
        ),
        gold: format!(
            "{prelude} \
             unsafe {{ let {q}: *mut u8 = ptr_offset::<u8>({p}, 0i32); \
             print(ptr_read::<u8>({q})); }} {epilogue}"
        ),
        description: "pointer arithmetic past the end of the allocation".into(),
    }
}

// ============================== uninit =======================================

fn uninit_read_before_write(rng: &mut ChaCha8Rng) -> CaseSources {
    let p = ptr(rng);
    let v = small(rng);
    CaseSources {
        buggy: format!(
            "fn main() {{ \
             let {p}: *mut u8 = 0 as *mut u8; \
             unsafe {{ {p} = alloc(4usize, 4usize); }} \
             unsafe {{ print(ptr_read::<i32>({p} as *const i32)); }} \
             unsafe {{ ptr_write::<i32>({p} as *mut i32, {v}i32); dealloc({p}, 4usize, 4usize); }} }}"
        ),
        gold: format!(
            "fn main() {{ \
             let {p}: *mut u8 = 0 as *mut u8; \
             unsafe {{ {p} = alloc(4usize, 4usize); }} \
             unsafe {{ ptr_write::<i32>({p} as *mut i32, {v}i32); }} \
             unsafe {{ print(ptr_read::<i32>({p} as *const i32)); }} \
             unsafe {{ dealloc({p}, 4usize, 4usize); }} }}"
        ),
        description: "freshly allocated memory read before initialisation".into(),
    }
}

fn uninit_union_tail(rng: &mut ChaCha8Rng) -> CaseSources {
    let v = rng.gen_range(1..200);
    let u = ["Mix", "Pack", "Raw", "Blob"][rng.gen_range(0..4)];
    CaseSources {
        buggy: format!(
            "union {u} {{ small: u8, big: u32 }} \
             fn main() {{ let m: {u} = {u} {{ small: {v}u8 }}; unsafe {{ print(m.big); }} }}"
        ),
        gold: format!(
            "union {u} {{ small: u8, big: u32 }} \
             fn main() {{ let m: {u} = {u} {{ big: {v}u32 }}; unsafe {{ print(m.big); }} }}"
        ),
        description: "reading a large union field after initialising a smaller one".into(),
    }
}

// ============================ provenance =====================================

fn provenance_int_roundtrip(rng: &mut ChaCha8Rng) -> CaseSources {
    let x = name(rng);
    let p = ptr(rng);
    let q = ptr2(rng, p);
    let v = small(rng);
    let prelude = format!(
        "fn main() {{ \
         let {x}: i32 = {v}; \
         let {p}: *const i32 = &raw const {x};"
    );
    CaseSources {
        buggy: format!(
            "{prelude} \
             let addr: usize = {p} as usize; \
             let {q}: *const i32 = addr as *const i32; \
             unsafe {{ print(*{q}); }} }}"
        ),
        gold: format!("{prelude} unsafe {{ print(*{p}); }} }}"),
        description: "pointer laundered through an integer loses provenance".into(),
    }
}

fn provenance_transmute_ref(rng: &mut ChaCha8Rng) -> CaseSources {
    let x = name(rng);
    let v = small(rng);
    CaseSources {
        buggy: format!(
            "fn main() {{ \
             let {x}: i32 = {v}; \
             let r: &i32 = &{x}; \
             unsafe {{ \
             let addr: usize = transmute::<&i32, usize>(r); \
             let q: *const i32 = addr as *const i32; \
             print(*q); }} }}"
        ),
        gold: format!(
            "fn main() {{ \
             let {x}: i32 = {v}; \
             let r: &i32 = &{x}; \
             unsafe {{ \
             let q: *const i32 = r as *const i32; \
             print(*q); }} }}"
        ),
        description: "reference transmuted to usize and back (paper Fig. 3, ex. 1)".into(),
    }
}

fn provenance_addr_arith(rng: &mut ChaCha8Rng) -> CaseSources {
    let x = name(rng);
    let p = ptr(rng);
    let v = small(rng);
    CaseSources {
        buggy: format!(
            "fn main() {{ \
             let {x}: i32 = {v}; \
             let {p}: *const i32 = &raw const {x}; \
             let addr: usize = ptr_addr({p}); \
             let fresh: *const i32 = addr as *const i32; \
             unsafe {{ print(*fresh); }} }}"
        ),
        gold: format!(
            "fn main() {{ \
             let {x}: i32 = {v}; \
             let {p}: *const i32 = &raw const {x}; \
             unsafe {{ print(*{p}); }} }}"
        ),
        description: "pointer reconstructed from a bare address (strict provenance)".into(),
    }
}

// ============================ unaligned ======================================

fn unaligned_odd_offset(rng: &mut ChaCha8Rng) -> CaseSources {
    let p = ptr(rng);
    let q = ptr2(rng, p);
    let v = small(rng);
    let odd = [1i64, 2, 3][rng.gen_range(0..3)];
    let prelude = format!(
        "fn main() {{ \
         let {p}: *mut u8 = 0 as *mut u8; \
         unsafe {{ {p} = alloc(8usize, 8usize); ptr_write::<u32>({p} as *mut u32, {v}u32); }}"
    );
    let epilogue = format!("unsafe {{ dealloc({p}, 8usize, 8usize); }} }}");
    CaseSources {
        buggy: format!(
            "{prelude} \
             unsafe {{ let {q}: *mut u8 = ptr_offset::<u8>({p}, {odd}i32); \
             print(ptr_read::<u32>({q} as *const u32)); }} {epilogue}"
        ),
        gold: format!(
            "{prelude} \
             unsafe {{ let {q}: *mut u8 = ptr_offset::<u8>({p}, 0i32); \
             print(ptr_read::<u32>({q} as *const u32)); }} {epilogue}"
        ),
        description: "u32 read at an odd byte offset (misaligned access)".into(),
    }
}

fn unaligned_array_cast(rng: &mut ChaCha8Rng) -> CaseSources {
    let v = small(rng);
    let w = small(rng);
    let prelude = format!(
        "fn main() {{ \
         let buf: [u32; 2] = [{v}u32, {w}u32]; \
         unsafe {{ \
         let base: *const u8 = &raw const buf as *const u8;"
    );
    CaseSources {
        buggy: format!(
            "{prelude} \
             let shifted: *const u8 = ptr_offset::<u8>(base, 1i32); \
             print(ptr_read::<u32>(shifted as *const u32)); }} }}"
        ),
        gold: format!(
            "{prelude} \
             let shifted: *const u8 = ptr_offset::<u8>(base, 4i32); \
             print(ptr_read::<u32>(shifted as *const u32)); }} }}"
        ),
        description: "array reinterpreted at a misaligned byte boundary".into(),
    }
}

// ============================= validity ======================================

fn validity_bool_transmute(rng: &mut ChaCha8Rng) -> CaseSources {
    let v = rng.gen_range(2..9);
    let x = name(rng);
    CaseSources {
        buggy: format!(
            "fn main() {{ \
             let {x}: u8 = {v}u8; \
             unsafe {{ let flag: bool = transmute::<u8, bool>({x}); print(flag); }} }}"
        ),
        gold: format!(
            "fn main() {{ \
             let {x}: u8 = {v}u8; \
             let flag: bool = {x} != 0u8; print(flag); }}"
        ),
        description: "bool constructed from a byte other than 0 or 1".into(),
    }
}

fn validity_transmute_size(rng: &mut ChaCha8Rng) -> CaseSources {
    let a = rng.gen_range(1..200);
    let b = rng.gen_range(1..200);
    CaseSources {
        buggy: format!(
            "fn main() {{ \
             let n1: [u8; 2] = [{a}u8, {b}u8]; \
             unsafe {{ let n2: u32 = transmute::<[u8; 2], u32>(n1); print(n2); }} }}"
        ),
        gold: format!(
            "fn main() {{ \
             let n1: [u8; 2] = [{a}u8, {b}u8]; \
             let n2: u32 = from_le_bytes::<u16>(n1) as u32; print(n2); }}"
        ),
        description: "transmute between differently sized types (paper Fig. 3, ex. 2)".into(),
    }
}

fn validity_int_to_ref(rng: &mut ChaCha8Rng) -> CaseSources {
    let x = name(rng);
    let v = small(rng);
    let addr = rng.gen_range(64..4096) * 8;
    CaseSources {
        buggy: format!(
            "fn main() {{ \
             let {x}: i32 = {v}; \
             unsafe {{ let r: &i32 = transmute::<usize, &i32>({addr}usize); print(*r); }} }}"
        ),
        gold: format!(
            "fn main() {{ \
             let {x}: i32 = {v}; \
             let r: &i32 = &{x}; print(*r); }}"
        ),
        description: "reference forged from an arbitrary integer address".into(),
    }
}

// =========================== stacked borrows =================================

fn stackborrow_write_invalidates(rng: &mut ChaCha8Rng) -> CaseSources {
    let x = name(rng);
    let p = ptr(rng);
    let v = small(rng);
    let w = small(rng);
    CaseSources {
        buggy: format!(
            "fn main() {{ \
             let {x}: i32 = {v}; \
             unsafe {{ \
             let {p}: *const i32 = &raw const {x}; \
             {x} = {w}; \
             print(ptr_read::<i32>({p})); }} }}"
        ),
        gold: format!(
            "fn main() {{ \
             let {x}: i32 = {v}; \
             unsafe {{ \
             {x} = {w}; \
             let {p}: *const i32 = &raw const {x}; \
             print(ptr_read::<i32>({p})); }} }}"
        ),
        description: "raw pointer invalidated by a write through the owner".into(),
    }
}

fn stackborrow_shared_write(rng: &mut ChaCha8Rng) -> CaseSources {
    let x = name(rng);
    let p = ptr(rng);
    let v = small(rng);
    let w = small(rng);
    CaseSources {
        buggy: format!(
            "fn main() {{ \
             let {x}: i32 = {v}; \
             unsafe {{ \
             let r: &i32 = &{x}; \
             let {p}: *mut i32 = r as *mut i32; \
             ptr_write::<i32>({p}, {w}i32); \
             print({x}); }} }}"
        ),
        gold: format!(
            "fn main() {{ \
             let {x}: i32 = {v}; \
             unsafe {{ \
             let {p}: *mut i32 = &raw mut {x}; \
             ptr_write::<i32>({p}, {w}i32); \
             print({x}); }} }}"
        ),
        description: "write through a raw pointer derived from a shared reference".into(),
    }
}

// ============================ both borrows ===================================

fn bothborrow_two_mut(rng: &mut ChaCha8Rng) -> CaseSources {
    let x = name(rng);
    let v = small(rng);
    let w = small(rng);
    CaseSources {
        buggy: format!(
            "fn main() {{ \
             let {x}: i32 = {v}; \
             unsafe {{ \
             let first: &mut i32 = &mut {x}; \
             let second: &mut i32 = &mut {x}; \
             *second = {w}; \
             print(*first); }} }}"
        ),
        gold: format!(
            "fn main() {{ \
             let {x}: i32 = {v}; \
             unsafe {{ \
             let first: &mut i32 = &mut {x}; \
             *first = {w}; \
             print(*first); }} }}"
        ),
        description: "two live exclusive reborrows of the same local".into(),
    }
}

fn bothborrow_cross_fn(rng: &mut ChaCha8Rng) -> CaseSources {
    let x = name(rng);
    let v = small(rng);
    CaseSources {
        buggy: format!(
            "fn bump(r: &mut i32) {{ *r = *r + 1; }} \
             fn main() {{ \
             let {x}: i32 = {v}; \
             let first: &mut i32 = &mut {x}; \
             let second: &mut i32 = &mut {x}; \
             bump(first); \
             print(*second); }}"
        ),
        gold: format!(
            "fn bump(r: &mut i32) {{ *r = *r + 1; }} \
             fn main() {{ \
             let {x}: i32 = {v}; \
             let first: &mut i32 = &mut {x}; \
             bump(first); \
             print({x}); }}"
        ),
        description: "exclusive reborrow used after a second exclusive reborrow".into(),
    }
}

// ============================== data race ====================================

fn datarace_two_writers(rng: &mut ChaCha8Rng) -> CaseSources {
    let a = small(rng);
    let b = small(rng);
    let g = ["SHARED", "GLOBAL", "STATE", "FLAGS"][rng.gen_range(0..4)];
    CaseSources {
        buggy: format!(
            "static mut {g}: i32 = 0; \
             fn main() {{ \
             spawn {{ unsafe {{ {g} = {a}; }} }} \
             spawn {{ unsafe {{ {g} = {b}; }} }} \
             join; \
             unsafe {{ print({g}); }} }}"
        ),
        gold: format!(
            "static mut {g}: i32 = 0; \
             fn main() {{ \
             spawn {{ lock(1) {{ unsafe {{ {g} = {a}; }} }} }} \
             spawn {{ lock(1) {{ unsafe {{ {g} = {b}; }} }} }} \
             join; \
             unsafe {{ print({g}); }} }}"
        ),
        description: "two threads write a mutable static without synchronisation".into(),
    }
}

fn datarace_increment(rng: &mut ChaCha8Rng) -> CaseSources {
    let g = ["COUNTER", "TICKS", "TALLY"][rng.gen_range(0..3)];
    CaseSources {
        buggy: format!(
            "static mut {g}: i32 = 0; \
             fn main() {{ \
             spawn {{ unsafe {{ {g} = {g} + 1; }} }} \
             spawn {{ unsafe {{ {g} = {g} + 1; }} }} \
             join; \
             unsafe {{ print({g}); }} }}"
        ),
        gold: format!(
            "static mut {g}: i32 = 0; \
             fn main() {{ \
             spawn {{ atomic_store({g}, atomic_load({g}) + 1i32); }} \
             spawn {{ atomic_store({g}, atomic_load({g}) + 1i32); }} \
             join; \
             unsafe {{ print({g}); }} }}"
        ),
        description: "unsynchronised concurrent increments of a mutable static".into(),
    }
}

fn datarace_main_read(rng: &mut ChaCha8Rng) -> CaseSources {
    let a = small(rng);
    let g = ["RESULT", "OUTPUT", "STATUS"][rng.gen_range(0..3)];
    CaseSources {
        buggy: format!(
            "static mut {g}: i32 = 0; \
             fn main() {{ \
             spawn {{ unsafe {{ {g} = {a}; }} }} \
             unsafe {{ print({g}); }} \
             join; }}"
        ),
        gold: format!(
            "static mut {g}: i32 = 0; \
             fn main() {{ \
             spawn {{ unsafe {{ {g} = {a}; }} }} \
             join; \
             unsafe {{ print({g}); }} }}"
        ),
        description: "main reads a static while a spawned thread writes it".into(),
    }
}

// ============================= concurrency ===================================

fn concurrency_heap_writers(rng: &mut ChaCha8Rng) -> CaseSources {
    let p = ptr(rng);
    let a = small(rng);
    let b = small(rng);
    let prelude = format!(
        "fn main() {{ \
         let {p}: *mut u8 = 0 as *mut u8; \
         unsafe {{ {p} = alloc(4usize, 4usize); ptr_write::<i32>({p} as *mut i32, 0i32); }}"
    );
    let epilogue = format!(
        "join; unsafe {{ print(ptr_read::<i32>({p} as *const i32)); dealloc({p}, 4usize, 4usize); }} }}"
    );
    CaseSources {
        buggy: format!(
            "{prelude} \
             spawn {{ unsafe {{ ptr_write::<i32>({p} as *mut i32, {a}i32); }} }} \
             spawn {{ unsafe {{ ptr_write::<i32>({p} as *mut i32, {b}i32); }} }} \
             {epilogue}"
        ),
        gold: format!(
            "{prelude} \
             spawn {{ lock(2) {{ unsafe {{ ptr_write::<i32>({p} as *mut i32, {a}i32); }} }} }} \
             spawn {{ lock(2) {{ unsafe {{ ptr_write::<i32>({p} as *mut i32, {b}i32); }} }} }} \
             {epilogue}"
        ),
        description: "two threads write shared heap memory through raw pointers".into(),
    }
}

fn concurrency_reader_writer(rng: &mut ChaCha8Rng) -> CaseSources {
    let p = ptr(rng);
    let a = small(rng);
    let prelude = format!(
        "fn main() {{ \
         let {p}: *mut u8 = 0 as *mut u8; \
         unsafe {{ {p} = alloc(4usize, 4usize); ptr_write::<i32>({p} as *mut i32, 0i32); }}"
    );
    let epilogue = format!("join; unsafe {{ dealloc({p}, 4usize, 4usize); }} }}");
    CaseSources {
        buggy: format!(
            "{prelude} \
             spawn {{ unsafe {{ ptr_write::<i32>({p} as *mut i32, {a}i32); }} }} \
             spawn {{ unsafe {{ print(ptr_read::<i32>({p} as *const i32)); }} }} \
             {epilogue}"
        ),
        gold: format!(
            "{prelude} \
             spawn {{ lock(3) {{ unsafe {{ ptr_write::<i32>({p} as *mut i32, {a}i32); }} }} }} \
             spawn {{ lock(3) {{ unsafe {{ print(ptr_read::<i32>({p} as *const i32)); }} }} }} \
             {epilogue}"
        ),
        description: "unsynchronised reader and writer share heap memory".into(),
    }
}

// ============================== func.call ====================================

fn funccall_unchecked_add(rng: &mut ChaCha8Rng) -> CaseSources {
    let k = rng.gen_range(1..100);
    let x = name(rng);
    CaseSources {
        buggy: format!(
            "fn main() {{ \
             let {x}: i32 = 2147483647; \
             let delta: i32 = {k}; \
             unsafe {{ print(unchecked_add::<i32>({x}, delta)); }} }}"
        ),
        gold: format!(
            "fn main() {{ \
             let {x}: i32 = 2147483647; \
             let delta: i32 = {k}; \
             print({x} as i64 + delta as i64); }}"
        ),
        description: "unchecked_add overflows i32 (unsafe contract violated)".into(),
    }
}

fn funccall_assume_init(rng: &mut ChaCha8Rng) -> CaseSources {
    let p = ptr(rng);
    let v = small(rng);
    CaseSources {
        buggy: format!(
            "fn main() {{ \
             let {p}: *mut u8 = 0 as *mut u8; \
             unsafe {{ {p} = alloc(4usize, 4usize); }} \
             unsafe {{ print(assume_init_read::<i32>({p} as *const i32)); }} \
             unsafe {{ ptr_write::<i32>({p} as *mut i32, {v}i32); dealloc({p}, 4usize, 4usize); }} }}"
        ),
        gold: format!(
            "fn main() {{ \
             let {p}: *mut u8 = 0 as *mut u8; \
             unsafe {{ {p} = alloc(4usize, 4usize); }} \
             unsafe {{ ptr_write::<i32>({p} as *mut i32, {v}i32); }} \
             unsafe {{ print(assume_init_read::<i32>({p} as *const i32)); }} \
             unsafe {{ dealloc({p}, 4usize, 4usize); }} }}"
        ),
        description: "assume_init_read before initialisation (contract violated)".into(),
    }
}

fn funccall_copy_overlap(rng: &mut ChaCha8Rng) -> CaseSources {
    let p = ptr(rng);
    let v = small(rng);
    let w = small(rng);
    let prelude = format!(
        "fn main() {{ \
         let {p}: *mut u8 = 0 as *mut u8; \
         unsafe {{ {p} = alloc(8usize, 4usize); \
         ptr_write::<i32>({p} as *mut i32, {v}i32); \
         ptr_write::<i32>(ptr_offset::<u8>({p}, 4i32) as *mut i32, {w}i32); }}"
    );
    let epilogue = format!(
        "unsafe {{ print(ptr_read::<i32>(ptr_offset::<u8>({p}, 4i32) as *const i32)); \
         dealloc({p}, 8usize, 4usize); }} }}"
    );
    CaseSources {
        buggy: format!(
            "{prelude} \
             unsafe {{ copy_nonoverlapping::<u8>({p}, ptr_offset::<u8>({p}, 2i32), 4usize); }} \
             {epilogue}"
        ),
        gold: format!(
            "{prelude} \
             unsafe {{ copy_nonoverlapping::<u8>({p}, ptr_offset::<u8>({p}, 4i32), 4usize); }} \
             {epilogue}"
        ),
        description: "copy_nonoverlapping with overlapping source and destination".into(),
    }
}

// ============================ func.pointer ===================================

fn funcpointer_forged(rng: &mut ChaCha8Rng) -> CaseSources {
    let m = rng.gen_range(2..9);
    let k = small(rng);
    let addr = rng.gen_range(512..8192) * 8;
    CaseSources {
        buggy: format!(
            "fn scale(x: i32) -> i32 {{ return x * {m}; }} \
             fn main() {{ unsafe {{ \
             let f: fn(i32) -> i32 = transmute::<usize, fn(i32) -> i32>({addr}usize); \
             print((f)({k})); }} }}"
        ),
        gold: format!(
            "fn scale(x: i32) -> i32 {{ return x * {m}; }} \
             fn main() {{ \
             let f: fn(i32) -> i32 = scale; \
             print((f)({k})); }}"
        ),
        description: "function pointer forged from an arbitrary address".into(),
    }
}

fn funcpointer_wrong_sig(rng: &mut ChaCha8Rng) -> CaseSources {
    let k = small(rng);
    CaseSources {
        buggy: format!(
            "fn add2(x: i32, y: i32) -> i32 {{ return x + y; }} \
             fn main() {{ unsafe {{ \
             let f: fn(i32) -> i32 = transmute::<fn(i32, i32) -> i32, fn(i32) -> i32>(add2); \
             print((f)({k})); }} }}"
        ),
        gold: format!(
            "fn add2(x: i32, y: i32) -> i32 {{ return x + y; }} \
             fn main() {{ \
             let f: fn(i32, i32) -> i32 = add2; \
             print((f)({k}, 1)); }}"
        ),
        description: "function pointer transmuted to a different signature".into(),
    }
}

// ============================== tail call ====================================

fn tailcall_arity(rng: &mut ChaCha8Rng) -> CaseSources {
    let k = small(rng);
    let v = small(rng);
    CaseSources {
        buggy: format!(
            "fn helper(x: i32, y: i32) -> i32 {{ return x + y; }} \
             fn runner(x: i32) -> i32 {{ tailcall helper(x, {k}); }} \
             fn main() {{ print(runner({v})); }}"
        ),
        gold: format!(
            "fn helper(x: i32, y: i32) -> i32 {{ return x + y; }} \
             fn runner(x: i32) -> i32 {{ return helper(x, {k}); }} \
             fn main() {{ print(runner({v})); }}"
        ),
        description: "tail call to a function with a different arity".into(),
    }
}

fn tailcall_ret_mismatch(rng: &mut ChaCha8Rng) -> CaseSources {
    let v = small(rng);
    CaseSources {
        buggy: format!(
            "fn log_it(x: i32) {{ print(x); }} \
             fn runner(x: i32) -> i32 {{ tailcall log_it(x); }} \
             fn main() {{ print(runner({v})); }}"
        ),
        gold: format!(
            "fn log_it(x: i32) {{ print(x); }} \
             fn runner(x: i32) -> i32 {{ log_it(x); return x; }} \
             fn main() {{ print(runner({v})); }}"
        ),
        description: "tail call to a function with a different return type".into(),
    }
}

// ================================ panic ======================================

fn panic_assert_threshold(rng: &mut ChaCha8Rng) -> CaseSources {
    let v = rng.gen_range(1..50);
    let t = rng.gen_range(51..99);
    let x = name(rng);
    CaseSources {
        buggy: format!(
            "fn main() {{ \
             let {x}: i32 = {v}; \
             assert({x} > {t}, \"value too small\"); \
             print({x}); }}"
        ),
        gold: format!(
            "fn main() {{ \
             let {x}: i32 = {v}; \
             assert({x} >= 0, \"value negative\"); \
             print({x}); }}"
        ),
        description: "assertion with an incorrect threshold always fails".into(),
    }
}

fn panic_div_zero(rng: &mut ChaCha8Rng) -> CaseSources {
    let v = small(rng);
    let x = name(rng);
    CaseSources {
        buggy: format!(
            "fn main() {{ \
             let divisor: i32 = 0; \
             let {x}: i32 = {v}; \
             print({x} / divisor); }}"
        ),
        gold: format!(
            "fn main() {{ \
             let divisor: i32 = 0; \
             let {x}: i32 = {v}; \
             if divisor != 0 {{ print({x} / divisor); }} else {{ print(0); }} }}"
        ),
        description: "division by a zero divisor".into(),
    }
}

fn panic_index_literal(rng: &mut ChaCha8Rng) -> CaseSources {
    let n = rng.gen_range(3..6);
    let bad = n + rng.gen_range(1..4);
    let elems: Vec<String> = (0..n).map(|i| format!("{}", (i + 1) * 10)).collect();
    let elems = elems.join(", ");
    let last = n * 10;
    CaseSources {
        buggy: format!(
            "fn main() {{ \
             let table: [i32; {n}] = [{elems}]; \
             let idx: i32 = {bad}; \
             print(table[idx]); }}"
        ),
        gold: format!(
            "fn main() {{ \
             let table: [i32; {n}] = [{elems}]; \
             let idx: i32 = {}; \
             print(table[idx]); }}",
            n - 1
        ),
        description: format!("index {bad} out of bounds for length {n} (gold prints {last})"),
    }
}

fn panic_overflow(rng: &mut ChaCha8Rng) -> CaseSources {
    let k = small(rng);
    let x = name(rng);
    CaseSources {
        buggy: format!(
            "fn main() {{ \
             let {x}: i32 = 2147483647; \
             let step: i32 = {k}; \
             print({x} + step); }}"
        ),
        gold: format!(
            "fn main() {{ \
             let {x}: i32 = 2147483647; \
             let step: i32 = {k}; \
             print({x} as i64 + step as i64); }}"
        ),
        description: "checked i32 addition overflows and panics".into(),
    }
}

fn stackborrow_ref_invalidated(rng: &mut ChaCha8Rng) -> CaseSources {
    let x = name(rng);
    let v = small(rng);
    let w = small(rng);
    CaseSources {
        buggy: format!(
            "fn main() {{ \
             let {x}: i32 = {v}; \
             unsafe {{ \
             let view: &i32 = &{x}; \
             {x} = {w}; \
             print(*view); }} }}"
        ),
        gold: format!(
            "fn main() {{ \
             let {x}: i32 = {v}; \
             unsafe {{ \
             {x} = {w}; \
             let view: &i32 = &{x}; \
             print(*view); }} }}"
        ),
        description: "shared reference invalidated by a write through the owner".into(),
    }
}

fn concurrency_three_writers(rng: &mut ChaCha8Rng) -> CaseSources {
    let p = ptr(rng);
    let vals: Vec<i64> = (0..3).map(|_| small(rng)).collect();
    let prelude = format!(
        "fn main() {{ \
         let {p}: *mut u8 = 0 as *mut u8; \
         unsafe {{ {p} = alloc(4usize, 4usize); ptr_write::<i32>({p} as *mut i32, 0i32); }}"
    );
    let epilogue = format!(
        "join; unsafe {{ print(ptr_read::<i32>({p} as *const i32)); dealloc({p}, 4usize, 4usize); }} }}"
    );
    let spawns_buggy: String = vals
        .iter()
        .map(|v| format!("spawn {{ unsafe {{ ptr_write::<i32>({p} as *mut i32, {v}i32); }} }} "))
        .collect();
    let spawns_gold: String = vals
        .iter()
        .map(|v| {
            format!(
                "spawn {{ lock(4) {{ unsafe {{ ptr_write::<i32>({p} as *mut i32, {v}i32); }} }} }} "
            )
        })
        .collect();
    CaseSources {
        buggy: format!("{prelude} {spawns_buggy}{epilogue}"),
        gold: format!("{prelude} {spawns_gold}{epilogue}"),
        description: "three threads race on the same heap word".into(),
    }
}

// ===================== multi-function (paper future work) ===================
//
// The paper's conclusion names "automated safety enhancements for complex
// Rust code involving multi-module calls" as future work; these templates
// put the UB inside a helper function so repairs must act across function
// boundaries.

fn funccall_callee_unchecked(rng: &mut ChaCha8Rng) -> CaseSources {
    let k = small(rng);
    CaseSources {
        buggy: format!(
            "unsafe fn bump(x: i32) -> i32 {{ return unchecked_add::<i32>(x, {k}); }} \
             fn main() {{ \
             let seed: i32 = 2147483647; \
             unsafe {{ print(bump(seed)); }} }}"
        ),
        gold: format!(
            "fn bump(x: i32) -> i64 {{ return x as i64 + {k} as i64; }} \
             fn main() {{ \
             let seed: i32 = 2147483647; \
             print(bump(seed)); }}"
        ),
        description: "unchecked_add overflows inside a helper function".into(),
    }
}

fn datarace_helper_writer(rng: &mut ChaCha8Rng) -> CaseSources {
    let g = ["TOTAL", "SUM", "ACCUM"][rng.gen_range(0..3)];
    CaseSources {
        buggy: format!(
            "static mut {g}: i32 = 0; \
             fn add_one() {{ unsafe {{ {g} = {g} + 1; }} }} \
             fn main() {{ \
             spawn {{ add_one(); }} \
             spawn {{ add_one(); }} \
             join; \
             unsafe {{ print({g}); }} }}"
        ),
        gold: format!(
            "static mut {g}: i32 = 0; \
             fn add_one() {{ unsafe {{ {g} = {g} + 1; }} }} \
             fn main() {{ \
             spawn {{ lock(1) {{ add_one(); }} }} \
             spawn {{ lock(1) {{ add_one(); }} }} \
             join; \
             unsafe {{ print({g}); }} }}"
        ),
        description: "threads race on a static through a shared helper function".into(),
    }
}

fn validity_callee_transmute(rng: &mut ChaCha8Rng) -> CaseSources {
    let v = rng.gen_range(2..9);
    CaseSources {
        buggy: format!(
            "unsafe fn to_flag(raw_v: u8) -> bool {{ return transmute::<u8, bool>(raw_v); }} \
             fn main() {{ \
             let code: u8 = {v}u8; \
             unsafe {{ print(to_flag(code)); }} }}"
        ),
        gold: format!(
            "fn to_flag(raw_v: u8) -> bool {{ return raw_v != 0u8; }} \
             fn main() {{ \
             let code: u8 = {v}u8; \
             print(to_flag(code)); }}"
        ),
        description: "invalid bool constructed inside a conversion helper".into(),
    }
}

/// All template families in a stable order.
#[must_use]
pub fn all_templates() -> Vec<Template> {
    vec![
        Template {
            name: "double_free",
            class: UbClass::Alloc,
            make: alloc_double_free,
        },
        Template {
            name: "layout_mismatch",
            class: UbClass::Alloc,
            make: alloc_layout_mismatch,
        },
        Template {
            name: "leak",
            class: UbClass::Alloc,
            make: alloc_leak,
        },
        Template {
            name: "scope_escape",
            class: UbClass::DanglingPointer,
            make: dangling_scope_escape,
        },
        Template {
            name: "use_after_free",
            class: UbClass::DanglingPointer,
            make: dangling_use_after_free,
        },
        Template {
            name: "oob_offset",
            class: UbClass::DanglingPointer,
            make: dangling_oob_offset,
        },
        Template {
            name: "read_before_write",
            class: UbClass::Uninit,
            make: uninit_read_before_write,
        },
        Template {
            name: "union_tail",
            class: UbClass::Uninit,
            make: uninit_union_tail,
        },
        Template {
            name: "int_roundtrip",
            class: UbClass::Provenance,
            make: provenance_int_roundtrip,
        },
        Template {
            name: "transmute_ref",
            class: UbClass::Provenance,
            make: provenance_transmute_ref,
        },
        Template {
            name: "addr_arith",
            class: UbClass::Provenance,
            make: provenance_addr_arith,
        },
        Template {
            name: "odd_offset",
            class: UbClass::Unaligned,
            make: unaligned_odd_offset,
        },
        Template {
            name: "array_cast",
            class: UbClass::Unaligned,
            make: unaligned_array_cast,
        },
        Template {
            name: "bool_transmute",
            class: UbClass::Validity,
            make: validity_bool_transmute,
        },
        Template {
            name: "transmute_size",
            class: UbClass::Validity,
            make: validity_transmute_size,
        },
        Template {
            name: "int_to_ref",
            class: UbClass::Validity,
            make: validity_int_to_ref,
        },
        Template {
            name: "write_invalidates",
            class: UbClass::StackBorrow,
            make: stackborrow_write_invalidates,
        },
        Template {
            name: "shared_write",
            class: UbClass::StackBorrow,
            make: stackborrow_shared_write,
        },
        Template {
            name: "two_mut",
            class: UbClass::BothBorrow,
            make: bothborrow_two_mut,
        },
        Template {
            name: "cross_fn",
            class: UbClass::BothBorrow,
            make: bothborrow_cross_fn,
        },
        Template {
            name: "two_writers",
            class: UbClass::DataRace,
            make: datarace_two_writers,
        },
        Template {
            name: "increment",
            class: UbClass::DataRace,
            make: datarace_increment,
        },
        Template {
            name: "main_read",
            class: UbClass::DataRace,
            make: datarace_main_read,
        },
        Template {
            name: "heap_writers",
            class: UbClass::Concurrency,
            make: concurrency_heap_writers,
        },
        Template {
            name: "reader_writer",
            class: UbClass::Concurrency,
            make: concurrency_reader_writer,
        },
        Template {
            name: "unchecked_add",
            class: UbClass::FuncCall,
            make: funccall_unchecked_add,
        },
        Template {
            name: "assume_init",
            class: UbClass::FuncCall,
            make: funccall_assume_init,
        },
        Template {
            name: "copy_overlap",
            class: UbClass::FuncCall,
            make: funccall_copy_overlap,
        },
        Template {
            name: "forged",
            class: UbClass::FuncPointer,
            make: funcpointer_forged,
        },
        Template {
            name: "wrong_sig",
            class: UbClass::FuncPointer,
            make: funcpointer_wrong_sig,
        },
        Template {
            name: "arity",
            class: UbClass::TailCall,
            make: tailcall_arity,
        },
        Template {
            name: "ret_mismatch",
            class: UbClass::TailCall,
            make: tailcall_ret_mismatch,
        },
        Template {
            name: "assert_threshold",
            class: UbClass::Panic,
            make: panic_assert_threshold,
        },
        Template {
            name: "div_zero",
            class: UbClass::Panic,
            make: panic_div_zero,
        },
        Template {
            name: "index_literal",
            class: UbClass::Panic,
            make: panic_index_literal,
        },
        Template {
            name: "overflow",
            class: UbClass::Panic,
            make: panic_overflow,
        },
        Template {
            name: "ref_invalidated",
            class: UbClass::StackBorrow,
            make: stackborrow_ref_invalidated,
        },
        Template {
            name: "three_writers",
            class: UbClass::Concurrency,
            make: concurrency_three_writers,
        },
        // Multi-function families (the paper's future-work direction).
        Template {
            name: "callee_unchecked",
            class: UbClass::FuncCall,
            make: funccall_callee_unchecked,
        },
        Template {
            name: "helper_writer",
            class: UbClass::DataRace,
            make: datarace_helper_writer,
        },
        Template {
            name: "callee_transmute",
            class: UbClass::Validity,
            make: validity_callee_transmute,
        },
    ]
}

/// Templates belonging to one class.
#[must_use]
pub fn templates_for(class: UbClass) -> Vec<Template> {
    all_templates()
        .into_iter()
        .filter(|t| t.class == class)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn every_class_has_templates() {
        for class in UbClass::ALL {
            assert!(!templates_for(class).is_empty(), "no templates for {class}");
        }
    }

    #[test]
    fn template_names_unique_within_class() {
        for class in UbClass::ALL {
            let names: Vec<&str> = templates_for(class).iter().map(|t| t.name).collect();
            let mut dedup = names.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(names.len(), dedup.len(), "{class}: {names:?}");
        }
    }

    #[test]
    fn instantiation_is_deterministic() {
        for t in all_templates() {
            let mut r1 = ChaCha8Rng::seed_from_u64(42);
            let mut r2 = ChaCha8Rng::seed_from_u64(42);
            let a = (t.make)(&mut r1);
            let b = (t.make)(&mut r2);
            assert_eq!(a.buggy, b.buggy, "{}", t.name);
            assert_eq!(a.gold, b.gold, "{}", t.name);
        }
    }

    #[test]
    fn seeds_vary_output() {
        let t = all_templates()[0];
        let mut r1 = ChaCha8Rng::seed_from_u64(1);
        let mut r2 = ChaCha8Rng::seed_from_u64(999);
        let a = (t.make)(&mut r1);
        let b = (t.make)(&mut r2);
        assert_ne!(a.buggy, b.buggy);
    }
}
