//! Data-race detection over a recorded access log.
//!
//! Threads in the IR run deterministically (spawned blocks execute at the
//! join point), so instead of interleaving we record every shared-memory
//! access with its thread, atomicity and held-lock set, then scan for
//! conflicting pairs: different threads, overlapping ranges, at least one
//! write, not both atomic, no common lock, and both *concurrent* (main's
//! accesses participate only between the first `spawn` and the `join`).
//! This is the classic lockset/eraser discipline, which is exact for the
//! structured fork-join programs the corpus contains.

use crate::diagnostics::{MiriError, UbKind};
use crate::memory::{AllocKind, Memory};
use crate::value::AllocId;
use rb_lang::StmtPath;
use std::collections::BTreeSet;

/// One recorded shared-memory access.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Access {
    /// Allocation touched.
    pub alloc: AllocId,
    /// Byte offset of the access.
    pub offset: usize,
    /// Length in bytes.
    pub len: usize,
    /// Thread id (0 = main).
    pub thread: usize,
    /// Whether it wrote.
    pub write: bool,
    /// Whether it was an atomic operation.
    pub atomic: bool,
    /// Locks held at the time.
    pub locks: BTreeSet<u32>,
    /// Whether the access is concurrent with other threads (always true for
    /// spawned threads; true for main only between spawn and join).
    pub concurrent: bool,
    /// Statement for diagnostics.
    pub path: Option<StmtPath>,
}

impl Access {
    fn overlaps(&self, other: &Access) -> bool {
        self.alloc == other.alloc
            && self.offset < other.offset + other.len
            && other.offset < self.offset + self.len
    }

    fn conflicts(&self, other: &Access) -> bool {
        self.thread != other.thread
            && self.concurrent
            && other.concurrent
            && (self.write || other.write)
            && !(self.atomic && other.atomic)
            && self.locks.is_disjoint(&other.locks)
            && self.overlaps(other)
    }
}

/// The access log.
#[derive(Clone, Debug, Default)]
pub struct AccessLog {
    accesses: Vec<Access>,
}

impl AccessLog {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> AccessLog {
        AccessLog::default()
    }

    /// Records an access.
    pub fn record(&mut self, a: Access) {
        self.accesses.push(a);
    }

    /// Number of recorded accesses.
    #[must_use]
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Whether the log is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Scans for races. One diagnostic is emitted per (allocation, thread
    /// pair) to avoid flooding the report with a diagnostic per access.
    #[must_use]
    pub fn detect_races(&self, mem: &Memory) -> Vec<MiriError> {
        let mut out = Vec::new();
        let mut reported: BTreeSet<(AllocId, usize, usize)> = BTreeSet::new();
        for (i, a) in self.accesses.iter().enumerate() {
            for b in &self.accesses[i + 1..] {
                if !a.conflicts(b) {
                    continue;
                }
                let (t1, t2) = (a.thread.min(b.thread), a.thread.max(b.thread));
                if !reported.insert((a.alloc, t1, t2)) {
                    continue;
                }
                let kind_of_alloc = mem.alloc(a.alloc).map(|al| al.kind);
                let kind = match kind_of_alloc {
                    Some(AllocKind::Static) => UbKind::RaceOnStatic,
                    _ => UbKind::RaceOnHeap,
                };
                let what = if a.write && b.write {
                    "write-write"
                } else {
                    "read-write"
                };
                out.push(MiriError {
                    kind,
                    message: format!(
                        "data race: {what} conflict between thread {t1} and thread {t2}"
                    ),
                    path: a.path.clone().or_else(|| b.path.clone()),
                    thread: t2,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::AllocKind;

    fn acc(alloc: AllocId, thread: usize, write: bool) -> Access {
        Access {
            alloc,
            offset: 0,
            len: 4,
            thread,
            write,
            atomic: false,
            locks: BTreeSet::new(),
            concurrent: true,
            path: None,
        }
    }

    fn static_mem() -> (Memory, AllocId) {
        let mut m = Memory::new();
        let (id, _, _) = m.allocate(AllocKind::Static, 4, 4);
        (m, id)
    }

    #[test]
    fn write_write_race_detected() {
        let (m, id) = static_mem();
        let mut log = AccessLog::new();
        log.record(acc(id, 1, true));
        log.record(acc(id, 2, true));
        let races = log.detect_races(&m);
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].kind, UbKind::RaceOnStatic);
    }

    #[test]
    fn read_read_is_fine() {
        let (m, id) = static_mem();
        let mut log = AccessLog::new();
        log.record(acc(id, 1, false));
        log.record(acc(id, 2, false));
        assert!(log.detect_races(&m).is_empty());
    }

    #[test]
    fn same_thread_no_race() {
        let (m, id) = static_mem();
        let mut log = AccessLog::new();
        log.record(acc(id, 1, true));
        log.record(acc(id, 1, true));
        assert!(log.detect_races(&m).is_empty());
    }

    #[test]
    fn atomics_synchronise() {
        let (m, id) = static_mem();
        let mut log = AccessLog::new();
        let mut a = acc(id, 1, true);
        a.atomic = true;
        let mut b = acc(id, 2, true);
        b.atomic = true;
        log.record(a);
        log.record(b);
        assert!(log.detect_races(&m).is_empty());
    }

    #[test]
    fn atomic_vs_plain_still_races() {
        let (m, id) = static_mem();
        let mut log = AccessLog::new();
        let mut a = acc(id, 1, true);
        a.atomic = true;
        log.record(a);
        log.record(acc(id, 2, true));
        assert_eq!(log.detect_races(&m).len(), 1);
    }

    #[test]
    fn common_lock_protects() {
        let (m, id) = static_mem();
        let mut log = AccessLog::new();
        let mut a = acc(id, 1, true);
        a.locks.insert(1);
        let mut b = acc(id, 2, true);
        b.locks.insert(1);
        log.record(a);
        log.record(b);
        assert!(log.detect_races(&m).is_empty());
    }

    #[test]
    fn disjoint_locks_race() {
        let (m, id) = static_mem();
        let mut log = AccessLog::new();
        let mut a = acc(id, 1, true);
        a.locks.insert(1);
        let mut b = acc(id, 2, true);
        b.locks.insert(2);
        log.record(a);
        log.record(b);
        assert_eq!(log.detect_races(&m).len(), 1);
    }

    #[test]
    fn non_concurrent_main_excluded() {
        let (m, id) = static_mem();
        let mut log = AccessLog::new();
        let mut a = acc(id, 0, true);
        a.concurrent = false; // before spawn / after join
        log.record(a);
        log.record(acc(id, 1, true));
        assert!(log.detect_races(&m).is_empty());
    }

    #[test]
    fn disjoint_ranges_no_race() {
        let (m, id) = static_mem();
        let mut log = AccessLog::new();
        let mut a = acc(id, 1, true);
        a.offset = 0;
        a.len = 2;
        let mut b = acc(id, 2, true);
        b.offset = 2;
        b.len = 2;
        log.record(a);
        log.record(b);
        assert!(log.detect_races(&m).is_empty());
    }

    #[test]
    fn heap_race_is_concurrency_class() {
        let mut m = Memory::new();
        let (id, _, _) = m.allocate(AllocKind::Heap, 4, 4);
        let mut log = AccessLog::new();
        log.record(acc(id, 1, true));
        log.record(acc(id, 2, false));
        let races = log.detect_races(&m);
        assert_eq!(races[0].kind, UbKind::RaceOnHeap);
    }

    #[test]
    fn dedup_per_alloc_thread_pair() {
        let (m, id) = static_mem();
        let mut log = AccessLog::new();
        for _ in 0..5 {
            log.record(acc(id, 1, true));
            log.record(acc(id, 2, true));
        }
        assert_eq!(log.detect_races(&m).len(), 1);
    }
}
