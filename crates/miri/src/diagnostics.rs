//! Diagnostic taxonomy. [`UbKind`] is the precise mechanical failure the
//! interpreter detected; [`UbClass`] is the coarse category the paper's
//! figures bucket results by (the Miri test-suite directory names:
//! `alloc`, `dangling_pointer`, `panic`, `provenance`, `uninit`,
//! `both_borrows`, `data_race`, `function_calls`, `function_pointers`,
//! `stacked_borrows`, `validity`, `unaligned_pointers`, `tail_calls`,
//! `concurrency`).

use rb_lang::StmtPath;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Coarse UB category, matching the paper's evaluation buckets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum UbClass {
    /// Allocation API misuse: double free, layout mismatch, leaks.
    Alloc,
    /// Use of pointers to freed or expired memory, incl. out-of-bounds.
    DanglingPointer,
    /// Runtime panics (asserts, checked overflow, OOB index, div by zero).
    Panic,
    /// Pointer provenance violations (int-to-ptr round trips, cross-
    /// allocation arithmetic).
    Provenance,
    /// Reads of uninitialised memory.
    Uninit,
    /// Conflicting `&mut` reborrows (Miri's `both_borrows` suite).
    BothBorrow,
    /// Unsynchronised conflicting accesses to statics.
    DataRace,
    /// Unsafe-function contract violations (`unchecked_*` overflow etc.).
    FuncCall,
    /// Invalid or mis-typed function pointers.
    FuncPointer,
    /// Stacked-borrows aliasing violations.
    StackBorrow,
    /// Invalid values for a type (bad bool, dangling reference, transmute
    /// size mismatch).
    Validity,
    /// Misaligned pointer accesses.
    Unaligned,
    /// `become`-style tail calls with mismatched signatures.
    TailCall,
    /// Concurrency UB other than static data races (shared-heap races).
    Concurrency,
    /// Not UB: the program is ill-formed (fails the static checker). Repair
    /// iterations that break the program land here, like a non-compiling
    /// LLM patch.
    Compile,
}

impl UbClass {
    /// The eleven classes shown in the paper's Fig. 8/9 grid.
    pub const FIG8: [UbClass; 11] = [
        UbClass::Alloc,
        UbClass::DanglingPointer,
        UbClass::Panic,
        UbClass::Provenance,
        UbClass::BothBorrow,
        UbClass::DataRace,
        UbClass::FuncCall,
        UbClass::FuncPointer,
        UbClass::StackBorrow,
        UbClass::Validity,
        UbClass::Unaligned,
    ];

    /// The twelve classes of Fig. 12 (Fig. 8 plus `uninit`).
    pub const FIG12: [UbClass; 12] = [
        UbClass::Alloc,
        UbClass::DanglingPointer,
        UbClass::Panic,
        UbClass::Provenance,
        UbClass::Uninit,
        UbClass::BothBorrow,
        UbClass::DataRace,
        UbClass::FuncCall,
        UbClass::FuncPointer,
        UbClass::StackBorrow,
        UbClass::Validity,
        UbClass::Unaligned,
    ];

    /// The subset used for the GPT-O1 comparison (Fig. 10).
    pub const FIG10: [UbClass; 7] = [
        UbClass::Alloc,
        UbClass::TailCall,
        UbClass::DanglingPointer,
        UbClass::FuncPointer,
        UbClass::Panic,
        UbClass::Unaligned,
        UbClass::FuncCall,
    ];

    /// The twelve classes of Table I.
    pub const TABLE1: [UbClass; 12] = [
        UbClass::StackBorrow,
        UbClass::Unaligned,
        UbClass::Validity,
        UbClass::Alloc,
        UbClass::FuncPointer,
        UbClass::Provenance,
        UbClass::Panic,
        UbClass::FuncCall,
        UbClass::DanglingPointer,
        UbClass::BothBorrow,
        UbClass::Concurrency,
        UbClass::DataRace,
    ];

    /// Every real UB class (excludes [`UbClass::Compile`]).
    pub const ALL: [UbClass; 14] = [
        UbClass::Alloc,
        UbClass::DanglingPointer,
        UbClass::Panic,
        UbClass::Provenance,
        UbClass::Uninit,
        UbClass::BothBorrow,
        UbClass::DataRace,
        UbClass::FuncCall,
        UbClass::FuncPointer,
        UbClass::StackBorrow,
        UbClass::Validity,
        UbClass::Unaligned,
        UbClass::TailCall,
        UbClass::Concurrency,
    ];

    /// Display label matching the paper's axis labels.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            UbClass::Alloc => "alloc",
            UbClass::DanglingPointer => "danglingpointer",
            UbClass::Panic => "panic",
            UbClass::Provenance => "provenance",
            UbClass::Uninit => "uninit",
            UbClass::BothBorrow => "bothborrow",
            UbClass::DataRace => "datarace",
            UbClass::FuncCall => "func.call",
            UbClass::FuncPointer => "func.pointer",
            UbClass::StackBorrow => "stackborrow",
            UbClass::Validity => "validity",
            UbClass::Unaligned => "unaligned",
            UbClass::TailCall => "tailcall",
            UbClass::Concurrency => "concurrency",
            UbClass::Compile => "compile",
        }
    }
}

impl fmt::Display for UbClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Precise failure detected by the oracle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UbKind {
    /// Access to a freed heap allocation.
    UseAfterFree,
    /// Access to a stack slot whose scope ended.
    UseAfterScope,
    /// In-bounds-of-nothing: pointer arithmetic/access outside the
    /// allocation.
    OutOfBounds,
    /// Freeing an allocation twice.
    DoubleFree,
    /// `dealloc` with a size/alignment different from the allocation's.
    BadDealloc,
    /// Heap memory still reachable-by-nothing at program end.
    Leak,
    /// Misaligned memory access.
    UnalignedAccess,
    /// A value invalid for its type was produced (bad bool, etc.).
    InvalidValue,
    /// A reference that is null, dangling or misaligned was materialised.
    InvalidRef,
    /// `transmute` between differently-sized types.
    TransmuteSize,
    /// Read of uninitialised bytes.
    UninitRead,
    /// Dereference of a pointer without provenance (int-to-ptr).
    NoProvenance,
    /// Pointer arithmetic escaping its allocation into another.
    CrossAllocation,
    /// Use of a pointer whose stacked-borrows tag was invalidated.
    StackBorrowViolation,
    /// Two live `&mut` reborrows of the same allocation conflicting.
    ConflictingMutBorrows,
    /// Write through a shared (read-only) borrow.
    WriteThroughShared,
    /// Unsynchronised conflicting access to a static.
    RaceOnStatic,
    /// Unsynchronised conflicting access to shared heap memory.
    RaceOnHeap,
    /// `unchecked_*` arithmetic overflowed.
    UncheckedOverflow,
    /// An unsafe builtin's documented precondition was violated.
    Precondition,
    /// Call through a forged (non-function) pointer.
    InvalidFnPtr,
    /// Call through a function pointer with mismatched signature.
    FnSigMismatch,
    /// Tail call with a signature differing from the caller's.
    TailCallMismatch,
    /// Assertion failure.
    PanicAssert,
    /// Arithmetic overflow in checked (normal) arithmetic.
    PanicOverflow,
    /// Division or remainder by zero.
    PanicDivZero,
    /// Bounds-checked index out of range.
    PanicIndex,
    /// Static checker rejected the program.
    IllFormed,
    /// Interpreter budget exceeded (treated as a failed run, not UB).
    ResourceExhausted,
}

impl UbKind {
    /// The coarse class a kind belongs to.
    #[must_use]
    pub fn class(self) -> UbClass {
        match self {
            UbKind::UseAfterFree | UbKind::UseAfterScope | UbKind::OutOfBounds => {
                UbClass::DanglingPointer
            }
            UbKind::DoubleFree | UbKind::BadDealloc | UbKind::Leak => UbClass::Alloc,
            UbKind::UnalignedAccess => UbClass::Unaligned,
            UbKind::InvalidValue | UbKind::InvalidRef | UbKind::TransmuteSize => UbClass::Validity,
            UbKind::UninitRead => UbClass::Uninit,
            UbKind::NoProvenance | UbKind::CrossAllocation => UbClass::Provenance,
            UbKind::StackBorrowViolation | UbKind::WriteThroughShared => UbClass::StackBorrow,
            UbKind::ConflictingMutBorrows => UbClass::BothBorrow,
            UbKind::RaceOnStatic => UbClass::DataRace,
            UbKind::RaceOnHeap => UbClass::Concurrency,
            UbKind::UncheckedOverflow | UbKind::Precondition => UbClass::FuncCall,
            UbKind::InvalidFnPtr | UbKind::FnSigMismatch => UbClass::FuncPointer,
            UbKind::TailCallMismatch => UbClass::TailCall,
            UbKind::PanicAssert
            | UbKind::PanicOverflow
            | UbKind::PanicDivZero
            | UbKind::PanicIndex => UbClass::Panic,
            UbKind::IllFormed | UbKind::ResourceExhausted => UbClass::Compile,
        }
    }

    /// Whether this kind is genuine UB (as opposed to a panic or a
    /// compile-stage failure).
    #[must_use]
    pub fn is_ub(self) -> bool {
        !matches!(
            self,
            UbKind::PanicAssert
                | UbKind::PanicOverflow
                | UbKind::PanicDivZero
                | UbKind::PanicIndex
                | UbKind::IllFormed
                | UbKind::ResourceExhausted
        )
    }
}

/// One diagnostic emitted by the oracle.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MiriError {
    /// Precise failure.
    pub kind: UbKind,
    /// Human-readable description (in Miri's phrasing style).
    pub message: String,
    /// Statement where the failure occurred, when attributable.
    pub path: Option<StmtPath>,
    /// Thread that triggered it (0 = main).
    pub thread: usize,
}

impl MiriError {
    /// Coarse class of this error.
    #[must_use]
    pub fn class(&self) -> UbClass {
        self.kind.class()
    }
}

impl fmt::Display for MiriError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error[{}]: {}", self.class(), self.message)?;
        if let Some(p) = &self.path {
            write!(f, " (at {p})")?;
        }
        if self.thread != 0 {
            write!(f, " (thread {})", self.thread)?;
        }
        Ok(())
    }
}

/// Result of running the oracle over a program.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MiriReport {
    /// All diagnostics, in detection order.
    pub errors: Vec<MiriError>,
    /// Observable output (`print` statements), used for semantic checking.
    pub outputs: Vec<String>,
    /// Interpreter steps consumed.
    pub steps: u64,
    /// Whether execution ran to completion (possibly with recovered errors).
    pub completed: bool,
}

impl MiriReport {
    /// `true` when the program passes Miri: no diagnostics at all.
    #[must_use]
    pub fn passes(&self) -> bool {
        self.errors.is_empty()
    }

    /// Number of diagnostics — the `nᵢ` of the paper's rollback analysis.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.errors.len()
    }

    /// Classes present in the report, deduplicated, in first-seen order.
    #[must_use]
    pub fn classes(&self) -> Vec<UbClass> {
        let mut seen = Vec::new();
        for e in &self.errors {
            let c = e.class();
            if !seen.contains(&c) {
                seen.push(c);
            }
        }
        seen
    }

    /// The dominant (first) error, which repair prompts focus on.
    #[must_use]
    pub fn primary(&self) -> Option<&MiriError> {
        self.errors.first()
    }
}

impl fmt::Display for MiriReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.errors.is_empty() {
            writeln!(f, "pass: no undefined behaviour detected")?;
        } else {
            for e in &self.errors {
                writeln!(f, "{e}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_has_class() {
        // Spot-check the mapping used by the figures.
        assert_eq!(UbKind::UseAfterFree.class(), UbClass::DanglingPointer);
        assert_eq!(UbKind::DoubleFree.class(), UbClass::Alloc);
        assert_eq!(UbKind::RaceOnStatic.class(), UbClass::DataRace);
        assert_eq!(UbKind::RaceOnHeap.class(), UbClass::Concurrency);
        assert_eq!(UbKind::PanicAssert.class(), UbClass::Panic);
        assert_eq!(UbKind::TailCallMismatch.class(), UbClass::TailCall);
    }

    #[test]
    fn panics_are_not_ub() {
        assert!(!UbKind::PanicAssert.is_ub());
        assert!(!UbKind::IllFormed.is_ub());
        assert!(UbKind::UseAfterFree.is_ub());
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(UbClass::FuncCall.label(), "func.call");
        assert_eq!(UbClass::BothBorrow.label(), "bothborrow");
        assert_eq!(UbClass::FIG8.len(), 11);
        assert_eq!(UbClass::FIG12.len(), 12);
        assert_eq!(UbClass::FIG10.len(), 7);
        assert_eq!(UbClass::TABLE1.len(), 12);
    }

    #[test]
    fn report_accessors() {
        let mut r = MiriReport::default();
        assert!(r.passes());
        r.errors.push(MiriError {
            kind: UbKind::UseAfterFree,
            message: "pointer to dead allocation".into(),
            path: None,
            thread: 0,
        });
        r.errors.push(MiriError {
            kind: UbKind::OutOfBounds,
            message: "oob".into(),
            path: None,
            thread: 0,
        });
        assert!(!r.passes());
        assert_eq!(r.error_count(), 2);
        assert_eq!(r.classes(), vec![UbClass::DanglingPointer]);
        assert_eq!(r.primary().unwrap().kind, UbKind::UseAfterFree);
    }

    #[test]
    fn display_contains_class() {
        let e = MiriError {
            kind: UbKind::UnalignedAccess,
            message: "accessing memory with alignment 1, required 4".into(),
            path: None,
            thread: 1,
        };
        let s = e.to_string();
        assert!(s.contains("unaligned"));
        assert!(s.contains("thread 1"));
    }
}
