//! A simplified stacked-borrows engine.
//!
//! Real Miri tracks a borrow stack per byte; we track one per allocation,
//! which is sufficient for the whole-object borrows our corpus exercises.
//! The rules implemented:
//!
//! - a fresh allocation has a base `Unique` item;
//! - `&mut place` retags: items above the granting tag are popped, a new
//!   `Unique` item is pushed;
//! - `&place` retags: a `SharedRO` item is pushed on top;
//! - `&raw` retags: a `SharedRW` item is pushed on top;
//! - writes require `Unique`/`SharedRW` and pop everything above the tag;
//! - reads pop `Unique` items above the tag (they "disable" exclusive
//!   reborrows, as in stacked borrows);
//! - using a tag that is no longer in the stack is UB; if the tag was a
//!   `&mut` reborrow popped by another `&mut` retag the diagnostic is
//!   classified as a *both-borrows* conflict, otherwise as a generic
//!   stacked-borrows violation.

use crate::diagnostics::UbKind;
use crate::value::BorTag;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Permission granted by a stack item.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Perm {
    /// Exclusive read/write.
    Unique,
    /// Shared read-only.
    SharedRO,
    /// Shared read/write (raw pointers).
    SharedRW,
}

/// How the item was created (used for diagnostic classification).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Origin {
    /// Base item of the allocation.
    Base,
    /// Created by `&mut` retag.
    RefMut,
    /// Created by `&` retag.
    RefShared,
    /// Created by `&raw` retag.
    Raw,
}

/// One item of a borrow stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BorItem {
    /// The tag.
    pub tag: BorTag,
    /// Granted permission.
    pub perm: Perm,
    /// Provenance of the item.
    pub origin: Origin,
}

/// Why an item left the stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PopReason {
    /// Popped by a conflicting `&mut` retag.
    MutRetag,
    /// Popped by a write through a lower item.
    WriteAccess,
    /// Disabled by a read through a lower item.
    ReadAccess,
}

/// Record of a popped item, kept for diagnosis.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PopInfo {
    /// The item's origin when it was alive.
    pub origin: Origin,
    /// Why it was popped.
    pub reason: PopReason,
}

/// Kind of retag being performed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetagKind {
    /// `&mut` — exclusive reborrow.
    Mut,
    /// `&` — shared reborrow.
    Shared,
    /// `&raw` — raw-pointer escape.
    Raw,
}

/// The per-allocation borrow stack.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BorrowStack {
    items: Vec<BorItem>,
}

impl BorrowStack {
    /// Fresh stack whose base item carries `base_tag`.
    #[must_use]
    pub fn new(base_tag: BorTag) -> BorrowStack {
        BorrowStack {
            items: vec![BorItem {
                tag: base_tag,
                perm: Perm::Unique,
                origin: Origin::Base,
            }],
        }
    }

    /// Current number of live items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the stack is empty (only after catastrophic pops).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether `tag` is live.
    #[must_use]
    pub fn grants(&self, tag: BorTag) -> bool {
        self.items.iter().any(|i| i.tag == tag)
    }

    fn position(&self, tag: BorTag) -> Option<usize> {
        self.items.iter().position(|i| i.tag == tag)
    }

    /// Performs a retag deriving `fresh` from `parent`.
    ///
    /// # Errors
    ///
    /// The classified UB kind when `parent` is no longer live.
    pub fn retag(
        &mut self,
        parent: BorTag,
        kind: RetagKind,
        fresh: BorTag,
        popped: &mut HashMap<BorTag, PopInfo>,
    ) -> Result<(), UbKind> {
        let Some(idx) = self.position(parent) else {
            return Err(classify_missing(parent, popped));
        };
        match kind {
            RetagKind::Mut => {
                for it in self.items.drain(idx + 1..) {
                    popped.insert(
                        it.tag,
                        PopInfo {
                            origin: it.origin,
                            reason: PopReason::MutRetag,
                        },
                    );
                }
                self.items.push(BorItem {
                    tag: fresh,
                    perm: Perm::Unique,
                    origin: Origin::RefMut,
                });
            }
            RetagKind::Shared => {
                self.items.push(BorItem {
                    tag: fresh,
                    perm: Perm::SharedRO,
                    origin: Origin::RefShared,
                });
            }
            RetagKind::Raw => {
                // A raw pointer inherits writability from its parent: raws
                // derived from shared references stay read-only.
                let parent_perm = self.items[idx].perm;
                let perm = if parent_perm == Perm::SharedRO {
                    Perm::SharedRO
                } else {
                    Perm::SharedRW
                };
                self.items.push(BorItem {
                    tag: fresh,
                    perm,
                    origin: Origin::Raw,
                });
            }
        }
        Ok(())
    }

    /// Performs an access through `tag`.
    ///
    /// # Errors
    ///
    /// The classified UB kind when the access is not permitted.
    pub fn access(
        &mut self,
        tag: BorTag,
        write: bool,
        popped: &mut HashMap<BorTag, PopInfo>,
    ) -> Result<(), UbKind> {
        let Some(idx) = self.position(tag) else {
            return Err(classify_missing(tag, popped));
        };
        let item = self.items[idx];
        if write {
            if item.perm == Perm::SharedRO {
                return Err(UbKind::WriteThroughShared);
            }
            for it in self.items.drain(idx + 1..) {
                popped.insert(
                    it.tag,
                    PopInfo {
                        origin: it.origin,
                        reason: PopReason::WriteAccess,
                    },
                );
            }
        } else {
            // Reads disable Unique items above the granting one.
            let above: Vec<BorItem> = self.items.drain(idx + 1..).collect();
            for it in above {
                if it.perm == Perm::Unique {
                    popped.insert(
                        it.tag,
                        PopInfo {
                            origin: it.origin,
                            reason: PopReason::ReadAccess,
                        },
                    );
                } else {
                    self.items.push(it);
                }
            }
        }
        Ok(())
    }
}

/// Classifies the use of a missing tag: if it was a `&mut` reborrow popped
/// by another `&mut` retag, that is the paper's "both borrows" conflict;
/// anything else is a generic stacked-borrows violation.
fn classify_missing(tag: BorTag, popped: &HashMap<BorTag, PopInfo>) -> UbKind {
    match popped.get(&tag) {
        Some(PopInfo {
            origin: Origin::RefMut,
            reason: PopReason::MutRetag,
        }) => UbKind::ConflictingMutBorrows,
        _ => UbKind::StackBorrowViolation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (BorrowStack, HashMap<BorTag, PopInfo>) {
        (BorrowStack::new(0), HashMap::new())
    }

    #[test]
    fn base_access_allowed() {
        let (mut st, mut popped) = setup();
        assert!(st.access(0, true, &mut popped).is_ok());
        assert!(st.access(0, false, &mut popped).is_ok());
    }

    #[test]
    fn two_mut_reborrows_conflict() {
        let (mut st, mut popped) = setup();
        st.retag(0, RetagKind::Mut, 1, &mut popped).unwrap();
        st.retag(0, RetagKind::Mut, 2, &mut popped).unwrap(); // pops tag 1
        assert_eq!(
            st.access(1, true, &mut popped),
            Err(UbKind::ConflictingMutBorrows)
        );
        assert!(st.access(2, true, &mut popped).is_ok());
    }

    #[test]
    fn write_through_shared_rejected() {
        let (mut st, mut popped) = setup();
        st.retag(0, RetagKind::Shared, 1, &mut popped).unwrap();
        assert_eq!(
            st.access(1, true, &mut popped),
            Err(UbKind::WriteThroughShared)
        );
        assert!(st.access(1, false, &mut popped).is_ok());
    }

    #[test]
    fn raw_from_shared_is_read_only() {
        let (mut st, mut popped) = setup();
        st.retag(0, RetagKind::Shared, 1, &mut popped).unwrap();
        st.retag(1, RetagKind::Raw, 2, &mut popped).unwrap();
        assert_eq!(
            st.access(2, true, &mut popped),
            Err(UbKind::WriteThroughShared)
        );
        assert!(st.access(2, false, &mut popped).is_ok());
    }

    #[test]
    fn raw_can_write() {
        let (mut st, mut popped) = setup();
        st.retag(0, RetagKind::Raw, 1, &mut popped).unwrap();
        assert!(st.access(1, true, &mut popped).is_ok());
    }

    #[test]
    fn write_through_base_invalidates_raw() {
        let (mut st, mut popped) = setup();
        st.retag(0, RetagKind::Raw, 1, &mut popped).unwrap();
        st.access(0, true, &mut popped).unwrap(); // write through base pops raw
        assert_eq!(
            st.access(1, false, &mut popped),
            Err(UbKind::StackBorrowViolation)
        );
    }

    #[test]
    fn read_disables_unique_above() {
        let (mut st, mut popped) = setup();
        st.retag(0, RetagKind::Mut, 1, &mut popped).unwrap();
        // Read through base disables the &mut above.
        st.access(0, false, &mut popped).unwrap();
        assert_eq!(
            st.access(1, true, &mut popped),
            Err(UbKind::StackBorrowViolation)
        );
    }

    #[test]
    fn read_keeps_shared_above() {
        let (mut st, mut popped) = setup();
        st.retag(0, RetagKind::Shared, 1, &mut popped).unwrap();
        st.access(0, false, &mut popped).unwrap();
        assert!(st.access(1, false, &mut popped).is_ok());
    }

    #[test]
    fn retag_from_dead_parent_fails() {
        let (mut st, mut popped) = setup();
        st.retag(0, RetagKind::Mut, 1, &mut popped).unwrap();
        st.access(0, true, &mut popped).unwrap(); // pops 1
        assert!(st.retag(1, RetagKind::Shared, 2, &mut popped).is_err());
    }

    #[test]
    fn grants_reflects_state() {
        let (mut st, mut popped) = setup();
        st.retag(0, RetagKind::Raw, 5, &mut popped).unwrap();
        assert!(st.grants(5));
        st.access(0, true, &mut popped).unwrap();
        assert!(!st.grants(5));
        assert!(!st.is_empty());
        assert_eq!(st.len(), 1);
    }
}
