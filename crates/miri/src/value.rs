//! Runtime values and the abstract byte representation.
//!
//! Memory is a sequence of [`AbByte`]s: each byte is either uninitialised or
//! an initialised octet optionally carrying *provenance* (which allocation
//! and borrow tag a pointer byte belongs to). Typed reads deserialise bytes
//! back into [`Value`]s, enforcing validity invariants exactly where Miri
//! does: a `bool` must be 0/1, a reference must be non-null and carry
//! provenance, integers must be fully initialised.

use crate::diagnostics::UbKind;
use rb_lang::ast::{IntTy, Ty};
use rb_lang::check::ty_size;
use rb_lang::Program;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AllocId(pub u32);

/// Stacked-borrows tag.
pub type BorTag = u64;

/// Provenance carried by a byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Prov {
    /// Byte of a pointer into allocation `alloc`, authorised by `tag`.
    Mem {
        /// Target allocation.
        alloc: AllocId,
        /// Borrow tag authorising access.
        tag: BorTag,
    },
    /// Byte of a pointer to function `idx`.
    Fn(usize),
}

/// One byte of abstract memory.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum AbByte {
    /// Never written.
    Uninit,
    /// Initialised octet with optional provenance.
    Init(u8, Option<Prov>),
}

impl AbByte {
    /// The raw octet, if initialised.
    #[must_use]
    pub fn byte(self) -> Option<u8> {
        match self {
            AbByte::Uninit => None,
            AbByte::Init(b, _) => Some(b),
        }
    }
}

/// A pointer value: optional provenance plus an absolute address and the
/// type it points at (tracked dynamically, as casts re-type pointers).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Pointer {
    /// Provenance: the allocation this pointer may access and the borrow
    /// tag authorising it. `None` for integer-derived pointers.
    pub prov: Option<(AllocId, BorTag)>,
    /// Absolute (virtual) address.
    pub addr: u64,
    /// Pointee type.
    pub pointee: Ty,
}

impl Pointer {
    /// A pointer with full provenance.
    #[must_use]
    pub fn with_prov(alloc: AllocId, tag: BorTag, addr: u64, pointee: Ty) -> Pointer {
        Pointer {
            prov: Some((alloc, tag)),
            addr,
            pointee,
        }
    }

    /// An integer-derived pointer without provenance.
    #[must_use]
    pub fn from_addr(addr: u64, pointee: Ty) -> Pointer {
        Pointer {
            prov: None,
            addr,
            pointee,
        }
    }

    /// Returns a copy re-typed to point at `pointee`.
    #[must_use]
    pub fn retype(&self, pointee: Ty) -> Pointer {
        Pointer {
            prov: self.prov,
            addr: self.addr,
            pointee,
        }
    }
}

/// A runtime value.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// `()`.
    Unit,
    /// Boolean.
    Bool(bool),
    /// Integer with its type.
    Int(i128, IntTy),
    /// Raw pointer.
    Ptr(Pointer),
    /// Reference (same representation; validity rules differ).
    Ref(Pointer),
    /// Owning box.
    Boxed(Pointer),
    /// Function pointer; `None` when forged from a non-function address.
    FnPtr(Option<usize>),
    /// Tuple of values.
    Tuple(Vec<Value>),
    /// Array of values.
    Array(Vec<Value>),
    /// Union value stored as raw bytes.
    Union {
        /// Union type name.
        name: String,
        /// Raw storage (padded to the union's size).
        bytes: Vec<AbByte>,
    },
}

impl Value {
    /// Integer accessor.
    #[must_use]
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Value::Int(v, _) => Some(*v),
            _ => None,
        }
    }

    /// Boolean accessor.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Pointer accessor (raw pointers, references and boxes all qualify).
    #[must_use]
    pub fn as_pointer(&self) -> Option<&Pointer> {
        match self {
            Value::Ptr(p) | Value::Ref(p) | Value::Boxed(p) => Some(p),
            _ => None,
        }
    }

    /// Renders a value for `print` output. Pointers render without their
    /// address so observable behaviour is allocation-order independent.
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            Value::Unit => "()".into(),
            Value::Bool(b) => b.to_string(),
            Value::Int(v, _) => v.to_string(),
            Value::Ptr(_) => "<ptr>".into(),
            Value::Ref(_) => "<ref>".into(),
            Value::Boxed(_) => "<box>".into(),
            Value::FnPtr(_) => "<fn>".into(),
            Value::Tuple(xs) => {
                let inner: Vec<String> = xs.iter().map(Value::render).collect();
                format!("({})", inner.join(", "))
            }
            Value::Array(xs) => {
                let inner: Vec<String> = xs.iter().map(Value::render).collect();
                format!("[{}]", inner.join(", "))
            }
            Value::Union { .. } => "<union>".into(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// Base address of the synthetic function-pointer region.
pub const FN_PTR_BASE: u64 = 0xF000_0000_0000;

/// Address of the function pointer for function index `idx`.
#[must_use]
pub fn fn_ptr_addr(idx: usize) -> u64 {
    FN_PTR_BASE + (idx as u64) * 16
}

/// Serialises a value of type `ty` into abstract bytes.
///
/// # Errors
///
/// [`UbKind::TransmuteSize`] when the value's shape cannot fill `ty`
/// (e.g. wrong-arity tuples) — callers treat this as a transmute/layout
/// failure.
pub fn to_bytes(prog: &Program, v: &Value, ty: &Ty) -> Result<Vec<AbByte>, UbKind> {
    let size = ty_size(prog, ty).ok_or(UbKind::TransmuteSize)?;
    let mut out = Vec::with_capacity(size);
    fill_bytes(v, ty, &mut out)?;
    if out.len() != size {
        // Pad unions / short values with uninit.
        while out.len() < size {
            out.push(AbByte::Uninit);
        }
        out.truncate(size);
    }
    Ok(out)
}

fn push_int(out: &mut Vec<AbByte>, v: i128, bytes: usize) {
    let raw = (v as u128).to_le_bytes();
    for b in raw.iter().take(bytes) {
        out.push(AbByte::Init(*b, None));
    }
}

fn push_ptr(out: &mut Vec<AbByte>, p: &Pointer) {
    let raw = p.addr.to_le_bytes();
    let prov = p.prov.map(|(a, t)| Prov::Mem { alloc: a, tag: t });
    for b in raw {
        out.push(AbByte::Init(b, prov));
    }
}

fn fill_bytes(v: &Value, ty: &Ty, out: &mut Vec<AbByte>) -> Result<(), UbKind> {
    match (v, ty) {
        (Value::Unit, Ty::Unit) => Ok(()),
        (Value::Bool(b), Ty::Bool) => {
            out.push(AbByte::Init(u8::from(*b), None));
            Ok(())
        }
        (Value::Int(v, _), Ty::Int(t)) => {
            push_int(out, t.wrap(*v), t.size());
            Ok(())
        }
        (Value::Int(v, t), Ty::Bool) => {
            // Writing an int where a bool lives (through a typed pointer):
            // keep the raw byte; validity is checked on the next typed read.
            let _ = t;
            out.push(AbByte::Init((*v as u128 & 0xFF) as u8, None));
            Ok(())
        }
        (
            Value::Ptr(p) | Value::Ref(p) | Value::Boxed(p),
            Ty::RawPtr(..) | Ty::Ref(..) | Ty::Boxed(_) | Ty::Int(IntTy::Usize),
        ) => {
            push_ptr(out, p);
            Ok(())
        }
        (Value::FnPtr(idx), _) => {
            // Forged function pointers serialise to a nonzero sentinel so
            // the "forged" property round-trips through memory (a zero
            // address would deserialise as a null-reference validity error
            // instead of a callable-but-invalid pointer).
            let addr = idx.map_or(0xDEAD_0000, fn_ptr_addr);
            let raw = addr.to_le_bytes();
            let prov = idx.map(Prov::Fn);
            for b in raw {
                out.push(AbByte::Init(b, prov));
            }
            Ok(())
        }
        (Value::Tuple(xs), Ty::Tuple(ts)) if xs.len() == ts.len() => {
            for (x, t) in xs.iter().zip(ts) {
                fill_bytes(x, t, out)?;
            }
            Ok(())
        }
        (Value::Array(xs), Ty::Array(elem, n)) if xs.len() == *n => {
            for x in xs {
                fill_bytes(x, elem, out)?;
            }
            Ok(())
        }
        (Value::Union { bytes, .. }, Ty::Union(_)) => {
            out.extend_from_slice(bytes);
            Ok(())
        }
        // Serialising any value into a union's storage or into raw bytes:
        // delegate via its natural type when sizes work out.
        (Value::Int(v, t), _) => {
            push_int(out, t.wrap(*v), t.size());
            Ok(())
        }
        _ => Err(UbKind::TransmuteSize),
    }
}

/// Deserialises bytes at type `ty`.
///
/// # Errors
///
/// - [`UbKind::UninitRead`] when required bytes are uninitialised,
/// - [`UbKind::InvalidValue`] for out-of-range `bool`s,
/// - [`UbKind::InvalidRef`] for null or provenance-less references,
/// - [`UbKind::TransmuteSize`] when `bytes` is shorter than `ty` requires.
pub fn from_bytes(prog: &Program, bytes: &[AbByte], ty: &Ty) -> Result<Value, UbKind> {
    let size = ty_size(prog, ty).ok_or(UbKind::TransmuteSize)?;
    if bytes.len() < size {
        return Err(UbKind::TransmuteSize);
    }
    read_value(prog, &bytes[..size], ty)
}

fn read_uint(bytes: &[AbByte]) -> Result<u128, UbKind> {
    let mut v: u128 = 0;
    for (i, b) in bytes.iter().enumerate() {
        match b.byte() {
            Some(x) => v |= u128::from(x) << (8 * i),
            None => return Err(UbKind::UninitRead),
        }
    }
    Ok(v)
}

fn read_ptr_parts(bytes: &[AbByte]) -> Result<(u64, Option<Prov>), UbKind> {
    let addr = read_uint(&bytes[..8])? as u64;
    let first = match bytes[0] {
        AbByte::Init(_, p) => p,
        AbByte::Uninit => return Err(UbKind::UninitRead),
    };
    let uniform = bytes[..8]
        .iter()
        .all(|b| matches!(b, AbByte::Init(_, p) if *p == first));
    Ok((addr, if uniform { first } else { None }))
}

fn read_value(prog: &Program, bytes: &[AbByte], ty: &Ty) -> Result<Value, UbKind> {
    match ty {
        Ty::Unit => Ok(Value::Unit),
        Ty::Bool => match bytes[0].byte() {
            None => Err(UbKind::UninitRead),
            Some(0) => Ok(Value::Bool(false)),
            Some(1) => Ok(Value::Bool(true)),
            Some(_) => Err(UbKind::InvalidValue),
        },
        Ty::Int(t) => {
            let raw = read_uint(bytes)?;
            Ok(Value::Int(t.wrap(raw as i128), *t))
        }
        Ty::RawPtr(inner, _) => {
            let (addr, prov) = read_ptr_parts(bytes)?;
            let prov = match prov {
                Some(Prov::Mem { alloc, tag }) => Some((alloc, tag)),
                _ => None,
            };
            Ok(Value::Ptr(Pointer {
                prov,
                addr,
                pointee: (**inner).clone(),
            }))
        }
        Ty::Ref(inner, _) | Ty::Boxed(inner) => {
            let (addr, prov) = read_ptr_parts(bytes)?;
            let prov = match prov {
                Some(Prov::Mem { alloc, tag }) => Some((alloc, tag)),
                _ => None,
            };
            if addr == 0 || prov.is_none() {
                return Err(UbKind::InvalidRef);
            }
            let p = Pointer {
                prov,
                addr,
                pointee: (**inner).clone(),
            };
            if matches!(ty, Ty::Boxed(_)) {
                Ok(Value::Boxed(p))
            } else {
                Ok(Value::Ref(p))
            }
        }
        Ty::FnPtr(..) => {
            let (addr, prov) = read_ptr_parts(bytes)?;
            match prov {
                Some(Prov::Fn(idx)) => Ok(Value::FnPtr(Some(idx))),
                _ if addr == 0 => Err(UbKind::InvalidRef),
                _ => Ok(Value::FnPtr(None)),
            }
        }
        Ty::Tuple(ts) => {
            let mut out = Vec::with_capacity(ts.len());
            let mut off = 0usize;
            for t in ts {
                let s = ty_size(prog, t).ok_or(UbKind::TransmuteSize)?;
                out.push(read_value(prog, &bytes[off..off + s], t)?);
                off += s;
            }
            Ok(Value::Tuple(out))
        }
        Ty::Array(elem, n) => {
            let s = ty_size(prog, elem).ok_or(UbKind::TransmuteSize)?;
            let mut out = Vec::with_capacity(*n);
            for i in 0..*n {
                out.push(read_value(prog, &bytes[i * s..(i + 1) * s], elem)?);
            }
            Ok(Value::Array(out))
        }
        Ty::Union(name) => Ok(Value::Union {
            name: name.clone(),
            bytes: bytes.to_vec(),
        }),
    }
}

/// Loose runtime type agreement used for function-pointer signature checks.
#[must_use]
pub fn value_matches_ty(v: &Value, ty: &Ty) -> bool {
    match (v, ty) {
        (Value::Unit, Ty::Unit)
        | (Value::Bool(_), Ty::Bool)
        | (Value::Ptr(_), Ty::RawPtr(..))
        | (Value::Ref(_), Ty::Ref(..))
        | (Value::Boxed(_), Ty::Boxed(_))
        | (Value::FnPtr(_), Ty::FnPtr(..))
        | (Value::Union { .. }, Ty::Union(_)) => true,
        (Value::Int(_, a), Ty::Int(b)) => a == b,
        (Value::Tuple(xs), Ty::Tuple(ts)) => {
            xs.len() == ts.len() && xs.iter().zip(ts).all(|(x, t)| value_matches_ty(x, t))
        }
        (Value::Array(xs), Ty::Array(t, n)) => {
            xs.len() == *n && xs.iter().all(|x| value_matches_ty(x, t))
        }
        _ => false,
    }
}

/// The default value of a type (used for static initialisation padding).
#[must_use]
pub fn zero_value(ty: &Ty) -> Value {
    match ty {
        Ty::Unit => Value::Unit,
        Ty::Bool => Value::Bool(false),
        Ty::Int(t) => Value::Int(0, *t),
        Ty::RawPtr(inner, _) => Value::Ptr(Pointer::from_addr(0, (**inner).clone())),
        Ty::Ref(inner, _) => Value::Ref(Pointer::from_addr(0, (**inner).clone())),
        Ty::Boxed(inner) => Value::Boxed(Pointer::from_addr(0, (**inner).clone())),
        Ty::FnPtr(..) => Value::FnPtr(None),
        Ty::Tuple(ts) => Value::Tuple(ts.iter().map(zero_value).collect()),
        Ty::Array(t, n) => Value::Array(vec![zero_value(t); *n]),
        Ty::Union(name) => Value::Union {
            name: name.clone(),
            bytes: Vec::new(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_lang::ast::Mutability;
    use rb_lang::parser::parse_program;

    fn prog() -> Program {
        parse_program("union B { i: i32, u: u32 } fn main() { }").unwrap()
    }

    #[test]
    fn int_roundtrip() {
        let p = prog();
        for (v, t) in [(0i128, IntTy::U8), (-7, IntTy::I32), (1 << 40, IntTy::U64)] {
            let val = Value::Int(v, t);
            let bytes = to_bytes(&p, &val, &Ty::Int(t)).unwrap();
            assert_eq!(bytes.len(), t.size());
            let back = from_bytes(&p, &bytes, &Ty::Int(t)).unwrap();
            assert_eq!(back, val);
        }
    }

    #[test]
    fn bool_validity() {
        let p = prog();
        let bytes = vec![AbByte::Init(2, None)];
        assert_eq!(from_bytes(&p, &bytes, &Ty::Bool), Err(UbKind::InvalidValue));
        let bytes = vec![AbByte::Init(1, None)];
        assert_eq!(from_bytes(&p, &bytes, &Ty::Bool), Ok(Value::Bool(true)));
    }

    #[test]
    fn uninit_read_detected() {
        let p = prog();
        let bytes = vec![AbByte::Uninit; 4];
        assert_eq!(
            from_bytes(&p, &bytes, &Ty::Int(IntTy::I32)),
            Err(UbKind::UninitRead)
        );
    }

    #[test]
    fn pointer_roundtrip_preserves_provenance() {
        let p = prog();
        let ptr = Pointer::with_prov(AllocId(3), 7, 0x1000, Ty::Int(IntTy::I32));
        let ty = Ty::raw(Ty::Int(IntTy::I32), Mutability::Mut);
        let bytes = to_bytes(&p, &Value::Ptr(ptr.clone()), &ty).unwrap();
        let back = from_bytes(&p, &bytes, &ty).unwrap();
        assert_eq!(back, Value::Ptr(ptr));
    }

    #[test]
    fn int_to_ref_is_invalid() {
        let p = prog();
        // 8 bytes of plain integer data (no provenance) read as a reference.
        let v = Value::Int(0x2000, IntTy::Usize);
        let bytes = to_bytes(&p, &v, &Ty::Int(IntTy::Usize)).unwrap();
        let ty = Ty::reference(Ty::Int(IntTy::I32), Mutability::Not);
        assert_eq!(from_bytes(&p, &bytes, &ty), Err(UbKind::InvalidRef));
    }

    #[test]
    fn null_ref_is_invalid() {
        let p = prog();
        let bytes = vec![AbByte::Init(0, None); 8];
        let ty = Ty::reference(Ty::Bool, Mutability::Not);
        assert_eq!(from_bytes(&p, &bytes, &ty), Err(UbKind::InvalidRef));
    }

    #[test]
    fn transmute_size_mismatch() {
        let p = prog();
        let v = Value::Int(5, IntTy::U16);
        let bytes = to_bytes(&p, &v, &Ty::Int(IntTy::U16)).unwrap();
        assert_eq!(
            from_bytes(&p, &bytes, &Ty::Int(IntTy::U32)),
            Err(UbKind::TransmuteSize)
        );
    }

    #[test]
    fn bytes_to_u32_from_u8_array() {
        let p = prog();
        let arr = Value::Array(vec![
            Value::Int(0x17, IntTy::U8),
            Value::Int(0x07, IntTy::U8),
            Value::Int(0, IntTy::U8),
            Value::Int(0, IntTy::U8),
        ]);
        let ty = Ty::Array(Box::new(Ty::Int(IntTy::U8)), 4);
        let bytes = to_bytes(&p, &arr, &ty).unwrap();
        let back = from_bytes(&p, &bytes, &Ty::Int(IntTy::U32)).unwrap();
        assert_eq!(back, Value::Int(0x0717, IntTy::U32));
    }

    #[test]
    fn fn_ptr_roundtrip() {
        let p = prog();
        let ty = Ty::FnPtr(vec![Ty::Int(IntTy::I32)], Box::new(Ty::Int(IntTy::I32)));
        let bytes = to_bytes(&p, &Value::FnPtr(Some(2)), &ty).unwrap();
        assert_eq!(from_bytes(&p, &bytes, &ty), Ok(Value::FnPtr(Some(2))));
        // Forged: integer bytes interpreted as fn ptr.
        let forged = to_bytes(
            &p,
            &Value::Int(0x1234, IntTy::Usize),
            &Ty::Int(IntTy::Usize),
        )
        .unwrap();
        assert_eq!(from_bytes(&p, &forged, &ty), Ok(Value::FnPtr(None)));
    }

    #[test]
    fn union_bytes_passthrough() {
        let p = prog();
        let v = Value::Union {
            name: "B".into(),
            bytes: vec![
                AbByte::Init(1, None),
                AbByte::Init(2, None),
                AbByte::Init(3, None),
                AbByte::Init(4, None),
            ],
        };
        let bytes = to_bytes(&p, &v, &Ty::Union("B".into())).unwrap();
        assert_eq!(bytes.len(), 4);
        let back = from_bytes(&p, &bytes, &Ty::Int(IntTy::U32)).unwrap();
        assert_eq!(back, Value::Int(0x0403_0201, IntTy::U32));
    }

    #[test]
    fn tuple_roundtrip() {
        let p = prog();
        let ty = Ty::Tuple(vec![Ty::Int(IntTy::U8), Ty::Int(IntTy::U16)]);
        let v = Value::Tuple(vec![Value::Int(9, IntTy::U8), Value::Int(300, IntTy::U16)]);
        let bytes = to_bytes(&p, &v, &ty).unwrap();
        assert_eq!(bytes.len(), 3);
        assert_eq!(from_bytes(&p, &bytes, &ty).unwrap(), v);
    }

    #[test]
    fn render_is_address_free() {
        let ptr = Value::Ptr(Pointer::with_prov(AllocId(1), 1, 0xdead, Ty::Bool));
        assert_eq!(ptr.render(), "<ptr>");
        assert_eq!(Value::Int(-3, IntTy::I8).render(), "-3");
        assert_eq!(
            Value::Tuple(vec![Value::Bool(true), Value::Unit]).render(),
            "(true, ())"
        );
    }
}
