//! The pluggable oracle seam: every layer that needs a UB verdict judges
//! programs through the object-safe [`Oracle`] trait instead of calling
//! [`run_program`] directly.
//!
//! The indirection is the architectural point, not the default behaviour:
//! [`DirectOracle`] is a zero-cost wrapper over the interpreter, while
//! other crates plug in caching (`rb_engine`'s `CachedOracle` over the
//! sharded content-addressed cache) or — in the future — a real Miri
//! subprocess or a remote oracle service, without any caller changing.
//!
//! Two invariants every implementation must uphold:
//!
//! 1. **Purity** — `judge` returns the verdict [`run_program`] would
//!    return for the same program, bit for bit. Implementations may
//!    change *when* the interpreter runs (memoisation, batching), never
//!    *what* it reports. The repair pipelines rely on this for their
//!    determinism guarantees.
//! 2. **Thread safety** — oracles are shared across worker threads
//!    (`Send + Sync`), so all interior state must be synchronised.

use crate::diagnostics::MiriReport;
use crate::interp::run_program;
use rb_lang::Program;
use std::sync::Arc;

/// An object-safe judge of programs: the seam every repair layer runs its
/// oracle calls through.
///
/// ```
/// use rb_lang::parser::parse_program;
/// use rb_miri::{DirectOracle, Oracle};
///
/// let p = parse_program("fn main() { print(2i32 + 2i32); }").unwrap();
/// let oracle: &dyn Oracle = &DirectOracle;
/// assert!(oracle.judge(&p).passes());
/// ```
pub trait Oracle: Send + Sync {
    /// The oracle verdict for `program` — exactly what [`run_program`]
    /// would report, possibly served without executing the interpreter.
    fn judge(&self, program: &Program) -> Arc<MiriReport>;

    /// Like [`judge`], additionally reporting whether the verdict was
    /// served from a cache (`true`) or executed fresh (`false`), so
    /// callers can attribute the call in their telemetry.
    ///
    /// The default forwards to [`judge`] and reports an execution, which
    /// is correct for any implementation without memoisation.
    ///
    /// [`judge`]: Oracle::judge
    fn judge_counted(&self, program: &Program) -> (Arc<MiriReport>, bool) {
        (self.judge(program), false)
    }

    /// [`judge_counted`] with the attribution folded straight into a
    /// counter — the one-liner every repair loop wants.
    ///
    /// This default is also the observability seam: every judgement that
    /// flows through it opens an `oracle.judge` span (cached/executed
    /// and verdict-class tags) and records wall-clock latency into the
    /// process-wide registry. No implementation in the stack overrides
    /// it, so the fast path, slow path and rollback reverification are
    /// all covered through dynamic dispatch. Purely observational: the
    /// verdict and the `used` accounting are untouched.
    ///
    /// [`judge_counted`]: Oracle::judge_counted
    fn judge_recording(&self, program: &Program, used: &mut OracleUse) -> Arc<MiriReport> {
        let mut span = rb_obs::span("oracle.judge");
        let start = std::time::Instant::now();
        let (report, cached) = self.judge_counted(program);
        used.record(cached);
        let verdict = report.primary().map_or("pass", |e| e.class().label());
        let result = if cached { "cached" } else { "executed" };
        let m = rb_obs::metrics();
        m.counter_add(
            "rustbrain_oracle_judgements_total",
            Some(("result", result)),
            1,
        );
        m.observe(
            "rustbrain_oracle_judge_us",
            Some(("class", verdict)),
            start.elapsed().as_secs_f64() * 1e6,
            rb_obs::REAL_US_BUCKETS,
        );
        span.tag("cached", result);
        span.tag("verdict", verdict);
        report
    }
}

/// The zero-cost default oracle: every judgement runs the interpreter.
#[derive(Clone, Copy, Debug, Default)]
pub struct DirectOracle;

impl Oracle for DirectOracle {
    fn judge(&self, program: &Program) -> Arc<MiriReport> {
        Arc::new(run_program(program))
    }
}

/// Telemetry counter splitting oracle judgements into executed-fresh vs
/// served-from-cache (accumulated by the repair pipelines per repair, and
/// by the batch engine per batch).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OracleUse {
    /// Judgements that executed the interpreter.
    pub executed: usize,
    /// Judgements served from a cache.
    pub cached: usize,
    /// Judgements that never reached the oracle: the repair preflight
    /// vetoed the candidate on static evidence alone (`rb_lint`).
    pub prevetoed: usize,
}

impl OracleUse {
    /// Records one judgement from its cache flag (the second half of
    /// [`Oracle::judge_counted`]).
    pub fn record(&mut self, cached: bool) {
        if cached {
            self.cached += 1;
        } else {
            self.executed += 1;
        }
    }

    /// Total judgements recorded, including statically prevetoed ones.
    #[must_use]
    pub fn total(&self) -> usize {
        self.executed + self.cached + self.prevetoed
    }

    /// Folds another counter into this one.
    pub fn absorb(&mut self, other: OracleUse) {
        self.executed += other.executed;
        self.cached += other.cached;
        self.prevetoed += other.prevetoed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_lang::parser::parse_program;

    #[test]
    fn direct_oracle_matches_run_program() {
        let p = parse_program("fn main() { let z: i32 = 0; print(1 / z); }").unwrap();
        let via_trait = DirectOracle.judge(&p);
        assert_eq!(*via_trait, run_program(&p));
        let (report, cached) = DirectOracle.judge_counted(&p);
        assert_eq!(*report, *via_trait);
        assert!(!cached, "the direct oracle never serves from a cache");
        let mut used = OracleUse::default();
        assert_eq!(*DirectOracle.judge_recording(&p, &mut used), *via_trait);
        assert_eq!(
            used,
            OracleUse {
                executed: 1,
                ..OracleUse::default()
            }
        );
    }

    #[test]
    fn oracle_is_object_safe_and_shareable() {
        let oracle: Arc<dyn Oracle> = Arc::new(DirectOracle);
        let p = parse_program("fn main() { print(1i32); }").unwrap();
        std::thread::scope(|s| {
            for _ in 0..2 {
                let oracle = Arc::clone(&oracle);
                let p = &p;
                s.spawn(move || assert!(oracle.judge(p).passes()));
            }
        });
    }

    #[test]
    fn oracle_use_accounting() {
        let mut used = OracleUse::default();
        used.record(false);
        used.record(true);
        used.record(true);
        assert_eq!(
            used,
            OracleUse {
                executed: 1,
                cached: 2,
                ..OracleUse::default()
            }
        );
        assert_eq!(used.total(), 3);
        let mut sum = OracleUse::default();
        sum.absorb(used);
        sum.absorb(used);
        assert_eq!(sum.total(), 6);
    }
}
