//! # rb-miri — a Miri-style undefined-behaviour oracle
//!
//! This crate substitutes for the real [Miri](https://github.com/rust-lang/miri)
//! in the RustBrain reproduction: it interprets [`rb_lang::Program`]s over
//! an abstract memory model and reports classified diagnostics:
//!
//! - allocation tracking with liveness, layout and leak checks ([`memory`]),
//! - a simplified stacked-borrows aliasing model ([`borrows`]),
//! - pointer provenance (strict-provenance style) and validity invariants
//!   ([`value`]),
//! - a lockset-based data-race detector over deterministic fork-join
//!   threads ([`race`]),
//! - panic machinery (asserts, checked overflow, bounds, division),
//! - the interpreter tying it together ([`interp`]),
//! - the pluggable [`Oracle`] seam every repair layer judges programs
//!   through, with the zero-cost [`DirectOracle`] default ([`oracle`]).
//!
//! Diagnostics are bucketed into the fourteen UB classes the paper's
//! evaluation uses ([`diagnostics::UbClass`]).
//!
//! ## Example
//!
//! ```
//! use rb_lang::parser::parse_program;
//! use rb_miri::{run_program, UbClass};
//!
//! // A classic dangling pointer: address of a local escapes its scope.
//! let src = "fn main() {
//!     let p: *const i32 = 0 as *const i32;
//!     let q: *const i32 = p;
//!     { let x: i32 = 5; q = &raw const x; }
//!     unsafe { print(*q); }
//! }";
//! // (assignment to q of the inner pointer; x dies at scope end)
//! let prog = parse_program(src)?;
//! let report = rb_miri::run_program(&prog);
//! assert!(!report.passes());
//! assert_eq!(report.errors[0].class(), UbClass::DanglingPointer);
//! # Ok::<(), rb_lang::LangError>(())
//! ```

#![warn(missing_docs)]

pub mod borrows;
pub mod diagnostics;
pub mod interp;
pub mod memory;
pub mod oracle;
pub mod race;
pub mod value;

pub use diagnostics::{MiriError, MiriReport, UbClass, UbKind};
pub use interp::{run_program, run_with_config, MiriConfig};
pub use oracle::{DirectOracle, Oracle, OracleUse};
pub use value::{AllocId, Pointer, Value};
