//! The memory model: allocations with abstract bytes, liveness, bounds,
//! alignment and stacked-borrows enforcement.

use crate::borrows::{BorrowStack, PopInfo, RetagKind};
use crate::diagnostics::UbKind;
use crate::value::{AbByte, AllocId, BorTag};
use std::collections::HashMap;

/// What kind of memory an allocation is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocKind {
    /// A stack slot of a local variable.
    Stack,
    /// Heap memory from `alloc`/`box_new`.
    Heap,
    /// Backing store of a `static`.
    Static,
}

/// Why an allocation is no longer accessible.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeadReason {
    /// Explicitly deallocated.
    Freed,
    /// Its lexical scope or stack frame ended.
    ScopeEnded,
}

/// One allocation.
#[derive(Clone, Debug)]
pub struct Allocation {
    /// Kind of memory.
    pub kind: AllocKind,
    /// Size in bytes.
    pub size: usize,
    /// Required alignment.
    pub align: usize,
    /// Base (virtual) address.
    pub base: u64,
    /// Liveness; dead allocations keep their metadata for diagnostics.
    pub live: bool,
    /// Why the allocation died, when dead.
    pub dead_reason: Option<DeadReason>,
    /// Bytes.
    pub bytes: Vec<AbByte>,
    /// Stacked-borrows state.
    pub stack: BorrowStack,
}

/// The machine's memory.
#[derive(Debug, Default)]
pub struct Memory {
    allocs: Vec<Allocation>,
    next_base: u64,
    next_tag: BorTag,
    /// Tombstones of popped borrow-stack items, for diagnosis.
    pub popped: HashMap<BorTag, PopInfo>,
}

/// Result of a memory operation.
pub type MemResult<T> = Result<T, UbKind>;

impl Memory {
    /// Creates an empty memory.
    #[must_use]
    pub fn new() -> Memory {
        Memory {
            next_base: 0x1000,
            next_tag: 1,
            ..Memory::default()
        }
    }

    fn fresh_tag(&mut self) -> BorTag {
        let t = self.next_tag;
        self.next_tag += 1;
        t
    }

    /// Allocates `size` bytes with `align`, returning the id, base borrow
    /// tag and base address.
    pub fn allocate(
        &mut self,
        kind: AllocKind,
        size: usize,
        align: usize,
    ) -> (AllocId, BorTag, u64) {
        let align = align.max(1);
        let base = self.next_base.div_ceil(align as u64) * align as u64;
        self.next_base = base + size.max(1) as u64 + 32; // guard gap
        let tag = self.fresh_tag();
        let id = AllocId(self.allocs.len() as u32);
        self.allocs.push(Allocation {
            kind,
            size,
            align,
            base,
            live: true,
            dead_reason: None,
            bytes: vec![AbByte::Uninit; size],
            stack: BorrowStack::new(tag),
        });
        (id, tag, base)
    }

    /// Immutable allocation accessor.
    #[must_use]
    pub fn alloc(&self, id: AllocId) -> Option<&Allocation> {
        self.allocs.get(id.0 as usize)
    }

    fn alloc_mut(&mut self, id: AllocId) -> Option<&mut Allocation> {
        self.allocs.get_mut(id.0 as usize)
    }

    /// All live heap allocations (for the leak check).
    #[must_use]
    pub fn live_heap_allocs(&self) -> Vec<AllocId> {
        self.allocs
            .iter()
            .enumerate()
            .filter(|(_, a)| a.live && a.kind == AllocKind::Heap)
            .map(|(i, _)| AllocId(i as u32))
            .collect()
    }

    /// Finds the allocation containing an absolute address, if any.
    #[must_use]
    pub fn alloc_at(&self, addr: u64) -> Option<AllocId> {
        self.allocs.iter().enumerate().find_map(|(i, a)| {
            if addr >= a.base && addr < a.base + a.size.max(1) as u64 {
                Some(AllocId(i as u32))
            } else {
                None
            }
        })
    }

    /// Deallocates, enforcing layout agreement and single-free.
    ///
    /// # Errors
    ///
    /// [`UbKind::DoubleFree`], [`UbKind::BadDealloc`], or
    /// [`UbKind::UseAfterScope`]-adjacent errors via bad ids.
    pub fn deallocate(&mut self, id: AllocId, size: usize, align: usize) -> MemResult<()> {
        let a = self.alloc_mut(id).ok_or(UbKind::UseAfterFree)?;
        if !a.live {
            return Err(UbKind::DoubleFree);
        }
        if a.kind != AllocKind::Heap {
            return Err(UbKind::BadDealloc);
        }
        if a.size != size || a.align != align {
            return Err(UbKind::BadDealloc);
        }
        a.live = false;
        a.dead_reason = Some(DeadReason::Freed);
        Ok(())
    }

    /// Kills a stack allocation at scope/frame end.
    pub fn kill_stack_slot(&mut self, id: AllocId) {
        if let Some(a) = self.alloc_mut(id) {
            if a.live {
                a.live = false;
                a.dead_reason = Some(DeadReason::ScopeEnded);
            }
        }
    }

    /// Validates an access (liveness, bounds, alignment, stacked borrows),
    /// without touching bytes. `offset` is in bytes from the base.
    ///
    /// # Errors
    ///
    /// The precise [`UbKind`] of whichever check fails first.
    pub fn check_access(
        &mut self,
        id: AllocId,
        tag: BorTag,
        offset: i64,
        len: usize,
        required_align: usize,
        write: bool,
    ) -> MemResult<()> {
        let popped = &mut self.popped;
        let a = self
            .allocs
            .get_mut(id.0 as usize)
            .ok_or(UbKind::UseAfterFree)?;
        if !a.live {
            return Err(match a.dead_reason {
                Some(DeadReason::ScopeEnded) => UbKind::UseAfterScope,
                _ => UbKind::UseAfterFree,
            });
        }
        if offset < 0 || (offset as usize) + len > a.size {
            return Err(UbKind::OutOfBounds);
        }
        let addr = a.base + offset as u64;
        if required_align > 1 && addr % required_align as u64 != 0 {
            return Err(UbKind::UnalignedAccess);
        }
        a.stack.access(tag, write, popped)
    }

    /// Reads `len` raw bytes after validating the access.
    ///
    /// # Errors
    ///
    /// Propagates [`Memory::check_access`] failures.
    pub fn read_bytes(
        &mut self,
        id: AllocId,
        tag: BorTag,
        offset: i64,
        len: usize,
        required_align: usize,
    ) -> MemResult<Vec<AbByte>> {
        self.check_access(id, tag, offset, len, required_align, false)?;
        let a = self.alloc(id).expect("validated");
        Ok(a.bytes[offset as usize..offset as usize + len].to_vec())
    }

    /// Writes raw bytes after validating the access.
    ///
    /// # Errors
    ///
    /// Propagates [`Memory::check_access`] failures.
    pub fn write_bytes(
        &mut self,
        id: AllocId,
        tag: BorTag,
        offset: i64,
        bytes: &[AbByte],
        required_align: usize,
    ) -> MemResult<()> {
        self.check_access(id, tag, offset, bytes.len(), required_align, true)?;
        let a = self.alloc_mut(id).expect("validated");
        a.bytes[offset as usize..offset as usize + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Retags: derives a new borrow from `parent` on allocation `id`.
    ///
    /// # Errors
    ///
    /// Stacked-borrows violations from the underlying stack.
    pub fn retag(&mut self, id: AllocId, parent: BorTag, kind: RetagKind) -> MemResult<BorTag> {
        let fresh = self.fresh_tag();
        let popped = &mut self.popped;
        let a = self
            .allocs
            .get_mut(id.0 as usize)
            .ok_or(UbKind::UseAfterFree)?;
        if !a.live {
            return Err(match a.dead_reason {
                Some(DeadReason::ScopeEnded) => UbKind::UseAfterScope,
                _ => UbKind::UseAfterFree,
            });
        }
        a.stack.retag(parent, kind, fresh, popped)?;
        Ok(fresh)
    }

    /// Number of allocations ever made (dead ones included).
    #[must_use]
    pub fn alloc_count(&self) -> usize {
        self.allocs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_rw() {
        let mut m = Memory::new();
        let (id, tag, base) = m.allocate(AllocKind::Heap, 8, 8);
        assert_eq!(base % 8, 0);
        let data = vec![AbByte::Init(0xAB, None); 4];
        m.write_bytes(id, tag, 0, &data, 4).unwrap();
        let back = m.read_bytes(id, tag, 0, 4, 4).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn uninit_preserved() {
        let mut m = Memory::new();
        let (id, tag, _) = m.allocate(AllocKind::Heap, 4, 4);
        let b = m.read_bytes(id, tag, 0, 4, 1).unwrap();
        assert!(b.iter().all(|x| matches!(x, AbByte::Uninit)));
    }

    #[test]
    fn out_of_bounds_detected() {
        let mut m = Memory::new();
        let (id, tag, _) = m.allocate(AllocKind::Heap, 4, 4);
        assert_eq!(m.read_bytes(id, tag, 2, 4, 1), Err(UbKind::OutOfBounds));
        assert_eq!(m.read_bytes(id, tag, -1, 1, 1), Err(UbKind::OutOfBounds));
    }

    #[test]
    fn unaligned_detected() {
        let mut m = Memory::new();
        let (id, tag, _) = m.allocate(AllocKind::Heap, 8, 8);
        assert_eq!(m.read_bytes(id, tag, 1, 4, 4), Err(UbKind::UnalignedAccess));
        assert!(m.read_bytes(id, tag, 4, 4, 4).is_ok());
    }

    #[test]
    fn use_after_free() {
        let mut m = Memory::new();
        let (id, tag, _) = m.allocate(AllocKind::Heap, 4, 4);
        m.deallocate(id, 4, 4).unwrap();
        assert_eq!(m.read_bytes(id, tag, 0, 1, 1), Err(UbKind::UseAfterFree));
    }

    #[test]
    fn double_free() {
        let mut m = Memory::new();
        let (id, _, _) = m.allocate(AllocKind::Heap, 4, 4);
        m.deallocate(id, 4, 4).unwrap();
        assert_eq!(m.deallocate(id, 4, 4), Err(UbKind::DoubleFree));
    }

    #[test]
    fn bad_layout_dealloc() {
        let mut m = Memory::new();
        let (id, _, _) = m.allocate(AllocKind::Heap, 8, 8);
        assert_eq!(m.deallocate(id, 4, 8), Err(UbKind::BadDealloc));
        assert_eq!(m.deallocate(id, 8, 4), Err(UbKind::BadDealloc));
        assert!(m.deallocate(id, 8, 8).is_ok());
    }

    #[test]
    fn stack_slot_death_classified() {
        let mut m = Memory::new();
        let (id, tag, _) = m.allocate(AllocKind::Stack, 4, 4);
        m.kill_stack_slot(id);
        assert_eq!(m.read_bytes(id, tag, 0, 1, 1), Err(UbKind::UseAfterScope));
    }

    #[test]
    fn dealloc_stack_is_bad() {
        let mut m = Memory::new();
        let (id, _, _) = m.allocate(AllocKind::Stack, 4, 4);
        assert_eq!(m.deallocate(id, 4, 4), Err(UbKind::BadDealloc));
    }

    #[test]
    fn retag_and_alias_violation() {
        let mut m = Memory::new();
        let (id, base, _) = m.allocate(AllocKind::Stack, 4, 4);
        let r1 = m.retag(id, base, RetagKind::Mut).unwrap();
        let r2 = m.retag(id, base, RetagKind::Mut).unwrap();
        // r1 was popped by r2's retag: both-borrows conflict.
        assert_eq!(
            m.check_access(id, r1, 0, 4, 1, true),
            Err(UbKind::ConflictingMutBorrows)
        );
        assert!(m.check_access(id, r2, 0, 4, 1, true).is_ok());
    }

    #[test]
    fn alloc_at_finds_allocation() {
        let mut m = Memory::new();
        let (id, _, base) = m.allocate(AllocKind::Heap, 16, 8);
        assert_eq!(m.alloc_at(base + 3), Some(id));
        assert_eq!(m.alloc_at(base + 16), None);
    }

    #[test]
    fn leak_listing() {
        let mut m = Memory::new();
        let (a, _, _) = m.allocate(AllocKind::Heap, 4, 4);
        let (_s, _, _) = m.allocate(AllocKind::Stack, 4, 4);
        assert_eq!(m.live_heap_allocs(), vec![a]);
        m.deallocate(a, 4, 4).unwrap();
        assert!(m.live_heap_allocs().is_empty());
    }
}
