//! End-to-end oracle tests: one (or more) programs per UB class, verifying
//! that the interpreter detects and classifies each kind of undefined
//! behaviour, plus positive tests that correct programs pass.

use rb_lang::parser::parse_program;
use rb_miri::interp::{run_with_config, MiriConfig};
use rb_miri::{run_program, MiriReport, UbClass, UbKind};

fn run(src: &str) -> MiriReport {
    let prog = parse_program(src).unwrap_or_else(|e| panic!("parse failed: {e}\n{src}"));
    run_program(&prog)
}

fn assert_class(src: &str, class: UbClass) {
    let r = run(src);
    assert!(
        r.errors.iter().any(|e| e.class() == class),
        "expected {class}, got {:?}\noutputs={:?}",
        r.errors,
        r.outputs
    );
}

// ---- passing programs -------------------------------------------------------

#[test]
fn clean_program_passes() {
    let r = run("fn main() { let x: i32 = 2; print(x * 21); }");
    assert!(r.passes(), "{:?}", r.errors);
    assert_eq!(r.outputs, vec!["42"]);
    assert!(r.completed);
}

#[test]
fn safe_heap_roundtrip_passes() {
    let r = run(
        "fn main() { unsafe { let p: *mut u8 = alloc(4usize, 4usize); \
         ptr_write::<i32>(p as *mut i32, 7i32); \
         print(ptr_read::<i32>(p as *const i32)); \
         dealloc(p, 4usize, 4usize); } }",
    );
    assert!(r.passes(), "{:?}", r.errors);
    assert_eq!(r.outputs, vec!["7"]);
}

#[test]
fn box_lifecycle_passes() {
    let r = run(
        "fn main() { let b: Box<i32> = box_new::<i32>(11i32); print(*b); drop_box::<i32>(b); }",
    );
    assert!(r.passes(), "{:?}", r.errors);
    assert_eq!(r.outputs, vec!["11"]);
}

#[test]
fn function_calls_and_control_flow() {
    let r = run("fn fib(n: i32) -> i32 { if n < 2 { return n; } \
         return fib(n - 1) + fib(n - 2); } \
         fn main() { print(fib(10)); }");
    assert!(r.passes(), "{:?}", r.errors);
    assert_eq!(r.outputs, vec!["55"]);
}

#[test]
fn while_loop_accumulates() {
    let r = run("fn main() { let i: i32 = 0; let acc: i32 = 0; \
         while i < 5 { acc = acc + i; i = i + 1; } print(acc); }");
    assert!(r.passes(), "{:?}", r.errors);
    assert_eq!(r.outputs, vec!["10"]);
}

#[test]
fn synchronised_threads_pass() {
    let r = run("static mut G: i32 = 0; fn main() { \
         spawn { lock(1) { unsafe { G = G + 1; } } } \
         spawn { lock(1) { unsafe { G = G + 1; } } } \
         join; unsafe { print(G); } }");
    assert!(r.passes(), "{:?}", r.errors);
    assert_eq!(r.outputs, vec!["2"]);
}

#[test]
fn atomics_pass() {
    let r = run("static mut C: i32 = 0; fn main() { \
         spawn { atomic_store(C, 5i32); } \
         spawn { print(atomic_load(C)); } \
         join; }");
    assert!(r.passes(), "{:?}", r.errors);
}

// ---- dangling pointers ------------------------------------------------------

#[test]
fn dangling_scope_escape() {
    assert_class(
        "fn main() { let q: *const i32 = 0 as *const i32; \
         { let x: i32 = 5; q = &raw const x; } \
         unsafe { print(*q); } }",
        UbClass::DanglingPointer,
    );
}

#[test]
fn use_after_free_detected() {
    assert_class(
        "fn main() { unsafe { let p: *mut u8 = alloc(4usize, 4usize); \
         dealloc(p, 4usize, 4usize); \
         print(ptr_read::<u8>(p as *const u8)); } }",
        UbClass::DanglingPointer,
    );
}

#[test]
fn oob_offset_detected() {
    assert_class(
        "fn main() { unsafe { let p: *mut u8 = alloc(4usize, 4usize); \
         let q: *mut u8 = ptr_offset::<u8>(p, 8i32); \
         print(ptr_read::<u8>(q)); dealloc(p, 4usize, 4usize); } }",
        UbClass::DanglingPointer,
    );
}

// ---- alloc ------------------------------------------------------------------

#[test]
fn double_free_detected() {
    assert_class(
        "fn main() { unsafe { let p: *mut u8 = alloc(4usize, 4usize); \
         dealloc(p, 4usize, 4usize); dealloc(p, 4usize, 4usize); } }",
        UbClass::Alloc,
    );
}

#[test]
fn layout_mismatch_detected() {
    assert_class(
        "fn main() { unsafe { let p: *mut u8 = alloc(8usize, 8usize); \
         dealloc(p, 4usize, 8usize); } }",
        UbClass::Alloc,
    );
}

#[test]
fn leak_detected() {
    assert_class(
        "fn main() { unsafe { let p: *mut u8 = alloc(16usize, 8usize); print(1i32); } }",
        UbClass::Alloc,
    );
}

// ---- unaligned --------------------------------------------------------------

#[test]
fn unaligned_read_detected() {
    assert_class(
        "fn main() { unsafe { let p: *mut u8 = alloc(8usize, 8usize); \
         let q: *mut u8 = ptr_offset::<u8>(p, 1i32); \
         print(ptr_read::<u32>(q as *const u32)); \
         dealloc(p, 8usize, 8usize); } }",
        UbClass::Unaligned,
    );
}

// ---- validity ---------------------------------------------------------------

#[test]
fn invalid_bool_detected() {
    assert_class(
        "fn main() { unsafe { let b: bool = transmute::<u8, bool>(2u8); print(b); } }",
        UbClass::Validity,
    );
}

#[test]
fn transmute_size_mismatch_detected() {
    assert_class(
        "fn main() { unsafe { let x: u32 = transmute::<u16, u32>(5u16); print(x); } }",
        UbClass::Validity,
    );
}

#[test]
fn int_to_ref_invalid() {
    assert_class(
        "fn main() { unsafe { let r: &i32 = transmute::<usize, &i32>(64usize); print(*r); } }",
        UbClass::Validity,
    );
}

// ---- uninit -----------------------------------------------------------------

#[test]
fn uninit_read_detected() {
    assert_class(
        "fn main() { unsafe { let p: *mut u8 = alloc(4usize, 4usize); \
         print(ptr_read::<i32>(p as *const i32)); dealloc(p, 4usize, 4usize); } }",
        UbClass::Uninit,
    );
}

// ---- provenance ---------------------------------------------------------------

#[test]
fn int_roundtrip_loses_provenance() {
    assert_class(
        "fn main() { let x: i32 = 5; \
         unsafe { let p: *const i32 = &raw const x; \
         let a: usize = p as usize; \
         let q: *const i32 = a as *const i32; \
         print(*q); } }",
        UbClass::Provenance,
    );
}

// ---- stacked borrows / both borrows -----------------------------------------

#[test]
fn write_invalidates_raw() {
    assert_class(
        "fn main() { let x: i32 = 1; \
         unsafe { let p: *mut i32 = &raw mut x; \
         x = 2; \
         print(ptr_read::<i32>(p as *const i32)); } }",
        UbClass::StackBorrow,
    );
}

#[test]
fn conflicting_mut_borrows() {
    assert_class(
        "fn main() { let x: i32 = 1; \
         unsafe { let a: &mut i32 = &mut x; let b: &mut i32 = &mut x; \
         *a = 3; print(*a); } }",
        UbClass::BothBorrow,
    );
}

// ---- data race / concurrency --------------------------------------------------

#[test]
fn static_race_detected() {
    assert_class(
        "static mut G: i32 = 0; fn main() { \
         spawn { unsafe { G = 1; } } \
         spawn { unsafe { G = 2; } } \
         join; }",
        UbClass::DataRace,
    );
}

#[test]
fn heap_race_is_concurrency() {
    assert_class(
        "fn main() { unsafe { let p: *mut u8 = alloc(4usize, 4usize); \
         ptr_write::<i32>(p as *mut i32, 0i32); \
         spawn { unsafe { ptr_write::<i32>(p as *mut i32, 1i32); } } \
         spawn { unsafe { ptr_write::<i32>(p as *mut i32, 2i32); } } \
         join; dealloc(p, 4usize, 4usize); } }",
        UbClass::Concurrency,
    );
}

// ---- func.call ----------------------------------------------------------------

#[test]
fn unchecked_overflow_detected() {
    assert_class(
        "fn main() { unsafe { print(unchecked_add::<i32>(2147483647i32, 1i32)); } }",
        UbClass::FuncCall,
    );
}

#[test]
fn assume_init_contract_violation() {
    assert_class(
        "fn main() { unsafe { let p: *mut u8 = alloc(4usize, 4usize); \
         print(assume_init_read::<i32>(p as *const i32)); \
         dealloc(p, 4usize, 4usize); } }",
        UbClass::FuncCall,
    );
}

// ---- func.pointer ---------------------------------------------------------------

#[test]
fn forged_fn_ptr_detected() {
    assert_class(
        "fn main() { unsafe { \
         let f: fn(i32) -> i32 = transmute::<usize, fn(i32) -> i32>(4096usize); \
         print((f)(1)); } }",
        UbClass::FuncPointer,
    );
}

#[test]
fn wrong_signature_fn_ptr() {
    assert_class(
        "fn g(x: i32, y: i32) -> i32 { return x + y; } \
         fn main() { unsafe { \
         let f: fn(i32) -> i32 = transmute::<fn(i32, i32) -> i32, fn(i32) -> i32>(g); \
         print((f)(1)); } }",
        UbClass::FuncPointer,
    );
}

// ---- tail calls -----------------------------------------------------------------

#[test]
fn tail_call_mismatch() {
    assert_class(
        "fn helper(x: i32, y: i32) -> i32 { return x + y; } \
         fn run(x: i32) -> i32 { tailcall helper(x, 1); } \
         fn main() { print(run(1)); }",
        UbClass::TailCall,
    );
}

#[test]
fn tail_call_matching_passes() {
    let r = run("fn helper(x: i32) -> i32 { return x + 1; } \
         fn run(x: i32) -> i32 { tailcall helper(x); } \
         fn main() { print(run(1)); }");
    assert!(r.passes(), "{:?}", r.errors);
    assert_eq!(r.outputs, vec!["2"]);
}

// ---- panic ----------------------------------------------------------------------

#[test]
fn assert_failure_is_panic() {
    assert_class(
        "fn main() { let x: i32 = 3; assert(x > 5, \"x too small\"); print(x); }",
        UbClass::Panic,
    );
}

#[test]
fn division_by_zero_is_panic() {
    assert_class(
        "fn main() { let z: i32 = 0; print(5 / z); }",
        UbClass::Panic,
    );
}

#[test]
fn index_oob_is_panic() {
    assert_class(
        "fn main() { let a: [i32; 3] = [1, 2, 3]; let i: i32 = 5; print(a[i]); }",
        UbClass::Panic,
    );
}

#[test]
fn overflow_is_panic() {
    assert_class(
        "fn main() { let x: i32 = 2147483647; print(x + 1); }",
        UbClass::Panic,
    );
}

// ---- unions ----------------------------------------------------------------------

#[test]
fn union_type_pun_works() {
    let r = run("union Bits { i: i32, u: u32 } \
         fn main() { let b: Bits = Bits { i: -1 }; unsafe { print(b.u); } }");
    assert!(r.passes(), "{:?}", r.errors);
    assert_eq!(r.outputs, vec!["4294967295"]);
}

#[test]
fn union_uninit_tail_read() {
    // Writing the small field then reading the large one hits uninit bytes.
    assert_class(
        "union Mix { small: u8, big: u32 } \
         fn main() { let m: Mix = Mix { small: 1u8 }; unsafe { print(m.big); } }",
        UbClass::Uninit,
    );
}

// ---- compile-stage gating ----------------------------------------------------------

#[test]
fn ill_formed_program_reports_compile() {
    let prog = parse_program("fn main() { print(*undefined_ptr); }").unwrap();
    let r = run_program(&prog);
    assert!(r.errors.iter().all(|e| e.kind == UbKind::IllFormed));
    assert_eq!(r.errors[0].class(), UbClass::Compile);
}

#[test]
fn missing_unsafe_reports_compile() {
    let prog =
        parse_program("fn main() { let x: i32 = 1; let p: *const i32 = &raw const x; print(*p); }")
            .unwrap();
    let r = run_program(&prog);
    assert!(!r.passes());
    assert_eq!(r.errors[0].kind, UbKind::IllFormed);
}

// ---- machine behaviour ---------------------------------------------------------------

#[test]
fn multiple_errors_recovered() {
    // Two independent UB statements at main's top level -> two diagnostics.
    let r = run(
        "fn main() { unsafe { print(unchecked_add::<i32>(2147483647i32, 1i32)); } \
         unsafe { print(unchecked_mul::<i32>(2000000000i32, 4i32)); } \
         print(9i32); }",
    );
    assert_eq!(r.error_count(), 2, "{:?}", r.errors);
    // Execution continued to the final print.
    assert_eq!(r.outputs, vec!["9"]);
}

#[test]
fn infinite_loop_hits_budget() {
    let prog = parse_program("fn main() { while true { print(1i32); } }").unwrap();
    let cfg = MiriConfig {
        step_budget: 5_000,
        ..MiriConfig::default()
    };
    let r = run_with_config(&prog, &cfg);
    assert!(r.errors.iter().any(|e| e.kind == UbKind::ResourceExhausted));
}

#[test]
fn leak_detection_can_be_disabled() {
    let prog = parse_program(
        "fn main() { unsafe { let p: *mut u8 = alloc(4usize, 4usize); print(1i32); } }",
    )
    .unwrap();
    let cfg = MiriConfig {
        detect_leaks: false,
        ..MiriConfig::default()
    };
    assert!(run_with_config(&prog, &cfg).passes());
}

#[test]
fn outputs_deterministic_across_runs() {
    let src = "fn main() { let i: i32 = 0; while i < 3 { print(i); i = i + 1; } }";
    let a = run(src);
    let b = run(src);
    assert_eq!(a.outputs, b.outputs);
    assert_eq!(a.steps, b.steps);
}

#[test]
fn copy_nonoverlapping_overlap_detected() {
    assert_class(
        "fn main() { unsafe { let p: *mut u8 = alloc(8usize, 8usize); \
         let q: *mut u8 = ptr_offset::<u8>(p, 2i32); \
         copy_nonoverlapping::<u8>(p, q, 4usize); \
         dealloc(p, 8usize, 8usize); } }",
        UbClass::FuncCall,
    );
}

#[test]
fn abort_stops_cleanly() {
    let r = run("fn main() { print(1i32); abort(); print(2i32); }");
    assert!(r.passes(), "{:?}", r.errors);
    assert_eq!(r.outputs, vec!["1"]);
}

#[test]
fn gold_style_repairs_pass() {
    // The paper's Fig. 3 examples, repaired: as-cast instead of transmute,
    // from_le_bytes instead of transmute.
    let r = run(
        "fn main() { let v: i32 = 0; let p: *const i32 = &raw const v; \
         let a: usize = p as usize; print(a > 0usize); \
         let n1: [u8; 4] = [23u8, 7u8, 0u8, 0u8]; \
         let n2: u32 = from_le_bytes::<u32>(n1); print(n2); }",
    );
    assert!(r.passes(), "{:?}", r.errors);
    assert_eq!(r.outputs, vec!["true", "1815"]);
}
