//! Executable semantics of the IR: value-level behaviour of every
//! construct the corpus relies on, independent of UB detection. These are
//! the tests that pin down "what does this program print", so dataset gold
//! outputs are trustworthy.

use rb_lang::parser::parse_program;
use rb_miri::{run_program, MiriReport};

fn outputs(src: &str) -> Vec<String> {
    let r = run(src);
    assert!(r.passes(), "unexpected errors: {:?}\n{src}", r.errors);
    r.outputs
}

fn run(src: &str) -> MiriReport {
    let p = parse_program(src).unwrap_or_else(|e| panic!("parse: {e}\n{src}"));
    run_program(&p)
}

#[test]
fn arithmetic_and_precedence() {
    assert_eq!(outputs("fn main() { print(2 + 3 * 4); }"), vec!["14"]);
    assert_eq!(outputs("fn main() { print((2 + 3) * 4); }"), vec!["20"]);
    assert_eq!(outputs("fn main() { print(7 / 2); }"), vec!["3"]);
    assert_eq!(outputs("fn main() { print(7 % 3); }"), vec!["1"]);
    assert_eq!(outputs("fn main() { print(-5 + 3); }"), vec!["-2"]);
}

#[test]
fn bitwise_and_shifts() {
    assert_eq!(outputs("fn main() { print(6 & 3); }"), vec!["2"]);
    assert_eq!(outputs("fn main() { print(6 | 3); }"), vec!["7"]);
    assert_eq!(outputs("fn main() { print(6 ^ 3); }"), vec!["5"]);
    assert_eq!(outputs("fn main() { print(1 << 4); }"), vec!["16"]);
    assert_eq!(outputs("fn main() { print(32 >> 2); }"), vec!["8"]);
}

#[test]
fn comparisons_and_logic() {
    assert_eq!(
        outputs("fn main() { print(1 < 2); print(2 <= 2); print(3 > 4); }"),
        vec!["true", "true", "false"]
    );
    assert_eq!(
        outputs("fn main() { let t: bool = true; print(t && false); print(t || false); }"),
        vec!["false", "true"]
    );
    // Short-circuiting: the divide-by-zero on the right must never run.
    assert_eq!(
        outputs("fn main() { let z: i32 = 0; if false && 1 / z > 0 { print(1); } print(2); }"),
        vec!["2"]
    );
}

#[test]
fn integer_type_wrapping_casts() {
    assert_eq!(outputs("fn main() { print(300 as u8); }"), vec!["44"]);
    assert_eq!(outputs("fn main() { print(-1 as u8); }"), vec!["255"]);
    assert_eq!(outputs("fn main() { print(255u8 as i8); }"), vec!["-1"]);
    assert_eq!(outputs("fn main() { print(true as i32); }"), vec!["1"]);
}

#[test]
fn control_flow() {
    assert_eq!(
        outputs(
            "fn main() { let i: i32 = 0; let acc: i32 = 0; \
             while i < 10 { if i % 2 == 0 { acc = acc + i; } i = i + 1; } print(acc); }"
        ),
        vec!["20"]
    );
    assert_eq!(
        outputs(
            "fn sign(x: i32) -> i32 { if x > 0 { return 1; } else { return -1; } } \
                 fn main() { print(sign(5)); print(sign(-5)); }"
        ),
        vec!["1", "-1"]
    );
}

#[test]
fn functions_recursion_and_early_return() {
    assert_eq!(
        outputs(
            "fn fact(n: i32) -> i32 { if n <= 1 { return 1; } return n * fact(n - 1); } \
             fn main() { print(fact(6)); }"
        ),
        vec!["720"]
    );
    assert_eq!(
        outputs("fn f() -> i32 { return 9; print(1); } fn main() { print(f()); }"),
        vec!["9"]
    );
}

#[test]
fn arrays_tuples_and_fields() {
    assert_eq!(
        outputs("fn main() { let a: [i32; 3] = [10, 20, 30]; print(a[0] + a[2]); }"),
        vec!["40"]
    );
    assert_eq!(
        outputs("fn main() { let a: [u8; 4] = [7u8; 4]; print(a[3]); }"),
        vec!["7"]
    );
    assert_eq!(
        outputs("fn main() { let t: (i32, bool) = (5, true); print(t.0); print(t.1); }"),
        vec!["5", "true"]
    );
    assert_eq!(
        outputs("fn main() { let a: [i32; 2] = [1, 2]; a[1] = 9; print(a[1]); }"),
        vec!["9"]
    );
}

#[test]
fn references_read_and_write() {
    assert_eq!(
        outputs("fn main() { let x: i32 = 3; let r: &i32 = &x; print(*r); }"),
        vec!["3"]
    );
    assert_eq!(
        outputs("fn main() { let x: i32 = 3; let r: &mut i32 = &mut x; *r = 8; print(*r); }"),
        vec!["8"]
    );
}

#[test]
fn raw_pointer_roundtrips() {
    assert_eq!(
        outputs(
            "fn main() { let x: i32 = 41; unsafe { \
             let p: *mut i32 = &raw mut x; \
             ptr_write::<i32>(p, ptr_read::<i32>(p as *const i32) + 1); \
             print(ptr_read::<i32>(p as *const i32)); } }"
        ),
        vec!["42"]
    );
}

#[test]
fn heap_and_boxes() {
    assert_eq!(
        outputs(
            "fn main() { let b: Box<i32> = box_new::<i32>(5); \
             let rp: *mut i32 = box_into_raw::<i32>(b); \
             unsafe { ptr_write::<i32>(rp, 6); \
             let back: Box<i32> = box_from_raw::<i32>(rp); \
             print(*back); drop_box::<i32>(back); } }"
        ),
        vec!["6"]
    );
}

#[test]
fn transmutes_that_are_defined() {
    assert_eq!(
        outputs("fn main() { unsafe { print(transmute::<i32, u32>(-1)); } }"),
        vec!["4294967295"]
    );
    assert_eq!(
        outputs(
            "fn main() { let a: [u8; 4] = [1u8, 0u8, 0u8, 0u8]; \
             unsafe { print(transmute::<[u8; 4], u32>(a)); } }"
        ),
        vec!["1"]
    );
}

#[test]
fn byte_conversions() {
    assert_eq!(
        outputs("fn main() { let a: [u8; 2] = [0u8, 1u8]; print(from_le_bytes::<u16>(a)); }"),
        vec!["256"]
    );
    assert_eq!(
        outputs(
            "fn main() { let b: [u8; 2] = to_le_bytes::<u16>(258u16); print(b[0]); print(b[1]); }"
        ),
        vec!["2", "1"]
    );
}

#[test]
fn unions_pun_bytes() {
    assert_eq!(
        outputs(
            "union Pun { i: i32, u: u32 } \
             fn main() { let p: Pun = Pun { i: -2 }; unsafe { print(p.u); } }"
        ),
        vec!["4294967294"]
    );
}

#[test]
fn statics_and_atomics() {
    assert_eq!(
        outputs(
            "static mut COUNT: i32 = 10; \
             fn main() { unsafe { COUNT = COUNT + 5; print(COUNT); } }"
        ),
        vec!["15"]
    );
    assert_eq!(
        outputs(
            "static mut FLAG: i32 = 0; \
             fn main() { atomic_store(FLAG, 3i32); print(atomic_load(FLAG)); }"
        ),
        vec!["3"]
    );
    assert_eq!(
        outputs("static LIMIT: i32 = 99; fn main() { print(LIMIT); }"),
        vec!["99"]
    );
}

#[test]
fn threads_run_lifo_at_join() {
    // Spawned blocks execute deterministically (last spawned first) at the
    // join point; outputs interleave accordingly.
    assert_eq!(
        outputs(
            "fn main() { print(0i32); \
             spawn { lock(1) { print(1i32); } } \
             spawn { lock(1) { print(2i32); } } \
             join; print(3i32); }"
        ),
        vec!["0", "2", "1", "3"]
    );
}

#[test]
fn thread_env_snapshot_by_value() {
    // The thread sees the value of `x` at spawn time, not at join time.
    assert_eq!(
        outputs(
            "fn main() { let x: i32 = 1; \
             spawn { print(x); } \
             x = 2; \
             join; print(x); }"
        ),
        vec!["1", "2"]
    );
}

#[test]
fn function_pointers() {
    assert_eq!(
        outputs(
            "fn double(x: i32) -> i32 { return x * 2; } \
             fn main() { let f: fn(i32) -> i32 = double; print((f)(21)); }"
        ),
        vec!["42"]
    );
}

#[test]
fn checked_builtins() {
    assert_eq!(
        outputs("fn main() { print(checked_add::<i32>(40, 2)); }"),
        vec!["42"]
    );
    let r = run("fn main() { print(checked_mul::<i32>(2000000000, 2)); }");
    assert!(!r.passes());
    assert_eq!(r.errors[0].kind, rb_miri::UbKind::PanicOverflow);
}

#[test]
fn copy_nonoverlapping_moves_bytes() {
    assert_eq!(
        outputs(
            "fn main() { unsafe { let p: *mut u8 = alloc(8usize, 4usize); \
             ptr_write::<i32>(p as *mut i32, 77i32); \
             copy_nonoverlapping::<u8>(p, ptr_offset::<u8>(p, 4i32), 4usize); \
             print(ptr_read::<i32>(ptr_offset::<u8>(p, 4i32) as *const i32)); \
             dealloc(p, 8usize, 4usize); } }"
        ),
        vec!["77"]
    );
}

#[test]
fn nested_scopes_shadowing_lifetimes() {
    assert_eq!(
        outputs("fn main() { let x: i32 = 1; { let x: i32 = 2; print(x); } print(x); }"),
        vec!["2", "1"]
    );
}

#[test]
fn unit_and_bool_printing() {
    assert_eq!(outputs("fn main() { print(()); }"), vec!["()"]);
    assert_eq!(
        outputs("fn main() { print((1, (2, false))); }"),
        vec!["(1, (2, false))"]
    );
}

#[test]
fn deep_recursion_hits_limit_cleanly() {
    let r = run("fn f(n: i32) -> i32 { return f(n + 1); } fn main() { print(f(0)); }");
    assert!(!r.passes());
    assert!(r
        .errors
        .iter()
        .any(|e| e.kind == rb_miri::UbKind::ResourceExhausted));
}

#[test]
fn negation_of_min_panics() {
    let r = run("fn main() { let m: i32 = -2147483648; print(-m); }");
    assert!(!r.passes());
    assert_eq!(r.errors[0].kind, rb_miri::UbKind::PanicOverflow);
}

#[test]
fn shift_overflow_panics() {
    let r = run("fn main() { print(1 << 40); }");
    assert!(!r.passes());
    assert_eq!(r.errors[0].kind, rb_miri::UbKind::PanicOverflow);
}

#[test]
fn remainder_by_zero_panics() {
    let r = run("fn main() { let z: i32 = 0; print(5 % z); }");
    assert!(!r.passes());
    assert_eq!(r.errors[0].kind, rb_miri::UbKind::PanicDivZero);
}

#[test]
fn pointer_comparison_by_address() {
    assert_eq!(
        outputs(
            "fn main() { let x: i32 = 1; unsafe { \
             let p: *const i32 = &raw const x; \
             let q: *const i32 = &raw const x; \
             print(p == q); } }"
        ),
        vec!["true"]
    );
}
