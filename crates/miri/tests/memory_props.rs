//! Property-based tests of the memory model: arbitrary sequences of
//! allocation/read/write/retag/dealloc operations must never panic, must
//! preserve written bytes, and must classify failures consistently.

use proptest::prelude::*;
use rb_miri::memory::{AllocKind, Memory};
use rb_miri::value::AbByte;

#[derive(Clone, Debug)]
enum Op {
    Alloc {
        size: usize,
        align_pow: u8,
    },
    Write {
        slot: usize,
        offset: i64,
        len: usize,
    },
    Read {
        slot: usize,
        offset: i64,
        len: usize,
    },
    Dealloc {
        slot: usize,
    },
    RetagRaw {
        slot: usize,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1usize..64, 0u8..4).prop_map(|(size, align_pow)| Op::Alloc { size, align_pow }),
        (0usize..8, -4i64..70, 0usize..16).prop_map(|(slot, offset, len)| Op::Write {
            slot,
            offset,
            len
        }),
        (0usize..8, -4i64..70, 0usize..16).prop_map(|(slot, offset, len)| Op::Read {
            slot,
            offset,
            len
        }),
        (0usize..8).prop_map(|slot| Op::Dealloc { slot }),
        (0usize..8).prop_map(|slot| Op::RetagRaw { slot }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// No operation sequence can panic the memory subsystem; every failure
    /// is a classified error value.
    #[test]
    fn memory_never_panics(ops in prop::collection::vec(op_strategy(), 0..60)) {
        let mut mem = Memory::new();
        let mut slots: Vec<(rb_miri::AllocId, u64, usize, usize)> = Vec::new();
        for op in ops {
            match op {
                Op::Alloc { size, align_pow } => {
                    let align = 1usize << align_pow;
                    let (id, tag, _) = mem.allocate(AllocKind::Heap, size, align);
                    slots.push((id, tag, size, align));
                }
                Op::Write { slot, offset, len } => {
                    if let Some((id, tag, ..)) = slots.get(slot).copied() {
                        let bytes = vec![AbByte::Init(0xAB, None); len];
                        let _ = mem.write_bytes(id, tag, offset, &bytes, 1);
                    }
                }
                Op::Read { slot, offset, len } => {
                    if let Some((id, tag, ..)) = slots.get(slot).copied() {
                        let _ = mem.read_bytes(id, tag, offset, len, 1);
                    }
                }
                Op::Dealloc { slot } => {
                    if let Some((id, _, size, align)) = slots.get(slot).copied() {
                        let _ = mem.deallocate(id, size, align);
                    }
                }
                Op::RetagRaw { slot } => {
                    if let Some((id, tag, ..)) = slots.get(slot).copied() {
                        let _ = mem.retag(id, tag, rb_miri::borrows::RetagKind::Raw);
                    }
                }
            }
        }
    }

    /// Bytes written in bounds through the base tag read back identically.
    #[test]
    fn write_read_roundtrip(size in 1usize..64, data in prop::collection::vec(any::<u8>(), 1..32)) {
        prop_assume!(data.len() <= size);
        let mut mem = Memory::new();
        let (id, tag, _) = mem.allocate(AllocKind::Heap, size, 8);
        let bytes: Vec<AbByte> = data.iter().map(|b| AbByte::Init(*b, None)).collect();
        mem.write_bytes(id, tag, 0, &bytes, 1).expect("in-bounds write");
        let back = mem.read_bytes(id, tag, 0, data.len(), 1).expect("in-bounds read");
        prop_assert_eq!(back, bytes);
    }

    /// Out-of-bounds accesses always fail, in-bounds base accesses always
    /// succeed (fresh allocation, base tag).
    #[test]
    fn bounds_are_exact(size in 1usize..64, offset in 0usize..128, len in 1usize..32) {
        let mut mem = Memory::new();
        let (id, tag, _) = mem.allocate(AllocKind::Heap, size, 1);
        let r = mem.read_bytes(id, tag, offset as i64, len, 1);
        if offset + len <= size {
            prop_assert!(r.is_ok(), "in-bounds read failed: {:?}", r);
        } else {
            prop_assert_eq!(r.unwrap_err(), rb_miri::UbKind::OutOfBounds);
        }
    }

    /// Double frees are always detected, whatever happened in between.
    #[test]
    fn double_free_always_detected(reads in prop::collection::vec((0i64..8, 1usize..4), 0..6)) {
        let mut mem = Memory::new();
        let (id, tag, _) = mem.allocate(AllocKind::Heap, 8, 8);
        for (off, len) in reads {
            let _ = mem.read_bytes(id, tag, off, len, 1);
        }
        mem.deallocate(id, 8, 8).expect("first free succeeds");
        prop_assert_eq!(mem.deallocate(id, 8, 8).unwrap_err(), rb_miri::UbKind::DoubleFree);
    }

    /// Allocation base addresses respect the requested alignment and never
    /// overlap.
    #[test]
    fn allocations_aligned_and_disjoint(sizes in prop::collection::vec((1usize..32, 0u8..4), 1..12)) {
        let mut mem = Memory::new();
        let mut regions: Vec<(u64, u64)> = Vec::new();
        for (size, align_pow) in sizes {
            let align = 1usize << align_pow;
            let (_, _, base) = mem.allocate(AllocKind::Heap, size, align);
            prop_assert_eq!(base % align as u64, 0, "misaligned base");
            for (lo, hi) in &regions {
                prop_assert!(base + size as u64 <= *lo || base >= *hi, "overlap");
            }
            regions.push((base, base + size as u64));
        }
    }
}
