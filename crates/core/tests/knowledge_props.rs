//! Property suite for the live knowledge base over its durable layer:
//! merging a set of per-job deltas under one policy yields the identical
//! store for *any permutation of delta submission order* (the guarantee
//! the batch engine's worker-count independence rests on), and the
//! byte-codec round-trip preserves retrieval behaviour.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rb_kb::codec::{class_from_code, rule_from_code};
use rb_lang::vectorize::AstVector;
use rustbrain::{KbDelta, KbEntry, KnowledgeBase, MergePolicy};

fn entry_strategy() -> impl Strategy<Value = KbEntry> {
    (prop::collection::vec(0u32..6, 2..5), 0u8..15, 0u8..36).prop_map(|(raw, class, rule)| {
        KbEntry::new(
            AstVector {
                components: raw.into_iter().map(|c| f64::from(c) / 3.0).collect(),
            },
            class_from_code(class).expect("total"),
            rule_from_code(rule).expect("total"),
        )
    })
}

/// A batch worth of deltas: up to 6 jobs, each recording up to 5 inserts.
fn deltas_strategy() -> impl Strategy<Value = Vec<KbDelta>> {
    prop::collection::vec(
        prop::collection::vec(entry_strategy(), 0..5).prop_map(|entries| KbDelta { entries }),
        0..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn merge_is_independent_of_delta_submission_order(
        snapshot_entries in prop::collection::vec(entry_strategy(), 0..6),
        deltas in deltas_strategy(),
        shuffle_seed in 0u64..1_000_000,
    ) {
        let snapshot = KnowledgeBase::with_entries(snapshot_entries);
        let policy = MergePolicy::default();

        let mut in_order = snapshot.clone();
        let submitted = in_order.merge_all(&deltas, &policy);
        prop_assert_eq!(submitted, deltas.iter().map(KbDelta::len).sum::<usize>());

        let mut permuted_deltas = deltas;
        let mut rng = ChaCha8Rng::seed_from_u64(shuffle_seed);
        for i in (1..permuted_deltas.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            permuted_deltas.swap(i, j);
        }
        let mut shuffled = snapshot;
        shuffled.merge_all(&permuted_deltas, &policy);

        prop_assert_eq!(in_order.entries(), shuffled.entries());
        prop_assert_eq!(in_order.total_weight(), shuffled.total_weight());
    }

    #[test]
    fn codec_round_trip_preserves_the_base(
        entries in prop::collection::vec(entry_strategy(), 0..12),
    ) {
        let kb = KnowledgeBase::with_entries(entries);
        let revived = KnowledgeBase::from_bytes(&kb.to_bytes()).unwrap();
        prop_assert_eq!(revived.entries(), kb.entries());
        // A second trip is byte-identical (the codec has one canonical
        // encoding per base).
        prop_assert_eq!(revived.to_bytes(), kb.to_bytes());
    }
}
