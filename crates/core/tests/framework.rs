//! Framework-level integration tests: configuration matrix, self-learning
//! dynamics, knowledge retrieval wiring, and the RQ mechanisms at the unit
//! of a single RustBrain instance.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rb_dataset::{templates_for, Corpus, UbCase};
use rb_llm::{ModelId, RepairRule};
use rb_miri::UbClass;
use rustbrain::{RollbackPolicy, RustBrain, RustBrainConfig};

fn stream_of(class: UbClass, template: &str, n: usize, seed: u64) -> Vec<UbCase> {
    let t = templates_for(class)
        .into_iter()
        .find(|t| t.name == template)
        .expect("template exists");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let s = (t.make)(&mut rng);
            UbCase::from_sources(
                format!("{}/{}/{}", class.label(), template, i),
                class,
                template,
                &s.buggy,
                &s.gold,
                &s.description,
            )
        })
        .collect()
}

#[test]
fn config_matrix_all_variants_run() {
    let corpus = Corpus::generate(3, 1, &[UbClass::Validity, UbClass::Alloc]);
    for model in ModelId::ALL {
        for use_knowledge in [false, true] {
            for rollback in [
                RollbackPolicy::Adaptive,
                RollbackPolicy::ToInitial,
                RollbackPolicy::None,
            ] {
                let mut cfg = RustBrainConfig::for_model(model, 1);
                cfg.use_knowledge = use_knowledge;
                cfg.rollback = rollback;
                let mut brain = RustBrain::new(cfg);
                for case in &corpus.cases {
                    let out = brain.repair(&case.buggy, &case.gold_outputs());
                    assert!(out.oracle_runs >= 1 || out.passed);
                    assert!(out.overhead_ms.is_finite() && out.overhead_ms >= 0.0);
                }
            }
        }
    }
}

#[test]
fn knowledge_retrieval_feeds_similar_cases() {
    // Solve one scope-escape case, then verify the KB returns its rule for
    // a structurally similar query.
    let cases = stream_of(UbClass::DanglingPointer, "scope_escape", 2, 11);
    let mut brain = RustBrain::new(RustBrainConfig::for_model(ModelId::GptO1, 4));
    let first = brain.repair(&cases[0].buggy, &cases[0].gold_outputs());
    assert!(first.passed);
    assert_eq!(brain.knowledge().len(), 1);
    // The stored rule must be a dangling-pointer fix.
    let second = brain.repair(&cases[1].buggy, &cases[1].gold_outputs());
    assert!(second.passed);
}

#[test]
fn feedback_disabled_means_no_prior_updates() {
    let cases = stream_of(UbClass::Panic, "div_zero", 2, 5);
    let mut cfg = RustBrainConfig::for_model(ModelId::Gpt4, 2);
    cfg.use_feedback = false;
    let mut brain = RustBrain::new(cfg);
    for case in &cases {
        brain.repair(&case.buggy, &case.gold_outputs());
    }
    assert_eq!(brain.priors().updates(), 0);

    let mut cfg = RustBrainConfig::for_model(ModelId::Gpt4, 2);
    cfg.use_feedback = true;
    let mut brain = RustBrain::new(cfg);
    for case in &cases {
        brain.repair(&case.buggy, &case.gold_outputs());
    }
    assert!(brain.priors().updates() > 0);
}

#[test]
fn no_knowledge_config_never_queries() {
    let cases = stream_of(UbClass::Validity, "bool_transmute", 3, 9);
    let mut brain = RustBrain::new(RustBrainConfig::without_knowledge(ModelId::Gpt4, 3));
    for case in &cases {
        brain.repair(&case.buggy, &case.gold_outputs());
    }
    assert_eq!(brain.knowledge().queries(), 0);
    assert_eq!(brain.knowledge().len(), 0);
}

#[test]
fn seeded_knowledge_accelerates_hard_class() {
    // Pre-seeding the KB with the correct rule for a Rust-specific class
    // must not reduce the success rate of a weak model.
    let cases = stream_of(UbClass::StackBorrow, "write_invalidates", 6, 21);
    let run_with = |seed_kb: bool| {
        let mut brain = RustBrain::new(RustBrainConfig::for_model(ModelId::Gpt35, 13));
        if seed_kb {
            for case in &cases {
                brain.seed_knowledge(
                    &case.buggy,
                    UbClass::StackBorrow,
                    RepairRule::RetakePointerAfterWrite,
                );
            }
        }
        cases
            .iter()
            .filter(|c| brain.repair(&c.buggy, &c.gold_outputs()).acceptable)
            .count()
    };
    let without = run_with(false);
    let with = run_with(true);
    assert!(
        with >= without,
        "seeded KB hurt the weak model: {with} < {without}"
    );
}

#[test]
fn multi_function_cases_are_repairable() {
    // The future-work extension: UB inside helper functions.
    for (class, template) in [
        (UbClass::FuncCall, "callee_unchecked"),
        (UbClass::DataRace, "helper_writer"),
        (UbClass::Validity, "callee_transmute"),
    ] {
        let cases = stream_of(class, template, 2, 31);
        let mut brain = RustBrain::new(RustBrainConfig::for_model(ModelId::GptO1, 6));
        let repaired = cases
            .iter()
            .filter(|c| brain.repair(&c.buggy, &c.gold_outputs()).passed)
            .count();
        assert!(repaired >= 1, "{template}: no multi-function case repaired");
    }
}

#[test]
fn outcome_invariants() {
    let corpus = Corpus::generate(41, 1, &UbClass::FIG10);
    let mut brain = RustBrain::new(RustBrainConfig::for_model(ModelId::Claude35, 8));
    for case in &corpus.cases {
        let out = brain.repair(&case.buggy, &case.gold_outputs());
        // acceptable implies passed;
        assert!(!out.acceptable || out.passed, "{}", case.id);
        // the history starts at the buggy program's error count (>0);
        assert!(out.error_history[0] > 0, "{}", case.id);
        // a passing outcome has a winning solution recorded;
        assert_eq!(out.best_solution.is_some(), out.passed, "{}", case.id);
        // the class matches the case's class.
        assert_eq!(out.class, case.class, "{}", case.id);
    }
}

#[test]
fn budget_caps_are_respected() {
    let cases = stream_of(UbClass::StackBorrow, "write_invalidates", 1, 51);
    let mut cfg = RustBrainConfig::for_model(ModelId::Gpt35, 9);
    cfg.max_model_calls = 3;
    cfg.max_iterations = 4;
    let mut brain = RustBrain::new(cfg);
    let before = brain.model_stats().calls;
    let out = brain.repair(&cases[0].buggy, &cases[0].gold_outputs());
    let spent = brain.model_stats().calls - before;
    // Budget is checked between solutions; one solution may run a few calls
    // past the cap, but not a multiple of it.
    assert!(spent <= 3 + 9, "model calls {spent} blew the cap");
    assert!(
        out.oracle_runs <= 4 + 9,
        "oracle runs {} blew the cap",
        out.oracle_runs
    );
}
