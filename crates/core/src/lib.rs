//! # RustBrain — fast and slow thinking for conquering undefined behaviour
//!
//! A reproduction of *"Unlocking a New Rust Programming Experience: Fast
//! and Slow Thinking with LLMs to Conquer Undefined Behaviors"* (DAC 2025).
//!
//! RustBrain repairs undefined behaviour in unsafe-Rust programs (over the
//! [`rb_lang`] IR, with [`rb_miri`] as the detection oracle and [`rb_llm`]
//! simulated models as the proposal engine) through two cooperating
//! processes:
//!
//! - **Fast thinking** ([`fast`]): extracts code features ([`features`])
//!   and rapidly generates diverse candidate solutions — ordered agent
//!   sequences — guided by learned priors.
//! - **Slow thinking** ([`slow`]): decomposes each solution into steps run
//!   by specialised agents (safe-replacement, assertion, modification,
//!   abstract reasoning over an AST knowledge base, [`knowledge`]), verifies
//!   every edit with the oracle, and guards the search with the adaptive
//!   rollback agent ([`rollback`]).
//! - **Feedback** ([`feedback`]): the evaluation triplet ([`evaluate`])
//!   of every attempt flows back into the fast-thinking priors, so similar
//!   errors are solved faster with less knowledge-base dependence.
//!
//! Every program judgement — initial detection, per-edit verification,
//! rollback re-verification — goes through an injected [`rb_miri::Oracle`]
//! ([`RustBrain::with_oracle`]); the default [`rb_miri::DirectOracle`] runs
//! the interpreter, while `rb_engine` injects a process-wide verdict cache.
//!
//! ## Quickstart
//!
//! ```
//! use rustbrain::{RustBrain, RustBrainConfig};
//! use rb_llm::ModelId;
//! use rb_lang::parser::parse_program;
//!
//! let buggy = parse_program(
//!     "fn main() { let q: *const i32 = 0 as *const i32; \
//!      { let x: i32 = 5; q = &raw const x; } \
//!      unsafe { print(*q); } }")?;
//! let mut brain = RustBrain::new(RustBrainConfig::for_model(ModelId::Gpt4, 42));
//! let outcome = brain.repair(&buggy, &["5".to_owned()]);
//! assert!(outcome.passed);
//! # Ok::<(), rb_lang::LangError>(())
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod evaluate;
pub mod fast;
pub mod features;
pub mod feedback;
pub mod knowledge;
pub mod pipeline;
pub mod rollback;
pub mod slow;
pub mod solution;

pub use config::{RollbackPolicy, RustBrainConfig};
pub use evaluate::EvalTriplet;
pub use features::CodeFeatures;
pub use feedback::Priors;
pub use knowledge::{ConflictResolution, KbDelta, KbEntry, KnowledgeBase, MergePolicy, StoreError};
pub use pipeline::{RepairOutcome, RustBrain};
pub use rb_miri::{DirectOracle, Oracle, OracleUse};
pub use solution::{AgentKind, Solution};
