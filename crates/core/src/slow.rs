//! The slow-thinking stage (paper stages S1–S2): decompose a solution into
//! agent steps, execute each step through the language model, verify every
//! edit with the injected [`Oracle`], and guard the search with the
//! rollback agent. This inner verification loop re-judges near-identical
//! programs constantly, which is why the oracle seam (rather than a direct
//! interpreter call) matters here most.

use crate::config::RollbackPolicy;
use crate::evaluate::{evaluate_with_report, EvalTriplet};
use crate::knowledge::KnowledgeBase;
use crate::rollback::{RollbackTracker, ThoughtTrace};
use crate::solution::{AgentKind, Solution};
use rb_lang::prune::prune_program;
use rb_lang::vectorize::AstVector;
use rb_lang::Program;
use rb_llm::{LanguageModel, RepairContext, RepairRule};
use rb_miri::{MiriReport, Oracle, OracleUse};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Fixed simulated cost of one oracle (Miri) run in milliseconds.
pub const ORACLE_RUN_MS: f64 = 800.0;

/// Fixed simulated cost of decomposing/validating one agent step
/// (the slow-thinking bookkeeping around each model call).
pub const STEP_DECOMPOSE_MS: f64 = 3_000.0;

/// Record of one executed agent step.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StepRecord {
    /// Which agent ran.
    pub agent: AgentKind,
    /// The rule it applied (when any proposal was applicable).
    pub rule: Option<RepairRule>,
    /// Oracle error count after the step.
    pub errors_after: usize,
    /// Simulated latency of the step (model + retrieval + oracle).
    pub latency_ms: f64,
    /// Knowledge shots attached to the prompt.
    pub shots: usize,
}

/// Result of executing one solution.
#[derive(Clone, Debug)]
pub struct SolutionOutcome {
    /// The executed solution.
    pub solution: Solution,
    /// Best program state reached.
    pub final_program: Program,
    /// Evaluation triplet of the best state.
    pub eval: EvalTriplet,
    /// Per-step records.
    pub steps: Vec<StepRecord>,
    /// Thought/error-count trace (the paper's `N` sequence).
    pub trace: ThoughtTrace,
    /// Oracle invocations consumed.
    pub oracle_runs: usize,
    /// Split of `oracle_runs` into executed-fresh vs served-from-cache
    /// (telemetry; always `total() == oracle_runs`).
    pub oracle_use: OracleUse,
    /// Total simulated time of this solution.
    pub overhead_ms: f64,
    /// The rule whose application produced the passing state, if any.
    pub fixing_rule: Option<RepairRule>,
    /// The state the slow-thinking process *ended* in (not necessarily the
    /// best one) — the continuation point under the no-rollback policy.
    pub end_program: Program,
    /// Oracle report of the end state (shared, possibly cache-served).
    pub end_report: Arc<MiriReport>,
}

/// Executes one solution against a failing program, verifying every edit
/// through the injected `oracle`.
///
/// Steps run in order; the solution is cycled (up to three passes) while it
/// keeps making progress — the paper's "fine-tune solution" refinement.
///
/// With `preflight` on, each candidate first goes through `rb_lint`: when
/// the static analysis is *complete* (every finding sound and exhaustive)
/// and proves the candidate a strict regression whose findings include the
/// diagnosed class, the oracle call is skipped and the judgement is booked
/// as `prevetoed`. The veto replays exactly the state transition the real
/// verdict would have caused (see [`RollbackTracker::observe_vetoed`]), so
/// repair results are bit-identical with the flag on or off — only the
/// executed/cached/prevetoed split of the oracle accounting moves.
#[allow(clippy::too_many_arguments)]
pub fn execute_solution(
    oracle: &dyn Oracle,
    model: &mut dyn LanguageModel,
    mut kb: Option<&mut KnowledgeBase>,
    policy: RollbackPolicy,
    preflight: bool,
    program: &Program,
    report: &Arc<MiriReport>,
    solution: &Solution,
    reference: &[String],
    max_oracle_runs: usize,
) -> SolutionOutcome {
    let mut tracker = RollbackTracker::new(policy, program.clone(), Arc::clone(report));
    let mut steps: Vec<StepRecord> = Vec::new();
    let mut overhead = 0.0f64;
    let mut oracle_runs = 0usize;
    let mut oracle_use = OracleUse::default();
    let mut fixing_rule = None;

    'passes: for _pass in 0..3 {
        let errors_at_pass_start = tracker.current().1.error_count();
        for &agent in &solution.steps {
            if tracker.current().1.passes() || oracle_runs >= max_oracle_runs {
                break 'passes;
            }
            let (cur_prog, cur_report) = {
                let (p, r) = tracker.current_shared();
                (p.clone(), Arc::clone(r))
            };
            let Some(primary) = cur_report.primary().cloned() else {
                break 'passes;
            };
            // One span per thinking step; its sim_ms mirrors the step's
            // charge sites exactly (model latency + decompose cost +
            // oracle run), so a step tree reconciles with the solution's
            // overhead. The KB consult charges inside its own child span.
            let mut step_span = rb_obs::span("step");
            step_span.tag("agent", format!("{agent:?}"));
            // Abstract reasoning: retrieve similar solved cases.
            let mut shots = Vec::new();
            if agent == AgentKind::AbstractReasoning {
                if let Some(kb) = kb.as_deref_mut() {
                    let (pruned, _) = prune_program(&cur_prog);
                    let vector = if pruned.stmt_count() == 0 {
                        AstVector::embed(&cur_prog)
                    } else {
                        AstVector::embed(&pruned)
                    };
                    // The current report's class can differ from the
                    // case's initial class mid-repair (e.g. a bad patch
                    // turning UB into a compile error), so the consult
                    // must fault that class's shard in itself — charging
                    // before fault-in would book the empty-bucket cost
                    // on a lazily loaded base.
                    let mut cspan = rb_obs::span("kb.consult");
                    cspan.tag("class", primary.class().label());
                    let consult_ms = kb.consult_cost_ms(primary.class());
                    cspan.add_sim_ms(consult_ms);
                    overhead += consult_ms;
                    step_span.add_sim_ms(consult_ms);
                    shots = kb.query(&vector, primary.class(), 2);
                }
            }
            let mut ctx = RepairContext::new(&cur_prog, &primary, agent.strategy());
            ctx.shots = shots;
            let shot_count = ctx.shots.len();
            let resp = model.propose(&ctx);
            overhead += resp.latency_ms + STEP_DECOMPOSE_MS;
            step_span.add_sim_ms(resp.latency_ms + STEP_DECOMPOSE_MS);

            let mut applied: Option<(RepairRule, Program)> = None;
            for proposal in &resp.proposals {
                if let Some(mut candidate) = proposal.rule.apply(&cur_prog, &primary) {
                    if resp.drift {
                        if let Some(drifted) = rb_llm::rules::apply_semantic_drift(&candidate) {
                            candidate = drifted;
                        }
                    }
                    applied = Some((proposal.rule, candidate));
                    break;
                }
            }
            match applied {
                Some((rule, candidate)) => {
                    // Static preflight: veto only when the lint *proves*
                    // the exact verdict — a complete analysis (all
                    // findings sound and exhaustive) showing a strict
                    // regression that still carries the diagnosed class.
                    // Both remaining policies then roll back to an
                    // already-judged anchor, so the skipped report is
                    // never needed.
                    let vetoed_errors = if preflight && policy != RollbackPolicy::None {
                        let a = rb_lint::analyze(&candidate);
                        (a.complete
                            && a.findings.len() > cur_report.error_count()
                            && a.findings.iter().any(|f| f.class == primary.class()))
                        .then_some(a.findings.len())
                    } else {
                        None
                    };
                    oracle_runs += 1;
                    // Simulated cost is charged per *judgement*, vetoed,
                    // cached or not — preflight and the cache dodge real
                    // interpreter work, never the modelled Miri latency
                    // (determinism depends on it).
                    overhead += ORACLE_RUN_MS;
                    step_span.add_sim_ms(ORACLE_RUN_MS);
                    let errors_after = match vetoed_errors {
                        Some(errors_after) => {
                            oracle_use.prevetoed += 1;
                            rb_obs::metrics().counter_add(
                                "rustbrain_oracle_judgements_total",
                                Some(("result", "prevetoed")),
                                1,
                            );
                            step_span.tag("prevetoed", "true");
                            tracker.observe_vetoed(errors_after);
                            errors_after
                        }
                        None => {
                            let creport = oracle.judge_recording(&candidate, &mut oracle_use);
                            let errors_after = creport.error_count();
                            if errors_after == 0 {
                                fixing_rule = Some(rule);
                            }
                            tracker.observe(candidate, creport);
                            errors_after
                        }
                    };
                    step_span.tag("rule", format!("{rule:?}"));
                    step_span.tag("errors_after", errors_after.to_string());
                    steps.push(StepRecord {
                        agent,
                        rule: Some(rule),
                        errors_after,
                        latency_ms: resp.latency_ms + ORACLE_RUN_MS,
                        shots: shot_count,
                    });
                }
                None => {
                    steps.push(StepRecord {
                        agent,
                        rule: None,
                        errors_after: cur_report.error_count(),
                        latency_ms: resp.latency_ms,
                        shots: shot_count,
                    });
                }
            }
        }
        // Stop cycling when a full pass made no progress.
        if tracker.current().1.error_count() >= errors_at_pass_start {
            break;
        }
    }

    let (end_prog, end_report) = {
        let (p, r) = tracker.current_shared();
        (p.clone(), Arc::clone(r))
    };
    let (best_prog, best_report) = tracker.best();
    let eval = evaluate_with_report(best_report, reference, overhead);
    SolutionOutcome {
        solution: solution.clone(),
        final_program: best_prog.clone(),
        eval,
        steps,
        trace: tracker.trace.clone(),
        oracle_runs,
        oracle_use,
        overhead_ms: overhead,
        fixing_rule,
        end_program: end_prog,
        end_report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_llm::{ModelId, SimulatedModel};
    use rb_miri::DirectOracle;

    fn fixture() -> (Program, Arc<MiriReport>) {
        let p = rb_lang::parser::parse_program(
            "fn main() { let p: *mut u8 = 0 as *mut u8; \
             unsafe { p = alloc(4usize, 4usize); ptr_write::<i32>(p as *mut i32, 3i32); } \
             unsafe { print(ptr_read::<i32>(p as *const i32)); } \
             unsafe { dealloc(p, 4usize, 4usize); } \
             unsafe { dealloc(p, 4usize, 4usize); } }",
        )
        .unwrap();
        let r = DirectOracle.judge(&p);
        (p, r)
    }

    #[test]
    fn modify_solution_fixes_double_free() {
        let (p, r) = fixture();
        let mut model = SimulatedModel::new(ModelId::GptO1, 0.3, 1);
        let sol = Solution::new(vec![AgentKind::Modify, AgentKind::SafeReplace]);
        let out = execute_solution(
            &DirectOracle,
            &mut model,
            None,
            RollbackPolicy::Adaptive,
            true,
            &p,
            &r,
            &sol,
            &["3".to_owned()],
            12,
        );
        assert!(out.eval.accuracy, "trace: {:?}", out.trace);
        assert!(out.eval.acceptability);
        assert_eq!(out.fixing_rule, Some(RepairRule::RemoveDoubleFree));
        assert!(out.overhead_ms > 0.0);
        // The direct oracle executes every judgement.
        assert_eq!(out.oracle_use.total(), out.oracle_runs);
        assert_eq!(out.oracle_use.cached, 0);
    }

    #[test]
    fn budget_respected() {
        let (p, r) = fixture();
        let mut model = SimulatedModel::new(ModelId::Gpt35, 0.9, 2);
        let sol = Solution::new(vec![
            AgentKind::Assert,
            AgentKind::Assert,
            AgentKind::Assert,
        ]);
        let out = execute_solution(
            &DirectOracle,
            &mut model,
            None,
            RollbackPolicy::Adaptive,
            true,
            &p,
            &r,
            &sol,
            &["3".to_owned()],
            2,
        );
        assert!(out.oracle_runs <= 2);
    }

    #[test]
    fn trace_records_error_sequence() {
        let (p, r) = fixture();
        let mut model = SimulatedModel::new(ModelId::Gpt4, 0.5, 3);
        let sol = Solution::new(vec![AgentKind::Modify]);
        let out = execute_solution(
            &DirectOracle,
            &mut model,
            None,
            RollbackPolicy::Adaptive,
            true,
            &p,
            &r,
            &sol,
            &["3".to_owned()],
            8,
        );
        assert_eq!(out.trace.error_counts[0], r.error_count());
        assert!(!out.trace.error_counts.is_empty());
    }
}
