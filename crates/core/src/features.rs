//! Fast-thinking feature extraction (paper stage F2): classify the error,
//! summarise the code's unsafe surface, and embed the pruned AST for
//! knowledge-base retrieval.

use rb_lang::metrics::{collect_metrics, ProgramMetrics, UnsafeOpKind};
use rb_lang::prune::prune_program;
use rb_lang::vectorize::AstVector;
use rb_lang::Program;
use rb_miri::{MiriReport, UbClass};
use serde::{Deserialize, Serialize};

/// Features the fast-thinking stage extracts from a failing program.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CodeFeatures {
    /// Class of the primary diagnostic.
    pub class: UbClass,
    /// Number of diagnostics in the report.
    pub error_count: usize,
    /// Structural metrics of the full program.
    pub metrics: ProgramMetrics,
    /// Dominant unsafe-operation category, if any.
    pub dominant_unsafe_op: Option<UnsafeOpKind>,
    /// Embedding of the *pruned* AST (Algorithm 1 output).
    pub vector: AstVector,
    /// Statements removed by pruning (noise eliminated for the LLM).
    pub pruned_stmts: usize,
}

/// Extracts [`CodeFeatures`] from a program and its oracle report.
///
/// ```
/// # use rb_lang::parser::parse_program;
/// # use rb_miri::run_program;
/// # use rustbrain::features::extract_features;
/// let p = parse_program(
///     "fn main() { let z: i32 = 0; print(5 / z); }").unwrap();
/// let report = run_program(&p);
/// let f = extract_features(&p, &report);
/// assert_eq!(f.class, rb_miri::UbClass::Panic);
/// ```
#[must_use]
pub fn extract_features(program: &Program, report: &MiriReport) -> CodeFeatures {
    let class = report.primary().map_or(UbClass::Compile, |e| e.class());
    let metrics = collect_metrics(program);
    let dominant_unsafe_op = UnsafeOpKind::ALL
        .iter()
        .copied()
        .max_by_key(|k| metrics.unsafe_ops[*k as usize])
        .filter(|k| metrics.unsafe_ops[*k as usize] > 0);
    let (pruned, removed) = prune_program(program);
    // Safe-only programs (e.g. pure panic bugs) prune to nothing; retrieval
    // then keys on the full AST instead of an empty skeleton.
    let vector = if pruned.stmt_count() == 0 {
        AstVector::embed(program)
    } else {
        AstVector::embed(&pruned)
    };
    CodeFeatures {
        class,
        error_count: report.error_count(),
        metrics,
        dominant_unsafe_op,
        vector,
        pruned_stmts: removed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_lang::parser::parse_program;
    use rb_miri::run_program;

    #[test]
    fn features_identify_unsafe_surface() {
        let p = parse_program(
            "fn main() { let noise: i32 = 1; print(noise); \
             let p: *mut u8 = 0 as *mut u8; \
             unsafe { p = alloc(4usize, 4usize); } \
             unsafe { print(ptr_read::<i32>(p as *const i32)); } \
             unsafe { dealloc(p, 4usize, 4usize); } }",
        )
        .unwrap();
        let report = run_program(&p);
        let f = extract_features(&p, &report);
        assert_eq!(f.class, rb_miri::UbClass::Uninit);
        assert_eq!(f.dominant_unsafe_op, Some(UnsafeOpKind::UnsafeCall));
        assert!(f.pruned_stmts >= 1, "noise statements should prune");
    }

    #[test]
    fn passing_program_reports_compile_class() {
        let p = parse_program("fn main() { print(1i32); }").unwrap();
        let report = run_program(&p);
        let f = extract_features(&p, &report);
        assert_eq!(f.error_count, 0);
        assert_eq!(f.class, UbClass::Compile); // "no primary error" marker
    }

    #[test]
    fn similar_programs_embed_similarly() {
        let mk = |v: i32| {
            parse_program(&format!(
                "fn main() {{ let x: i32 = {v}; let q: *const i32 = &raw const x; \
                 unsafe {{ print(*q); }} }}"
            ))
            .unwrap()
        };
        let a = mk(1);
        let b = mk(99);
        let ra = run_program(&a);
        let rb = run_program(&b);
        let fa = extract_features(&a, &ra);
        let fb = extract_features(&b, &rb);
        assert!(fa.vector.cosine(&fb.vector) > 0.99);
    }
}
