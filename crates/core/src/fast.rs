//! The fast-thinking stage (paper stage F2): rapid, intuitive generation of
//! diverse candidate repair solutions from extracted code features, guided
//! by learned priors from the feedback loop. Fast thinking never judges
//! programs — the features it consumes come from a report the pipeline
//! obtained through its injected [`rb_miri::Oracle`].

use crate::features::CodeFeatures;
use crate::feedback::Priors;
use crate::solution::{AgentKind, Solution};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// The fast-thinking solution generator.
#[derive(Debug)]
pub struct FastThinking {
    rng: ChaCha8Rng,
}

impl FastThinking {
    /// Creates a generator from a seeded RNG.
    #[must_use]
    pub fn new(rng: ChaCha8Rng) -> FastThinking {
        FastThinking { rng }
    }

    /// Generates up to `k` distinct solutions for the featured problem.
    ///
    /// Sampling is weighted by the feedback priors for the error class;
    /// `temperature` widens the sampling distribution (low temperatures
    /// produce near-duplicates — the paper's "limited flexibility" at 0.1).
    /// When feedback is enabled and a remembered best solution exists for
    /// the class, it is emitted first (the self-learning replay path).
    pub fn generate(
        &mut self,
        features: &CodeFeatures,
        priors: &Priors,
        k: usize,
        temperature: f64,
        use_feedback: bool,
    ) -> Vec<Solution> {
        let mut out: Vec<Solution> = Vec::new();
        if use_feedback {
            if let Some(best) = priors.best_solution(features.class) {
                out.push(Solution::new(best.to_vec()));
            }
        }
        let mut attempts = 0;
        while out.len() < k && attempts < k * 6 {
            attempts += 1;
            let len = 1 + self.rng.gen_range(0..3); // 1..=3 steps
            let mut steps = Vec::with_capacity(len);
            for position in 0..len {
                let agent = self.sample_agent(features, priors, temperature, &steps, position);
                steps.push(agent);
            }
            let sol = Solution::new(steps);
            if !out.contains(&sol) {
                out.push(sol);
            }
        }
        // Low temperature yields duplicates; pad deterministically so the
        // caller still receives k entries (duplicates model wasted samples).
        while out.len() < k {
            let idx = out.len() % out.len().max(1);
            let clone = out
                .get(idx)
                .cloned()
                .unwrap_or_else(|| Solution::new(vec![AgentKind::Modify]));
            out.push(clone);
        }
        out.truncate(k);
        out
    }

    fn sample_agent(
        &mut self,
        features: &CodeFeatures,
        priors: &Priors,
        temperature: f64,
        chosen: &[AgentKind],
        position: usize,
    ) -> AgentKind {
        let mut weights: Vec<(AgentKind, f64)> = AgentKind::ALL
            .iter()
            .map(|&a| {
                let mut w = priors.weight(features.class, a);
                // Mild structural intuition: heavy unsafe surface favours
                // replacement/modification; repeated agents are discouraged.
                if features.metrics.total_unsafe_ops() > 0 && a == AgentKind::Assert {
                    w *= 0.85;
                }
                if chosen.contains(&a) {
                    w *= 0.3;
                }
                // Abstract reasoning is a follow-up agent, not an opener.
                if position == 0 && a == AgentKind::AbstractReasoning {
                    w *= 0.5;
                }
                // Temperature-scaled multiplicative noise.
                let noise = 1.0 + (self.rng.gen::<f64>() - 0.5) * 2.0 * temperature;
                (a, (w * noise).max(1e-3))
            })
            .collect();
        let total: f64 = weights.iter().map(|(_, w)| w).sum();
        let mut pick = self.rng.gen::<f64>() * total;
        for (a, w) in weights.drain(..) {
            if pick <= w {
                return a;
            }
            pick -= w;
        }
        AgentKind::Modify
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::EvalTriplet;
    use crate::features::extract_features;
    use rand::SeedableRng;
    use rb_lang::parser::parse_program;
    use rb_miri::run_program;

    fn features() -> CodeFeatures {
        let p = parse_program("fn main() { let z: i32 = 0; print(5 / z); }").unwrap();
        let r = run_program(&p);
        extract_features(&p, &r)
    }

    fn gen(seed: u64, temp: f64, priors: &Priors, feedback: bool) -> Vec<Solution> {
        let mut ft = FastThinking::new(ChaCha8Rng::seed_from_u64(seed));
        ft.generate(&features(), priors, 10, temp, feedback)
    }

    #[test]
    fn generates_requested_count() {
        let sols = gen(1, 0.5, &Priors::new(), true);
        assert_eq!(sols.len(), 10);
        assert!(sols
            .iter()
            .all(|s| !s.steps.is_empty() && s.steps.len() <= 3));
    }

    #[test]
    fn higher_temperature_more_diversity() {
        let distinct = |temp: f64| {
            let sols = gen(3, temp, &Priors::new(), false);
            let mut d = sols;
            d.sort_by_key(Solution::describe);
            d.dedup();
            d.len()
        };
        assert!(distinct(0.9) >= distinct(0.05));
    }

    #[test]
    fn feedback_replays_best_solution_first() {
        let mut priors = Priors::new();
        let good = EvalTriplet {
            accuracy: true,
            acceptability: true,
            overhead_ms: 1000.0,
        };
        priors.update(
            rb_miri::UbClass::Panic,
            &[AgentKind::Modify, AgentKind::Assert],
            &good,
        );
        let sols = gen(5, 0.5, &priors, true);
        assert_eq!(sols[0].steps, vec![AgentKind::Modify, AgentKind::Assert]);
    }

    #[test]
    fn learned_priors_shift_distribution() {
        let mut priors = Priors::new();
        let good = EvalTriplet {
            accuracy: true,
            acceptability: true,
            overhead_ms: 1000.0,
        };
        for _ in 0..8 {
            priors.update(rb_miri::UbClass::Panic, &[AgentKind::SafeReplace], &good);
        }
        let count_leading = |priors: &Priors| {
            (0..20)
                .map(|seed| gen(seed, 0.4, priors, false))
                .flat_map(|sols| sols.into_iter().map(|s| s.steps[0]))
                .filter(|a| *a == AgentKind::SafeReplace)
                .count()
        };
        assert!(count_leading(&priors) > count_leading(&Priors::new()));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = gen(7, 0.5, &Priors::new(), true);
        let b = gen(7, 0.5, &Priors::new(), true);
        assert_eq!(a, b);
    }
}
