//! The AST-similarity knowledge base behind the abstract reasoning agent
//! (paper Fig. 6): pruned ASTs are embedded as vectors; retrieval returns
//! the repair rules that solved the most similar past errors, attached to
//! prompts as few-shots. Querying costs simulated time proportional to
//! the scanned bucket — the source of the paper's 2–4× knowledge
//! overhead.
//!
//! Since PR 4 this is the *live* half of a two-layer design: the durable
//! half lives in [`rb_kb`] (binary codec, merge policy, class index,
//! atomic file store), and this type composes it with query-cost
//! accounting and delta recording. Entries carry a *weight* (how many
//! solved cases they stand for), retrieval goes through a
//! [`UbClass`]-bucketed index instead of scanning the whole base, and
//! [`KnowledgeBase::merge_all`] applies a configurable [`MergePolicy`]
//! so the base — and the per-query scan cost — stays bounded as learning
//! accumulates across batches and invocations.
//!
//! Since PR 6 a base can also be *lazily loaded*
//! ([`KnowledgeBase::open_lazy`]): opened against a sharded `.rbkb.d/`
//! store it starts empty and faults each class's segment in on first
//! touch — [`KnowledgeBase::query`] and
//! [`KnowledgeBase::consult_cost_ms`] fault in before any cost is
//! computed, so a lazy base's retrieved shots *and* its simulated costs
//! are byte-identical to an eagerly loaded one's. The daemon in
//! `rb_serve` rides on this: only the shards traffic touches ever leave
//! disk.

use rb_kb::codec::class_code;
use rb_kb::index::query_cost_ms as bucket_cost_ms;
use rb_kb::{KbIndex, ShardedStore};
use rb_lang::vectorize::AstVector;
use rb_llm::{FewShot, RepairRule};
use rb_miri::UbClass;
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::{Arc, Mutex};

pub use rb_kb::{
    CodecError, CompactReport, ConflictResolution, KbEntry, MergePolicy, SaveReport, StoreError,
    StoreLayout,
};

/// The knowledge base.
///
/// The query-accounting counters are private: shared/concurrent use (the
/// batch engine hands bases to worker-built systems) must not be able to
/// corrupt the accounting from outside — reads go through
/// [`KnowledgeBase::queries`] and [`KnowledgeBase::query_time_ms`], and
/// the only writer is [`KnowledgeBase::query`] itself.
#[derive(Clone, Debug)]
pub struct KnowledgeBase {
    /// Entries in insertion order between merges (a policy merge reorders
    /// into canonical order; [`KnowledgeBase::insert`] appends — which is
    /// what keeps [`KnowledgeBase::delta_since`] a cheap slice).
    entries: Vec<KbEntry>,
    /// Entry positions bucketed by UB class (rebuilt on merge, extended
    /// on insert).
    index: KbIndex,
    /// The backing sharded store of a lazily loaded base (see
    /// [`KnowledgeBase::open_lazy`]); `None` for eager bases.
    lazy: Option<LazyShards>,
    query_time_ms: f64,
    queries: u64,
    /// Actual simulated cost of the most recent query (initially the
    /// empty-bucket cost).
    last_query_cost_ms: f64,
}

/// The fault-in state of a lazily loaded base: a shared handle on the
/// backing [`ShardedStore`] plus a bitmask of the classes already pulled
/// into [`KnowledgeBase::entries`].
///
/// The store handle is behind an `Arc`: clones of a lazy base (the batch
/// engine clones the snapshot into every job) share one handle, so the
/// store's per-shard load counters aggregate segment reads across the
/// base *and* all its clones — which is exactly what the daemon's
/// telemetry and the serve integration test want to observe. The
/// residency mask, by contrast, is per-clone: a clone that faults a
/// shard in mutates only its own entry vector.
#[derive(Clone, Debug)]
struct LazyShards {
    store: Arc<Mutex<ShardedStore>>,
    /// One bit per class wire code ([`rb_kb::codec::NUM_CLASS_CODES`]
    /// is 15, so `u16` covers every code).
    resident: u16,
}

impl LazyShards {
    fn lock(&self) -> std::sync::MutexGuard<'_, ShardedStore> {
        self.store.lock().expect("lazy shard store lock poisoned")
    }
}

fn class_bit(class: UbClass) -> u16 {
    1 << class_code(class)
}

impl Default for KnowledgeBase {
    fn default() -> KnowledgeBase {
        KnowledgeBase {
            entries: Vec::new(),
            index: KbIndex::new(),
            lazy: None,
            query_time_ms: 0.0,
            queries: 0,
            last_query_cost_ms: bucket_cost_ms(0),
        }
    }
}

/// The inserts a repair job recorded on top of a shared knowledge-base
/// snapshot, in insertion order.
///
/// Batch mode recovers the paper's cross-case self-learning with these:
/// every job starts from the same read-only snapshot, records its own
/// successful repairs into a delta, and the engine merges all deltas back
/// after the batch under one [`MergePolicy`] — a single normalization
/// over the whole multiset, so the merged base is identical for any
/// worker count *and any submission order*.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct KbDelta {
    /// The recorded inserts, oldest first.
    pub entries: Vec<KbEntry>,
}

impl KbDelta {
    /// Number of recorded inserts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the job recorded nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl KnowledgeBase {
    /// Creates an empty knowledge base.
    #[must_use]
    pub fn new() -> KnowledgeBase {
        KnowledgeBase::default()
    }

    /// Seeds the base with `entries` (used to model a pre-built knowledge
    /// base of a given size for the ablation benchmarks, and to rebuild a
    /// base from decoded storage).
    #[must_use]
    pub fn with_entries(entries: Vec<KbEntry>) -> KnowledgeBase {
        let kb = KnowledgeBase {
            index: KbIndex::build(&entries),
            entries,
            ..KnowledgeBase::default()
        };
        kb.debug_assert_index_fresh();
        kb
    }

    /// The index-staleness invariant (debug builds only): every indexed
    /// position must point at an entry of the bucket's class. A policy
    /// merge reorders the entry vector, so any code path that normalizes
    /// without rebuilding the index would silently retrieve wrong-class
    /// entries — this turns that silence into a loud assertion at every
    /// construction, merge and query boundary.
    #[inline]
    fn debug_assert_index_fresh(&self) {
        debug_assert!(
            self.index.is_consistent(&self.entries),
            "KbIndex is stale: positions no longer match the entries they point at \
             (was the entry vector reordered without KbIndex::build?)"
        );
    }

    /// Number of stored entries (after merging, one entry can stand for
    /// many solved cases — see [`KnowledgeBase::total_weight`]).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the base is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The stored entries, in current storage order.
    #[must_use]
    pub fn entries(&self) -> &[KbEntry] {
        &self.entries
    }

    /// Total solved cases the base represents (the sum of entry weights —
    /// invariant under dedup and coalescing, unlike [`KnowledgeBase::len`]).
    #[must_use]
    pub fn total_weight(&self) -> u64 {
        self.entries.iter().map(|e| u64::from(e.weight)).sum()
    }

    /// Stores a solved case (weight 1; appended, never merged — merging
    /// is a batch operation under an explicit [`MergePolicy`]).
    pub fn insert(&mut self, vector: AstVector, class: UbClass, rule: RepairRule) {
        self.index.note_insert(self.entries.len(), class);
        self.entries.push(KbEntry::new(vector, class, rule));
    }

    /// The inserts recorded since the base held `baseline` entries
    /// (typically the size of the snapshot the base was cloned from).
    #[must_use]
    pub fn delta_since(&self, baseline: usize) -> KbDelta {
        KbDelta {
            entries: self.entries[baseline.min(self.entries.len())..].to_vec(),
        }
    }

    /// Merges one delta under `policy`; returns how many delta entries
    /// were submitted. A shorthand for [`KnowledgeBase::merge_all`] with
    /// a single delta — when merging several deltas, pass them all in one
    /// call: the policy normalizes the whole multiset at once, which is
    /// what makes the result independent of submission order.
    pub fn merge(&mut self, delta: &KbDelta, policy: &MergePolicy) -> usize {
        self.merge_all([delta], policy)
    }

    /// Merges every delta's inserts under `policy` in one normalization
    /// pass; returns how many delta entries were submitted.
    ///
    /// Under [`MergePolicy::append_only`] this preserves insertion order
    /// (PR 3's behaviour). Under any reducing policy the whole base —
    /// pre-existing entries included — is normalized to canonical order:
    /// exact duplicates collapse into weights, same-shape rule conflicts
    /// resolve, near-duplicates coalesce. Because normalization is a pure
    /// function of the entry multiset, any permutation of `deltas` (and
    /// any worker count producing them) yields the identical store.
    pub fn merge_all<'a>(
        &mut self,
        deltas: impl IntoIterator<Item = &'a KbDelta>,
        policy: &MergePolicy,
    ) -> usize {
        let mut span = rb_obs::span("kb.merge");
        let mut submitted = 0usize;
        for delta in deltas {
            for e in &delta.entries {
                // Merging a class into a lazy base before its shard is
                // resident would leave the on-disk entries shadowed: a
                // later fault-in appends them raw on top of the merged
                // (normalized) bucket, diverging from the eager path.
                // Callers fault the class in first (learning deltas only
                // carry classes the dispatch already ensured).
                debug_assert!(
                    self.is_resident(e.class),
                    "merged class {:?} into a lazy base before its shard was faulted in \
                     (ensure_class first)",
                    e.class
                );
                self.index.note_insert(self.entries.len(), e.class);
                self.entries.push(e.clone());
            }
            submitted += delta.len();
        }
        if !policy.is_append_only() {
            // Normalization reorders the entry vector, so the positions
            // the index holds are stale from this line on: rebuilding is
            // not an optimization but a correctness requirement.
            self.entries = policy.normalize(std::mem::take(&mut self.entries));
            self.index = KbIndex::build(&self.entries);
        }
        self.debug_assert_index_fresh();
        span.tag("submitted", submitted.to_string());
        span.tag("entries_after", self.entries.len().to_string());
        rb_obs::metrics().counter_add("rustbrain_kb_merges_total", None, 1);
        submitted
    }

    /// Re-normalizes the whole base under `policy` (used when adopting an
    /// append-only store into a bounded one); returns entries removed.
    pub fn compact(&mut self, policy: &MergePolicy) -> usize {
        let mut span = rb_obs::span("kb.compact");
        let before = self.entries.len();
        self.merge_all([], policy);
        let removed = before - self.entries.len();
        span.tag("removed", removed.to_string());
        rb_obs::metrics().counter_add("rustbrain_kb_compactions_total", None, 1);
        removed
    }

    /// Retrieves up to `k` few-shots for a query vector, scanning only
    /// the `class` bucket of the index, ranked by cosine similarity
    /// (ties: higher weight first). Entries below the similarity floor
    /// are not returned. Each call accrues simulated query time
    /// proportional to the *bucket*, not the base.
    ///
    /// Retrieval is class-scoped by design: the pre-index scanner could
    /// additionally surface *cross-class* entries whose raw cosine
    /// cleared the floor; the index trades those marginal hits away for
    /// bucket-bounded scan cost (a repair rule learned for another UB
    /// class is rarely the right few-shot anyway).
    pub fn query(&mut self, vector: &AstVector, class: UbClass, k: usize) -> Vec<FewShot> {
        let mut span = rb_obs::span("kb.query");
        span.tag("class", class.label());
        // A lazy base faults the class's shard in before the cost is
        // computed, so the accrued cost equals the eager-loaded cost. A
        // store error degrades to the not-yet-resident bucket and leaves
        // the class non-resident, so the next touch retries.
        let _ = self.ensure_class(class);
        self.debug_assert_index_fresh();
        let cost = self.query_cost_ms(class);
        span.add_sim_ms(cost);
        let m = rb_obs::metrics();
        m.counter_add("rustbrain_kb_queries_total", None, 1);
        m.observe(
            "rustbrain_kb_query_sim_ms",
            Some(("class", class.label())),
            cost,
            rb_obs::SIM_MS_BUCKETS,
        );
        self.queries += 1;
        self.query_time_ms += cost;
        self.last_query_cost_ms = cost;
        let mut scored: Vec<(f64, &KbEntry)> = self
            .index
            .bucket(class)
            .iter()
            .map(|&i| &self.entries[i as usize])
            .map(|e| {
                // The pre-index scorer gave same-class entries a +0.05
                // bonus before the 0.6 floor; kept so the floor admits
                // the same *same-class* entries it always admitted.
                (vector.cosine(&e.vector) + 0.05, e)
            })
            .filter(|(sim, _)| *sim >= 0.6)
            .collect();
        scored.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| b.1.weight.cmp(&a.1.weight))
        });
        let shots: Vec<FewShot> = scored
            .into_iter()
            .take(k)
            .map(|(sim, e)| FewShot {
                rule: e.rule,
                similarity: sim.min(1.0),
            })
            .collect();
        span.tag("shots", shots.len().to_string());
        shots
    }

    /// Prospective cost of a query for `class` in simulated milliseconds
    /// — exactly what [`KnowledgeBase::query`] will accrue. The pipeline
    /// charges this for the up-front knowledge consult so charged and
    /// accrued overhead cannot drift apart.
    #[must_use]
    pub fn query_cost_ms(&self, class: UbClass) -> f64 {
        bucket_cost_ms(self.index.bucket_len(class))
    }

    /// Actual cost of the most recent query in simulated milliseconds
    /// (the empty-bucket cost before any query is made).
    #[must_use]
    pub fn last_query_cost_ms(&self) -> f64 {
        self.last_query_cost_ms
    }

    /// Number of queries served over the base's lifetime.
    #[must_use]
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Total simulated milliseconds spent in queries.
    #[must_use]
    pub fn query_time_ms(&self) -> f64 {
        self.query_time_ms
    }

    /// Encodes the entries to the `.rbkb` wire format (query counters are
    /// runtime state and are not persisted).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        rb_kb::encode_entries(&self.entries)
    }

    /// Decodes a base from `.rbkb` bytes (fresh counters, rebuilt index).
    pub fn from_bytes(bytes: &[u8]) -> Result<KnowledgeBase, CodecError> {
        Ok(KnowledgeBase::with_entries(rb_kb::decode_entries(bytes)?))
    }

    /// Saves the entries atomically in whichever layout `path` implies —
    /// a single `.rbkb` file, or a sharded `.rbkb.d/` directory where
    /// only the segments whose content changed are rewritten.
    pub fn save(&self, path: &Path) -> Result<(), StoreError> {
        self.save_reported(path).map(|_| ())
    }

    /// [`KnowledgeBase::save`], reporting which segments the save wrote,
    /// skipped as already clean, or removed (the engine surfaces this in
    /// its batch telemetry; a single-file save is one written "segment").
    ///
    /// A *partially resident* lazy base refuses to save: a sharded save
    /// removes segments for classes absent from the entries, so saving
    /// before every shard is faulted in would silently destroy the
    /// knowledge still on disk. Call [`KnowledgeBase::ensure_all`] first.
    pub fn save_reported(&self, path: &Path) -> Result<SaveReport, StoreError> {
        if let Some(missing) = self.first_non_resident() {
            return Err(StoreError::Io {
                path: path.to_path_buf(),
                source: std::io::Error::other(format!(
                    "lazy base is only partially resident (shard {:?} still on disk); \
                     call ensure_all() before saving",
                    missing.label()
                )),
            });
        }
        rb_kb::save_any(path, &self.entries)
    }

    /// Loads a base from either store layout (fresh counters, rebuilt
    /// index): a single `.rbkb` file or a sharded `.rbkb.d/` directory.
    pub fn load(path: &Path) -> Result<KnowledgeBase, StoreError> {
        Ok(KnowledgeBase::with_entries(rb_kb::load_any(path)?))
    }

    /// Loads only `class`'s entries from a sharded store — the
    /// single-class fast path: one segment file is read, every other
    /// class's knowledge stays on disk. On a single-file store this
    /// degrades honestly: the file is read whole and filtered.
    pub fn load_class(path: &Path, class: UbClass) -> Result<KnowledgeBase, StoreError> {
        let entries = match rb_kb::detect_layout(path) {
            StoreLayout::Sharded => rb_kb::ShardedStore::open(path)?.load_class(class)?,
            StoreLayout::SingleFile => {
                let mut entries = rb_kb::load(path)?;
                entries.retain(|e| e.class == class);
                entries
            }
        };
        Ok(KnowledgeBase::with_entries(entries))
    }

    /// Opens `path` as a *lazily loaded* base. On a sharded `.rbkb.d/`
    /// store (created empty if missing) the base starts with no entries
    /// and faults each class's segment in on first touch — via
    /// [`KnowledgeBase::query`], [`KnowledgeBase::consult_cost_ms`], or
    /// an explicit [`KnowledgeBase::ensure_class`]. On a single-file
    /// store there is nothing to defer, so this degrades to an eager
    /// [`KnowledgeBase::load`].
    ///
    /// A lazy base answers queries — shots *and* simulated costs —
    /// byte-identically to an eagerly loaded one, because fault-in
    /// happens before any bucket cost is computed and a faulted bucket
    /// holds exactly the eager bucket's entries in segment order.
    pub fn open_lazy(path: &Path) -> Result<KnowledgeBase, StoreError> {
        match rb_kb::detect_layout(path) {
            StoreLayout::Sharded => {
                let store = ShardedStore::open_or_create(path)?;
                let mut kb = KnowledgeBase::new();
                kb.lazy = Some(LazyShards {
                    store: Arc::new(Mutex::new(store)),
                    resident: 0,
                });
                Ok(kb)
            }
            StoreLayout::SingleFile => KnowledgeBase::load(path),
        }
    }

    /// Whether this base lazily faults shards in from a backing store.
    #[must_use]
    pub fn is_lazy(&self) -> bool {
        self.lazy.is_some()
    }

    /// An eager copy of the currently resident entries. This is what a
    /// dispatcher hands to repair jobs after faulting in the classes a
    /// request needs: job-side queries can never reach the backing store
    /// behind its back, so the positional [`KnowledgeBase::delta_since`]
    /// contract the learning merge depends on stays exact.
    #[must_use]
    pub fn resident_snapshot(&self) -> KnowledgeBase {
        let mut snapshot = self.clone();
        snapshot.lazy = None;
        snapshot
    }

    /// Faults `class`'s shard into the base if this base is lazy and the
    /// shard is not yet resident. Returns whether a segment file was
    /// actually read (an eager base, an already-resident class, and a
    /// class with no segment all return `Ok(false)`). On error the class
    /// stays non-resident, so a later touch retries.
    pub fn ensure_class(&mut self, class: UbClass) -> Result<bool, StoreError> {
        let Some(lazy) = self.lazy.as_mut() else {
            return Ok(false);
        };
        let bit = class_bit(class);
        if lazy.resident & bit != 0 {
            return Ok(false);
        }
        let mut span = rb_obs::span("kb.fault_in");
        span.tag("class", class.label());
        let entries = lazy.lock().load_class(class)?;
        lazy.resident |= bit;
        let read = !entries.is_empty();
        span.tag("entries", entries.len().to_string());
        if read {
            rb_obs::metrics().counter_add("rustbrain_kb_fault_ins_total", None, 1);
        }
        for e in entries {
            self.index.note_insert(self.entries.len(), e.class);
            self.entries.push(e);
        }
        self.debug_assert_index_fresh();
        Ok(read)
    }

    /// [`KnowledgeBase::ensure_class`] over a class list; returns how
    /// many segment files were read.
    pub fn ensure_classes(&mut self, classes: &[UbClass]) -> Result<usize, StoreError> {
        let mut read = 0usize;
        for &class in classes {
            read += usize::from(self.ensure_class(class)?);
        }
        Ok(read)
    }

    /// Faults in every shard the backing store holds, making a lazy base
    /// fully resident (a no-op on eager bases); returns how many segment
    /// files were read. Required before [`KnowledgeBase::save`] on a
    /// lazy base.
    pub fn ensure_all(&mut self) -> Result<usize, StoreError> {
        let Some(lazy) = self.lazy.as_ref() else {
            return Ok(0);
        };
        let classes: Vec<UbClass> = lazy
            .lock()
            .manifest()
            .shards
            .iter()
            .map(|m| m.class)
            .collect();
        self.ensure_classes(&classes)
    }

    /// Whether `class`'s knowledge is available in memory: always true
    /// for eager bases; for lazy bases, true once the class was faulted
    /// in — or when the backing store has no segment for it (nothing to
    /// load means nothing is missing).
    #[must_use]
    pub fn is_resident(&self, class: UbClass) -> bool {
        match &self.lazy {
            None => true,
            Some(lazy) => {
                lazy.resident & class_bit(class) != 0
                    || lazy.lock().manifest().shard(class).is_none()
            }
        }
    }

    /// Number of store shards resident in memory: for a lazy base, the
    /// backing segments faulted in so far; for an eager base, the
    /// distinct classes holding entries.
    #[must_use]
    pub fn resident_shards(&self) -> usize {
        match &self.lazy {
            None => self.index.histogram().len(),
            Some(lazy) => {
                let store = lazy.lock();
                store
                    .manifest()
                    .shards
                    .iter()
                    .filter(|m| lazy.resident & class_bit(m.class) != 0)
                    .count()
            }
        }
    }

    /// Segment reads for `class` through the backing store handle (0 for
    /// eager bases). The handle is shared with every clone of this base,
    /// so the count aggregates fault-ins across the base and its clones.
    #[must_use]
    pub fn shard_loads(&self, class: UbClass) -> u64 {
        self.lazy.as_ref().map_or(0, |l| l.lock().loads(class))
    }

    /// Segment reads across all classes through the backing store handle
    /// (0 for eager bases; shared with clones like
    /// [`KnowledgeBase::shard_loads`]).
    #[must_use]
    pub fn total_shard_loads(&self) -> u64 {
        self.lazy.as_ref().map_or(0, |l| l.lock().total_loads())
    }

    /// The first store shard not yet faulted in, if any — what makes a
    /// save refusable before data silently goes missing.
    fn first_non_resident(&self) -> Option<UbClass> {
        let lazy = self.lazy.as_ref()?;
        lazy.lock()
            .manifest()
            .shards
            .iter()
            .map(|m| m.class)
            .find(|&c| lazy.resident & class_bit(c) == 0)
    }

    /// Prospective cost of a query for `class`, faulting the class's
    /// shard in first on a lazy base. The fast/slow thinking paths
    /// charge the consult cost *before* querying, so the fault-in must
    /// happen at the charge site — otherwise a lazy base would charge
    /// the empty-bucket cost and then accrue the full-bucket cost,
    /// breaking the charged ≡ accrued invariant eager runs pin.
    pub fn consult_cost_ms(&mut self, class: UbClass) -> f64 {
        let _ = self.ensure_class(class);
        self.query_cost_ms(class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_lang::parser::parse_program;
    use rb_lang::prune::prune_program;

    fn vec_of(src: &str) -> AstVector {
        let p = parse_program(src).unwrap();
        let (pruned, _) = prune_program(&p);
        AstVector::embed(&pruned)
    }

    #[test]
    fn retrieval_prefers_similar_cases() {
        let mut kb = KnowledgeBase::new();
        let dangling = vec_of(
            "fn main() { let q: *const i32 = 0 as *const i32; \
             { let x: i32 = 5; q = &raw const x; } unsafe { print(*q); } }",
        );
        let race = vec_of(
            "static mut G: i32 = 0; fn main() { \
             spawn { unsafe { G = 1; } } spawn { unsafe { G = 2; } } join; }",
        );
        kb.insert(
            dangling.clone(),
            UbClass::DanglingPointer,
            RepairRule::HoistLocalOut,
        );
        kb.insert(race, UbClass::DataRace, RepairRule::LockSpawnBodies);

        let query = vec_of(
            "fn main() { let p: *const i32 = 0 as *const i32; \
             { let val: i32 = 9; p = &raw const val; } unsafe { print(*p); } }",
        );
        let shots = kb.query(&query, UbClass::DanglingPointer, 1);
        assert_eq!(shots.len(), 1);
        assert_eq!(shots[0].rule, RepairRule::HoistLocalOut);
        assert!(shots[0].similarity > 0.9);
    }

    #[test]
    fn dissimilar_entries_filtered() {
        let mut kb = KnowledgeBase::new();
        let race = vec_of(
            "static mut G: i32 = 0; fn main() { \
             spawn { unsafe { G = 1; } } spawn { unsafe { G = 2; } } join; }",
        );
        kb.insert(race, UbClass::DataRace, RepairRule::LockSpawnBodies);
        // An empty-ish program is not similar to a threaded one.
        let query = vec_of("fn main() { print(1i32); }");
        let shots = kb.query(&query, UbClass::DataRace, 3);
        assert!(shots.is_empty(), "{shots:?}");
    }

    #[test]
    fn delta_records_only_post_snapshot_inserts() {
        let v = vec_of("fn main() { print(1i32); }");
        let mut snapshot = KnowledgeBase::new();
        snapshot.insert(v.clone(), UbClass::Panic, RepairRule::GuardDivision);
        let baseline = snapshot.len();

        // A job clones the snapshot and learns two more cases.
        let mut job_kb = snapshot.clone();
        job_kb.insert(v.clone(), UbClass::Alloc, RepairRule::RemoveDoubleFree);
        job_kb.insert(v.clone(), UbClass::DataRace, RepairRule::LockSpawnBodies);
        let delta = job_kb.delta_since(baseline);
        assert_eq!(delta.len(), 2);
        assert_eq!(delta.entries[0].class, UbClass::Alloc);
        assert_eq!(delta.entries[1].class, UbClass::DataRace);

        // Merging back grows the snapshot (distinct classes: no policy
        // pass can collapse them).
        let mut merged = snapshot.clone();
        assert_eq!(merged.merge(&delta, &MergePolicy::default()), 2);
        assert_eq!(merged.len(), 3);
        // An out-of-range baseline yields an empty delta, not a panic.
        assert!(job_kb.delta_since(99).is_empty());
    }

    #[test]
    fn merge_policy_collapses_duplicates_into_weight() {
        let v = vec_of("fn main() { print(1i32); }");
        let mut kb = KnowledgeBase::new();
        kb.insert(v.clone(), UbClass::Panic, RepairRule::GuardDivision);
        let delta = KbDelta {
            entries: vec![
                KbEntry::new(v.clone(), UbClass::Panic, RepairRule::GuardDivision),
                KbEntry::new(v.clone(), UbClass::Panic, RepairRule::GuardDivision),
            ],
        };
        assert_eq!(kb.merge(&delta, &MergePolicy::default()), 2);
        assert_eq!(kb.len(), 1, "duplicates must collapse");
        assert_eq!(
            kb.total_weight(),
            3,
            "weight must count the collapsed cases"
        );
        // Retrieval still works over the merged, re-indexed base.
        assert_eq!(kb.query(&v, UbClass::Panic, 1).len(), 1);
        // Append-only keeps every duplicate.
        let mut plain = KnowledgeBase::new();
        plain.insert(v.clone(), UbClass::Panic, RepairRule::GuardDivision);
        plain.merge(&delta, &MergePolicy::append_only());
        assert_eq!(plain.len(), 3);
        assert_eq!(plain.compact(&MergePolicy::default()), 2);
        assert_eq!(plain.len(), 1);
    }

    #[test]
    fn query_cost_scales_with_bucket_not_base() {
        let mut kb = KnowledgeBase::new();
        let v = vec_of("fn main() { print(1i32); }");
        let c0 = kb.query_cost_ms(UbClass::Panic);
        for _ in 0..50 {
            kb.insert(v.clone(), UbClass::Alloc, RepairRule::RemoveDoubleFree);
        }
        // Another class's entries do not make Panic queries slower…
        assert_eq!(kb.query_cost_ms(UbClass::Panic), c0);
        // …its own do.
        kb.insert(v.clone(), UbClass::Panic, RepairRule::GuardDivision);
        assert!(kb.query_cost_ms(UbClass::Panic) > c0);
        // The charged cost is exactly what a query accrues.
        let predicted = kb.query_cost_ms(UbClass::Panic);
        kb.query(&v, UbClass::Panic, 1);
        assert_eq!(kb.last_query_cost_ms(), predicted);
        assert_eq!(kb.query_time_ms(), predicted);
        assert_eq!(kb.queries(), 1);
    }

    #[test]
    fn sharded_and_single_file_layouts_both_round_trip() {
        let dir = std::env::temp_dir().join(format!("rb_core_kb_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut kb = KnowledgeBase::new();
        let dangling = vec_of(
            "fn main() { let q: *const i32 = 0 as *const i32; \
             { let x: i32 = 5; q = &raw const x; } unsafe { print(*q); } }",
        );
        let race = vec_of(
            "static mut G: i32 = 0; fn main() { \
             spawn { unsafe { G = 1; } } spawn { unsafe { G = 2; } } join; }",
        );
        kb.insert(
            dangling.clone(),
            UbClass::DanglingPointer,
            RepairRule::HoistLocalOut,
        );
        kb.insert(race, UbClass::DataRace, RepairRule::LockSpawnBodies);

        let single = dir.join("store.rbkb");
        let sharded = dir.join("store.rbkb.d");
        kb.save(&single).unwrap();
        let report = kb.save_reported(&sharded).unwrap();
        assert_eq!(report.shards_written, 2, "two classes, two segments");

        // Both layouts revive the same base (sharded order groups by
        // class code; these two classes are already in code order).
        let from_single = KnowledgeBase::load(&single).unwrap();
        let from_sharded = KnowledgeBase::load(&sharded).unwrap();
        assert_eq!(from_single.entries(), kb.entries());
        assert_eq!(from_sharded.entries(), kb.entries());

        // The single-class fast path sees exactly one class's knowledge,
        // and retrieval over it still works.
        let mut one = KnowledgeBase::load_class(&sharded, UbClass::DanglingPointer).unwrap();
        assert_eq!(one.len(), 1);
        let shots = one.query(&dangling, UbClass::DanglingPointer, 1);
        assert_eq!(
            shots.first().map(|s| s.rule),
            Some(RepairRule::HoistLocalOut)
        );
        // …and the same call against the single-file store filters.
        let one = KnowledgeBase::load_class(&single, UbClass::DataRace).unwrap();
        assert_eq!(one.len(), 1);
        assert_eq!(one.entries()[0].rule, RepairRule::LockSpawnBodies);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lazy_base_faults_in_only_touched_shards() {
        let dir = std::env::temp_dir().join(format!("rb_core_lazy_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let store = dir.join("lazy.rbkb.d");
        let dangling = vec_of(
            "fn main() { let q: *const i32 = 0 as *const i32; \
             { let x: i32 = 5; q = &raw const x; } unsafe { print(*q); } }",
        );
        let race = vec_of(
            "static mut G: i32 = 0; fn main() { \
             spawn { unsafe { G = 1; } } spawn { unsafe { G = 2; } } join; }",
        );
        let mut eager = KnowledgeBase::new();
        eager.insert(
            dangling.clone(),
            UbClass::DanglingPointer,
            RepairRule::HoistLocalOut,
        );
        eager.insert(race.clone(), UbClass::DataRace, RepairRule::LockSpawnBodies);
        eager.save(&store).unwrap();

        let mut lazy = KnowledgeBase::open_lazy(&store).unwrap();
        assert!(lazy.is_lazy());
        assert!(lazy.is_empty(), "a lazy base starts with nothing resident");
        assert_eq!(lazy.resident_shards(), 0);
        assert_eq!(lazy.total_shard_loads(), 0);
        assert!(!lazy.is_resident(UbClass::DataRace));
        // A class without a segment is trivially resident.
        assert!(lazy.is_resident(UbClass::Panic));

        // The first touch faults exactly one shard in; shots and costs
        // match the eager base.
        let mut eager_q = eager.clone();
        let want_cost = eager_q.query_cost_ms(UbClass::DanglingPointer);
        assert_eq!(lazy.consult_cost_ms(UbClass::DanglingPointer), want_cost);
        let shots = lazy.query(&dangling, UbClass::DanglingPointer, 1);
        assert_eq!(shots, eager_q.query(&dangling, UbClass::DanglingPointer, 1));
        assert_eq!(lazy.last_query_cost_ms(), eager_q.last_query_cost_ms());
        assert_eq!(lazy.resident_shards(), 1);
        assert_eq!(lazy.shard_loads(UbClass::DanglingPointer), 1);
        assert_eq!(lazy.shard_loads(UbClass::DataRace), 0);

        // Repeated touches never reload a resident shard.
        lazy.query(&dangling, UbClass::DanglingPointer, 1);
        assert!(!lazy.ensure_class(UbClass::DanglingPointer).unwrap());
        assert_eq!(lazy.total_shard_loads(), 1);

        // Clones share the store handle: a clone's fault-in is counted
        // on the same per-shard load counters.
        let mut job = lazy.clone();
        job.query(&race, UbClass::DataRace, 1);
        assert_eq!(lazy.shard_loads(UbClass::DataRace), 1);
        assert_eq!(lazy.resident_shards(), 1, "residency stays per-clone");

        // ensure_all makes the base fully resident and equal to the
        // eager base as a per-class multiset.
        lazy.ensure_all().unwrap();
        assert_eq!(lazy.resident_shards(), 2);
        let mut got: Vec<_> = lazy.entries().to_vec();
        let mut want: Vec<_> = eager.entries().to_vec();
        let key = |e: &KbEntry| (class_code(e.class), rb_kb::codec::rule_code(e.rule));
        got.sort_by_key(key);
        want.sort_by_key(key);
        assert_eq!(got, want);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lazy_partial_save_is_refused_until_fully_resident() {
        let dir = std::env::temp_dir().join(format!("rb_core_lazy_save_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let store = dir.join("guard.rbkb.d");
        let v = vec_of("fn main() { print(1i32); }");
        let mut kb = KnowledgeBase::new();
        kb.insert(v.clone(), UbClass::Panic, RepairRule::GuardDivision);
        kb.insert(v.clone(), UbClass::Alloc, RepairRule::RemoveDoubleFree);
        kb.save(&store).unwrap();

        let mut lazy = KnowledgeBase::open_lazy(&store).unwrap();
        lazy.ensure_class(UbClass::Panic).unwrap();
        // Saving now would delete the still-on-disk Alloc segment.
        let err = lazy.save_reported(&store).unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }));
        assert!(err.to_string().contains("partially resident"), "{err}");

        lazy.ensure_all().unwrap();
        lazy.save_reported(&store).unwrap();
        // Nothing was lost: the store still revives both classes.
        assert_eq!(KnowledgeBase::load(&store).unwrap().len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_lazy_on_single_file_degrades_to_eager() {
        let dir = std::env::temp_dir().join(format!("rb_core_lazy_single_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("eager.rbkb");
        let v = vec_of("fn main() { print(1i32); }");
        let mut kb = KnowledgeBase::new();
        kb.insert(v.clone(), UbClass::Panic, RepairRule::GuardDivision);
        kb.save(&file).unwrap();
        let lazy = KnowledgeBase::open_lazy(&file).unwrap();
        assert!(!lazy.is_lazy(), "a single file has nothing to defer");
        assert_eq!(lazy.len(), 1);
        assert!(lazy.is_resident(UbClass::Panic));
        assert_eq!(lazy.resident_shards(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_lazy_creates_a_missing_sharded_store() {
        let dir = std::env::temp_dir().join(format!("rb_core_lazy_fresh_{}", std::process::id()));
        let store = dir.join("fresh.rbkb.d");
        let mut lazy = KnowledgeBase::open_lazy(&store).unwrap();
        assert!(lazy.is_lazy());
        assert_eq!(lazy.ensure_all().unwrap(), 0);
        // Fully resident by construction, so saving is allowed.
        let v = vec_of("fn main() { print(1i32); }");
        lazy.insert(v, UbClass::Panic, RepairRule::GuardDivision);
        lazy.save(&store).unwrap();
        assert_eq!(KnowledgeBase::load(&store).unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bytes_round_trip_preserves_retrieval() {
        let mut kb = KnowledgeBase::new();
        let v = vec_of(
            "fn main() { let q: *const i32 = 0 as *const i32; \
             { let x: i32 = 5; q = &raw const x; } unsafe { print(*q); } }",
        );
        kb.insert(
            v.clone(),
            UbClass::DanglingPointer,
            RepairRule::HoistLocalOut,
        );
        let mut revived = KnowledgeBase::from_bytes(&kb.to_bytes()).unwrap();
        assert_eq!(revived.entries(), kb.entries());
        assert_eq!(revived.queries(), 0, "counters are runtime state");
        let shots = revived.query(&v, UbClass::DanglingPointer, 1);
        assert_eq!(
            shots.first().map(|s| s.rule),
            Some(RepairRule::HoistLocalOut)
        );
        assert!(KnowledgeBase::from_bytes(b"garbage").is_err());
    }
}
