//! The AST-similarity knowledge base behind the abstract reasoning agent
//! (paper Fig. 6): pruned ASTs are embedded as vectors; retrieval returns
//! the repair rules that solved the most similar past errors, attached to
//! prompts as few-shots. Querying costs simulated time proportional to the
//! base's size — the source of the paper's 2–4× knowledge overhead.

use rb_lang::vectorize::AstVector;
use rb_llm::{FewShot, RepairRule};
use rb_miri::UbClass;
use serde::{Deserialize, Serialize};

/// One stored solved case.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct KbEntry {
    /// Embedding of the pruned buggy AST.
    pub vector: AstVector,
    /// UB class of the solved case.
    pub class: UbClass,
    /// The rule that produced the accepted repair.
    pub rule: RepairRule,
}

/// The knowledge base.
///
/// The query-accounting counters are private: shared/concurrent use (the
/// batch engine hands bases to worker-built systems) must not be able to
/// corrupt the accounting from outside — reads go through
/// [`KnowledgeBase::queries`] and [`KnowledgeBase::query_time_ms`], and
/// the only writer is [`KnowledgeBase::query`] itself.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct KnowledgeBase {
    entries: Vec<KbEntry>,
    query_time_ms: f64,
    queries: u64,
}

/// Fixed per-query cost plus a per-entry scan cost (simulated ms).
const QUERY_BASE_MS: f64 = 9_000.0;
const QUERY_PER_ENTRY_MS: f64 = 60.0;

/// The inserts a repair job recorded on top of a shared knowledge-base
/// snapshot, in insertion order.
///
/// Batch mode recovers the paper's cross-case self-learning with these:
/// every job starts from the same read-only snapshot, records its own
/// successful repairs into a delta, and the engine merges all deltas back
/// in submission order after the batch — so the merged base is identical
/// for any worker count.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct KbDelta {
    /// The recorded inserts, oldest first.
    pub entries: Vec<KbEntry>,
}

impl KbDelta {
    /// Number of recorded inserts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the job recorded nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl KnowledgeBase {
    /// Creates an empty knowledge base.
    #[must_use]
    pub fn new() -> KnowledgeBase {
        KnowledgeBase::default()
    }

    /// Seeds the base with `entries` (used to model a pre-built knowledge
    /// base of a given size for the ablation benchmarks).
    #[must_use]
    pub fn with_entries(entries: Vec<KbEntry>) -> KnowledgeBase {
        KnowledgeBase {
            entries,
            ..KnowledgeBase::default()
        }
    }

    /// Number of stored cases.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the base is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Stores a solved case.
    pub fn insert(&mut self, vector: AstVector, class: UbClass, rule: RepairRule) {
        self.entries.push(KbEntry {
            vector,
            class,
            rule,
        });
    }

    /// The inserts recorded since the base held `baseline` entries
    /// (typically the size of the snapshot the base was cloned from).
    #[must_use]
    pub fn delta_since(&self, baseline: usize) -> KbDelta {
        KbDelta {
            entries: self.entries[baseline.min(self.entries.len())..].to_vec(),
        }
    }

    /// Appends a delta's inserts, preserving their order; returns how many
    /// entries were merged. The merge policy is append-only (duplicates are
    /// harmless: retrieval ranks by similarity, and a repeated entry only
    /// reinforces an already-solved shape).
    pub fn merge(&mut self, delta: &KbDelta) -> usize {
        self.entries.extend(delta.entries.iter().cloned());
        delta.len()
    }

    /// Retrieves up to `k` few-shots for a query vector, preferring
    /// same-class entries, ranked by cosine similarity. Entries below the
    /// similarity floor (0.6) are not returned. Each call accrues simulated
    /// query time.
    pub fn query(&mut self, vector: &AstVector, class: UbClass, k: usize) -> Vec<FewShot> {
        self.queries += 1;
        self.query_time_ms += QUERY_BASE_MS + QUERY_PER_ENTRY_MS * self.entries.len() as f64;
        let mut scored: Vec<(f64, &KbEntry)> = self
            .entries
            .iter()
            .map(|e| {
                let mut sim = vector.cosine(&e.vector);
                if e.class == class {
                    sim += 0.05; // same-class tie-break bonus
                }
                (sim, e)
            })
            .filter(|(sim, _)| *sim >= 0.6)
            .collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        scored
            .into_iter()
            .take(k)
            .map(|(sim, e)| FewShot {
                rule: e.rule,
                similarity: sim.min(1.0),
            })
            .collect()
    }

    /// Cost of the most recent query in simulated milliseconds (used by the
    /// pipeline to charge overhead).
    #[must_use]
    pub fn last_query_cost_ms(&self) -> f64 {
        QUERY_BASE_MS + QUERY_PER_ENTRY_MS * self.entries.len() as f64
    }

    /// Number of queries served over the base's lifetime.
    #[must_use]
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Total simulated milliseconds spent in queries.
    #[must_use]
    pub fn query_time_ms(&self) -> f64 {
        self.query_time_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_lang::parser::parse_program;
    use rb_lang::prune::prune_program;

    fn vec_of(src: &str) -> AstVector {
        let p = parse_program(src).unwrap();
        let (pruned, _) = prune_program(&p);
        AstVector::embed(&pruned)
    }

    #[test]
    fn retrieval_prefers_similar_cases() {
        let mut kb = KnowledgeBase::new();
        let dangling = vec_of(
            "fn main() { let q: *const i32 = 0 as *const i32; \
             { let x: i32 = 5; q = &raw const x; } unsafe { print(*q); } }",
        );
        let race = vec_of(
            "static mut G: i32 = 0; fn main() { \
             spawn { unsafe { G = 1; } } spawn { unsafe { G = 2; } } join; }",
        );
        kb.insert(
            dangling.clone(),
            UbClass::DanglingPointer,
            RepairRule::HoistLocalOut,
        );
        kb.insert(race, UbClass::DataRace, RepairRule::LockSpawnBodies);

        let query = vec_of(
            "fn main() { let p: *const i32 = 0 as *const i32; \
             { let val: i32 = 9; p = &raw const val; } unsafe { print(*p); } }",
        );
        let shots = kb.query(&query, UbClass::DanglingPointer, 1);
        assert_eq!(shots.len(), 1);
        assert_eq!(shots[0].rule, RepairRule::HoistLocalOut);
        assert!(shots[0].similarity > 0.9);
    }

    #[test]
    fn dissimilar_entries_filtered() {
        let mut kb = KnowledgeBase::new();
        let race = vec_of(
            "static mut G: i32 = 0; fn main() { \
             spawn { unsafe { G = 1; } } spawn { unsafe { G = 2; } } join; }",
        );
        kb.insert(race, UbClass::DataRace, RepairRule::LockSpawnBodies);
        // An empty-ish program is not similar to a threaded one.
        let query = vec_of("fn main() { print(1i32); }");
        let shots = kb.query(&query, UbClass::DataRace, 3);
        assert!(shots.is_empty(), "{shots:?}");
    }

    #[test]
    fn delta_records_only_post_snapshot_inserts() {
        let v = vec_of("fn main() { print(1i32); }");
        let mut snapshot = KnowledgeBase::new();
        snapshot.insert(v.clone(), UbClass::Panic, RepairRule::GuardDivision);
        let baseline = snapshot.len();

        // A job clones the snapshot and learns two more cases.
        let mut job_kb = snapshot.clone();
        job_kb.insert(v.clone(), UbClass::Alloc, RepairRule::RemoveDoubleFree);
        job_kb.insert(v.clone(), UbClass::DataRace, RepairRule::LockSpawnBodies);
        let delta = job_kb.delta_since(baseline);
        assert_eq!(delta.len(), 2);
        assert_eq!(delta.entries[0].class, UbClass::Alloc);
        assert_eq!(delta.entries[1].class, UbClass::DataRace);

        // Merging back grows the snapshot in delta order.
        let mut merged = snapshot.clone();
        assert_eq!(merged.merge(&delta), 2);
        assert_eq!(merged.len(), 3);
        // An out-of-range baseline yields an empty delta, not a panic.
        assert!(job_kb.delta_since(99).is_empty());
    }

    #[test]
    fn query_cost_grows_with_size() {
        let mut kb = KnowledgeBase::new();
        let v = vec_of("fn main() { print(1i32); }");
        let c0 = kb.last_query_cost_ms();
        for _ in 0..50 {
            kb.insert(v.clone(), UbClass::Panic, RepairRule::GuardDivision);
        }
        assert!(kb.last_query_cost_ms() > c0);
        kb.query(&v, UbClass::Panic, 1);
        assert_eq!(kb.queries(), 1);
        assert!(kb.query_time_ms() > 0.0);
    }
}
