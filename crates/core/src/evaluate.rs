//! The evaluation triplet (paper §III-C): *(accuracy, acceptability,
//! overhead)* — passes Miri, preserves gold semantics, and costs how much
//! simulated time.

use rb_lang::Program;
use rb_miri::{MiriReport, Oracle};
use serde::{Deserialize, Serialize};

/// Multi-dimensional assessment of one repair attempt.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EvalTriplet {
    /// Passes the oracle with zero diagnostics.
    pub accuracy: bool,
    /// Observable outputs match the reference (gold) outputs.
    pub acceptability: bool,
    /// Simulated time spent producing the repair, in milliseconds.
    pub overhead_ms: f64,
}

impl EvalTriplet {
    /// Scalar quality used to rank solutions in the feedback loop:
    /// acceptable ≻ merely-passing ≻ failing; overhead breaks ties.
    #[must_use]
    pub fn score(&self) -> f64 {
        let quality = match (self.accuracy, self.acceptability) {
            (true, true) => 2.0,
            (true, false) => 1.0,
            _ => 0.0,
        };
        // Up to 0.5 bonus for being fast (saturates at ~10 minutes).
        let speed = 0.5 / (1.0 + self.overhead_ms / 60_000.0);
        quality + speed
    }
}

/// Evaluates a candidate repair against reference outputs, judging the
/// candidate through the injected `oracle`.
#[must_use]
pub fn evaluate(
    oracle: &dyn Oracle,
    candidate: &Program,
    reference_outputs: &[String],
    overhead_ms: f64,
) -> EvalTriplet {
    let report = oracle.judge(candidate);
    evaluate_with_report(&report, reference_outputs, overhead_ms)
}

/// Evaluates from an already-computed oracle report.
#[must_use]
pub fn evaluate_with_report(
    report: &MiriReport,
    reference_outputs: &[String],
    overhead_ms: f64,
) -> EvalTriplet {
    let accuracy = report.passes();
    EvalTriplet {
        accuracy,
        acceptability: accuracy && report.outputs == reference_outputs,
        overhead_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_lang::parser::parse_program;

    #[test]
    fn acceptable_beats_passing_beats_failing() {
        let acceptable = EvalTriplet {
            accuracy: true,
            acceptability: true,
            overhead_ms: 50_000.0,
        };
        let passing = EvalTriplet {
            accuracy: true,
            acceptability: false,
            overhead_ms: 1_000.0,
        };
        let failing = EvalTriplet {
            accuracy: false,
            acceptability: false,
            overhead_ms: 0.0,
        };
        assert!(acceptable.score() > passing.score());
        assert!(passing.score() > failing.score());
    }

    #[test]
    fn faster_same_quality_scores_higher() {
        let fast = EvalTriplet {
            accuracy: true,
            acceptability: true,
            overhead_ms: 10_000.0,
        };
        let slow = EvalTriplet {
            accuracy: true,
            acceptability: true,
            overhead_ms: 300_000.0,
        };
        assert!(fast.score() > slow.score());
    }

    #[test]
    fn evaluate_compares_outputs() {
        let oracle = rb_miri::DirectOracle;
        let good = parse_program("fn main() { print(7i32); }").unwrap();
        let t = evaluate(&oracle, &good, &["7".into()], 100.0);
        assert!(t.accuracy && t.acceptability);
        let t = evaluate(&oracle, &good, &["8".into()], 100.0);
        assert!(t.accuracy && !t.acceptability);
        let bad = parse_program("fn main() { let z: i32 = 0; print(1 / z); }").unwrap();
        let t = evaluate(&oracle, &bad, &["7".into()], 100.0);
        assert!(!t.accuracy && !t.acceptability);
    }
}
