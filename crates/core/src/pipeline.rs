//! The end-to-end RustBrain pipeline: Miri detection → fast-thinking
//! solution generation → slow-thinking decomposition/verification →
//! evaluation triplet → feedback into priors and knowledge base.

use crate::config::RustBrainConfig;
use crate::evaluate::{evaluate_with_report, EvalTriplet};
use crate::fast::FastThinking;
use crate::features::extract_features;
use crate::feedback::Priors;
use crate::knowledge::KnowledgeBase;
use crate::slow::{execute_solution, SolutionOutcome};
use crate::solution::Solution;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rb_lang::prune::prune_program;
use rb_lang::vectorize::AstVector;
use rb_lang::Program;
use rb_llm::{LanguageModel, ModelCallStats, RepairRule, SimulatedModel};
use rb_miri::{DirectOracle, MiriReport, Oracle, OracleUse, UbClass};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Aggregated result of repairing one program.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RepairOutcome {
    /// Whether the final program passes the oracle.
    pub passed: bool,
    /// Whether its outputs match the reference (semantic acceptability).
    pub acceptable: bool,
    /// Total simulated time (model + retrieval + oracle runs).
    pub overhead_ms: f64,
    /// Oracle invocations consumed.
    pub oracle_runs: usize,
    /// Oracle judgements that executed the interpreter fresh.
    ///
    /// Together with `oracle_cached` and `oracle_prevetoed` this covers
    /// *every* judgement the repair made — the initial detection, each
    /// verification counted in `oracle_runs`, and rollback
    /// re-verifications — so `oracle_executed + oracle_cached +
    /// oracle_prevetoed >= oracle_runs`, with the total itself identical
    /// across oracles and preflight settings. The three-way split is pure
    /// telemetry and is the *only* part of the outcome allowed to differ
    /// between a caching oracle and [`DirectOracle`], or between preflight
    /// on and off (everything else is bit-identical — property-tested in
    /// `rb_engine`'s oracle-equivalence and preflight-equivalence suites).
    pub oracle_executed: usize,
    /// Oracle judgements served from a cache (always 0 under
    /// [`DirectOracle`]).
    pub oracle_cached: usize,
    /// Judgements the static preflight resolved without the oracle:
    /// `rb_lint` proved the candidate's exact verdict, so the interpreter
    /// (and any cache) was never consulted.
    pub oracle_prevetoed: usize,
    /// Solutions attempted before stopping.
    pub solutions_tried: usize,
    /// Knowledge-base lookups this repair made: the up-front S3→F
    /// consult plus every retrieval during slow thinking (0 when the
    /// knowledge base is disabled).
    pub kb_queries: u64,
    /// Simulated milliseconds those lookups accrued — bucket-indexed
    /// scan cost, covering *all* KB time charged into `overhead_ms`
    /// (consult included), so subtracting it isolates non-KB overhead.
    pub kb_query_time_ms: f64,
    /// The best program produced.
    pub final_program: Program,
    /// Concatenated oracle error counts across all attempts.
    pub error_history: Vec<usize>,
    /// Rules applied along the winning path.
    pub rules_applied: Vec<RepairRule>,
    /// Rollbacks performed.
    pub rollbacks: usize,
    /// The winning solution, when the repair succeeded.
    pub best_solution: Option<Solution>,
    /// UB class of the problem (from the initial report).
    pub class: UbClass,
    /// Class of the lint's top finding on the input program (static
    /// triage), `None` when the lint found nothing.
    pub lint_class: Option<UbClass>,
    /// Whether static triage agreed with the oracle on the input program:
    /// a sound top finding whose class the report confirms, or a proven
    /// clean on a passing program.
    pub lint_agrees: bool,
}

/// Records one finished repair into the process-wide metrics registry:
/// the per-class repair counter and the per-class simulated-latency
/// histogram — the direct input for the planned scheduler cost model.
fn record_repair_metrics(class: UbClass, sim_ms: f64) {
    let m = rb_obs::metrics();
    m.counter_add("rustbrain_repairs_total", Some(("class", class.label())), 1);
    m.observe(
        "rustbrain_repair_latency_sim_ms",
        Some(("class", class.label())),
        sim_ms,
        rb_obs::SIM_MS_BUCKETS,
    );
}

/// The RustBrain framework instance. Holds the model, the knowledge base,
/// the learned priors and the injected [`Oracle`] every program judgement
/// goes through; repairs are stateful so that self-learning carries across
/// problems (the paper's feedback mechanism).
pub struct RustBrain {
    config: RustBrainConfig,
    oracle: Arc<dyn Oracle>,
    model: SimulatedModel,
    knowledge: KnowledgeBase,
    priors: Priors,
    fast: FastThinking,
}

impl RustBrain {
    /// Builds a framework instance from a configuration, judging programs
    /// with the zero-cost [`DirectOracle`] (a thin wrapper over
    /// [`with_oracle`]).
    ///
    /// [`with_oracle`]: RustBrain::with_oracle
    #[must_use]
    pub fn new(config: RustBrainConfig) -> RustBrain {
        RustBrain::with_oracle(config, Arc::new(DirectOracle))
    }

    /// Builds a framework instance that judges every program — the initial
    /// detection, each slow-thinking edit verification, and rollback
    /// re-verification — through `oracle`. This is the seam the batch
    /// engine uses to share one process-wide verdict cache across jobs,
    /// and where a real-Miri or remote backend would plug in.
    #[must_use]
    pub fn with_oracle(config: RustBrainConfig, oracle: Arc<dyn Oracle>) -> RustBrain {
        let model = SimulatedModel::new(config.model, config.temperature, config.seed);
        let fast = FastThinking::new(ChaCha8Rng::seed_from_u64(config.seed.wrapping_add(0xFA57)));
        RustBrain {
            config,
            oracle,
            model,
            knowledge: KnowledgeBase::new(),
            priors: Priors::new(),
            fast,
        }
    }

    /// Replaces the knowledge base with `kb` (builder-style). Batch jobs
    /// use this to start from a clone of the engine's shared pre-seeded
    /// snapshot; their subsequent inserts are recovered with
    /// [`KnowledgeBase::delta_since`] and merged after the batch.
    #[must_use]
    pub fn with_knowledge_base(mut self, kb: KnowledgeBase) -> RustBrain {
        self.knowledge = kb;
        self
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &RustBrainConfig {
        &self.config
    }

    /// The injected oracle.
    #[must_use]
    pub fn oracle(&self) -> &Arc<dyn Oracle> {
        &self.oracle
    }

    /// Read access to the knowledge base.
    #[must_use]
    pub fn knowledge(&self) -> &KnowledgeBase {
        &self.knowledge
    }

    /// Read access to the learned priors.
    #[must_use]
    pub fn priors(&self) -> &Priors {
        &self.priors
    }

    /// Lifetime statistics of the backing model.
    #[must_use]
    pub fn model_stats(&self) -> &ModelCallStats {
        self.model.stats()
    }

    /// Pre-seeds the knowledge base with a solved case (used to model a
    /// pre-built knowledge base).
    pub fn seed_knowledge(&mut self, buggy: &Program, class: UbClass, rule: RepairRule) {
        let (pruned, _) = prune_program(buggy);
        let vector = if pruned.stmt_count() == 0 {
            AstVector::embed(buggy)
        } else {
            AstVector::embed(&pruned)
        };
        self.knowledge.insert(vector, class, rule);
    }

    /// Generates (without executing) fast-thinking solutions for a failing
    /// program — exposed for the RQ1 flexibility experiment.
    pub fn generate_solutions(&mut self, program: &Program, report: &MiriReport) -> Vec<Solution> {
        let features = extract_features(program, report);
        self.fast.generate(
            &features,
            &self.priors,
            self.config.max_solutions,
            self.config.temperature,
            self.config.use_feedback,
        )
    }

    /// Executes one solution — exposed for the RQ1 flexibility experiment.
    pub fn execute_one(
        &mut self,
        program: &Program,
        report: &Arc<MiriReport>,
        solution: &Solution,
        reference: &[String],
        budget: usize,
    ) -> SolutionOutcome {
        let kb = self.config.use_knowledge.then_some(&mut self.knowledge);
        execute_solution(
            self.oracle.as_ref(),
            &mut self.model,
            kb,
            self.config.rollback,
            self.config.preflight,
            program,
            report,
            solution,
            reference,
            budget,
        )
    }

    /// Repairs a failing program. `reference` is the gold observable output
    /// used for the acceptability dimension of the evaluation triplet.
    ///
    /// When a tracer is installed (see `rb_obs::trace::scope`) the repair
    /// emits a `repair` span whose direct children — the `fast` phase,
    /// the up-front `kb.consult`, and one `solution` span per attempt —
    /// carry `sim_ms` attributions that sum *exactly* to the outcome's
    /// `overhead_ms`: the spans are opened at the cost model's charge
    /// sites, not alongside them. Tracing and the metrics recorded into
    /// `rb_obs::metrics()` are purely observational; results are
    /// byte-identical with or without them.
    pub fn repair(&mut self, program: &Program, reference: &[String]) -> RepairOutcome {
        let mut repair_span = rb_obs::span("repair");
        let mut oracle_use = OracleUse::default();
        // Held as an Arc end to end: a cache-served verdict is shared,
        // never deep-copied (execute_one and the rollback tracker only
        // ever borrow it).
        let report: Arc<MiriReport> = self.oracle.judge_recording(program, &mut oracle_use);
        let class = report.primary().map_or(UbClass::Compile, |e| e.class());
        repair_span.tag("class", class.label());
        // Static triage: consult the lint on the input program before any
        // model call. A sound agreeing diagnosis means fast thinking gets
        // the defect class for free (one model call instead of two, below);
        // the agreement itself is recorded per case as precision telemetry.
        let lint = rb_lint::analyze(program);
        let lint_class = lint.top().map(|f| f.class);
        let lint_agrees = if report.passes() {
            lint.proves_clean()
        } else {
            lint.agrees_with(&report)
        };
        repair_span.tag("lint_agrees", lint_agrees.to_string());
        rb_obs::metrics().counter_add(
            "rustbrain_triage_total",
            Some(("agrees", if lint_agrees { "true" } else { "false" })),
            1,
        );
        if report.passes() {
            repair_span.tag("outcome", "already-passing");
            record_repair_metrics(class, 0.0);
            let eval = evaluate_with_report(&report, reference, 0.0);
            return RepairOutcome {
                passed: true,
                acceptable: eval.acceptability,
                overhead_ms: 0.0,
                oracle_runs: 1,
                oracle_executed: oracle_use.executed,
                oracle_cached: oracle_use.cached,
                oracle_prevetoed: oracle_use.prevetoed,
                solutions_tried: 0,
                kb_queries: 0,
                kb_query_time_ms: 0.0,
                final_program: program.clone(),
                error_history: vec![0],
                rules_applied: Vec::new(),
                rollbacks: 0,
                best_solution: None,
                class,
                lint_class,
                lint_agrees,
            };
        }

        // Fast thinking is normally two model calls (feature/class
        // extraction and solution generation); when static triage already
        // produced a sound agreeing diagnosis the class prediction is free
        // and only the generation call's latency is charged.
        let profile = self.model.profile().clone();
        let fast_tokens = rb_llm::tokens::count_tokens(&rb_lang::printer::print_program(program));
        let fast_calls = if lint_agrees { 1.0 } else { 2.0 };
        let fast_cost = fast_calls
            * (profile.latency_base_ms + profile.latency_per_token_ms * fast_tokens as f64);
        let solutions = {
            let mut fast_span = rb_obs::span("fast");
            fast_span.add_sim_ms(fast_cost);
            fast_span.tag("triage", if lint_agrees { "static" } else { "model" });
            let solutions = self.generate_solutions(program, &report);
            fast_span.tag("solutions", solutions.len().to_string());
            solutions
        };
        let mut best: Option<SolutionOutcome> = None;
        let mut total_overhead = fast_cost;
        let mut total_runs = 0usize;
        let mut history: Vec<usize> = vec![report.error_count()];
        let mut rollbacks = 0usize;
        let mut tried = 0usize;

        // The knowledge-enabled framework consults the base before anything
        // else (the paper's S3->F feedback path); that lookup costs time
        // regardless of whether a shot is ultimately attached. The charge
        // is the indexed per-class cost — the same number an actual query
        // for this class accrues, so charged and accrued overhead agree —
        // and it is booked into the kb_* telemetry too, so kb_query_time_ms
        // accounts for every KB millisecond inside overhead_ms.
        let mut kb_consults = 0u64;
        let mut kb_consult_ms = 0.0f64;
        if self.config.use_knowledge {
            kb_consults = 1;
            let mut consult_span = rb_obs::span("kb.consult");
            consult_span.tag("class", class.label());
            // consult_cost_ms (not query_cost_ms) so a lazily loaded
            // base faults the class's shard in before the charge: the
            // charged cost must be the same full-bucket number an eager
            // base charges here.
            kb_consult_ms = self.knowledge.consult_cost_ms(class);
            consult_span.add_sim_ms(kb_consult_ms);
            total_overhead += kb_consult_ms;
        }
        let kb_queries_before = self.knowledge.queries();
        let kb_time_before = self.knowledge.query_time_ms();
        // The state each solution starts from depends on the rollback
        // policy: adaptive continues from the best state seen so far,
        // restart-from-initial always re-derives from scratch, and
        // no-rollback continues from wherever the last solution *ended* —
        // letting hallucinated damage compound across the whole process
        // (the paper's Fig. 5a).
        let mut start_state: Option<(Program, Arc<MiriReport>)> = None;
        let calls_at_start = self.model.stats().calls;
        for (i, solution) in solutions.iter().enumerate() {
            if total_runs >= self.config.max_iterations
                || (self.model.stats().calls - calls_at_start) as usize
                    >= self.config.max_model_calls
            {
                break;
            }
            let remaining_solutions = (solutions.len() - i).max(1);
            let budget = ((self.config.max_iterations - total_runs) / remaining_solutions)
                .max(self.config.max_steps_per_solution);
            let (start_prog, start_report) = match (&self.config.rollback, &start_state) {
                (crate::config::RollbackPolicy::ToInitial, _) | (_, None) => {
                    (program.clone(), Arc::clone(&report))
                }
                (_, Some((p, r))) => (p.clone(), Arc::clone(r)),
            };
            let outcome = {
                let mut solution_span = rb_obs::span("solution");
                solution_span.tag("index", i.to_string());
                let outcome =
                    self.execute_one(&start_prog, &start_report, solution, reference, budget);
                solution_span.add_sim_ms(outcome.overhead_ms);
                solution_span.tag("accuracy", outcome.eval.accuracy.to_string());
                outcome
            };
            start_state = Some(match self.config.rollback {
                crate::config::RollbackPolicy::Adaptive => {
                    // Continue from the best state while it still has
                    // errors; a passing-but-unacceptable state offers no
                    // foothold for refinement, so seek a fresh path from
                    // the original program instead.
                    if outcome.eval.accuracy {
                        (program.clone(), Arc::clone(&report))
                    } else {
                        let reverified = self
                            .oracle
                            .judge_recording(&outcome.final_program, &mut oracle_use);
                        (outcome.final_program.clone(), reverified)
                    }
                }
                crate::config::RollbackPolicy::None => {
                    (outcome.end_program.clone(), outcome.end_report.clone())
                }
                crate::config::RollbackPolicy::ToInitial => (program.clone(), Arc::clone(&report)),
            });
            tried += 1;
            total_overhead += outcome.overhead_ms;
            total_runs += outcome.oracle_runs;
            oracle_use.absorb(outcome.oracle_use);
            history.extend(outcome.trace.error_counts.iter().skip(1));
            rollbacks += outcome.trace.rollbacks;

            if self.config.use_feedback {
                self.priors.update(class, &solution.steps, &outcome.eval);
            }
            let better = match &best {
                None => true,
                Some(b) => outcome.eval.score() > b.eval.score(),
            };
            if better {
                best = Some(outcome);
            }
            if best.as_ref().is_some_and(|b| b.eval.acceptability) {
                break;
            }
        }

        let best = best.expect("at least one solution attempted");
        if best.eval.accuracy && self.config.use_knowledge {
            if let Some(rule) = best.fixing_rule {
                self.seed_knowledge(program, class, rule);
            }
        }
        let eval: &EvalTriplet = &best.eval;
        repair_span.add_sim_ms(total_overhead);
        repair_span.tag("passed", eval.accuracy.to_string());
        repair_span.tag("solutions_tried", tried.to_string());
        record_repair_metrics(class, total_overhead);
        RepairOutcome {
            passed: eval.accuracy,
            acceptable: eval.acceptability,
            overhead_ms: total_overhead,
            oracle_runs: total_runs,
            oracle_executed: oracle_use.executed,
            oracle_cached: oracle_use.cached,
            oracle_prevetoed: oracle_use.prevetoed,
            solutions_tried: tried,
            kb_queries: kb_consults + (self.knowledge.queries() - kb_queries_before),
            kb_query_time_ms: kb_consult_ms + (self.knowledge.query_time_ms() - kb_time_before),
            final_program: best.final_program.clone(),
            error_history: history,
            rules_applied: best.steps.iter().filter_map(|s| s.rule).collect(),
            rollbacks,
            best_solution: eval.accuracy.then(|| best.solution.clone()),
            class,
            lint_class,
            lint_agrees,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_llm::ModelId;

    fn double_free() -> (Program, Vec<String>) {
        let p = rb_lang::parser::parse_program(
            "fn main() { let p: *mut u8 = 0 as *mut u8; \
             unsafe { p = alloc(4usize, 4usize); ptr_write::<i32>(p as *mut i32, 3i32); } \
             unsafe { print(ptr_read::<i32>(p as *const i32)); } \
             unsafe { dealloc(p, 4usize, 4usize); } \
             unsafe { dealloc(p, 4usize, 4usize); } }",
        )
        .unwrap();
        (p, vec!["3".to_owned()])
    }

    #[test]
    fn repairs_double_free_end_to_end() {
        let (p, gold) = double_free();
        let mut rb = RustBrain::new(RustBrainConfig::for_model(ModelId::Gpt4, 42));
        let out = rb.repair(&p, &gold);
        assert!(out.passed, "history: {:?}", out.error_history);
        assert!(out.acceptable);
        assert!(out.overhead_ms > 0.0);
        assert_eq!(out.class, UbClass::Alloc);
        // Success is stored in the knowledge base.
        assert_eq!(rb.knowledge().len(), 1);
    }

    #[test]
    fn passing_program_is_trivial() {
        let p = rb_lang::parser::parse_program("fn main() { print(5i32); }").unwrap();
        let mut rb = RustBrain::new(RustBrainConfig::default());
        let out = rb.repair(&p, &["5".to_owned()]);
        assert!(out.passed && out.acceptable);
        assert_eq!(out.solutions_tried, 0);
        assert_eq!(out.overhead_ms, 0.0);
    }

    #[test]
    fn feedback_learns_across_repeats() {
        let (p, gold) = double_free();
        let mut rb = RustBrain::new(RustBrainConfig::for_model(ModelId::Gpt4, 7));
        let first = rb.repair(&p, &gold);
        let second = rb.repair(&p, &gold);
        assert!(first.passed && second.passed);
        // With a remembered best solution and knowledge entry, the second
        // run needs no more attempts than the first.
        assert!(second.solutions_tried <= first.solutions_tried);
        assert!(rb.priors().updates() > 0);
    }

    #[test]
    fn oracle_split_accounts_for_every_run() {
        let (p, gold) = double_free();
        let mut rb = RustBrain::new(RustBrainConfig::for_model(ModelId::Gpt4, 42));
        let out = rb.repair(&p, &gold);
        // The split covers every judgement (initial detection, inner
        // verifications, rollback re-verifications) — at least the
        // budget-counted runs, plus the initial detection.
        assert!(out.oracle_executed + out.oracle_cached + out.oracle_prevetoed > out.oracle_runs);
        // The default DirectOracle never serves from a cache.
        assert_eq!(out.oracle_cached, 0);

        let clean = rb_lang::parser::parse_program("fn main() { print(5i32); }").unwrap();
        let out = rb.repair(&clean, &["5".to_owned()]);
        assert_eq!(
            (out.oracle_runs, out.oracle_executed, out.oracle_cached),
            (1, 1, 0)
        );
        assert_eq!(out.oracle_prevetoed, 0);
    }

    #[test]
    fn triage_is_recorded_and_preflight_preserves_results() {
        let (p, gold) = double_free();
        // On the corpus-style double free the lint's diagnosis is sound
        // and matches the oracle's class.
        let mut rb = RustBrain::new(RustBrainConfig::for_model(ModelId::Gpt4, 42));
        let on = rb.repair(&p, &gold);
        assert!(on.lint_agrees, "lint class: {:?}", on.lint_class);
        assert_eq!(on.lint_class, Some(UbClass::Alloc));

        // Preflight off: identical repair results; only the three-way
        // oracle split may shift (prevetoed judgements become executed).
        let mut config = RustBrainConfig::for_model(ModelId::Gpt4, 42);
        config.preflight = false;
        let mut rb_off = RustBrain::new(config);
        let off = rb_off.repair(&p, &gold);
        assert_eq!(off.oracle_prevetoed, 0);
        assert_eq!(on.passed, off.passed);
        assert_eq!(on.acceptable, off.acceptable);
        assert_eq!(on.overhead_ms, off.overhead_ms);
        assert_eq!(on.oracle_runs, off.oracle_runs);
        assert_eq!(on.error_history, off.error_history);
        assert_eq!(on.final_program, off.final_program);
        assert_eq!(
            on.oracle_executed + on.oracle_cached + on.oracle_prevetoed,
            off.oracle_executed + off.oracle_cached
        );
    }

    #[test]
    fn seeded_knowledge_base_snapshot_is_adopted() {
        let (p, _) = double_free();
        let mut donor = RustBrain::new(RustBrainConfig::for_model(ModelId::Gpt4, 1));
        donor.seed_knowledge(&p, UbClass::Alloc, rb_llm::RepairRule::RemoveDoubleFree);
        let snapshot = donor.knowledge().clone();

        let rb = RustBrain::new(RustBrainConfig::for_model(ModelId::Gpt4, 2))
            .with_knowledge_base(snapshot.clone());
        assert_eq!(rb.knowledge().len(), snapshot.len());
        // The delta relative to the snapshot starts empty.
        assert!(rb.knowledge().delta_since(snapshot.len()).is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let (p, gold) = double_free();
        let mut a = RustBrain::new(RustBrainConfig::for_model(ModelId::Gpt4, 11));
        let mut b = RustBrain::new(RustBrainConfig::for_model(ModelId::Gpt4, 11));
        let oa = a.repair(&p, &gold);
        let ob = b.repair(&p, &gold);
        assert_eq!(oa.passed, ob.passed);
        assert_eq!(oa.error_history, ob.error_history);
        assert_eq!(oa.overhead_ms, ob.overhead_ms);
    }
}
