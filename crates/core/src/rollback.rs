//! The adaptive rollback agent (paper §III-B2, Fig. 5).
//!
//! Slow thinking produces a sequence of thoughts `T = {T₀…Tₚ}` whose oracle
//! error counts `N = {n₀…nₚ}` may *grow* under hallucination. The tracker
//! implements the three policies the paper contrasts:
//!
//! - [`RollbackPolicy::None`]: accept every thought (Fig. 5a) — errors
//!   compound;
//! - [`RollbackPolicy::ToInitial`]: on any regression, restart from `T₀`
//!   (prior art, cost `c · Tₙ`);
//! - [`RollbackPolicy::Adaptive`]: on regression, return to the best
//!   intermediate state — the fewest-error thought — retaining partial
//!   progress (cost `c · Tₙ₋ₐ`).

use crate::config::RollbackPolicy;
use rb_lang::Program;
use rb_miri::MiriReport;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Bookkeeping of one slow-thinking run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ThoughtTrace {
    /// Error count after each thought (the paper's `N` sequence, starting
    /// with `n₀` of the input program).
    pub error_counts: Vec<usize>,
    /// Number of rollbacks performed.
    pub rollbacks: usize,
    /// Thoughts discarded by rollbacks (the paper's overhead measure: the
    /// `a` in `c · Tₙ₋ₐ` is what adaptive rollback *saves*).
    pub discarded_thoughts: usize,
}

/// Tracks program states across slow-thinking iterations and applies the
/// configured rollback policy.
///
/// The tracker never judges programs itself: every [`MiriReport`] it
/// observes was produced by the executor's injected [`rb_miri::Oracle`],
/// so rollback re-verification shares whatever verdict cache the caller
/// injected and stays bit-identical to an uncached run.
#[derive(Clone, Debug)]
pub struct RollbackTracker {
    policy: RollbackPolicy,
    initial: Program,
    initial_report: Arc<MiriReport>,
    best: Program,
    best_report: Arc<MiriReport>,
    current: Program,
    current_report: Arc<MiriReport>,
    /// Thoughts accumulated since the last rollback anchor.
    since_anchor: usize,
    /// Public trace for analysis.
    pub trace: ThoughtTrace,
}

impl RollbackTracker {
    /// Starts tracking from the input program and its oracle report
    /// (shared — a cache-served verdict is adopted without a deep copy).
    #[must_use]
    pub fn new(
        policy: RollbackPolicy,
        program: Program,
        report: Arc<MiriReport>,
    ) -> RollbackTracker {
        let trace = ThoughtTrace {
            error_counts: vec![report.error_count()],
            ..ThoughtTrace::default()
        };
        RollbackTracker {
            policy,
            initial: program.clone(),
            initial_report: report.clone(),
            best: program.clone(),
            best_report: report.clone(),
            current: program,
            current_report: report,
            since_anchor: 0,
            trace,
        }
    }

    /// The state to continue editing from.
    #[must_use]
    pub fn current(&self) -> (&Program, &MiriReport) {
        (&self.current, &self.current_report)
    }

    /// Like [`current`], but exposing the shared report handle so callers
    /// can keep the verdict as an [`Arc`] without a deep copy.
    ///
    /// [`current`]: RollbackTracker::current
    #[must_use]
    pub fn current_shared(&self) -> (&Program, &Arc<MiriReport>) {
        (&self.current, &self.current_report)
    }

    /// The best state seen so far (fewest oracle errors).
    #[must_use]
    pub fn best(&self) -> (&Program, &MiriReport) {
        (&self.best, &self.best_report)
    }

    /// Observes a new thought (candidate program + its report), applies the
    /// rollback policy, and returns whether a rollback occurred.
    ///
    /// Takes the report as an [`Arc`] so a cache-served verdict is shared,
    /// not deep-copied, on this hot path (the slow-thinking executor calls
    /// this once per verified edit).
    pub fn observe(&mut self, candidate: Program, report: Arc<MiriReport>) -> bool {
        let n_new = report.error_count();
        let n_cur = self.current_report.error_count();
        self.trace.error_counts.push(n_new);
        self.since_anchor += 1;

        if n_new < self.best_report.error_count() {
            self.best = candidate.clone();
            self.best_report = report.clone();
        }

        let regressed = n_new > n_cur;
        let rolled = match self.policy {
            RollbackPolicy::None => {
                self.current = candidate;
                self.current_report = report;
                false
            }
            RollbackPolicy::ToInitial => {
                if regressed {
                    self.trace.rollbacks += 1;
                    self.trace.discarded_thoughts += self.since_anchor;
                    self.since_anchor = 0;
                    self.current = self.initial.clone();
                    self.current_report = self.initial_report.clone();
                    true
                } else {
                    self.current = candidate;
                    self.current_report = report;
                    false
                }
            }
            RollbackPolicy::Adaptive => {
                if regressed {
                    self.trace.rollbacks += 1;
                    // Only the thoughts after the best anchor are wasted.
                    self.trace.discarded_thoughts += 1;
                    self.since_anchor = 0;
                    self.current = self.best.clone();
                    self.current_report = self.best_report.clone();
                    true
                } else {
                    self.current = candidate;
                    self.current_report = report;
                    false
                }
            }
        };
        if rolled {
            rb_obs::event(
                "rollback",
                &[
                    ("policy", &format!("{:?}", self.policy)),
                    ("errors_new", &n_new.to_string()),
                    ("errors_current", &n_cur.to_string()),
                ],
            );
            rb_obs::metrics().counter_add("rustbrain_rollbacks_total", None, 1);
        }
        rolled
    }

    /// Observes a candidate that the static preflight vetoed: `rb_lint`
    /// proved the candidate's oracle verdict would carry exactly `n_new`
    /// errors — a strict regression — so the oracle was never consulted.
    ///
    /// Performs the *same* state transition [`observe`] would have made
    /// with the real report. Callers must only veto strict regressions
    /// under a rollback policy other than [`RollbackPolicy::None`]: a
    /// regression makes both remaining policies roll back to an anchor
    /// state (initial or best) the tracker already holds a report for, so
    /// no synthetic report is ever needed and trajectories stay
    /// bit-identical to an unvetoed run.
    ///
    /// [`observe`]: RollbackTracker::observe
    pub fn observe_vetoed(&mut self, n_new: usize) -> bool {
        let n_cur = self.current_report.error_count();
        debug_assert!(
            n_new > n_cur && self.policy != RollbackPolicy::None,
            "preflight veto requires a strict regression under a rollback policy"
        );
        self.trace.error_counts.push(n_new);
        self.since_anchor += 1;
        // `n_new > n_cur >= best` — the best-state update can never fire.
        match self.policy {
            RollbackPolicy::None => return false,
            RollbackPolicy::ToInitial => {
                self.trace.rollbacks += 1;
                self.trace.discarded_thoughts += self.since_anchor;
                self.since_anchor = 0;
                self.current = self.initial.clone();
                self.current_report = self.initial_report.clone();
            }
            RollbackPolicy::Adaptive => {
                self.trace.rollbacks += 1;
                self.trace.discarded_thoughts += 1;
                self.since_anchor = 0;
                self.current = self.best.clone();
                self.current_report = self.best_report.clone();
            }
        }
        rb_obs::event(
            "rollback",
            &[
                ("policy", &format!("{:?}", self.policy)),
                ("errors_new", &n_new.to_string()),
                ("errors_current", &n_cur.to_string()),
            ],
        );
        rb_obs::metrics().counter_add("rustbrain_rollbacks_total", None, 1);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_lang::parser::parse_program;
    use rb_miri::run_program;

    fn prog(n: i32) -> Program {
        parse_program(&format!("fn main() {{ print({n}); }}")).unwrap()
    }

    fn fake_report(errors: usize) -> Arc<MiriReport> {
        let mut r = MiriReport::default();
        for _ in 0..errors {
            r.errors.push(rb_miri::MiriError {
                kind: rb_miri::UbKind::UseAfterFree,
                message: "x".into(),
                path: None,
                thread: 0,
            });
        }
        Arc::new(r)
    }

    #[test]
    fn adaptive_returns_to_best() {
        let mut t = RollbackTracker::new(RollbackPolicy::Adaptive, prog(0), fake_report(3));
        t.observe(prog(1), fake_report(1)); // improvement: best = prog(1)
        let rolled = t.observe(prog(2), fake_report(5)); // regression
        assert!(rolled);
        assert_eq!(t.current().1.error_count(), 1); // back at best, not initial
        assert_eq!(t.trace.rollbacks, 1);
    }

    #[test]
    fn to_initial_discards_progress() {
        let mut t = RollbackTracker::new(RollbackPolicy::ToInitial, prog(0), fake_report(3));
        t.observe(prog(1), fake_report(1));
        let rolled = t.observe(prog(2), fake_report(5));
        assert!(rolled);
        assert_eq!(t.current().1.error_count(), 3); // back at the start
        assert!(t.trace.discarded_thoughts >= 2);
    }

    #[test]
    fn none_lets_errors_compound() {
        let mut t = RollbackTracker::new(RollbackPolicy::None, prog(0), fake_report(1));
        t.observe(prog(1), fake_report(3));
        t.observe(prog(2), fake_report(6));
        assert_eq!(t.current().1.error_count(), 6);
        assert_eq!(t.trace.rollbacks, 0);
        assert_eq!(t.trace.error_counts, vec![1, 3, 6]);
    }

    #[test]
    fn fluctuating_decline_converges_without_thrash() {
        // The paper's N2 = {3, 1, 5, 2, 0}: adaptive rollback should end at 0.
        let mut t = RollbackTracker::new(RollbackPolicy::Adaptive, prog(0), fake_report(3));
        t.observe(prog(1), fake_report(1));
        t.observe(prog(2), fake_report(5)); // rollback to 1-error state
        t.observe(prog(3), fake_report(2)); // worse than best(1) but better than 5? current is best(1) -> regression
        t.observe(prog(4), fake_report(0));
        assert_eq!(t.best().1.error_count(), 0);
    }

    #[test]
    fn vetoed_observation_mirrors_real_observation() {
        for policy in [RollbackPolicy::Adaptive, RollbackPolicy::ToInitial] {
            let mut real = RollbackTracker::new(policy, prog(0), fake_report(3));
            let mut veto = RollbackTracker::new(policy, prog(0), fake_report(3));
            real.observe(prog(1), fake_report(1));
            veto.observe(prog(1), fake_report(1));
            let rolled = real.observe(prog(2), fake_report(5));
            let vetoed = veto.observe_vetoed(5);
            assert_eq!(rolled, vetoed);
            assert_eq!(real.current().0, veto.current().0, "{policy:?}");
            assert_eq!(
                real.current().1.error_count(),
                veto.current().1.error_count()
            );
            assert_eq!(real.trace, veto.trace, "{policy:?}");
        }
    }

    #[test]
    fn best_tracks_real_oracle_reports() {
        let good = parse_program("fn main() { print(1i32); }").unwrap();
        let report = run_program(&good);
        let mut t = RollbackTracker::new(RollbackPolicy::Adaptive, prog(9), fake_report(2));
        t.observe(good.clone(), Arc::new(report));
        assert!(t.best().1.passes());
        assert_eq!(t.best().0, &good);
    }
}
