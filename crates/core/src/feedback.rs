//! The fast/slow feedback mechanism (paper §III-C): slow-thinking
//! evaluation results flow back into fast-thinking solution priors, so
//! later problems of the same class start from agent sequences that worked
//! — reducing dependence on the knowledge base over time (the "red
//! sections" of the paper's Table I).

use crate::evaluate::EvalTriplet;
use crate::solution::AgentKind;
use rb_miri::UbClass;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Learned priors over (UB class, leading agent) pairs.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Priors {
    weights: HashMap<(UbClass, AgentKind), f64>,
    /// Remembered best full solutions per class (for instant replay).
    best: HashMap<UbClass, Vec<AgentKind>>,
    updates: u64,
}

/// Exponential-moving-average rate.
const EMA: f64 = 0.35;

impl Priors {
    /// Fresh priors: every agent starts equally plausible for every class.
    #[must_use]
    pub fn new() -> Priors {
        Priors::default()
    }

    /// Current weight of starting a `class` repair with `agent`
    /// (default 1.0).
    #[must_use]
    pub fn weight(&self, class: UbClass, agent: AgentKind) -> f64 {
        *self.weights.get(&(class, agent)).unwrap_or(&1.0)
    }

    /// The remembered best solution for a class, when one exists.
    #[must_use]
    pub fn best_solution(&self, class: UbClass) -> Option<&[AgentKind]> {
        self.best.get(&class).map(Vec::as_slice)
    }

    /// Number of feedback updates applied.
    #[must_use]
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Feeds one solution outcome back into the priors.
    pub fn update(&mut self, class: UbClass, steps: &[AgentKind], eval: &EvalTriplet) {
        self.updates += 1;
        let reward = eval.score() / 2.5; // normalise to ~[0, 1]
        for (i, &agent) in steps.iter().enumerate() {
            // Earlier steps carry more responsibility for the outcome.
            let credit = reward * (1.0 / (1.0 + i as f64));
            let w = self.weights.entry((class, agent)).or_insert(1.0);
            *w = (1.0 - EMA) * *w + EMA * (0.25 + 2.0 * credit);
        }
        if eval.accuracy && eval.acceptability {
            self.best.insert(class, steps.to_vec());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn good() -> EvalTriplet {
        EvalTriplet {
            accuracy: true,
            acceptability: true,
            overhead_ms: 5_000.0,
        }
    }

    fn bad() -> EvalTriplet {
        EvalTriplet {
            accuracy: false,
            acceptability: false,
            overhead_ms: 60_000.0,
        }
    }

    #[test]
    fn success_raises_weight_failure_lowers() {
        let mut p = Priors::new();
        let before = p.weight(UbClass::Alloc, AgentKind::Modify);
        p.update(UbClass::Alloc, &[AgentKind::Modify], &good());
        assert!(p.weight(UbClass::Alloc, AgentKind::Modify) > before);
        p.update(UbClass::Alloc, &[AgentKind::Assert], &bad());
        assert!(p.weight(UbClass::Alloc, AgentKind::Assert) < 1.0);
    }

    #[test]
    fn best_solution_remembered_only_on_acceptable() {
        let mut p = Priors::new();
        p.update(UbClass::Panic, &[AgentKind::Assert], &bad());
        assert!(p.best_solution(UbClass::Panic).is_none());
        p.update(
            UbClass::Panic,
            &[AgentKind::Modify, AgentKind::Assert],
            &good(),
        );
        assert_eq!(
            p.best_solution(UbClass::Panic),
            Some(&[AgentKind::Modify, AgentKind::Assert][..])
        );
    }

    #[test]
    fn repeated_success_converges_up() {
        let mut p = Priors::new();
        for _ in 0..10 {
            p.update(UbClass::DataRace, &[AgentKind::SafeReplace], &good());
        }
        assert!(p.weight(UbClass::DataRace, AgentKind::SafeReplace) > 1.5);
        assert_eq!(p.updates(), 10);
    }

    #[test]
    fn classes_are_independent() {
        let mut p = Priors::new();
        p.update(UbClass::Alloc, &[AgentKind::Modify], &good());
        assert_eq!(p.weight(UbClass::Panic, AgentKind::Modify), 1.0);
    }
}
