//! Configuration of the RustBrain pipeline: which model drives it, which
//! mechanisms are enabled, and the search budgets.

use rb_llm::ModelId;
use serde::{Deserialize, Serialize};

/// Rollback behaviour of the slow-thinking executor (paper §III-B2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RollbackPolicy {
    /// RustBrain's adaptive rollback: return to the best intermediate state
    /// (fewest oracle errors) whenever an edit makes things worse.
    Adaptive,
    /// The prior art's policy: discard everything and restart from the
    /// initial program (cost `c · Tₙ`).
    ToInitial,
    /// No rollback: accept every edit, letting hallucinations propagate
    /// (paper Fig. 5a).
    None,
}

/// Full pipeline configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RustBrainConfig {
    /// Backing model.
    pub model: ModelId,
    /// Sampling temperature (paper default 0.5).
    pub temperature: f64,
    /// Seed for all stochastic choices.
    pub seed: u64,
    /// Whether the AST knowledge base (abstract reasoning agent) is used.
    pub use_knowledge: bool,
    /// Whether the fast/slow feedback loop updates solution priors.
    pub use_feedback: bool,
    /// Rollback policy of the slow-thinking executor.
    pub rollback: RollbackPolicy,
    /// Whether the slow-thinking executor runs the static preflight: a
    /// candidate that `rb_lint` soundly proves to be a strict regression is
    /// vetoed without consulting the oracle (the verdict it would have
    /// received is derivable, so repair trajectories are unchanged).
    pub preflight: bool,
    /// How many candidate solutions fast thinking generates per problem.
    pub max_solutions: usize,
    /// Maximum repair steps per solution.
    pub max_steps_per_solution: usize,
    /// Overall oracle-iteration budget per problem.
    pub max_iterations: usize,
    /// Overall model-call budget per problem (an API-cost cap).
    pub max_model_calls: usize,
}

impl Default for RustBrainConfig {
    fn default() -> RustBrainConfig {
        RustBrainConfig {
            model: ModelId::Gpt4,
            temperature: 0.5,
            seed: 0,
            use_knowledge: true,
            use_feedback: true,
            rollback: RollbackPolicy::Adaptive,
            preflight: true,
            max_solutions: 10,
            max_steps_per_solution: 3,
            max_iterations: 12,
            max_model_calls: 7,
        }
    }
}

impl RustBrainConfig {
    /// The paper's primary configuration for a given model and seed.
    #[must_use]
    pub fn for_model(model: ModelId, seed: u64) -> RustBrainConfig {
        RustBrainConfig {
            model,
            seed,
            ..RustBrainConfig::default()
        }
    }

    /// GPT-4 + RustBrain without the knowledge base (the "non knowledge"
    /// series in Figs. 8/9/12 and Table I).
    #[must_use]
    pub fn without_knowledge(model: ModelId, seed: u64) -> RustBrainConfig {
        RustBrainConfig {
            model,
            seed,
            use_knowledge: false,
            ..RustBrainConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = RustBrainConfig::default();
        assert_eq!(c.temperature, 0.5);
        assert_eq!(c.max_solutions, 10);
        assert_eq!(c.rollback, RollbackPolicy::Adaptive);
        assert!(c.use_knowledge && c.use_feedback);
    }

    #[test]
    fn constructors() {
        let c = RustBrainConfig::for_model(ModelId::Claude35, 9);
        assert_eq!(c.model, ModelId::Claude35);
        assert_eq!(c.seed, 9);
        let c = RustBrainConfig::without_knowledge(ModelId::Gpt4, 1);
        assert!(!c.use_knowledge);
    }
}
