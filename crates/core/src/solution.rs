//! Repair solutions: ordered sequences of agent steps, the unit fast
//! thinking generates and slow thinking decomposes and executes.

use rb_llm::PromptStrategy;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The agents of the slow-thinking stage (paper §III-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AgentKind {
    /// Equivalent-replacement agent (safe API substitution).
    SafeReplace,
    /// Assertion agent (guards / pre-assertions).
    Assert,
    /// Semantic-modification agent.
    Modify,
    /// Abstract-reasoning agent: retrieves similar pruned-AST cases from
    /// the knowledge base and prompts with them.
    AbstractReasoning,
}

impl AgentKind {
    /// All agents.
    pub const ALL: [AgentKind; 4] = [
        AgentKind::SafeReplace,
        AgentKind::Assert,
        AgentKind::Modify,
        AgentKind::AbstractReasoning,
    ];

    /// Prompt strategy the agent uses.
    #[must_use]
    pub fn strategy(self) -> PromptStrategy {
        match self {
            AgentKind::SafeReplace => PromptStrategy::SafeReplace,
            AgentKind::Assert => PromptStrategy::Assert,
            AgentKind::Modify => PromptStrategy::Modify,
            AgentKind::AbstractReasoning => PromptStrategy::Freeform,
        }
    }

    /// Short display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AgentKind::SafeReplace => "safe-replace",
            AgentKind::Assert => "assert",
            AgentKind::Modify => "modify",
            AgentKind::AbstractReasoning => "abstract-reasoning",
        }
    }
}

impl fmt::Display for AgentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// One candidate repair solution: an ordered agent sequence. The order
/// encodes the repair strategy ("the order of these steps reflects diverse
/// repair strategies", paper stage S1).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Solution {
    /// Agent steps, executed in order until the oracle passes.
    pub steps: Vec<AgentKind>,
}

impl Solution {
    /// Creates a solution from steps.
    #[must_use]
    pub fn new(steps: Vec<AgentKind>) -> Solution {
        Solution { steps }
    }

    /// Whether the solution consults the knowledge base.
    #[must_use]
    pub fn uses_knowledge(&self) -> bool {
        self.steps.contains(&AgentKind::AbstractReasoning)
    }

    /// Compact display such as `[modify → assert]`.
    #[must_use]
    pub fn describe(&self) -> String {
        let parts: Vec<&str> = self.steps.iter().map(|a| a.label()).collect();
        format!("[{}]", parts.join(" → "))
    }
}

impl fmt::Display for Solution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategies_align() {
        assert_eq!(
            AgentKind::SafeReplace.strategy(),
            PromptStrategy::SafeReplace
        );
        assert_eq!(
            AgentKind::AbstractReasoning.strategy(),
            PromptStrategy::Freeform
        );
    }

    #[test]
    fn describe_shows_order() {
        let s = Solution::new(vec![AgentKind::Modify, AgentKind::Assert]);
        assert_eq!(s.describe(), "[modify → assert]");
        assert!(!s.uses_knowledge());
        let s = Solution::new(vec![AgentKind::AbstractReasoning]);
        assert!(s.uses_knowledge());
    }
}
