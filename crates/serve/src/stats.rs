//! Service telemetry: what a resident daemon has done since it started.
//!
//! The daemon keeps one [`StatsRecorder`] for its whole life; every
//! handled request records its verb, outcome and real wall-clock
//! latency, and the `stats` verb (plus the shutdown dump) snapshots it
//! into a [`ServeStats`] — the numbers later scheduler work learns
//! from. Latency percentiles come from a bounded [`LatencyRing`] of the
//! most recent samples, so a long-lived daemon's memory stays flat.
//!
//! Since PR 7 the scalar counters live in a per-recorder
//! [`rb_obs::MetricsRegistry`] rather than a parallel tally struct:
//! [`StatsRecorder::record_request`] writes registry counters and the
//! latency histogram, and [`StatsRecorder::snapshot`] *reads them back*.
//! The registry is per-recorder (not the process-global one) so two
//! daemons in one process — the integration tests run exactly that —
//! never see each other's counts; the `metrics` verb exposes this
//! registry alongside the global one.

use rb_obs::MetricsRegistry;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How many latency samples the percentile ring retains (oldest
/// overwritten first).
const LATENCY_RING: usize = 4096;

/// Registry series names the recorder writes and the snapshot re-reads.
const REQUESTS: &str = "rustbrain_serve_requests_total";
const BATCH_CASES: &str = "rustbrain_serve_batch_cases_total";
const COMPACTIONS: &str = "rustbrain_serve_compactions_total";
const TRIGGERED: &str = "rustbrain_serve_triggered_compactions_total";
const MERGED_INSERTS: &str = "rustbrain_serve_kb_merged_inserts_total";
const CACHE_LOOKUPS: &str = "rustbrain_serve_cache_lookups_total";
const ORACLE_JUDGEMENTS: &str = "rustbrain_serve_oracle_judgements_total";
const REQUEST_LATENCY_US: &str = "rustbrain_serve_request_us";
const SCHED_STEALS: &str = "rustbrain_serve_sched_steals_total";
const SCHED_QUEUE_DEPTH: &str = "rustbrain_serve_sched_queue_depth";

/// A point-in-time snapshot of the daemon's counters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServeStats {
    /// Real milliseconds since the daemon started.
    pub uptime_ms: f64,
    /// Requests handled, all verbs (errors included).
    pub requests: u64,
    /// Requests answered with `{"ok":false,...}`.
    pub errors: u64,
    /// `repair` requests handled.
    pub repairs: u64,
    /// `batch` requests handled.
    pub batches: u64,
    /// `analyze` requests handled (static lint, no oracle).
    pub analyzes: u64,
    /// Cases swept across all `batch` requests.
    pub batch_cases: u64,
    /// Compactions run — the `compact` verb plus threshold-triggered.
    pub compactions: u64,
    /// The subset of `compactions` fired by the size/time thresholds.
    pub triggered_compactions: u64,
    /// Median request latency over the recent ring, real ms.
    pub p50_ms: f64,
    /// 99th-percentile request latency over the recent ring, real ms.
    pub p99_ms: f64,
    /// Slowest request in the recent ring, real ms.
    pub max_ms: f64,
    /// Knowledge shards faulted into the resident base.
    pub resident_shards: usize,
    /// Segment files read from the backing store since startup.
    pub shard_loads: u64,
    /// Entries in the resident knowledge base.
    pub kb_entries: usize,
    /// Solved-case weight the resident base stands for.
    pub kb_weight: u64,
    /// Learned inserts merged into the resident base since startup.
    pub kb_merged_inserts: u64,
    /// Oracle cache hits across all requests (gold-reference lookups).
    pub cache_hits: u64,
    /// Oracle cache misses across all requests.
    pub cache_misses: u64,
    /// Oracle judgements that executed the interpreter fresh.
    pub oracle_executed: u64,
    /// Oracle judgements served from the verdict cache.
    pub oracle_cached: u64,
    /// Oracle judgements the repair preflight resolved statically
    /// (`rb_lint`) without running or caching the interpreter.
    pub oracle_prevetoed: u64,
    /// Scheduling policy the daemon's batch engine dispatches under
    /// (the server fills this from its config; a bare recorder snapshot
    /// leaves it empty).
    pub sched_policy: String,
    /// Jobs stolen across workers, summed over all batch requests.
    pub sched_steals: u64,
    /// Deepest per-worker queue the most recent batch seeded.
    pub sched_queue_depth: u64,
    /// Whether the daemon runs with a resident tracer (`--trace-out`).
    /// The server fills this from its config; a bare recorder snapshot
    /// leaves it false.
    pub trace_active: bool,
    /// Spans the resident tracer has emitted since startup (0 when
    /// tracing is off).
    pub trace_spans: u64,
}

impl ServeStats {
    /// Fraction of oracle lookups served from the cache (0 when idle).
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// The snapshot as one JSON object (engine telemetry conventions:
    /// floats at four decimals, stable field order).
    #[must_use]
    pub fn to_json(&self) -> String {
        use crate::json::fmt_num;
        format!(
            concat!(
                "{{\"uptime_ms\":{},\"requests\":{},\"errors\":{},",
                "\"repairs\":{},\"batches\":{},\"analyzes\":{},",
                "\"batch_cases\":{},",
                "\"compactions\":{},\"triggered_compactions\":{},",
                "\"latency\":{{\"p50_ms\":{},\"p99_ms\":{},\"max_ms\":{}}},",
                "\"kb\":{{\"resident_shards\":{},\"shard_loads\":{},",
                "\"entries\":{},\"weight\":{},\"merged_inserts\":{}}},",
                "\"oracle\":{{\"cache_hits\":{},\"cache_misses\":{},",
                "\"cache_hit_rate\":{},\"executed\":{},\"cached\":{},",
                "\"prevetoed\":{}}},",
                "\"scheduler\":{{\"policy\":{},\"steals\":{},",
                "\"queue_depth\":{}}},",
                "\"trace\":{{\"active\":{},\"spans\":{}}}}}"
            ),
            fmt_num(self.uptime_ms),
            self.requests,
            self.errors,
            self.repairs,
            self.batches,
            self.analyzes,
            self.batch_cases,
            self.compactions,
            self.triggered_compactions,
            fmt_num(self.p50_ms),
            fmt_num(self.p99_ms),
            fmt_num(self.max_ms),
            self.resident_shards,
            self.shard_loads,
            self.kb_entries,
            self.kb_weight,
            self.kb_merged_inserts,
            self.cache_hits,
            self.cache_misses,
            fmt_num(self.cache_hit_rate()),
            self.oracle_executed,
            self.oracle_cached,
            self.oracle_prevetoed,
            crate::json::fmt_str(&self.sched_policy),
            self.sched_steals,
            self.sched_queue_depth,
            self.trace_active,
            self.trace_spans,
        )
    }
}

/// The verb a handled request resolved to, for per-verb counting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verb {
    /// A `repair` request.
    Repair,
    /// A `batch` request; the payload is its case count.
    Batch(u64),
    /// An `analyze` request (static lint).
    Analyze,
    /// A `stats` request.
    Stats,
    /// A `metrics` request (registry exposition).
    Metrics,
    /// A `compact` request.
    Compact,
    /// A `shutdown` request.
    Shutdown,
    /// A request that failed to parse or execute.
    Error,
}

impl Verb {
    /// The `verb` label value this request counts under in the registry.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Verb::Repair => "repair",
            Verb::Batch(_) => "batch",
            Verb::Analyze => "analyze",
            Verb::Stats => "stats",
            Verb::Metrics => "metrics",
            Verb::Compact => "compact",
            Verb::Shutdown => "shutdown",
            Verb::Error => "error",
        }
    }
}

/// A bounded ring of the most recent latency samples with nearest-rank
/// percentiles. Fill-then-overwrite: pushes append until `capacity`,
/// then wrap around overwriting the oldest slot.
#[derive(Clone, Debug)]
pub struct LatencyRing {
    capacity: usize,
    samples: Vec<f64>,
    next_slot: usize,
}

impl Default for LatencyRing {
    fn default() -> LatencyRing {
        LatencyRing::new(LATENCY_RING)
    }
}

impl LatencyRing {
    /// A ring retaining at most `capacity` samples (clamped to ≥ 1).
    #[must_use]
    pub fn new(capacity: usize) -> LatencyRing {
        LatencyRing {
            capacity: capacity.max(1),
            samples: Vec::new(),
            next_slot: 0,
        }
    }

    /// Adds one sample, overwriting the oldest once full.
    pub fn push(&mut self, sample: f64) {
        if self.samples.len() < self.capacity {
            self.samples.push(sample);
        } else {
            self.samples[self.next_slot] = sample;
        }
        self.next_slot = (self.next_slot + 1) % self.capacity;
    }

    /// Samples currently retained (≤ capacity).
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no sample was ever recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The retained samples, unordered.
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// `(p50, p99, max)` over the retained samples (zeros when empty).
    /// The nearest-rank method on a sorted copy — the ring is small and
    /// snapshots are rare, so simplicity beats cleverness.
    #[must_use]
    pub fn percentiles(&self) -> (f64, f64, f64) {
        percentiles(&self.samples)
    }
}

/// The daemon's live, thread-shared counters: scalar counts and the
/// request-latency histogram live in a per-recorder metrics registry
/// (readable through [`StatsRecorder::registry`], exposed by the
/// `metrics` verb); only the percentile ring needs its own lock.
#[derive(Debug)]
pub struct StatsRecorder {
    started: Instant,
    registry: Arc<MetricsRegistry>,
    ring: Mutex<LatencyRing>,
}

impl Default for StatsRecorder {
    fn default() -> StatsRecorder {
        StatsRecorder::new()
    }
}

impl StatsRecorder {
    /// A fresh recorder with a private registry; `uptime_ms` counts from
    /// here. Private (rather than process-global) so several daemons in
    /// one process stay hermetic.
    #[must_use]
    pub fn new() -> StatsRecorder {
        StatsRecorder::with_registry(Arc::new(MetricsRegistry::new()))
    }

    /// A recorder writing into an existing registry (shared counters).
    #[must_use]
    pub fn with_registry(registry: Arc<MetricsRegistry>) -> StatsRecorder {
        StatsRecorder {
            started: Instant::now(),
            registry,
            ring: Mutex::new(LatencyRing::default()),
        }
    }

    /// The registry this recorder writes through — the `metrics` verb
    /// exposes it next to the process-global one.
    #[must_use]
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    fn ring(&self) -> std::sync::MutexGuard<'_, LatencyRing> {
        self.ring.lock().expect("latency ring lock poisoned")
    }

    /// Records one handled request: its verb and real latency.
    pub fn record_request(&self, verb: Verb, latency_ms: f64) {
        self.registry
            .counter_add(REQUESTS, Some(("verb", verb.label())), 1);
        if let Verb::Batch(cases) = verb {
            self.registry.counter_add(BATCH_CASES, None, cases);
        }
        self.registry.observe(
            REQUEST_LATENCY_US,
            Some(("verb", verb.label())),
            latency_ms * 1e3,
            rb_obs::REAL_US_BUCKETS,
        );
        self.ring().push(latency_ms);
    }

    /// Records a compaction run (`triggered` when fired by a threshold
    /// rather than the `compact` verb).
    pub fn record_compaction(&self, triggered: bool) {
        self.registry.counter_add(COMPACTIONS, None, 1);
        if triggered {
            self.registry.counter_add(TRIGGERED, None, 1);
        }
    }

    /// Records learned inserts merged into the resident base.
    pub fn record_merged_inserts(&self, inserts: u64) {
        self.registry.counter_add(MERGED_INSERTS, None, inserts);
    }

    /// Records a batch's dispatch telemetry: steals accumulate (the
    /// daemon's lifetime total), queue depth is a gauge (the most recent
    /// batch's deepest seed).
    pub fn record_sched(&self, steals: u64, queue_depth: u64) {
        self.registry.counter_add(SCHED_STEALS, None, steals);
        self.registry
            .gauge_set(SCHED_QUEUE_DEPTH, None, queue_depth as f64);
    }

    /// Records a request's oracle traffic: gold-reference cache
    /// hits/misses and the executed/cached/prevetoed judgement split.
    pub fn record_oracle(
        &self,
        hits: u64,
        misses: u64,
        executed: u64,
        cached: u64,
        prevetoed: u64,
    ) {
        let reg = &self.registry;
        reg.counter_add(CACHE_LOOKUPS, Some(("result", "hit")), hits);
        reg.counter_add(CACHE_LOOKUPS, Some(("result", "miss")), misses);
        reg.counter_add(ORACLE_JUDGEMENTS, Some(("result", "executed")), executed);
        reg.counter_add(ORACLE_JUDGEMENTS, Some(("result", "cached")), cached);
        reg.counter_add(ORACLE_JUDGEMENTS, Some(("result", "prevetoed")), prevetoed);
    }

    /// Snapshots the counters by reading them back from the registry.
    /// The knowledge-base gauges (resident shards, entries, weight,
    /// shard loads) are the caller's — the recorder only holds what it
    /// observed itself.
    #[must_use]
    pub fn snapshot(&self) -> ServeStats {
        let reg = &self.registry;
        let verb = |label: &str| reg.counter(REQUESTS, Some(("verb", label)));
        let requests = reg
            .label_values(REQUESTS)
            .iter()
            .map(|v| verb(v))
            .sum::<u64>();
        let (p50, p99, max) = self.ring().percentiles();
        ServeStats {
            uptime_ms: self.started.elapsed().as_secs_f64() * 1e3,
            requests,
            errors: verb("error"),
            repairs: verb("repair"),
            batches: verb("batch"),
            analyzes: verb("analyze"),
            batch_cases: reg.counter(BATCH_CASES, None),
            compactions: reg.counter(COMPACTIONS, None),
            triggered_compactions: reg.counter(TRIGGERED, None),
            p50_ms: p50,
            p99_ms: p99,
            max_ms: max,
            resident_shards: 0,
            shard_loads: 0,
            kb_entries: 0,
            kb_weight: 0,
            kb_merged_inserts: reg.counter(MERGED_INSERTS, None),
            cache_hits: reg.counter(CACHE_LOOKUPS, Some(("result", "hit"))),
            cache_misses: reg.counter(CACHE_LOOKUPS, Some(("result", "miss"))),
            oracle_executed: reg.counter(ORACLE_JUDGEMENTS, Some(("result", "executed"))),
            oracle_cached: reg.counter(ORACLE_JUDGEMENTS, Some(("result", "cached"))),
            oracle_prevetoed: reg.counter(ORACLE_JUDGEMENTS, Some(("result", "prevetoed"))),
            sched_policy: String::new(),
            sched_steals: reg.counter(SCHED_STEALS, None),
            sched_queue_depth: reg.gauge(SCHED_QUEUE_DEPTH, None).unwrap_or(0.0) as u64,
            trace_active: false,
            trace_spans: 0,
        }
    }
}

/// `(p50, p99, max)` over a sample slice (zeros when empty) by the
/// nearest-rank method on a sorted copy.
fn percentiles(samples: &[f64]) -> (f64, f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = |p: f64| {
        let idx = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[idx.clamp(1, sorted.len()) - 1]
    };
    (rank(50.0), rank(99.0), sorted[sorted.len() - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_verb() {
        let rec = StatsRecorder::new();
        rec.record_request(Verb::Repair, 3.0);
        rec.record_request(Verb::Batch(42), 10.0);
        rec.record_request(Verb::Analyze, 0.1);
        rec.record_request(Verb::Stats, 1.0);
        rec.record_request(Verb::Metrics, 0.2);
        rec.record_request(Verb::Error, 0.5);
        rec.record_compaction(false);
        rec.record_compaction(true);
        rec.record_merged_inserts(5);
        rec.record_oracle(3, 1, 10, 2, 4);
        let s = rec.snapshot();
        assert_eq!(s.requests, 6);
        assert_eq!(s.repairs, 1);
        assert_eq!(s.batches, 1);
        assert_eq!(s.batch_cases, 42);
        assert_eq!(s.errors, 1);
        assert_eq!(s.compactions, 2);
        assert_eq!(s.triggered_compactions, 1);
        assert_eq!(s.kb_merged_inserts, 5);
        assert_eq!((s.cache_hits, s.cache_misses), (3, 1));
        assert_eq!((s.oracle_executed, s.oracle_cached), (10, 2));
        assert_eq!(s.oracle_prevetoed, 4);
        assert_eq!(s.analyzes, 1);
        assert!((s.cache_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(s.max_ms, 10.0);
        assert!(s.uptime_ms >= 0.0);
        // The snapshot numbers ARE the registry's: no parallel tally to
        // drift out of sync.
        let text = rec.registry().prometheus();
        assert!(
            text.contains("rustbrain_serve_requests_total{verb=\"repair\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("rustbrain_serve_request_us_count{verb=\"batch\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn sched_telemetry_accumulates_steals_and_tracks_last_depth() {
        let rec = StatsRecorder::new();
        rec.record_sched(3, 9);
        rec.record_sched(2, 4);
        let mut s = rec.snapshot();
        // Steals are a lifetime counter; depth is the latest batch's.
        assert_eq!(s.sched_steals, 5);
        assert_eq!(s.sched_queue_depth, 4);
        assert_eq!(s.sched_policy, "", "a bare recorder knows no policy");
        s.sched_policy = "stealing".to_owned();
        let v = crate::json::parse(&s.to_json()).unwrap();
        let sched = v.get("scheduler").expect("scheduler section");
        assert_eq!(
            sched.get("policy").and_then(crate::json::Value::as_str),
            Some("stealing")
        );
        assert_eq!(
            sched.get("steals").and_then(crate::json::Value::as_u64),
            Some(5)
        );
        assert_eq!(
            sched
                .get("queue_depth")
                .and_then(crate::json::Value::as_u64),
            Some(4)
        );
    }

    #[test]
    fn recorders_are_hermetic() {
        // Two daemons in one process (the integration tests do this)
        // must never see each other's counts.
        let a = StatsRecorder::new();
        let b = StatsRecorder::new();
        a.record_request(Verb::Repair, 1.0);
        assert_eq!(a.snapshot().requests, 1);
        assert_eq!(b.snapshot().requests, 0);
    }

    #[test]
    fn percentiles_are_sane_and_ring_is_bounded() {
        assert_eq!(percentiles(&[]), (0.0, 0.0, 0.0));
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let (p50, p99, max) = percentiles(&samples);
        assert_eq!(p50, 50.0);
        assert_eq!(p99, 99.0);
        assert_eq!(max, 100.0);

        let rec = StatsRecorder::new();
        for i in 0..(LATENCY_RING + 100) {
            rec.record_request(Verb::Stats, i as f64);
        }
        let ring = rec.ring();
        assert_eq!(ring.len(), LATENCY_RING, "ring must stay bounded");
        // The oldest samples were overwritten by the newest.
        assert!(ring.samples().contains(&(LATENCY_RING as f64 + 99.0)));
        assert!(!ring.samples().contains(&0.0));
    }

    #[test]
    fn empty_ring_reports_zeros() {
        let ring = LatencyRing::new(8);
        assert!(ring.is_empty());
        assert_eq!(ring.percentiles(), (0.0, 0.0, 0.0));
        // A 0-request stats dump is all zeros and still valid JSON.
        let s = StatsRecorder::new().snapshot();
        assert_eq!((s.requests, s.errors), (0, 0));
        assert_eq!((s.p50_ms, s.p99_ms, s.max_ms), (0.0, 0.0, 0.0));
        assert_eq!(s.cache_hit_rate(), 0.0, "0/0 must not be NaN");
        let json = s.to_json();
        assert!(crate::json::parse(&json).is_ok(), "{json}");
        assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
    }

    #[test]
    fn single_sample_is_all_three_percentiles() {
        let mut ring = LatencyRing::new(8);
        ring.push(7.5);
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.percentiles(), (7.5, 7.5, 7.5));
    }

    #[test]
    fn wrap_around_at_exact_capacity_overwrites_oldest_first() {
        let mut ring = LatencyRing::new(4);
        for v in 1..=4 {
            ring.push(f64::from(v));
        }
        assert_eq!(ring.samples(), &[1.0, 2.0, 3.0, 4.0]);
        // The next push lands exactly on slot 0 (the oldest sample).
        ring.push(5.0);
        assert_eq!(ring.samples(), &[5.0, 2.0, 3.0, 4.0]);
        ring.push(6.0);
        assert_eq!(ring.samples(), &[5.0, 6.0, 3.0, 4.0]);
        // A full second lap overwrites everything once, in order.
        for v in 7..=10 {
            ring.push(f64::from(v));
        }
        assert_eq!(ring.samples(), &[9.0, 10.0, 7.0, 8.0]);
        assert_eq!(ring.len(), 4);
    }

    #[test]
    fn percentile_order_holds_under_randomized_fill() {
        // Deterministic LCG so the "random" fill is reproducible.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            ((state >> 33) % 10_000) as f64 / 10.0
        };
        let mut ring = LatencyRing::new(64);
        for round in 1..=500 {
            ring.push(next());
            let (p50, p99, max) = ring.percentiles();
            assert!(
                p50 <= p99 && p99 <= max,
                "round {round}: p50 {p50} p99 {p99} max {max}"
            );
            let true_max = ring
                .samples()
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max);
            assert_eq!(max, true_max, "round {round}");
        }
    }

    #[test]
    fn trace_section_reports_resident_tracer_counts() {
        let mut s = StatsRecorder::new().snapshot();
        assert!(!s.trace_active, "a bare recorder has no tracer");
        assert_eq!(s.trace_spans, 0);
        s.trace_active = true;
        s.trace_spans = 123;
        let v = crate::json::parse(&s.to_json()).unwrap();
        let trace = v.get("trace").expect("trace section");
        assert_eq!(
            trace.get("active").and_then(crate::json::Value::as_bool),
            Some(true)
        );
        assert_eq!(
            trace.get("spans").and_then(crate::json::Value::as_u64),
            Some(123)
        );
    }

    #[test]
    fn stats_json_is_parseable_and_complete() {
        let rec = StatsRecorder::new();
        rec.record_request(Verb::Batch(6), 12.5);
        let mut s = rec.snapshot();
        s.resident_shards = 2;
        s.kb_entries = 10;
        let v = crate::json::parse(&s.to_json()).unwrap();
        assert_eq!(
            v.get("requests").and_then(crate::json::Value::as_u64),
            Some(1)
        );
        assert_eq!(
            v.get("kb")
                .and_then(|kb| kb.get("resident_shards"))
                .and_then(crate::json::Value::as_u64),
            Some(2)
        );
        assert_eq!(
            v.get("latency")
                .and_then(|l| l.get("p50_ms"))
                .and_then(crate::json::Value::as_f64),
            Some(12.5)
        );
    }
}
