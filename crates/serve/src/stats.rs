//! Service telemetry: what a resident daemon has done since it started.
//!
//! The daemon keeps one [`StatsRecorder`] for its whole life; every
//! handled request records its verb, outcome and real wall-clock
//! latency, and the `stats` verb (plus the shutdown dump) snapshots it
//! into a [`ServeStats`] — the numbers later scheduler work learns
//! from. Latency percentiles come from a bounded ring of the most
//! recent samples, so a long-lived daemon's memory stays flat.

use std::sync::Mutex;
use std::time::Instant;

/// How many latency samples the percentile ring retains (oldest
/// overwritten first).
const LATENCY_RING: usize = 4096;

/// A point-in-time snapshot of the daemon's counters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServeStats {
    /// Real milliseconds since the daemon started.
    pub uptime_ms: f64,
    /// Requests handled, all verbs (errors included).
    pub requests: u64,
    /// Requests answered with `{"ok":false,...}`.
    pub errors: u64,
    /// `repair` requests handled.
    pub repairs: u64,
    /// `batch` requests handled.
    pub batches: u64,
    /// Cases swept across all `batch` requests.
    pub batch_cases: u64,
    /// Compactions run — the `compact` verb plus threshold-triggered.
    pub compactions: u64,
    /// The subset of `compactions` fired by the size/time thresholds.
    pub triggered_compactions: u64,
    /// Median request latency over the recent ring, real ms.
    pub p50_ms: f64,
    /// 99th-percentile request latency over the recent ring, real ms.
    pub p99_ms: f64,
    /// Slowest request in the recent ring, real ms.
    pub max_ms: f64,
    /// Knowledge shards faulted into the resident base.
    pub resident_shards: usize,
    /// Segment files read from the backing store since startup.
    pub shard_loads: u64,
    /// Entries in the resident knowledge base.
    pub kb_entries: usize,
    /// Solved-case weight the resident base stands for.
    pub kb_weight: u64,
    /// Learned inserts merged into the resident base since startup.
    pub kb_merged_inserts: u64,
    /// Oracle cache hits across all requests (gold-reference lookups).
    pub cache_hits: u64,
    /// Oracle cache misses across all requests.
    pub cache_misses: u64,
    /// Oracle judgements that executed the interpreter fresh.
    pub oracle_executed: u64,
    /// Oracle judgements served from the verdict cache.
    pub oracle_cached: u64,
}

impl ServeStats {
    /// Fraction of oracle lookups served from the cache (0 when idle).
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// The snapshot as one JSON object (engine telemetry conventions:
    /// floats at four decimals, stable field order).
    #[must_use]
    pub fn to_json(&self) -> String {
        use crate::json::fmt_num;
        format!(
            concat!(
                "{{\"uptime_ms\":{},\"requests\":{},\"errors\":{},",
                "\"repairs\":{},\"batches\":{},\"batch_cases\":{},",
                "\"compactions\":{},\"triggered_compactions\":{},",
                "\"latency\":{{\"p50_ms\":{},\"p99_ms\":{},\"max_ms\":{}}},",
                "\"kb\":{{\"resident_shards\":{},\"shard_loads\":{},",
                "\"entries\":{},\"weight\":{},\"merged_inserts\":{}}},",
                "\"oracle\":{{\"cache_hits\":{},\"cache_misses\":{},",
                "\"cache_hit_rate\":{},\"executed\":{},\"cached\":{}}}}}"
            ),
            fmt_num(self.uptime_ms),
            self.requests,
            self.errors,
            self.repairs,
            self.batches,
            self.batch_cases,
            self.compactions,
            self.triggered_compactions,
            fmt_num(self.p50_ms),
            fmt_num(self.p99_ms),
            fmt_num(self.max_ms),
            self.resident_shards,
            self.shard_loads,
            self.kb_entries,
            self.kb_weight,
            self.kb_merged_inserts,
            self.cache_hits,
            self.cache_misses,
            fmt_num(self.cache_hit_rate()),
            self.oracle_executed,
            self.oracle_cached,
        )
    }
}

/// The verb a handled request resolved to, for per-verb counting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verb {
    /// A `repair` request.
    Repair,
    /// A `batch` request; the payload is its case count.
    Batch(u64),
    /// A `stats` request.
    Stats,
    /// A `compact` request.
    Compact,
    /// A `shutdown` request.
    Shutdown,
    /// A request that failed to parse or execute.
    Error,
}

#[derive(Debug, Default)]
struct Counters {
    requests: u64,
    errors: u64,
    repairs: u64,
    batches: u64,
    batch_cases: u64,
    compactions: u64,
    triggered_compactions: u64,
    kb_merged_inserts: u64,
    cache_hits: u64,
    cache_misses: u64,
    oracle_executed: u64,
    oracle_cached: u64,
    /// Latency ring: most recent `LATENCY_RING` samples, insertion
    /// position wrapping.
    latencies: Vec<f64>,
    next_slot: usize,
}

/// The daemon's live, thread-shared counters.
#[derive(Debug)]
pub struct StatsRecorder {
    started: Instant,
    counters: Mutex<Counters>,
}

impl Default for StatsRecorder {
    fn default() -> StatsRecorder {
        StatsRecorder::new()
    }
}

impl StatsRecorder {
    /// A fresh recorder; `uptime_ms` counts from here.
    #[must_use]
    pub fn new() -> StatsRecorder {
        StatsRecorder {
            started: Instant::now(),
            counters: Mutex::new(Counters::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Counters> {
        self.counters.lock().expect("stats lock poisoned")
    }

    /// Records one handled request: its verb and real latency.
    pub fn record_request(&self, verb: Verb, latency_ms: f64) {
        let mut c = self.lock();
        c.requests += 1;
        match verb {
            Verb::Repair => c.repairs += 1,
            Verb::Batch(cases) => {
                c.batches += 1;
                c.batch_cases += cases;
            }
            Verb::Error => c.errors += 1,
            Verb::Stats | Verb::Compact | Verb::Shutdown => {}
        }
        if c.latencies.len() < LATENCY_RING {
            c.latencies.push(latency_ms);
        } else {
            let slot = c.next_slot;
            c.latencies[slot] = latency_ms;
        }
        c.next_slot = (c.next_slot + 1) % LATENCY_RING;
    }

    /// Records a compaction run (`triggered` when fired by a threshold
    /// rather than the `compact` verb).
    pub fn record_compaction(&self, triggered: bool) {
        let mut c = self.lock();
        c.compactions += 1;
        if triggered {
            c.triggered_compactions += 1;
        }
    }

    /// Records learned inserts merged into the resident base.
    pub fn record_merged_inserts(&self, inserts: u64) {
        self.lock().kb_merged_inserts += inserts;
    }

    /// Records a request's oracle traffic: gold-reference cache
    /// hits/misses and the executed/cached judgement split.
    pub fn record_oracle(&self, hits: u64, misses: u64, executed: u64, cached: u64) {
        let mut c = self.lock();
        c.cache_hits += hits;
        c.cache_misses += misses;
        c.oracle_executed += executed;
        c.oracle_cached += cached;
    }

    /// Snapshots the counters. The knowledge-base gauges (resident
    /// shards, entries, weight, shard loads) are the caller's — the
    /// recorder only holds what it observed itself.
    #[must_use]
    pub fn snapshot(&self) -> ServeStats {
        let c = self.lock();
        let (p50, p99, max) = percentiles(&c.latencies);
        ServeStats {
            uptime_ms: self.started.elapsed().as_secs_f64() * 1e3,
            requests: c.requests,
            errors: c.errors,
            repairs: c.repairs,
            batches: c.batches,
            batch_cases: c.batch_cases,
            compactions: c.compactions,
            triggered_compactions: c.triggered_compactions,
            p50_ms: p50,
            p99_ms: p99,
            max_ms: max,
            resident_shards: 0,
            shard_loads: 0,
            kb_entries: 0,
            kb_weight: 0,
            kb_merged_inserts: c.kb_merged_inserts,
            cache_hits: c.cache_hits,
            cache_misses: c.cache_misses,
            oracle_executed: c.oracle_executed,
            oracle_cached: c.oracle_cached,
        }
    }
}

/// `(p50, p99, max)` over the sample ring (zeros when empty). The
/// nearest-rank method on a sorted copy — the ring is small and
/// snapshots are rare, so simplicity beats cleverness.
fn percentiles(samples: &[f64]) -> (f64, f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = |p: f64| {
        let idx = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[idx.clamp(1, sorted.len()) - 1]
    };
    (rank(50.0), rank(99.0), sorted[sorted.len() - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_verb() {
        let rec = StatsRecorder::new();
        rec.record_request(Verb::Repair, 3.0);
        rec.record_request(Verb::Batch(42), 10.0);
        rec.record_request(Verb::Stats, 1.0);
        rec.record_request(Verb::Error, 0.5);
        rec.record_compaction(false);
        rec.record_compaction(true);
        rec.record_merged_inserts(5);
        rec.record_oracle(3, 1, 10, 2);
        let s = rec.snapshot();
        assert_eq!(s.requests, 4);
        assert_eq!(s.repairs, 1);
        assert_eq!(s.batches, 1);
        assert_eq!(s.batch_cases, 42);
        assert_eq!(s.errors, 1);
        assert_eq!(s.compactions, 2);
        assert_eq!(s.triggered_compactions, 1);
        assert_eq!(s.kb_merged_inserts, 5);
        assert_eq!((s.cache_hits, s.cache_misses), (3, 1));
        assert_eq!((s.oracle_executed, s.oracle_cached), (10, 2));
        assert!((s.cache_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(s.max_ms, 10.0);
        assert!(s.uptime_ms >= 0.0);
    }

    #[test]
    fn percentiles_are_sane_and_ring_is_bounded() {
        assert_eq!(percentiles(&[]), (0.0, 0.0, 0.0));
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let (p50, p99, max) = percentiles(&samples);
        assert_eq!(p50, 50.0);
        assert_eq!(p99, 99.0);
        assert_eq!(max, 100.0);

        let rec = StatsRecorder::new();
        for i in 0..(LATENCY_RING + 100) {
            rec.record_request(Verb::Stats, i as f64);
        }
        let c = rec.lock();
        assert_eq!(c.latencies.len(), LATENCY_RING, "ring must stay bounded");
        // The oldest samples were overwritten by the newest.
        assert!(c.latencies.contains(&(LATENCY_RING as f64 + 99.0)));
        assert!(!c.latencies.contains(&0.0));
    }

    #[test]
    fn stats_json_is_parseable_and_complete() {
        let rec = StatsRecorder::new();
        rec.record_request(Verb::Batch(6), 12.5);
        let mut s = rec.snapshot();
        s.resident_shards = 2;
        s.kb_entries = 10;
        let v = crate::json::parse(&s.to_json()).unwrap();
        assert_eq!(
            v.get("requests").and_then(crate::json::Value::as_u64),
            Some(1)
        );
        assert_eq!(
            v.get("kb")
                .and_then(|kb| kb.get("resident_shards"))
                .and_then(crate::json::Value::as_u64),
            Some(2)
        );
        assert_eq!(
            v.get("latency")
                .and_then(|l| l.get("p50_ms"))
                .and_then(crate::json::Value::as_f64),
            Some(12.5)
        );
    }
}
