//! The resident repair daemon.
//!
//! One process keeps one [`Engine`] (and therefore one shared oracle
//! verdict cache) and one [`KnowledgeBase`] alive across requests, so
//! repeated traffic amortizes exactly the state the one-shot CLI
//! rebuilds per invocation. The knowledge base is opened lazily
//! ([`KnowledgeBase::open_lazy`]): a request faults in only the shards
//! its UB classes map to, and the `stats` verb reports how many
//! segments were actually read.
//!
//! Concurrency model: the accept loop runs on the caller's thread and
//! feeds connections to a small pool of handler threads over a channel.
//! Handlers serve whole connections (many request lines each). The
//! resident base sits behind a mutex, but handlers hold it only long
//! enough to fault shards in and clone a [resident
//! snapshot](KnowledgeBase::resident_snapshot) — repairs and batches
//! run on the snapshot, and learned deltas merge back afterwards. The
//! merge is the same submission-order multiset merge the batch engine
//! uses, so a daemon's knowledge evolution matches the equivalent CLI
//! run byte for byte.
//!
//! Compaction runs in three ways: on the explicit `compact` verb, when
//! the resident base grows past `compact_entries`, or when
//! `compact_secs` of wall-clock pass since the last one. All three
//! paths fault every shard in first (a partial-residency save would
//! drop shards — the base itself refuses it) and persist through the
//! store's atomic swap-in, so a crash mid-compaction leaves the old
//! generation intact.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

use rb_dataset::{Corpus, UbCase};
use rb_engine::{results_to_json, Engine, SystemSpec};
use rb_kb::{MergePolicy, COMPACTION_COALESCE_THRESHOLD};
use rb_lang::parser::parse_program;
use rb_lang::printer::print_program;
use rb_llm::ModelId;
use rb_miri::UbClass;
use rustbrain::{KnowledgeBase, RustBrain, RustBrainConfig};

use crate::json::{fmt_num, fmt_str};
use crate::protocol::{error_response, parse_request, Request};
use crate::stats::{ServeStats, StatsRecorder, Verb};

/// How the daemon is wired up: where it listens, how it repairs, and
/// when it compacts.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:4650` (port 0 picks one).
    pub addr: String,
    /// Engine worker threads for `batch` requests.
    pub jobs: usize,
    /// Connection handler threads.
    pub handlers: usize,
    /// Knowledge store to open lazily and persist back to (`None` runs
    /// a fresh in-memory base that dies with the daemon).
    pub kb_path: Option<PathBuf>,
    /// Compact when the resident base reaches this many entries
    /// (0 disables the size trigger).
    pub compact_entries: usize,
    /// Compact when this many seconds pass since the last compaction
    /// (0 disables the time trigger).
    pub compact_secs: u64,
    /// Write a structured JSONL trace of every request (and the repair
    /// spans nested under it) to this file. `None` disables tracing.
    pub trace_out: Option<PathBuf>,
    /// Scheduling policy the resident engine dispatches batch requests
    /// under (defaults to work-stealing; results are byte-identical
    /// under every policy).
    pub sched: rb_engine::SchedPolicy,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:4650".to_owned(),
            jobs: 4,
            handlers: 2,
            kb_path: None,
            compact_entries: 0,
            compact_secs: 0,
            trace_out: None,
            sched: rb_engine::SchedPolicy::default(),
        }
    }
}

/// Everything the handler threads share.
struct ServeState {
    config: ServeConfig,
    /// Resident engine: its oracle cache is the daemon's verdict memory.
    engine: Engine,
    /// The resident knowledge base (lazy when backed by a store).
    kb: Mutex<KnowledgeBase>,
    stats: StatsRecorder,
    /// Structured-trace sink shared by every handler thread (`None`
    /// when tracing is off — spans are inert and cost one branch).
    tracer: Option<rb_obs::Tracer>,
    shutdown: AtomicBool,
    /// Serializes compactions so a size trigger firing on two handler
    /// threads at once runs the work exactly once.
    compacting: AtomicBool,
    last_compact: Mutex<Instant>,
    local_addr: SocketAddr,
}

impl ServeState {
    fn lock_kb(&self) -> std::sync::MutexGuard<'_, KnowledgeBase> {
        self.kb.lock().expect("knowledge base lock poisoned")
    }
}

/// A bound daemon, ready to [`run`](Server::run).
pub struct Server {
    listener: TcpListener,
    state: Arc<ServeState>,
}

impl Server {
    /// Binds the listen socket and opens (or creates) the knowledge
    /// store lazily — no shard is read until traffic touches its class.
    pub fn bind(config: ServeConfig) -> Result<Server, String> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| format!("cannot resolve local addr: {e}"))?;
        let kb = match &config.kb_path {
            Some(path) => KnowledgeBase::open_lazy(path)
                .map_err(|e| format!("cannot open knowledge store: {e}"))?,
            None => KnowledgeBase::new(),
        };
        let tracer = match &config.trace_out {
            Some(path) => Some(
                rb_obs::Tracer::to_file(path)
                    .map_err(|e| format!("cannot open trace file {}: {e}", path.display()))?,
            ),
            None => None,
        };
        let mut engine = Engine::with_global_cache(config.jobs).with_policy(config.sched);
        if let Some(tracer) = &tracer {
            engine = engine.with_tracer(tracer.clone());
        }
        let state = Arc::new(ServeState {
            engine,
            kb: Mutex::new(kb),
            stats: StatsRecorder::new(),
            tracer,
            shutdown: AtomicBool::new(false),
            compacting: AtomicBool::new(false),
            last_compact: Mutex::new(Instant::now()),
            local_addr,
            config,
        });
        Ok(Server { listener, state })
    }

    /// The bound address (resolves port 0 to the picked ephemeral port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.state.local_addr
    }

    /// Serves until a `shutdown` request arrives, then persists the
    /// knowledge base (when store-backed) and returns the final stats.
    pub fn run(self) -> ServeStats {
        let Server { listener, state } = self;
        let handlers = state.config.handlers.max(1);
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        std::thread::scope(|scope| {
            for _ in 0..handlers {
                let rx = Arc::clone(&rx);
                let state = Arc::clone(&state);
                scope.spawn(move || loop {
                    let conn = rx.lock().expect("handler queue lock poisoned").recv();
                    match conn {
                        Ok(stream) => handle_connection(&state, stream),
                        Err(_) => break,
                    }
                });
            }
            for stream in listener.incoming() {
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(stream) => {
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                    Err(e) => eprintln!("serve: accept failed: {e}"),
                }
            }
            drop(tx);
        });
        // Final persistence: a store-backed base goes back to disk fully
        // resident (the save itself refuses anything less).
        if let Some(path) = &state.config.kb_path {
            let mut kb = state.lock_kb();
            let saved = kb.ensure_all().and_then(|_| kb.save_reported(path));
            if let Err(e) = saved {
                eprintln!("serve: final knowledge save failed: {e}");
            }
        }
        if let Some(tracer) = &state.tracer {
            tracer.flush();
        }
        final_stats(&state)
    }
}

/// Serves one connection: request lines in, response lines out, until
/// the peer hangs up or the daemon shuts down.
fn handle_connection(state: &Arc<ServeState>, stream: TcpStream) {
    // Bind this handler thread to the daemon's trace sink: every span
    // opened while serving this connection (repair pipeline included)
    // lands in the shared JSONL file. A no-op when tracing is off.
    let _trace_scope = state.tracer.as_ref().map(rb_obs::trace::scope);
    let _ = stream.set_nodelay(true);
    let reader = match stream.try_clone() {
        Ok(read_half) => BufReader::new(read_half),
        Err(e) => {
            eprintln!("serve: cannot clone connection: {e}");
            return;
        }
    };
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let started = Instant::now();
        let (response, verb) = {
            let mut span = rb_obs::span("serve.request");
            let (response, verb) = dispatch(state, &line);
            span.tag("verb", verb.label());
            span.tag("ok", if verb == Verb::Error { "false" } else { "true" });
            (response, verb)
        };
        state
            .stats
            .record_request(verb, started.elapsed().as_secs_f64() * 1e3);
        if writeln!(writer, "{response}")
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        if verb == Verb::Shutdown {
            initiate_shutdown(state);
            break;
        }
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
    }
}

/// Routes one request line to its verb handler; errors become the
/// uniform `{"ok":false,...}` response and count as [`Verb::Error`].
fn dispatch(state: &Arc<ServeState>, line: &str) -> (String, Verb) {
    let request = match parse_request(line) {
        Ok(request) => request,
        Err(e) => return (error_response(&e), Verb::Error),
    };
    match request {
        Request::Repair {
            source,
            reference,
            seed,
        } => match handle_repair(state, &source, &reference, seed) {
            Ok(response) => (response, Verb::Repair),
            Err(e) => (error_response(&e), Verb::Error),
        },
        Request::Batch {
            seed,
            per_class,
            classes,
        } => match handle_batch(state, seed, per_class, classes.as_deref()) {
            Ok((response, cases)) => (response, Verb::Batch(cases)),
            Err(e) => (error_response(&e), Verb::Error),
        },
        Request::Analyze { source } => match handle_analyze(&source) {
            Ok(response) => (response, Verb::Analyze),
            Err(e) => (error_response(&e), Verb::Error),
        },
        Request::Stats => (stats_response(state), Verb::Stats),
        Request::Metrics => (metrics_response(state), Verb::Metrics),
        Request::Compact => match compact_now(state, false) {
            Ok(response) => (response, Verb::Compact),
            Err(e) => (error_response(&e), Verb::Error),
        },
        Request::Shutdown => (shutdown_response(state), Verb::Shutdown),
    }
}

/// The repair configuration a request seed maps to — identical to the
/// CLI's defaults, so a daemon repair and a one-shot `rustbrain repair`
/// of the same program agree.
fn brain_config(seed: u64) -> RustBrainConfig {
    let mut config = RustBrainConfig::for_model(ModelId::Gpt4, seed);
    config.temperature = 0.5;
    config.use_knowledge = true;
    config
}

fn handle_repair(
    state: &Arc<ServeState>,
    source: &str,
    reference: &[String],
    seed: u64,
) -> Result<String, String> {
    let program = parse_program(source).map_err(|e| format!("parse error: {e}"))?;
    let oracle = state.engine.shared_oracle();
    // Call-site span: this initial triage judgement goes through
    // `Oracle::judge` directly, not the instrumented `judge_recording`
    // seam, so it must account for itself.
    let report = {
        let mut span = rb_obs::span("oracle.judge");
        let report = oracle.judge(&program);
        span.tag(
            "verdict",
            report.primary().map_or("pass", |e| e.class().label()),
        );
        report
    };
    if report.passes() {
        return Ok(
            "{\"ok\":true,\"verb\":\"repair\",\"already_clean\":true,\"passed\":true}".to_owned(),
        );
    }
    let class = report.primary().map_or(UbClass::Compile, |e| e.class());
    // Fault in exactly the shard this class maps to, then hand the
    // repair an eager snapshot: mid-repair queries for other classes see
    // what the dispatcher made resident, never the disk.
    let (snapshot, baseline) = {
        let mut kb = state.lock_kb();
        kb.ensure_class(class).map_err(|e| e.to_string())?;
        (kb.resident_snapshot(), kb.len())
    };
    let mut brain =
        RustBrain::with_oracle(brain_config(seed), oracle).with_knowledge_base(snapshot);
    let outcome = brain.repair(&program, reference);
    let delta = brain.knowledge().delta_since(baseline);
    if !delta.is_empty() {
        let mut kb = state.lock_kb();
        for entry in &delta.entries {
            kb.ensure_class(entry.class).map_err(|e| e.to_string())?;
        }
        let merged = kb.merge(&delta, state.engine.merge_policy());
        state.stats.record_merged_inserts(merged as u64);
    }
    state.stats.record_oracle(
        0,
        0,
        outcome.oracle_executed as u64,
        outcome.oracle_cached as u64,
        outcome.oracle_prevetoed as u64,
    );
    maybe_compact(state);
    Ok(format!(
        concat!(
            "{{\"ok\":true,\"verb\":\"repair\",\"passed\":{},\"acceptable\":{},",
            "\"class\":{},\"overhead_ms\":{},\"oracle_runs\":{},",
            "\"solutions_tried\":{},\"kb_queries\":{},\"repaired\":{}}}"
        ),
        outcome.passed,
        outcome.acceptable,
        fmt_str(class.label()),
        fmt_num(outcome.overhead_ms),
        outcome.oracle_runs,
        outcome.solutions_tried,
        outcome.kb_queries,
        fmt_str(&print_program(&outcome.final_program)),
    ))
}

/// The `analyze` verb: run `rb_lint` on the source and return the full
/// analysis document — entirely static, so no engine or knowledge-base
/// state is touched and no oracle judgement is recorded.
fn handle_analyze(source: &str) -> Result<String, String> {
    let program = parse_program(source).map_err(|e| format!("parse error: {e}"))?;
    let analysis = rb_lint::analyze(&program);
    let top_class = analysis
        .top()
        .map_or_else(|| "null".to_owned(), |f| fmt_str(f.class.label()));
    Ok(format!(
        "{{\"ok\":true,\"verb\":\"analyze\",\"top_class\":{},\"analysis\":{}}}",
        top_class,
        rb_lint::json::analysis_json(&analysis),
    ))
}

fn handle_batch(
    state: &Arc<ServeState>,
    seed: u64,
    per_class: usize,
    classes: Option<&[UbClass]>,
) -> Result<(String, u64), String> {
    let corpus = match classes {
        Some(classes) => Corpus::generate(seed, per_class, classes),
        None => Corpus::generate_full(seed, per_class),
    };
    let spec = SystemSpec::brain(brain_config(seed));
    let snapshot = {
        let mut kb = state.lock_kb();
        let mut wanted: Vec<UbClass> = corpus.cases.iter().map(|c| c.class).collect();
        wanted.sort_by_key(|c| c.label());
        wanted.dedup();
        kb.ensure_classes(&wanted).map_err(|e| e.to_string())?;
        kb.resident_snapshot()
    };
    let outcome = state
        .engine
        .run_batch_learned(&spec, &corpus.cases, seed, &snapshot);
    // Merge learning back into the resident base: the same
    // submission-order multiset merge the engine applied to the
    // snapshot, so sequential daemon traffic evolves the base exactly
    // like the equivalent CLI batch chain would.
    let deltas: Vec<_> = outcome
        .jobs
        .iter()
        .filter_map(|j| j.kb_delta.as_ref())
        .filter(|d| !d.is_empty())
        .collect();
    let kb_entries = {
        let mut kb = state.lock_kb();
        if !deltas.is_empty() {
            for delta in &deltas {
                for entry in &delta.entries {
                    kb.ensure_class(entry.class).map_err(|e| e.to_string())?;
                }
            }
            let merged = kb.merge_all(deltas.iter().copied(), state.engine.merge_policy());
            state.stats.record_merged_inserts(merged as u64);
        }
        kb.len()
    };
    state.stats.record_oracle(
        outcome.stats.cache.hits,
        outcome.stats.cache.misses,
        outcome.stats.oracle_executed,
        outcome.stats.oracle_cached,
        outcome.stats.oracle_prevetoed,
    );
    state.stats.record_sched(
        outcome.stats.sched.steals,
        outcome.stats.sched.max_queue_depth as u64,
    );
    maybe_compact(state);
    let (pass_rate, exec_rate) = rates(&outcome.results);
    let cases = outcome.results.len() as u64;
    // `results_json` embeds the engine's canonical results document
    // verbatim (as an escaped string): a client that unescapes it holds
    // the same bytes `rustbrain batch --results-out` writes, which is
    // what the CI smoke job diffs.
    let response = format!(
        concat!(
            "{{\"ok\":true,\"verb\":\"batch\",\"cases\":{},\"pass_rate\":{},",
            "\"exec_rate\":{},\"wall_ms\":{},\"kb_entries\":{},",
            "\"results_json\":{},\"stats_json\":{}}}"
        ),
        cases,
        fmt_num(pass_rate),
        fmt_num(exec_rate),
        fmt_num(outcome.stats.wall_ms),
        kb_entries,
        fmt_str(&results_to_json(&outcome.results)),
        fmt_str(&outcome.stats.to_json()),
    );
    Ok((response, cases))
}

/// Mean pass / acceptability over a result set (empty → zeros), the
/// same definition `rb_bench::overall_rates` uses.
fn rates(results: &[rb_engine::CaseResult]) -> (f64, f64) {
    if results.is_empty() {
        return (0.0, 0.0);
    }
    let n = results.len() as f64;
    let passed = results.iter().filter(|r| r.passed).count() as f64;
    let acceptable = results.iter().filter(|r| r.acceptable).count() as f64;
    (passed / n, acceptable / n)
}

/// Snapshots the recorder and fills in the knowledge-base gauges only
/// the base itself knows, plus the resident tracer's span counts when
/// `--trace-out` is active.
fn serve_stats(state: &Arc<ServeState>) -> ServeStats {
    let mut stats = state.stats.snapshot();
    stats.sched_policy = state.config.sched.label().to_owned();
    if let Some(tracer) = &state.tracer {
        stats.trace_active = true;
        stats.trace_spans = tracer.spans_emitted();
    }
    let kb = state.lock_kb();
    stats.resident_shards = kb.resident_shards();
    stats.shard_loads = kb.total_shard_loads();
    stats.kb_entries = kb.len();
    stats.kb_weight = kb.total_weight();
    stats
}

fn stats_response(state: &Arc<ServeState>) -> String {
    format!(
        "{{\"ok\":true,\"verb\":\"stats\",\"serve\":{}}}",
        serve_stats(state).to_json()
    )
}

/// The `metrics` verb: Prometheus-style exposition text (the
/// process-global registry — per-UbClass repair/oracle latency
/// histograms — concatenated with this daemon's own request counters,
/// which are per-recorder so cohabiting daemons stay hermetic), plus
/// both registries as structured JSON.
fn metrics_response(state: &Arc<ServeState>) -> String {
    let global = rb_obs::metrics();
    let serve = state.stats.registry();
    let exposition = format!("{}{}", global.prometheus(), serve.prometheus());
    format!(
        "{{\"ok\":true,\"verb\":\"metrics\",\"exposition\":{},\"global\":{},\"serve\":{}}}",
        fmt_str(&exposition),
        global.to_json(),
        serve.to_json(),
    )
}

fn shutdown_response(state: &Arc<ServeState>) -> String {
    format!(
        "{{\"ok\":true,\"verb\":\"shutdown\",\"serve\":{}}}",
        serve_stats(state).to_json()
    )
}

/// Flips the shutdown flag and pokes the accept loop awake with a
/// throwaway self-connection, so `run` returns promptly.
fn initiate_shutdown(state: &Arc<ServeState>) {
    state.shutdown.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect(state.local_addr);
}

/// Runs the compaction thresholds; at most one compaction is in flight,
/// paid for by the handler thread whose request tripped it (other
/// handler threads keep serving).
fn maybe_compact(state: &Arc<ServeState>) {
    let config = &state.config;
    if config.compact_entries == 0 && config.compact_secs == 0 {
        return;
    }
    let due_size = config.compact_entries > 0 && state.lock_kb().len() >= config.compact_entries;
    let due_time = config.compact_secs > 0
        && state
            .last_compact
            .lock()
            .expect("compaction clock lock poisoned")
            .elapsed()
            .as_secs()
            >= config.compact_secs;
    if !(due_size || due_time) {
        return;
    }
    if state.compacting.swap(true, Ordering::SeqCst) {
        return;
    }
    let result = compact_now(state, true);
    state.compacting.store(false, Ordering::SeqCst);
    if let Err(e) = result {
        eprintln!("serve: triggered compaction failed: {e}");
    }
}

/// Faults every shard in, re-normalizes under the compaction policy,
/// and persists (atomic swap-in) when the base is store-backed.
fn compact_now(state: &Arc<ServeState>, triggered: bool) -> Result<String, String> {
    let policy = MergePolicy::compaction(COMPACTION_COALESCE_THRESHOLD);
    let mut kb = state.lock_kb();
    kb.ensure_all().map_err(|e| e.to_string())?;
    let entries_before = kb.len();
    let weight_before = kb.total_weight();
    let coalesced = kb.compact(&policy);
    let (written, skipped) = match &state.config.kb_path {
        Some(path) => {
            let report = kb.save_reported(path).map_err(|e| e.to_string())?;
            (report.shards_written, report.shards_skipped)
        }
        None => (0, 0),
    };
    let entries_after = kb.len();
    let weight_after = kb.total_weight();
    drop(kb);
    *state
        .last_compact
        .lock()
        .expect("compaction clock lock poisoned") = Instant::now();
    state.stats.record_compaction(triggered);
    Ok(format!(
        concat!(
            "{{\"ok\":true,\"verb\":\"compact\",\"triggered\":{},",
            "\"entries_before\":{},\"entries_after\":{},\"coalesced\":{},",
            "\"weight_before\":{},\"weight_after\":{},",
            "\"shards_written\":{},\"shards_skipped\":{}}}"
        ),
        triggered,
        entries_before,
        entries_after,
        coalesced,
        weight_before,
        weight_after,
        written,
        skipped,
    ))
}

fn final_stats(state: &Arc<ServeState>) -> ServeStats {
    serve_stats(state)
}

/// Seeds a corpus batch through a plain engine — a convenience for
/// tests and the smoke harness to produce a sharded store the daemon
/// can then open lazily.
pub fn seed_store(
    path: &std::path::Path,
    seed: u64,
    per_class: usize,
    classes: &[UbClass],
) -> Result<usize, String> {
    let corpus = Corpus::generate(seed, per_class, classes);
    let spec = SystemSpec::brain(brain_config(seed));
    let engine = Engine::new(2);
    let outcome = engine.run_batch_learned(&spec, &corpus.cases, seed, &KnowledgeBase::new());
    outcome
        .knowledge
        .save_reported(path)
        .map_err(|e| e.to_string())?;
    Ok(outcome.knowledge.len())
}

/// Reference cases for driving a daemon in tests: `(source, reference)`
/// pairs for a class, rendered exactly how a socket client would send
/// them.
#[must_use]
pub fn corpus_requests(seed: u64, per_class: usize, class: UbClass) -> Vec<(String, Vec<String>)> {
    let corpus = Corpus::generate(seed, per_class, &[class]);
    corpus
        .cases
        .iter()
        .map(|case| (print_program(&case.buggy), gold_outputs(case)))
        .collect()
}

/// The gold program's outputs — the acceptability reference a client
/// would pass alongside the buggy source.
#[must_use]
pub fn gold_outputs(case: &UbCase) -> Vec<String> {
    rb_miri::run_program(&case.gold).outputs.clone()
}
