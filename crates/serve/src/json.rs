//! A minimal hand-rolled JSON layer for the wire protocol.
//!
//! The workspace's `serde` is an offline vendored stand-in with no real
//! serialization machinery, so the daemon parses requests and emits
//! responses by hand: [`parse`] turns one request line into a [`Value`]
//! tree, and the `fmt_*` helpers build response lines with the same
//! conventions the engine's telemetry JSON uses (numbers at four
//! decimals, non-finite mapped to zero).
//!
//! This is deliberately *not* a general-purpose JSON library: it accepts
//! exactly the JSON grammar (objects, arrays, strings with `\uXXXX`
//! escapes, numbers, booleans, null), returns typed errors instead of
//! panicking on hostile input, and bounds nesting depth so a hostile
//! client cannot blow the stack of a handler thread.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maximum nesting depth [`parse`] accepts; deeper input is an error,
/// not a stack overflow.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Key order is not preserved (sorted map) — the protocol
    /// never depends on it.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field lookup; `None` on non-objects and missing keys.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a `u64`, if it is one exactly (no fraction, no
    /// sign, in range).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        // 2^53: the last f64 below which every integer is exact.
        if n.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&n) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The number as a `usize`, via [`Value::as_u64`].
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one JSON document from `input` (trailing whitespace allowed,
/// trailing garbage is an error).
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH}"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(bytes, pos, depth),
        Some(b'[') => parse_arr(bytes, pos, depth),
        Some(b'"') => parse_str(bytes, pos).map(Value::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
            *pos += 1;
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid utf-8 in number")?;
    let n: f64 = text
        .parse()
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))?;
    if n.is_finite() {
        Ok(Value::Num(n))
    } else {
        Err(format!("non-finite number `{text}`"))
    }
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let cp = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: the low half must follow.
                            if bytes.get(*pos + 1..*pos + 3) != Some(b"\\u") {
                                return Err("lone high surrogate".into());
                            }
                            let lo = parse_hex4(bytes, *pos + 3)?;
                            *pos += 6;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err("invalid low surrogate".into());
                            }
                            0x10000 + ((u32::from(hi) - 0xD800) << 10) + (u32::from(lo) - 0xDC00)
                        } else if (0xDC00..0xE000).contains(&hi) {
                            return Err("lone low surrogate".into());
                        } else {
                            u32::from(hi)
                        };
                        out.push(char::from_u32(cp).ok_or("invalid \\u escape")?);
                    }
                    _ => return Err("invalid escape".into()),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => return Err("raw control character in string".into()),
            Some(_) => {
                // Copy one UTF-8 scalar as-is.
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid utf-8 in string")?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u16, String> {
    let hex = bytes
        .get(at..at + 4)
        .and_then(|b| std::str::from_utf8(b).ok())
        .ok_or("truncated \\u escape")?;
    u16::from_str_radix(hex, 16).map_err(|_| format!("invalid \\u escape `{hex}`"))
}

fn parse_arr(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    *pos += 1; // consume '{'
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos, depth + 1)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included). The round trip is exact: [`parse`] on `"<escaped>"` yields
/// the original bytes — which is what lets the daemon ship the engine's
/// deterministic results document as a string field without disturbing a
/// single byte.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A quoted, escaped JSON string literal.
#[must_use]
pub fn fmt_str(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// A JSON number at four decimals (the engine telemetry convention);
/// non-finite values map to zero so output is always valid JSON.
#[must_use]
pub fn fmt_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.4}")
    } else {
        "0.0000".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let v = parse(r#"{"verb":"batch","seed":42,"per_class":2,"classes":["alloc","panic"]}"#)
            .unwrap();
        assert_eq!(v.get("verb").and_then(Value::as_str), Some("batch"));
        assert_eq!(v.get("seed").and_then(Value::as_u64), Some(42));
        assert_eq!(
            v.get("classes").and_then(Value::as_arr).map(<[Value]>::len),
            Some(2)
        );
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line1\nline2\t\"quoted\" \\slash 🦀 \u{0007}";
        let line = format!("{{\"s\":{}}}", fmt_str(original));
        let v = parse(&line).unwrap();
        assert_eq!(v.get("s").and_then(Value::as_str), Some(original));
        // And a surrogate-pair escape decodes to the astral character.
        let v = parse(r#""🦀""#).unwrap();
        assert_eq!(v.as_str(), Some("🦀"));
    }

    #[test]
    fn hostile_input_is_an_error_not_a_panic() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "\"unterminated",
            "troo",
            "1e999",
            "{\"a\":1}trailing",
            r#""\ud800""#,
            "\u{0001}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
        // Depth is bounded: 100 nested arrays must not blow the stack.
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn numbers_convert_conservatively() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("42.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("42").unwrap().as_usize(), Some(42));
        assert_eq!(fmt_num(1.0 / 3.0), "0.3333");
        assert_eq!(fmt_num(f64::NAN), "0.0000");
    }
}
