//! The daemon's wire protocol: one JSON object per line, request in,
//! response out.
//!
//! Every request carries a `"verb"` field; everything else is
//! verb-specific. Responses always carry `"ok"` (and `"verb"` echoed
//! back), with failures shaped as `{"ok":false,"error":"..."}` so a
//! scripting client needs exactly one code path. The seven verbs:
//!
//! ```text
//! {"verb":"repair","source":"fn main() { ... }","reference":["5"],"seed":7}
//! {"verb":"batch","seed":42,"per_class":2,"classes":["alloc","panic"]}
//! {"verb":"analyze","source":"fn main() { ... }"}
//! {"verb":"stats"}
//! {"verb":"metrics"}
//! {"verb":"compact"}
//! {"verb":"shutdown"}
//! ```
//!
//! `repair` and `batch` default `seed` to 42 and `per_class` to 3 — the
//! same defaults as the one-shot CLI, so a daemon answer and a CLI run
//! of the same request are comparable byte for byte.

use crate::json::Value;
use rb_miri::UbClass;

/// Default RNG seed when a request omits `"seed"` (the CLI default).
pub const DEFAULT_SEED: u64 = 42;
/// Default `per_class` when a `batch` request omits it (the CLI default).
pub const DEFAULT_PER_CLASS: usize = 3;

/// One parsed protocol request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Repair one mini-Rust source string.
    Repair {
        /// The buggy program's source text.
        source: String,
        /// Expected outputs for the acceptability judgement (may be
        /// empty, like the CLI's `--reference`).
        reference: Vec<String>,
        /// RNG seed for the repair pipeline.
        seed: u64,
    },
    /// Sweep a generated corpus on the resident engine.
    Batch {
        /// Corpus generation / batch base seed.
        seed: u64,
        /// Cases generated per UB class.
        per_class: usize,
        /// Restrict the corpus to these classes (`None` = all classes).
        classes: Option<Vec<UbClass>>,
    },
    /// Statically analyse one mini-Rust source string with `rb_lint`
    /// (no oracle run, no repair).
    Analyze {
        /// The program's source text.
        source: String,
    },
    /// Report the daemon's [`crate::stats::ServeStats`] snapshot.
    Stats,
    /// Dump the metrics registries (Prometheus-style exposition text):
    /// the process-global registry (per-UbClass repair/oracle latency
    /// histograms) plus this daemon's own request counters.
    Metrics,
    /// Fault every shard in, re-normalize the resident base under the
    /// compaction policy, and persist it (atomic swap-in).
    Compact,
    /// Stop accepting connections and exit after a final stats dump.
    Shutdown,
}

/// Resolves a [`UbClass`] from its wire label (the same labels
/// `UbClass::label` prints and the corpus case ids use).
#[must_use]
pub fn class_from_label(label: &str) -> Option<UbClass> {
    UbClass::ALL
        .iter()
        .copied()
        .chain([UbClass::Compile])
        .find(|c| c.label() == label)
}

fn parse_classes(value: &Value) -> Result<Vec<UbClass>, String> {
    let items = value
        .as_arr()
        .ok_or_else(|| "`classes` must be an array of class labels".to_owned())?;
    let mut classes = Vec::with_capacity(items.len());
    for item in items {
        let label = item
            .as_str()
            .ok_or_else(|| "`classes` entries must be strings".to_owned())?;
        let class = class_from_label(label).ok_or_else(|| format!("unknown UB class `{label}`"))?;
        if !classes.contains(&class) {
            classes.push(class);
        }
    }
    if classes.is_empty() {
        return Err("`classes` must not be empty".into());
    }
    Ok(classes)
}

/// Parses one request line. Errors are client-facing strings — the
/// server wraps them into an `{"ok":false,...}` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value = crate::json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
    let verb = value
        .get("verb")
        .and_then(Value::as_str)
        .ok_or_else(|| "request needs a string `verb` field".to_owned())?;
    let seed = match value.get("seed") {
        None => DEFAULT_SEED,
        Some(v) => v
            .as_u64()
            .ok_or_else(|| "`seed` must be a u64".to_owned())?,
    };
    match verb {
        "repair" => {
            let source = value
                .get("source")
                .and_then(Value::as_str)
                .ok_or_else(|| "`repair` needs a string `source` field".to_owned())?
                .to_owned();
            let reference = match value.get("reference") {
                None => Vec::new(),
                Some(refs) => refs
                    .as_arr()
                    .ok_or_else(|| "`reference` must be an array of strings".to_owned())?
                    .iter()
                    .map(|v| {
                        v.as_str()
                            .map(str::to_owned)
                            .ok_or_else(|| "`reference` entries must be strings".to_owned())
                    })
                    .collect::<Result<Vec<String>, String>>()?,
            };
            Ok(Request::Repair {
                source,
                reference,
                seed,
            })
        }
        "batch" => {
            let per_class = match value.get("per_class") {
                None => DEFAULT_PER_CLASS,
                Some(v) => {
                    let n = v
                        .as_usize()
                        .ok_or_else(|| "`per_class` must be a positive integer".to_owned())?;
                    if n == 0 {
                        return Err("`per_class` must be at least 1".into());
                    }
                    n
                }
            };
            let classes = match value.get("classes") {
                None => None,
                Some(v) => Some(parse_classes(v)?),
            };
            Ok(Request::Batch {
                seed,
                per_class,
                classes,
            })
        }
        "analyze" => {
            let source = value
                .get("source")
                .and_then(Value::as_str)
                .ok_or_else(|| "`analyze` needs a string `source` field".to_owned())?
                .to_owned();
            Ok(Request::Analyze { source })
        }
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        "compact" => Ok(Request::Compact),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!(
            "unknown verb `{other}` (expected repair|batch|analyze|stats|metrics|compact|shutdown)"
        )),
    }
}

/// The uniform error response line (no trailing newline).
#[must_use]
pub fn error_response(message: &str) -> String {
    format!(
        "{{\"ok\":false,\"error\":{}}}",
        crate::json::fmt_str(message)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_seven_verbs() {
        let r = parse_request(
            r#"{"verb":"repair","source":"fn main() {}","reference":["5","true"],"seed":7}"#,
        )
        .unwrap();
        assert_eq!(
            r,
            Request::Repair {
                source: "fn main() {}".into(),
                reference: vec!["5".into(), "true".into()],
                seed: 7,
            }
        );
        let r =
            parse_request(r#"{"verb":"batch","per_class":2,"classes":["alloc","panic"]}"#).unwrap();
        assert_eq!(
            r,
            Request::Batch {
                seed: DEFAULT_SEED,
                per_class: 2,
                classes: Some(vec![UbClass::Alloc, UbClass::Panic]),
            }
        );
        assert_eq!(
            parse_request(r#"{"verb":"analyze","source":"fn main() {}"}"#).unwrap(),
            Request::Analyze {
                source: "fn main() {}".into(),
            }
        );
        assert_eq!(
            parse_request(r#"{"verb":"stats"}"#).unwrap(),
            Request::Stats
        );
        assert_eq!(
            parse_request(r#"{"verb":"metrics"}"#).unwrap(),
            Request::Metrics
        );
        assert_eq!(
            parse_request(r#"{"verb":"compact"}"#).unwrap(),
            Request::Compact
        );
        assert_eq!(
            parse_request(r#"{"verb":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn defaults_match_the_cli() {
        let r = parse_request(r#"{"verb":"batch"}"#).unwrap();
        assert_eq!(
            r,
            Request::Batch {
                seed: 42,
                per_class: 3,
                classes: None,
            }
        );
        let r = parse_request(r#"{"verb":"repair","source":"fn main() {}"}"#).unwrap();
        let Request::Repair {
            reference, seed, ..
        } = r
        else {
            panic!("wrong verb");
        };
        assert!(reference.is_empty());
        assert_eq!(seed, 42);
    }

    #[test]
    fn every_class_label_round_trips() {
        for class in UbClass::ALL.into_iter().chain([UbClass::Compile]) {
            assert_eq!(class_from_label(class.label()), Some(class), "{class:?}");
        }
        assert_eq!(class_from_label("frobnicate"), None);
    }

    #[test]
    fn bad_requests_are_typed_errors() {
        for bad in [
            "not json",
            r#"{"noverb":1}"#,
            r#"{"verb":"frobnicate"}"#,
            r#"{"verb":"repair"}"#,
            r#"{"verb":"repair","source":5}"#,
            r#"{"verb":"repair","source":"x","reference":"not-an-array"}"#,
            r#"{"verb":"analyze"}"#,
            r#"{"verb":"analyze","source":7}"#,
            r#"{"verb":"batch","per_class":0}"#,
            r#"{"verb":"batch","per_class":-3}"#,
            r#"{"verb":"batch","classes":[]}"#,
            r#"{"verb":"batch","classes":["nope"]}"#,
            r#"{"verb":"batch","seed":1.5}"#,
        ] {
            assert!(parse_request(bad).is_err(), "accepted {bad}");
        }
        // And the error response shape is itself valid JSON.
        let line = error_response("bad \"thing\"");
        let v = crate::json::parse(&line).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(
            v.get("error").and_then(Value::as_str),
            Some("bad \"thing\"")
        );
    }

    #[test]
    fn duplicate_classes_dedup() {
        let r = parse_request(r#"{"verb":"batch","classes":["alloc","alloc"]}"#).unwrap();
        let Request::Batch { classes, .. } = r else {
            panic!("wrong verb");
        };
        assert_eq!(classes, Some(vec![UbClass::Alloc]));
    }
}
