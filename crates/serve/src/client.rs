//! A small blocking client for the daemon protocol: send one request
//! line, read one response line.
//!
//! This is what the CLI's `rustbrain client` subcommand and the CI
//! smoke harness drive; tests use it to talk to an in-process server.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;

use rb_miri::UbClass;

use crate::json::fmt_str;

/// One open connection to a daemon. Requests pipeline naturally: each
/// [`Client::call`] writes a line and reads exactly one response line.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a daemon at `addr` (e.g. `127.0.0.1:4650`).
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Sends one request line and returns the response line (without
    /// its trailing newline). A closed connection is an error.
    pub fn call(&mut self, request: &str) -> io::Result<String> {
        self.writer.write_all(request.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut line = String::new();
        let read = self.reader.read_line(&mut line)?;
        if read == 0 {
            return Err(io::Error::other("daemon closed the connection"));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }
}

/// Builds a `repair` request line.
#[must_use]
pub fn repair_request(source: &str, reference: &[String], seed: u64) -> String {
    let refs: Vec<String> = reference.iter().map(|r| fmt_str(r)).collect();
    format!(
        "{{\"verb\":\"repair\",\"source\":{},\"reference\":[{}],\"seed\":{}}}",
        fmt_str(source),
        refs.join(","),
        seed
    )
}

/// Builds a `batch` request line (`classes: None` sweeps the full
/// corpus, like the CLI).
#[must_use]
pub fn batch_request(seed: u64, per_class: usize, classes: Option<&[UbClass]>) -> String {
    match classes {
        None => format!("{{\"verb\":\"batch\",\"seed\":{seed},\"per_class\":{per_class}}}"),
        Some(classes) => {
            let labels: Vec<String> = classes.iter().map(|c| fmt_str(c.label())).collect();
            format!(
                "{{\"verb\":\"batch\",\"seed\":{},\"per_class\":{},\"classes\":[{}]}}",
                seed,
                per_class,
                labels.join(",")
            )
        }
    }
}

/// Builds an `analyze` request line (static lint, no oracle).
#[must_use]
pub fn analyze_request(source: &str) -> String {
    format!("{{\"verb\":\"analyze\",\"source\":{}}}", fmt_str(source))
}

/// Builds a `stats` request line.
#[must_use]
pub fn stats_request() -> String {
    "{\"verb\":\"stats\"}".to_owned()
}

/// Builds a `metrics` request line.
#[must_use]
pub fn metrics_request() -> String {
    "{\"verb\":\"metrics\"}".to_owned()
}

/// Builds a `compact` request line.
#[must_use]
pub fn compact_request() -> String {
    "{\"verb\":\"compact\"}".to_owned()
}

/// Builds a `shutdown` request line.
#[must_use]
pub fn shutdown_request() -> String {
    "{\"verb\":\"shutdown\"}".to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{parse_request, Request};

    #[test]
    fn built_requests_parse_back() {
        let line = repair_request("fn main() { let x = 1; }", &["1".to_owned()], 7);
        assert_eq!(
            parse_request(&line).unwrap(),
            Request::Repair {
                source: "fn main() { let x = 1; }".into(),
                reference: vec!["1".into()],
                seed: 7,
            }
        );
        let line = batch_request(42, 2, Some(&[UbClass::Alloc, UbClass::Panic]));
        assert_eq!(
            parse_request(&line).unwrap(),
            Request::Batch {
                seed: 42,
                per_class: 2,
                classes: Some(vec![UbClass::Alloc, UbClass::Panic]),
            }
        );
        assert_eq!(parse_request(&batch_request(1, 3, None)).unwrap(), {
            Request::Batch {
                seed: 1,
                per_class: 3,
                classes: None,
            }
        });
        assert_eq!(
            parse_request(&analyze_request("fn main() {}")).unwrap(),
            Request::Analyze {
                source: "fn main() {}".into(),
            }
        );
        assert_eq!(parse_request(&stats_request()).unwrap(), Request::Stats);
        assert_eq!(parse_request(&metrics_request()).unwrap(), Request::Metrics);
        assert_eq!(parse_request(&compact_request()).unwrap(), Request::Compact);
        assert_eq!(
            parse_request(&shutdown_request()).unwrap(),
            Request::Shutdown
        );
    }
}
