//! `rb_serve`: the resident RustBrain repair daemon (PR 6).
//!
//! The one-shot CLI pays the full startup bill — engine construction,
//! knowledge-store load, oracle cache from cold — on every invocation.
//! This crate keeps that state resident: a [`server::Server`] accepts
//! line-delimited JSON requests over TCP and serves them from one
//! process-wide engine (shared verdict cache) and one lazily-loaded
//! knowledge base, so the Nth request costs what the Nth request needs
//! and nothing more.
//!
//! The pieces:
//!
//! - [`json`] — a dependency-free JSON parser/emitter for the wire
//!   protocol (the vendored serde is a build-marker stub).
//! - [`protocol`] — the six verbs (`repair`, `batch`, `stats`,
//!   `metrics`, `compact`, `shutdown`) and their request shapes.
//! - [`server`] — the daemon: accept loop, handler pool, lazy shard
//!   faulting, threshold-triggered compaction, optional request tracing.
//! - [`stats`] — [`stats::ServeStats`] telemetry, registry-backed
//!   counters, and the latency ring.
//! - [`client`] — a blocking line client for scripts, the CLI and CI.
//!
//! Determinism carries over from the engine: a `batch` request's
//! embedded `results_json` is byte-identical to what `rustbrain batch`
//! writes for the same seed, corpus and starting knowledge — the CI
//! smoke job diffs exactly that.

pub mod client;
pub mod json;
pub mod protocol;
pub mod server;
pub mod stats;

pub use client::Client;
pub use protocol::{parse_request, Request};
pub use server::{seed_store, ServeConfig, Server};
pub use stats::{ServeStats, StatsRecorder, Verb};
