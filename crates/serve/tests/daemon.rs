//! End-to-end daemon test: a real TCP server on an ephemeral port,
//! driven through all six protocol verbs.
//!
//! The load-bearing pin: the daemon opens its knowledge store *lazily*,
//! so two sequential `repair` requests for the same UB class read that
//! class's segment file exactly once, and a `batch` over another class
//! faults in exactly one more shard. The test also checks the
//! determinism contract the CI smoke job relies on — a socket `batch`'s
//! embedded results document is byte-identical to an eager in-process
//! run over the same store.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

use rb_engine::{results_to_json, Engine, SystemSpec};
use rb_llm::ModelId;
use rb_miri::UbClass;
use rb_serve::client::{
    batch_request, compact_request, metrics_request, repair_request, shutdown_request,
    stats_request,
};
use rb_serve::json::{parse, Value};
use rb_serve::server::{corpus_requests, seed_store};
use rb_serve::{Client, ServeConfig, Server};
use rustbrain::{KnowledgeBase, RustBrainConfig};

fn scratch(name: &str) -> PathBuf {
    static UNIQUE: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "rb_serve_daemon_{}_{}",
        std::process::id(),
        UNIQUE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Copies a sharded store directory (flat files only — segments plus
/// manifest), so two daemons never share one on-disk generation.
fn copy_store(src: &std::path::Path, dst: &std::path::Path) {
    std::fs::create_dir_all(dst).unwrap();
    for file in std::fs::read_dir(src).unwrap() {
        let file = file.unwrap();
        std::fs::copy(file.path(), dst.join(file.file_name())).unwrap();
    }
}

fn kb_gauge(response: &str, field: &str) -> u64 {
    let v = parse(response).unwrap();
    assert_eq!(
        v.get("ok").and_then(Value::as_bool),
        Some(true),
        "{response}"
    );
    v.get("serve")
        .and_then(|s| s.get("kb"))
        .and_then(|kb| kb.get(field))
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("no kb.{field} in {response}"))
}

const SEED: u64 = 11;
const PER_CLASS: usize = 2;
const CLASSES: [UbClass; 2] = [UbClass::Panic, UbClass::Alloc];

#[test]
fn daemon_faults_in_only_the_shards_traffic_touches() {
    let store = scratch("kb.rbkb.d");
    let seeded = seed_store(&store, SEED, PER_CLASS, &CLASSES).unwrap();
    assert!(seeded > 0, "seeding produced no knowledge");
    // The pin below needs both classes to have learned shards.
    let manifest_classes: Vec<UbClass> = rb_kb::ShardedStore::open(&store)
        .unwrap()
        .manifest()
        .shards
        .iter()
        .map(|m| m.class)
        .collect();
    for class in CLASSES {
        assert!(
            manifest_classes.contains(&class),
            "store has no {class:?} shard: {manifest_classes:?}"
        );
    }

    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        jobs: 2,
        handlers: 2,
        kb_path: Some(store.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    let daemon = std::thread::spawn(move || server.run());
    let mut client = Client::connect(&addr).unwrap();

    // Fresh daemon: the store is attached but nothing is resident.
    let response = client.call(&stats_request()).unwrap();
    assert_eq!(kb_gauge(&response, "resident_shards"), 0);
    assert_eq!(kb_gauge(&response, "shard_loads"), 0);
    assert_eq!(kb_gauge(&response, "entries"), 0);

    // Two sequential repairs of the same class: the class's segment is
    // read exactly once — the second request hits the resident shard.
    let requests = corpus_requests(SEED, PER_CLASS, UbClass::Panic);
    assert_eq!(requests.len(), PER_CLASS);
    for (source, reference) in &requests {
        let response = client.call(&repair_request(source, reference, 42)).unwrap();
        let v = parse(&response).unwrap();
        assert_eq!(
            v.get("ok").and_then(Value::as_bool),
            Some(true),
            "{response}"
        );
    }
    let response = client.call(&stats_request()).unwrap();
    assert_eq!(
        kb_gauge(&response, "resident_shards"),
        1,
        "panic repairs must fault in exactly the panic shard"
    );
    assert_eq!(
        kb_gauge(&response, "shard_loads"),
        1,
        "the second same-class repair must not re-read the segment"
    );

    // A batch over the other class faults in exactly one more shard.
    let response = client
        .call(&batch_request(SEED, PER_CLASS, Some(&[UbClass::Alloc])))
        .unwrap();
    let v = parse(&response).unwrap();
    assert_eq!(
        v.get("ok").and_then(Value::as_bool),
        Some(true),
        "{response}"
    );
    assert_eq!(
        v.get("cases").and_then(Value::as_u64),
        Some(PER_CLASS as u64)
    );
    let response = client.call(&stats_request()).unwrap();
    assert_eq!(kb_gauge(&response, "resident_shards"), 2);
    assert_eq!(kb_gauge(&response, "shard_loads"), 2);

    // After a batch the stats snapshot carries the scheduler gauges: the
    // configured policy (the default, work-stealing) plus the lifetime
    // steal counter and last-batch queue depth the engine reported.
    let v = parse(&response).unwrap();
    let scheduler = v
        .get("serve")
        .and_then(|s| s.get("scheduler"))
        .unwrap_or_else(|| panic!("no serve.scheduler in {response}"));
    assert_eq!(
        scheduler.get("policy").and_then(Value::as_str),
        Some("stealing"),
        "{response}"
    );
    assert!(
        scheduler.get("steals").and_then(Value::as_u64).is_some(),
        "{response}"
    );
    assert!(
        scheduler
            .get("queue_depth")
            .and_then(Value::as_u64)
            .is_some(),
        "{response}"
    );

    // The metrics verb answers with a Prometheus-style exposition that
    // carries a repair-latency histogram for every class this daemon's
    // traffic touched, plus the daemon's own request counters.
    let response = client.call(&metrics_request()).unwrap();
    let v = parse(&response).unwrap();
    assert_eq!(
        v.get("ok").and_then(Value::as_bool),
        Some(true),
        "{response}"
    );
    let exposition = v
        .get("exposition")
        .and_then(Value::as_str)
        .expect("metrics response carries exposition text");
    for class in CLASSES {
        let series = format!(
            "rustbrain_repair_latency_sim_ms_count{{class=\"{}\"}}",
            class.label()
        );
        assert!(
            exposition.contains(&series),
            "no {series} in exposition:\n{exposition}"
        );
    }
    assert!(
        exposition.contains("rustbrain_serve_requests_total{verb=\"repair\"} 2"),
        "{exposition}"
    );
    // The scheduler series exist even when the tiny batch stole nothing:
    // recording a zero-delta still registers the counter, and the depth
    // gauge is set on every batch.
    assert!(
        exposition.contains("rustbrain_serve_sched_steals_total"),
        "{exposition}"
    );
    assert!(
        exposition.contains("rustbrain_serve_sched_queue_depth"),
        "{exposition}"
    );
    assert!(
        v.get("serve").and_then(|s| s.get("counters")).is_some(),
        "metrics response carries the serve registry as JSON: {response}"
    );

    // An explicit compact faults everything in and persists.
    let response = client.call(&compact_request()).unwrap();
    let v = parse(&response).unwrap();
    assert_eq!(
        v.get("ok").and_then(Value::as_bool),
        Some(true),
        "{response}"
    );
    assert_eq!(v.get("triggered").and_then(Value::as_bool), Some(false));

    // Protocol errors are answered, not dropped, and the connection
    // stays usable.
    let response = client.call("this is not json").unwrap();
    let v = parse(&response).unwrap();
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
    let response = client.call("{\"verb\":\"frobnicate\"}").unwrap();
    assert!(response.contains("unknown verb"), "{response}");

    // Shutdown dumps final stats and run() returns them too.
    let response = client.call(&shutdown_request()).unwrap();
    let v = parse(&response).unwrap();
    assert_eq!(
        v.get("ok").and_then(Value::as_bool),
        Some(true),
        "{response}"
    );
    let finals = daemon.join().unwrap();
    assert_eq!(finals.repairs, PER_CLASS as u64);
    assert_eq!(finals.batches, 1);
    assert_eq!(finals.errors, 2);
    assert_eq!(finals.compactions, 1);
    assert!(finals.requests >= 9);
    // The saved store survives a re-open (the compact rewrote it, the
    // shutdown saved the fully resident base).
    assert!(rb_kb::ShardedStore::open(&store).is_ok());
}

#[test]
fn socket_batch_results_match_an_eager_in_process_run() {
    let store = scratch("kb.rbkb.d");
    seed_store(&store, SEED, PER_CLASS, &CLASSES).unwrap();
    let copy = scratch("kb_copy.rbkb.d");
    copy_store(&store, &copy);

    // The daemon side: one batch over every store class, through the
    // socket, with a tiny size threshold so the triggered-compaction
    // path runs too.
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        jobs: 2,
        handlers: 1,
        kb_path: Some(copy),
        compact_entries: 1,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    let daemon = std::thread::spawn(move || server.run());
    let mut client = Client::connect(&addr).unwrap();
    let response = client
        .call(&batch_request(SEED, PER_CLASS, Some(&CLASSES)))
        .unwrap();
    let v = parse(&response).unwrap();
    assert_eq!(
        v.get("ok").and_then(Value::as_bool),
        Some(true),
        "{response}"
    );
    let socket_results = v
        .get("results_json")
        .and_then(Value::as_str)
        .expect("batch response carries results_json")
        .to_owned();
    client.call(&shutdown_request()).unwrap();
    let finals = daemon.join().unwrap();
    assert!(
        finals.triggered_compactions >= 1,
        "compact_entries=1 must trip the size trigger"
    );

    // The eager side: same corpus, same seed, same starting knowledge,
    // loaded whole — the one-shot CLI path.
    let corpus = rb_dataset::Corpus::generate(SEED, PER_CLASS, &CLASSES);
    let mut config = RustBrainConfig::for_model(ModelId::Gpt4, SEED);
    config.temperature = 0.5;
    config.use_knowledge = true;
    let eager = KnowledgeBase::load(&store).unwrap();
    let outcome =
        Engine::new(2).run_batch_learned(&SystemSpec::brain(config), &corpus.cases, SEED, &eager);
    assert_eq!(
        socket_results,
        results_to_json(&outcome.results),
        "socket batch must be byte-identical to the eager engine run"
    );
}

#[test]
fn traced_daemon_reports_span_counts_through_stats() {
    let trace_path = scratch("serve_trace.jsonl");
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        jobs: 2,
        handlers: 1,
        trace_out: Some(trace_path.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    let daemon = std::thread::spawn(move || server.run());
    let mut client = Client::connect(&addr).unwrap();

    let trace_gauge = |response: &str, field: &str| -> Value {
        parse(response)
            .unwrap()
            .get("serve")
            .and_then(|s| s.get("trace"))
            .and_then(|t| t.get(field))
            .cloned()
            .unwrap_or_else(|| panic!("no serve.trace.{field} in {response}"))
    };

    // Before any traffic: the tracer is resident but idle.
    let response = client.call(&stats_request()).unwrap();
    assert_eq!(trace_gauge(&response, "active").as_bool(), Some(true));
    assert_eq!(trace_gauge(&response, "spans").as_u64(), Some(0));

    // A batch emits spans; the next stats snapshot counts them.
    let response = client
        .call(&batch_request(SEED, PER_CLASS, Some(&[UbClass::Panic])))
        .unwrap();
    assert!(response.contains("\"ok\":true"), "{response}");
    let response = client.call(&stats_request()).unwrap();
    let spans = trace_gauge(&response, "spans")
        .as_u64()
        .expect("span count must be numeric");
    assert!(spans > 0, "a traced batch must raise the span count");

    client.call(&shutdown_request()).unwrap();
    daemon.join().unwrap();
    // The counted spans are the ones on disk.
    let on_disk = std::fs::read_to_string(&trace_path)
        .unwrap()
        .lines()
        .count() as u64;
    assert!(
        on_disk >= spans,
        "stats reported {spans} spans but the file holds {on_disk}"
    );
}
