//! End-to-end checks of the PR 7 observability layer against a real
//! batch run: every trace line is valid JSON, span nesting reconstructs,
//! repair spans account for (essentially all of) each case's simulated
//! overhead, and — the cardinal rule — attaching a tracer changes no
//! result byte.
//!
//! The test lives in `rb_serve` (rather than `rb_engine`) because this
//! crate has both the engine and a real JSON parser to validate the
//! trace with.

use rb_dataset::Corpus;
use rb_engine::{results_to_json, Engine, SystemSpec};
use rb_llm::ModelId;
use rb_miri::UbClass;
use rb_serve::json::{parse, Value};
use rustbrain::RustBrainConfig;
use std::collections::HashMap;

fn spec() -> SystemSpec {
    let mut config = RustBrainConfig::for_model(ModelId::Gpt4, 42);
    config.use_knowledge = true;
    SystemSpec::brain(config)
}

/// One decoded trace line.
struct SpanRec {
    id: u64,
    parent: Option<u64>,
    name: String,
    sim_ms: f64,
}

fn decode(lines: &[String]) -> Vec<SpanRec> {
    lines
        .iter()
        .map(|line| {
            let v = parse(line).unwrap_or_else(|e| panic!("unparseable trace line ({e}): {line}"));
            SpanRec {
                id: v.get("id").and_then(Value::as_u64).expect("span id"),
                parent: v.get("parent").and_then(Value::as_u64),
                name: v
                    .get("name")
                    .and_then(Value::as_str)
                    .expect("span name")
                    .to_owned(),
                sim_ms: v
                    .get("sim_ms")
                    .and_then(Value::as_f64)
                    .expect("span sim_ms"),
            }
        })
        .collect()
}

#[test]
fn traced_batch_is_parseable_nested_and_byte_identical() {
    let corpus = Corpus::generate(7, 2, &[UbClass::Alloc, UbClass::Panic, UbClass::Uninit]);

    // Two engines with private caches: the only difference is the tracer.
    let plain = Engine::new(2).run_batch(&spec(), &corpus.cases, 7);
    let tracer = rb_obs::Tracer::in_memory();
    let traced = Engine::new(2)
        .with_tracer(tracer.clone())
        .run_batch(&spec(), &corpus.cases, 7);

    // Observe, never perturb: identical result bytes with tracing on.
    assert_eq!(
        results_to_json(&plain.results),
        results_to_json(&traced.results),
        "tracing must not change the deterministic results document"
    );

    let spans = decode(&tracer.lines());
    assert!(!spans.is_empty(), "a traced batch must emit spans");

    // Nesting reconstructs: every parent id is a real span id, and the
    // expected span kinds all show up.
    let by_id: HashMap<u64, &SpanRec> = spans.iter().map(|s| (s.id, s)).collect();
    assert_eq!(by_id.len(), spans.len(), "span ids must be unique");
    for span in &spans {
        if let Some(parent) = span.parent {
            assert!(by_id.contains_key(&parent), "dangling parent {parent}");
        }
    }
    for name in ["engine.job", "repair", "fast", "oracle.judge"] {
        assert!(
            spans.iter().any(|s| s.name == name),
            "expected at least one `{name}` span"
        );
    }

    // Every repair span's direct children must account for >= 95% of the
    // case's simulated overhead (they sum to it exactly by construction:
    // spans open at the cost model's charge sites).
    let mut child_sim: HashMap<u64, f64> = HashMap::new();
    for span in &spans {
        if let Some(parent) = span.parent {
            *child_sim.entry(parent).or_insert(0.0) += span.sim_ms;
        }
    }
    let mut checked = 0usize;
    for span in spans.iter().filter(|s| s.name == "repair") {
        let children = child_sim.get(&span.id).copied().unwrap_or(0.0);
        assert!(
            children >= 0.95 * span.sim_ms - 1e-6,
            "repair span {} covers only {children:.4} of {:.4} sim ms",
            span.id,
            span.sim_ms
        );
        checked += 1;
    }
    assert_eq!(
        checked,
        corpus.cases.len(),
        "one repair span per corpus case"
    );

    // The batch's per-class latency histograms landed in the global
    // registry for every class the corpus touched.
    let metrics = rb_obs::metrics();
    for class in [UbClass::Alloc, UbClass::Panic, UbClass::Uninit] {
        let hist = metrics.histogram(
            "rustbrain_repair_latency_sim_ms",
            Some(("class", class.label())),
        );
        assert!(
            hist.is_some_and(|h| h.count > 0),
            "missing repair-latency histogram for {}",
            class.label()
        );
    }
}

#[test]
fn untraced_runs_emit_nothing() {
    let corpus = Corpus::generate(3, 1, &[UbClass::Alloc]);
    let tracer = rb_obs::Tracer::in_memory();
    // The tracer exists but is never attached: spans stay inert.
    let _ = Engine::new(1).run_batch(&spec(), &corpus.cases, 3);
    assert!(tracer.lines().is_empty());
}
