//! `rb_lint` — static undefined-behaviour analysis over the `rb_lang` AST.
//!
//! Every verdict in the rest of the stack is *dynamic*: `rb_miri` interprets
//! the program and the pipeline pays simulated oracle latency for it, even
//! when the defect is decidable from the source alone. This crate is the
//! static layer in front of that oracle. It combines two cooperating passes:
//!
//! 1. **Walker rules** ([`rules::RULES`]): a data-driven table of
//!    syntactic/dataflow lints in the rustor style — each rule is a
//!    `match`-function over [`rb_lang::visit`] traversals, registered as
//!    data, producing [`Confidence::Heuristic`] findings. They cost one AST
//!    walk and survive on programs the flow pass cannot fully analyse.
//! 2. **Flow pass** ([`flow`]): a constant-propagation dataflow analysis
//!    that drives `rb_miri`'s *public* memory/value/borrow/race models over
//!    the AST. The corpus language has no inputs, so on the fragment the
//!    pass models completely its facts are exact: findings it emits are
//!    [`Confidence::Sound`] (the defect definitely occurs), and when the
//!    pass reports [`Analysis::complete`] the sound findings are the *whole*
//!    error multiset the oracle would report. Anything nondeterministic
//!    (thread-frame address layout) or over budget degrades confidence
//!    instead of guessing.
//!
//! The stack consumes the result at three seams: fast-thinking *triage*
//! (class prediction sharpening), pipeline *preflight* (rejecting doomed
//! repair candidates without an oracle call), and the `rb_llm` *rule audit*
//! ([`rulecheck`]).

pub mod flow;
pub mod json;
pub mod rulecheck;
pub mod rules;

use rb_lang::check::check_program;
use rb_lang::{Program, StmtPath};
use rb_miri::{MiriReport, UbClass, UbKind};
use std::collections::BTreeMap;

/// How much trust a finding deserves.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Confidence {
    /// Best-effort syntactic match; may be a false positive.
    Heuristic,
    /// Proven by the flow pass: the defect occurs on every execution.
    Sound,
}

impl Confidence {
    /// Stable lower-case label (JSON and text output).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Confidence::Heuristic => "heuristic",
            Confidence::Sound => "sound",
        }
    }
}

/// One static finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Coarse UB class (the paper's buckets).
    pub class: UbClass,
    /// Precise failure kind.
    pub kind: UbKind,
    /// Statement the finding anchors to, when known.
    pub path: Option<StmtPath>,
    /// Trust level.
    pub confidence: Confidence,
    /// Id of the lint rule that produced (or explains) the finding.
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

/// Result of analysing one program.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Analysis {
    /// Findings, sound ones first, in discovery order.
    pub findings: Vec<Finding>,
    /// When `true`, the sound findings are exactly the error multiset the
    /// miri oracle would report for this program (same classes, same
    /// counts). When `false` the analysis bailed somewhere and the list is
    /// a best-effort subset plus heuristics.
    pub complete: bool,
}

impl Analysis {
    /// The highest-confidence first finding, if any.
    #[must_use]
    pub fn top(&self) -> Option<&Finding> {
        self.findings
            .iter()
            .find(|f| f.confidence == Confidence::Sound)
            .or_else(|| self.findings.first())
    }

    /// Multiset of classes over sound findings only.
    #[must_use]
    pub fn sound_class_counts(&self) -> BTreeMap<UbClass, usize> {
        let mut out = BTreeMap::new();
        for f in &self.findings {
            if f.confidence == Confidence::Sound {
                *out.entry(f.class).or_insert(0) += 1;
            }
        }
        out
    }

    /// The exact class multiset the oracle would report, when the analysis
    /// proved it (complete flow pass); `None` otherwise.
    #[must_use]
    pub fn exact_classes(&self) -> Option<BTreeMap<UbClass, usize>> {
        if self.complete {
            Some(self.sound_class_counts())
        } else {
            None
        }
    }

    /// Number of sound findings.
    #[must_use]
    pub fn sound_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.confidence == Confidence::Sound)
            .count()
    }

    /// Whether a complete analysis proved the program free of defects.
    #[must_use]
    pub fn proves_clean(&self) -> bool {
        self.complete && self.findings.is_empty()
    }

    /// Whether the analysis agrees with an oracle report: the top sound
    /// finding's class appears in the report (used by the triage seam).
    #[must_use]
    pub fn agrees_with(&self, report: &MiriReport) -> bool {
        match self.top() {
            Some(f) if f.confidence == Confidence::Sound => {
                report.errors.iter().any(|e| e.class() == f.class)
            }
            _ => false,
        }
    }
}

/// Analyses a program: static checker first (ill-formed programs mirror the
/// oracle's compile-stage rejection), then the flow pass, then walker rules
/// to cover whatever the flow pass could not complete.
#[must_use]
pub fn analyze(prog: &Program) -> Analysis {
    // The oracle gates execution on the static checker; mirror that here so
    // ill-formed programs (e.g. broken repair candidates) get an exact
    // Compile-class analysis. The oracle caps diagnostics at its error cap.
    let errs = check_program(prog);
    if !errs.is_empty() {
        let findings = errs
            .into_iter()
            .take(flow::ERROR_CAP)
            .map(|e| Finding {
                class: UbClass::Compile,
                kind: UbKind::IllFormed,
                path: e.path.clone(),
                confidence: Confidence::Sound,
                rule: "ill-formed",
                message: e.to_string(),
            })
            .collect();
        return Analysis {
            findings,
            complete: true,
        };
    }
    let (mut findings, complete) = flow::run(prog);
    if !complete {
        // Degraded mode: add heuristic walker findings the flow pass did
        // not already prove, dropping (class, path) duplicates.
        for w in rules::walk(prog) {
            let dup = findings
                .iter()
                .any(|f| f.class == w.class && f.path == w.path);
            if !dup {
                findings.push(w);
            }
        }
    }
    Analysis { findings, complete }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_lang::parser::parse_program;

    #[test]
    fn clean_program_proves_clean() {
        let p = parse_program("fn main() { print(1i32 + 2i32); }").unwrap();
        let a = analyze(&p);
        assert!(a.proves_clean(), "{:?}", a.findings);
    }

    #[test]
    fn ill_formed_is_compile_class() {
        let p = parse_program("fn main() { x = 1i32; }").unwrap();
        let a = analyze(&p);
        assert!(a.complete);
        assert_eq!(a.top().unwrap().class, UbClass::Compile);
    }

    #[test]
    fn div_by_zero_found_sound() {
        let p = parse_program("fn main() { let a: i32 = 4i32; print(a / 0i32); }").unwrap();
        let a = analyze(&p);
        assert!(a.complete);
        let top = a.top().unwrap();
        assert_eq!(top.class, UbClass::Panic);
        assert_eq!(top.confidence, Confidence::Sound);
    }

    #[test]
    fn top_prefers_sound() {
        let a = Analysis {
            findings: vec![
                Finding {
                    class: UbClass::Panic,
                    kind: UbKind::PanicDivZero,
                    path: None,
                    confidence: Confidence::Heuristic,
                    rule: "div-by-zero",
                    message: String::new(),
                },
                Finding {
                    class: UbClass::Uninit,
                    kind: UbKind::UninitRead,
                    path: None,
                    confidence: Confidence::Sound,
                    rule: "uninit-read",
                    message: String::new(),
                },
            ],
            complete: false,
        };
        assert_eq!(a.top().unwrap().class, UbClass::Uninit);
    }
}
