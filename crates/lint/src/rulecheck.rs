//! Static validation of the `rb_llm` repair-rule library.
//!
//! For each repair rule, apply its edit to every supplied program whose
//! diagnosed defect the rule claims to address, then re-analyse the edited
//! program. A rule whose edits *consistently* leave the same lint firing is
//! ineffective against the defect class it advertises — groundwork for the
//! ROADMAP's rule miner, which needs exactly this signal to prune a learned
//! rule set. The audit is purely static: no oracle runs.

use crate::{analyze, json::escape, Confidence};
use rb_lang::Program;
use rb_llm::rules::RepairRule;
use rb_miri::{MiriError, UbClass};

/// Audit result for one repair rule.
#[derive(Clone, Debug)]
pub struct RuleAudit {
    /// The rule's stable name.
    pub rule: &'static str,
    /// Programs whose top finding the rule claimed to address.
    pub cases_tried: usize,
    /// Edits the rule actually produced on those programs.
    pub edits_produced: usize,
    /// Edits after which the *same class* of lint still fires.
    pub still_trips: usize,
    /// Labels of the cases where the edit still trips the lint.
    pub tripped_cases: Vec<String>,
}

impl RuleAudit {
    /// A rule is flagged when it produced edits and every one of them left
    /// the lint it targets still firing.
    #[must_use]
    pub fn flagged(&self) -> bool {
        self.edits_produced > 0 && self.still_trips == self.edits_produced
    }

    /// JSON object for reports.
    #[must_use]
    pub fn to_json(&self) -> String {
        let cases: Vec<String> = self
            .tripped_cases
            .iter()
            .map(|c| format!("\"{}\"", escape(c)))
            .collect();
        format!(
            "{{\"rule\":\"{}\",\"cases_tried\":{},\"edits_produced\":{},\"still_trips\":{},\
             \"flagged\":{},\"tripped_cases\":[{}]}}",
            escape(self.rule),
            self.cases_tried,
            self.edits_produced,
            self.still_trips,
            self.flagged(),
            cases.join(",")
        )
    }
}

/// Whether an analysis of an edited program still shows the defect class.
/// On a complete analysis only sound findings count (the edit provably
/// failed); on an incomplete one any finding of the class counts.
fn still_trips(prog: &Program, class: UbClass) -> bool {
    let a = analyze(prog);
    a.findings
        .iter()
        .any(|f| f.class == class && (!a.complete || f.confidence == Confidence::Sound))
}

/// Runs every library repair rule against every applicable program.
///
/// `cases` pairs a label (template or case id) with a buggy program. The
/// defect each rule is tested against is the program's own top static
/// finding, converted to the `MiriError` shape rules consume.
#[must_use]
pub fn audit_rules(cases: &[(String, Program)]) -> Vec<RuleAudit> {
    let analysed: Vec<(&String, &Program, MiriError)> = cases
        .iter()
        .filter_map(|(label, prog)| {
            let a = analyze(prog);
            let top = a.top()?;
            let err = MiriError {
                kind: top.kind,
                message: top.message.clone(),
                path: top.path.clone(),
                thread: 0,
            };
            Some((label, prog, err))
        })
        .collect();
    RepairRule::ALL
        .iter()
        .map(|rule| {
            let mut audit = RuleAudit {
                rule: rule.name(),
                cases_tried: 0,
                edits_produced: 0,
                still_trips: 0,
                tripped_cases: Vec::new(),
            };
            for (label, prog, err) in &analysed {
                if !rule.addresses(err.kind) {
                    continue;
                }
                audit.cases_tried += 1;
                let Some(edited) = rule.apply(prog, err) else {
                    continue;
                };
                audit.edits_produced += 1;
                if still_trips(&edited, err.kind.class()) {
                    audit.still_trips += 1;
                    audit.tripped_cases.push((*label).clone());
                }
            }
            audit
        })
        .collect()
}

/// Renders a full audit as a JSON array.
#[must_use]
pub fn audits_json(audits: &[RuleAudit]) -> String {
    let rows: Vec<String> = audits.iter().map(RuleAudit::to_json).collect();
    format!("[{}]", rows.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audit_on_empty_cases_is_all_zero() {
        let audits = audit_rules(&[]);
        assert_eq!(audits.len(), RepairRule::ALL.len());
        assert!(audits.iter().all(|a| a.cases_tried == 0 && !a.flagged()));
    }
}
