//! Hand-rolled JSON rendering for analyses (matching the stack's
//! no-serde-json convention).

use crate::{Analysis, Finding};

/// Escapes a string for embedding in a JSON string literal.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One finding as a JSON object.
#[must_use]
pub fn finding_json(f: &Finding) -> String {
    format!(
        "{{\"class\":\"{}\",\"kind\":\"{:?}\",\"confidence\":\"{}\",\"rule\":\"{}\",\
         \"path\":{},\"message\":\"{}\"}}",
        f.class.label(),
        f.kind,
        f.confidence.label(),
        escape(f.rule),
        f.path
            .as_ref()
            .map_or("null".to_owned(), |p| format!("\"{p}\"")),
        escape(&f.message)
    )
}

/// A whole analysis as a JSON object.
#[must_use]
pub fn analysis_json(a: &Analysis) -> String {
    let findings: Vec<String> = a.findings.iter().map(finding_json).collect();
    format!(
        "{{\"complete\":{},\"sound_findings\":{},\"findings\":[{}]}}",
        a.complete,
        a.sound_count(),
        findings.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn empty_analysis_renders() {
        let a = Analysis {
            findings: vec![],
            complete: true,
        };
        assert_eq!(
            analysis_json(&a),
            "{\"complete\":true,\"sound_findings\":0,\"findings\":[]}"
        );
    }
}
