//! The flow pass: constant-propagation dataflow over the AST, driving
//! `rb_miri`'s public memory / value / borrow / race models.
//!
//! The corpus language is closed — no inputs, no real clock, no real
//! scheduler — so a dataflow analysis that propagates concrete constants
//! through the program's places is *exact* wherever it can keep going: a
//! defect it derives is a defect every execution exhibits. The pass walks
//! statements in evaluation order (the same order the oracle's interpreter
//! uses, including its top-level UB recovery, error cap and step budget, so
//! that finding *counts* line up with the oracle's error counts), checking
//! each memory effect against [`rb_miri::memory::Memory`] and each value
//! round-trip against [`rb_miri::value`] codecs.
//!
//! **Soundness discipline.** Everything is deterministic except one corner:
//! the oracle snapshots spawn environments from a hash map, so the *address
//! layout* of thread-frame locals (and every allocation made after them) is
//! not reproducible. The pass keeps a per-allocation `deterministic-base`
//! bit; the moment a non-reproducible address could be *observed*
//! numerically (pointer→int cast, `ptr_addr`, pointer comparison, an
//! alignment check stricter than the allocation's own alignment, pointer
//! arithmetic escaping its allocation after layout drift), the pass drops
//! to heuristic mode: later findings are [`Confidence::Heuristic`] and the
//! analysis reports incomplete. Sound findings emitted *before* that point
//! remain proven.

use crate::rules::rule_id_for_kind;
use crate::{Confidence, Finding};
use rb_lang::ast::{BinOp, Block, BuiltinKind, Expr, Lit, Program, Stmt, StmtPath, Ty, UnOp};
use rb_lang::check::{ty_align, ty_size, union_layout};
use rb_miri::borrows::RetagKind;
use rb_miri::memory::{AllocKind, Memory};
use rb_miri::race::{Access, AccessLog};
use rb_miri::value::{from_bytes, to_bytes, value_matches_ty, AllocId, BorTag, Pointer, Value};
use rb_miri::UbKind;
use std::collections::{BTreeSet, HashMap};

/// Diagnostic cap, mirroring the oracle's `MiriConfig::max_errors`.
pub const ERROR_CAP: usize = 8;
/// Step budget, mirroring the oracle's `MiriConfig::step_budget`.
pub const STEP_BUDGET: u64 = 200_000;
/// Call-depth limit, mirroring the oracle's `MiriConfig::max_call_depth`.
pub const MAX_CALL_DEPTH: usize = 64;

/// Runs the flow pass. Returns the findings (in discovery order — the same
/// order the oracle reports errors) and whether the analysis is complete
/// (sound findings == the oracle's exact error multiset).
#[must_use]
pub fn run(prog: &Program) -> (Vec<Finding>, bool) {
    let mut m = FlowMachine::new(prog);
    m.run();
    let complete = m.sound;
    (m.findings, complete)
}

enum Flow {
    Normal,
    Return(Value),
}

enum Exc {
    Ub(UbKind, String),
    Panic(UbKind, String),
    Abort,
    Stop(UbKind, String),
}

type EvalResult = Result<Value, Exc>;
type ExecResult = Result<Flow, Exc>;

#[derive(Clone, Debug)]
struct Local {
    alloc: AllocId,
    tag: BorTag,
    ty: Ty,
}

type Scope = HashMap<String, Local>;

struct Frame {
    scopes: Vec<Scope>,
    fn_idx: usize,
}

#[derive(Clone, Debug)]
struct PlaceRef {
    alloc: AllocId,
    offset: i64,
    tag: BorTag,
    ty: Ty,
}

struct PendingThread {
    env: Vec<(String, Ty, Value)>,
    body: Block,
    spawn_path: StmtPath,
}

struct FlowMachine<'p> {
    prog: &'p Program,
    mem: Memory,
    log: AccessLog,
    findings: Vec<Finding>,
    steps: u64,
    frames: Vec<Frame>,
    statics: HashMap<String, (AllocId, BorTag, Ty)>,
    pending: Vec<PendingThread>,
    locks_held: BTreeSet<u32>,
    thread: usize,
    next_thread: usize,
    main_concurrent: bool,
    current_path: StmtPath,
    /// Per-allocation: is the base address reproducible across oracle runs?
    det_base: Vec<bool>,
    /// Set once thread-frame layout may have drifted; every later
    /// allocation inherits a non-deterministic base.
    base_drift: bool,
    /// Exactness flag: true until a non-reproducible address is observed.
    sound: bool,
}

impl<'p> FlowMachine<'p> {
    fn new(prog: &'p Program) -> FlowMachine<'p> {
        FlowMachine {
            prog,
            mem: Memory::new(),
            log: AccessLog::new(),
            findings: Vec::new(),
            steps: 0,
            frames: Vec::new(),
            statics: HashMap::new(),
            pending: Vec::new(),
            locks_held: BTreeSet::new(),
            thread: 0,
            next_thread: 1,
            main_concurrent: false,
            current_path: StmtPath::default(),
            det_base: Vec::new(),
            base_drift: false,
            sound: true,
        }
    }

    // ---- soundness taint ---------------------------------------------------

    fn alloc_mem(&mut self, kind: AllocKind, size: usize, align: usize) -> (AllocId, BorTag, u64) {
        let out = self.mem.allocate(kind, size, align);
        self.det_base.push(!self.base_drift);
        out
    }

    fn det_of(&self, id: AllocId) -> bool {
        self.det_base.get(id.0 as usize).copied().unwrap_or(true)
    }

    /// A pointer's absolute address is about to be observed numerically.
    fn observe_addr(&mut self, prov: Option<(AllocId, BorTag)>) {
        if !self.base_drift {
            return;
        }
        if let Some((id, _)) = prov {
            if !self.det_of(id) {
                self.sound = false;
            }
        }
    }

    /// A value is about to be serialised where its raw address bytes could
    /// later be reinterpreted as data.
    fn observe_value(&mut self, v: &Value) {
        if !self.base_drift {
            return;
        }
        match v {
            Value::Ptr(p) | Value::Ref(p) | Value::Boxed(p) => self.observe_addr(p.prov),
            Value::Tuple(xs) | Value::Array(xs) => {
                for x in xs {
                    self.observe_value(x);
                }
            }
            _ => {}
        }
    }

    /// An access with `required_align` stricter than the allocation's own
    /// alignment depends on the absolute base address.
    fn observe_align(&mut self, id: AllocId, required_align: usize) {
        if !self.base_drift || required_align <= 1 {
            return;
        }
        if let Some(a) = self.mem.alloc(id) {
            if required_align > a.align && !self.det_of(id) {
                self.sound = false;
            }
        }
    }

    // ---- recording ---------------------------------------------------------

    fn record(&mut self, kind: UbKind, message: String) {
        if self.findings.len() < ERROR_CAP {
            self.findings.push(Finding {
                class: kind.class(),
                kind,
                path: Some(self.current_path.clone()),
                confidence: if self.sound {
                    Confidence::Sound
                } else {
                    Confidence::Heuristic
                },
                rule: rule_id_for_kind(kind),
                message,
            });
        }
    }

    fn run(&mut self) {
        for s in &self.prog.statics {
            let size = ty_size(self.prog, &s.ty).unwrap_or(8);
            let align = ty_align(self.prog, &s.ty).unwrap_or(8);
            let (id, tag, _) = self.alloc_mem(AllocKind::Static, size, align);
            let v = match &s.init {
                Lit::Unit => Value::Unit,
                Lit::Bool(b) => Value::Bool(*b),
                Lit::Int(v, t) => Value::Int(*v, *t),
            };
            if let Ok(bytes) = to_bytes(self.prog, &v, &s.ty) {
                let _ = self.mem.write_bytes(id, tag, 0, &bytes, 1);
            }
            self.statics.insert(s.name.clone(), (id, tag, s.ty.clone()));
        }
        let Some(main_idx) = self.prog.funcs.iter().position(|f| f.name == "main") else {
            self.record(UbKind::IllFormed, "no main function".into());
            return;
        };
        match self.call_function(main_idx, Vec::new()) {
            Ok(_) => {}
            Err(Exc::Ub(k, m) | Exc::Panic(k, m)) => self.record(k, m),
            Err(Exc::Stop(k, m)) => {
                if k != UbKind::IllFormed {
                    self.record(k, m);
                }
                return;
            }
            Err(Exc::Abort) => return,
        }
        if let Err(e) = self.join_all() {
            match e {
                Exc::Ub(k, m) | Exc::Panic(k, m) | Exc::Stop(k, m) => self.record(k, m),
                Exc::Abort => {}
            }
        }
        self.main_concurrent = false;
        let races = self.log.detect_races(&self.mem);
        for r in races {
            if self.findings.len() >= ERROR_CAP {
                break;
            }
            self.findings.push(Finding {
                class: r.kind.class(),
                kind: r.kind,
                path: r.path.clone(),
                confidence: if self.sound {
                    Confidence::Sound
                } else {
                    Confidence::Heuristic
                },
                rule: rule_id_for_kind(r.kind),
                message: r.message,
            });
        }
        for id in self.mem.live_heap_allocs().into_iter().take(3) {
            if self.findings.len() >= ERROR_CAP {
                break;
            }
            let size = self.mem.alloc(id).map_or(0, |a| a.size);
            self.findings.push(Finding {
                class: UbKind::Leak.class(),
                kind: UbKind::Leak,
                path: None,
                confidence: if self.sound {
                    Confidence::Sound
                } else {
                    Confidence::Heuristic
                },
                rule: rule_id_for_kind(UbKind::Leak),
                message: format!("memory leaked: {size}-byte heap allocation never freed"),
            });
        }
    }

    fn step(&mut self) -> Result<(), Exc> {
        self.steps += 1;
        if self.steps > STEP_BUDGET {
            return Err(Exc::Stop(
                UbKind::ResourceExhausted,
                "analysis step budget exceeded (possible infinite loop)".into(),
            ));
        }
        Ok(())
    }

    fn err_cap_check(&self) -> Result<(), Exc> {
        if self.findings.len() >= ERROR_CAP {
            Err(Exc::Stop(UbKind::IllFormed, "error cap reached".into()))
        } else {
            Ok(())
        }
    }

    // ---- frames and locals ------------------------------------------------

    fn frame(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("at least one frame")
    }

    fn lookup_local(&self, name: &str) -> Option<&Local> {
        let f = self.frames.last()?;
        f.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn push_scope(&mut self) {
        self.frame().scopes.push(Scope::new());
    }

    fn pop_scope(&mut self) {
        if let Some(scope) = self.frame().scopes.pop() {
            for local in scope.values() {
                self.mem.kill_stack_slot(local.alloc);
            }
        }
    }

    fn declare_local(&mut self, name: &str, ty: Ty, value: Value) -> Result<(), Exc> {
        let size = ty_size(self.prog, &ty)
            .ok_or_else(|| Exc::Ub(UbKind::IllFormed, format!("unsized type for `{name}`")))?;
        let align = ty_align(self.prog, &ty).unwrap_or(1);
        let (alloc, tag, _) = self.alloc_mem(AllocKind::Stack, size.max(1), align);
        self.observe_value(&value);
        let bytes = to_bytes(self.prog, &value, &ty)
            .map_err(|k| self.ub(k, "initialiser does not fit declared type"))?;
        self.mem
            .write_bytes(alloc, tag, 0, &bytes, 1)
            .map_err(|k| self.ub(k, "writing initial value"))?;
        self.frame()
            .scopes
            .last_mut()
            .expect("scope present")
            .insert(name.to_owned(), Local { alloc, tag, ty });
        Ok(())
    }

    fn ub(&self, kind: UbKind, what: &str) -> Exc {
        let msg = match kind {
            UbKind::UseAfterFree => format!("{what}: pointer to freed allocation (use-after-free)"),
            UbKind::UseAfterScope => {
                format!("{what}: pointer used after its target's scope ended (dangling)")
            }
            UbKind::OutOfBounds => format!("{what}: pointer out of bounds of its allocation"),
            UbKind::UnalignedAccess => {
                format!("{what}: accessing memory with insufficient alignment")
            }
            UbKind::UninitRead => format!("{what}: reading uninitialised memory"),
            UbKind::NoProvenance => {
                format!("{what}: dereferencing an integer-derived pointer without provenance")
            }
            UbKind::StackBorrowViolation => {
                format!("{what}: tag does not exist in the borrow stack (stacked borrows)")
            }
            UbKind::ConflictingMutBorrows => {
                format!("{what}: conflicting exclusive reborrows of the same location")
            }
            UbKind::WriteThroughShared => {
                format!("{what}: write through a shared (read-only) borrow")
            }
            UbKind::InvalidValue => format!("{what}: constructing an invalid value for the type"),
            UbKind::InvalidRef => format!("{what}: constructing an invalid reference"),
            UbKind::TransmuteSize => {
                format!("{what}: transmute between types of different sizes")
            }
            UbKind::DoubleFree => format!("{what}: allocation freed twice (double free)"),
            UbKind::BadDealloc => {
                format!("{what}: deallocating with a layout the allocation was not created with")
            }
            UbKind::CrossAllocation => {
                format!("{what}: pointer arithmetic escaped into a different allocation")
            }
            UbKind::UncheckedOverflow => {
                format!("{what}: unchecked arithmetic overflowed (contract violated)")
            }
            UbKind::Precondition => {
                format!("{what}: the unsafe function's documented precondition was violated")
            }
            UbKind::InvalidFnPtr => {
                format!("{what}: calling a pointer that does not point to a function")
            }
            UbKind::FnSigMismatch => {
                format!("{what}: calling a function through a mismatched signature")
            }
            _ => format!("{what}: {kind:?}"),
        };
        Exc::Ub(kind, msg)
    }

    // ---- memory access helpers ---------------------------------------------

    fn record_access(
        &mut self,
        alloc: AllocId,
        offset: i64,
        len: usize,
        write: bool,
        atomic: bool,
    ) {
        let Some(a) = self.mem.alloc(alloc) else {
            return;
        };
        if !matches!(a.kind, AllocKind::Heap | AllocKind::Static) {
            return;
        }
        let concurrent = self.thread != 0 || self.main_concurrent;
        self.log.record(Access {
            alloc,
            offset: offset.max(0) as usize,
            len,
            thread: self.thread,
            write,
            atomic,
            locks: self.locks_held.clone(),
            concurrent,
            path: Some(self.current_path.clone()),
        });
    }

    fn typed_read(&mut self, place: &PlaceRef, atomic: bool) -> EvalResult {
        let size = ty_size(self.prog, &place.ty)
            .ok_or_else(|| self.ub(UbKind::IllFormed, "read of unsized type"))?;
        let align = ty_align(self.prog, &place.ty).unwrap_or(1);
        self.observe_align(place.alloc, align);
        let bytes = self
            .mem
            .read_bytes(place.alloc, place.tag, place.offset, size, align)
            .map_err(|k| self.ub(k, "memory read"))?;
        self.record_access(place.alloc, place.offset, size.max(1), false, atomic);
        from_bytes(self.prog, &bytes, &place.ty).map_err(|k| self.ub(k, "typed read"))
    }

    fn typed_write(&mut self, place: &PlaceRef, value: &Value, atomic: bool) -> Result<(), Exc> {
        self.observe_value(value);
        let bytes = to_bytes(self.prog, value, &place.ty).map_err(|k| self.ub(k, "typed write"))?;
        let align = ty_align(self.prog, &place.ty).unwrap_or(1);
        self.observe_align(place.alloc, align);
        self.mem
            .write_bytes(place.alloc, place.tag, place.offset, &bytes, align)
            .map_err(|k| self.ub(k, "memory write"))?;
        self.record_access(place.alloc, place.offset, bytes.len().max(1), true, atomic);
        Ok(())
    }

    fn place_from_pointer(&mut self, p: &Pointer, what: &str) -> Result<PlaceRef, Exc> {
        let Some((alloc, tag)) = p.prov else {
            return Err(self.ub(UbKind::NoProvenance, what));
        };
        let a = self
            .mem
            .alloc(alloc)
            .ok_or_else(|| self.ub(UbKind::UseAfterFree, what))?;
        let offset = p.addr as i64 - a.base as i64;
        Ok(PlaceRef {
            alloc,
            offset,
            tag,
            ty: p.pointee.clone(),
        })
    }

    // ---- place evaluation ---------------------------------------------------

    fn eval_place(&mut self, e: &Expr) -> Result<PlaceRef, Exc> {
        self.step()?;
        match e {
            Expr::Var(name) => {
                if let Some(l) = self.lookup_local(name) {
                    Ok(PlaceRef {
                        alloc: l.alloc,
                        offset: 0,
                        tag: l.tag,
                        ty: l.ty.clone(),
                    })
                } else {
                    Err(Exc::Ub(
                        UbKind::IllFormed,
                        format!("unknown place `{name}`"),
                    ))
                }
            }
            Expr::StaticRef(name) => {
                let (alloc, tag, ty) = self.statics.get(name).cloned().ok_or_else(|| {
                    Exc::Ub(UbKind::IllFormed, format!("unknown static `{name}`"))
                })?;
                Ok(PlaceRef {
                    alloc,
                    offset: 0,
                    tag,
                    ty,
                })
            }
            Expr::Deref(inner) => {
                let v = self.eval(inner)?;
                match v {
                    Value::Ptr(p) | Value::Ref(p) | Value::Boxed(p) => {
                        self.place_from_pointer(&p, "dereference")
                    }
                    other => Err(Exc::Ub(
                        UbKind::IllFormed,
                        format!("cannot dereference {}", other.render()),
                    )),
                }
            }
            Expr::Index(base, idx) => {
                let mut place = self.eval_place(base)?;
                while let Ty::Ref(inner, _) | Ty::Boxed(inner) = place.ty.clone() {
                    let v = self.typed_read(&place, false)?;
                    let p = v
                        .as_pointer()
                        .cloned()
                        .ok_or_else(|| self.ub(UbKind::InvalidRef, "auto-deref"))?;
                    place = self.place_from_pointer(&p.retype((*inner).clone()), "auto-deref")?;
                }
                let Ty::Array(elem, n) = place.ty.clone() else {
                    return Err(Exc::Ub(UbKind::IllFormed, "indexing a non-array".into()));
                };
                let iv = self
                    .eval(idx)?
                    .as_int()
                    .ok_or_else(|| Exc::Ub(UbKind::IllFormed, "non-integer index".into()))?;
                if iv < 0 || iv as usize >= n {
                    return Err(Exc::Panic(
                        UbKind::PanicIndex,
                        format!("index out of bounds: the len is {n} but the index is {iv}"),
                    ));
                }
                let es = ty_size(self.prog, &elem)
                    .ok_or_else(|| self.ub(UbKind::IllFormed, "unsized element"))?;
                Ok(PlaceRef {
                    alloc: place.alloc,
                    offset: place.offset + (iv as i64) * es as i64,
                    tag: place.tag,
                    ty: (*elem).clone(),
                })
            }
            Expr::Field(base, k) => {
                let place = self.eval_place(base)?;
                let Ty::Tuple(ts) = place.ty.clone() else {
                    return Err(Exc::Ub(
                        UbKind::IllFormed,
                        "field access on non-tuple".into(),
                    ));
                };
                if *k >= ts.len() {
                    return Err(Exc::Ub(
                        UbKind::IllFormed,
                        "tuple field out of range".into(),
                    ));
                }
                let mut off = 0i64;
                for t in ts.iter().take(*k) {
                    off += ty_size(self.prog, t).unwrap_or(0) as i64;
                }
                Ok(PlaceRef {
                    alloc: place.alloc,
                    offset: place.offset + off,
                    tag: place.tag,
                    ty: ts[*k].clone(),
                })
            }
            Expr::UnionField(base, fname) => {
                let place = self.eval_place(base)?;
                let Ty::Union(uname) = place.ty.clone() else {
                    return Err(Exc::Ub(
                        UbKind::IllFormed,
                        "union field on non-union".into(),
                    ));
                };
                let def = self
                    .prog
                    .union_def(&uname)
                    .ok_or_else(|| Exc::Ub(UbKind::IllFormed, "unknown union".into()))?;
                let (_, fty) = def
                    .fields
                    .iter()
                    .find(|(n, _)| n == fname)
                    .ok_or_else(|| Exc::Ub(UbKind::IllFormed, "unknown union field".into()))?;
                Ok(PlaceRef {
                    alloc: place.alloc,
                    offset: place.offset,
                    tag: place.tag,
                    ty: fty.clone(),
                })
            }
            other => Err(Exc::Ub(
                UbKind::IllFormed,
                format!(
                    "not a place expression: {}",
                    rb_lang::printer::print_expr(other)
                ),
            )),
        }
    }

    // ---- expression evaluation ----------------------------------------------

    #[allow(clippy::too_many_lines)]
    fn eval(&mut self, e: &Expr) -> EvalResult {
        self.step()?;
        match e {
            Expr::Lit(Lit::Unit) => Ok(Value::Unit),
            Expr::Lit(Lit::Bool(b)) => Ok(Value::Bool(*b)),
            Expr::Lit(Lit::Int(v, t)) => Ok(Value::Int(*v, *t)),
            Expr::Var(name) => {
                if self.lookup_local(name).is_some() {
                    let place = self.eval_place(e)?;
                    self.typed_read(&place, false)
                } else if let Some(idx) = self.prog.funcs.iter().position(|f| &f.name == name) {
                    Ok(Value::FnPtr(Some(idx)))
                } else {
                    Err(Exc::Ub(
                        UbKind::IllFormed,
                        format!("unknown variable `{name}`"),
                    ))
                }
            }
            Expr::StaticRef(_) => {
                let place = self.eval_place(e)?;
                self.typed_read(&place, false)
            }
            Expr::Unary(op, a) => {
                let v = self.eval(a)?;
                match (op, v) {
                    (UnOp::Neg, Value::Int(v, t)) => {
                        let r = -v;
                        if t.in_range(r) {
                            Ok(Value::Int(r, t))
                        } else {
                            Err(Exc::Panic(
                                UbKind::PanicOverflow,
                                "attempt to negate with overflow".into(),
                            ))
                        }
                    }
                    (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
                    (UnOp::Not, Value::Int(v, t)) => Ok(Value::Int(t.wrap(!v), t)),
                    _ => Err(Exc::Ub(UbKind::IllFormed, "bad unary operand".into())),
                }
            }
            Expr::Binary(op, a, b) => self.eval_binary(*op, a, b),
            Expr::Cast(a, to) => {
                let v = self.eval(a)?;
                self.eval_cast(v, to)
            }
            Expr::AddrOf(m, place_e) => {
                let place = self.eval_place(place_e)?;
                let kind = if m.is_mut() {
                    RetagKind::Mut
                } else {
                    RetagKind::Shared
                };
                let tag = self
                    .mem
                    .retag(place.alloc, place.tag, kind)
                    .map_err(|k| self.ub(k, "reference retag"))?;
                let base = self.mem.alloc(place.alloc).expect("live").base;
                Ok(Value::Ref(Pointer::with_prov(
                    place.alloc,
                    tag,
                    base.wrapping_add(place.offset as u64),
                    place.ty,
                )))
            }
            Expr::RawAddrOf(_, place_e) => {
                let place = self.eval_place(place_e)?;
                let tag = self
                    .mem
                    .retag(place.alloc, place.tag, RetagKind::Raw)
                    .map_err(|k| self.ub(k, "raw-pointer retag"))?;
                let base = self.mem.alloc(place.alloc).expect("live").base;
                Ok(Value::Ptr(Pointer::with_prov(
                    place.alloc,
                    tag,
                    base.wrapping_add(place.offset as u64),
                    place.ty,
                )))
            }
            Expr::Deref(_) | Expr::Index(..) | Expr::Field(..) | Expr::UnionField(..) => {
                let place = self.eval_place(e)?;
                self.typed_read(&place, false)
            }
            Expr::Tuple(xs) => {
                let mut out = Vec::with_capacity(xs.len());
                for x in xs {
                    out.push(self.eval(x)?);
                }
                Ok(Value::Tuple(out))
            }
            Expr::ArrayLit(xs) => {
                let mut out = Vec::with_capacity(xs.len());
                for x in xs {
                    out.push(self.eval(x)?);
                }
                Ok(Value::Array(out))
            }
            Expr::ArrayRepeat(v, n) => {
                let val = self.eval(v)?;
                Ok(Value::Array(vec![val; *n]))
            }
            Expr::Call(name, args) => {
                if let Some(idx) = self.prog.funcs.iter().position(|f| &f.name == name) {
                    let mut vals = Vec::with_capacity(args.len());
                    for a in args {
                        vals.push(self.eval(a)?);
                    }
                    self.call_function(idx, vals)
                } else if self.lookup_local(name).is_some() {
                    let callee = self.eval(&Expr::Var(name.clone()))?;
                    self.call_value(callee, args)
                } else {
                    Err(Exc::Ub(
                        UbKind::IllFormed,
                        format!("unknown function `{name}`"),
                    ))
                }
            }
            Expr::CallPtr(c, args) => {
                let callee = self.eval(c)?;
                self.call_value(callee, args)
            }
            Expr::Builtin(b, tys, args) => self.eval_builtin(*b, tys, args),
            Expr::UnionLit(uname, fname, v) => {
                let def = self
                    .prog
                    .union_def(uname)
                    .ok_or_else(|| Exc::Ub(UbKind::IllFormed, "unknown union".into()))?;
                let (_, fty) = def
                    .fields
                    .iter()
                    .find(|(n, _)| n == fname)
                    .ok_or_else(|| Exc::Ub(UbKind::IllFormed, "unknown union field".into()))?
                    .clone();
                let val = self.eval(v)?;
                let mut bytes =
                    to_bytes(self.prog, &val, &fty).map_err(|k| self.ub(k, "union literal"))?;
                let (size, _) = union_layout(self.prog, uname)
                    .ok_or_else(|| self.ub(UbKind::IllFormed, "union layout"))?;
                bytes.resize(size, rb_miri::value::AbByte::Uninit);
                Ok(Value::Union {
                    name: uname.clone(),
                    bytes,
                })
            }
        }
    }

    fn eval_binary(&mut self, op: BinOp, a: &Expr, b: &Expr) -> EvalResult {
        if matches!(op, BinOp::And | BinOp::Or) {
            let av = self
                .eval(a)?
                .as_bool()
                .ok_or_else(|| Exc::Ub(UbKind::IllFormed, "non-bool logic operand".into()))?;
            return match (op, av) {
                (BinOp::And, false) => Ok(Value::Bool(false)),
                (BinOp::Or, true) => Ok(Value::Bool(true)),
                _ => {
                    let bv = self.eval(b)?.as_bool().ok_or_else(|| {
                        Exc::Ub(UbKind::IllFormed, "non-bool logic operand".into())
                    })?;
                    Ok(Value::Bool(bv))
                }
            };
        }
        let av = self.eval(a)?;
        let bv = self.eval(b)?;
        if op.is_comparison() {
            return self.compare(op, &av, &bv);
        }
        let (x, t) = match &av {
            Value::Int(v, t) => (*v, *t),
            _ => {
                return Err(Exc::Ub(
                    UbKind::IllFormed,
                    "non-integer arithmetic operand".into(),
                ))
            }
        };
        let y = bv
            .as_int()
            .ok_or_else(|| Exc::Ub(UbKind::IllFormed, "non-integer arithmetic operand".into()))?;
        let r = match op {
            BinOp::Add => x.checked_add(y),
            BinOp::Sub => x.checked_sub(y),
            BinOp::Mul => x.checked_mul(y),
            BinOp::Div => {
                if y == 0 {
                    return Err(Exc::Panic(
                        UbKind::PanicDivZero,
                        "attempt to divide by zero".into(),
                    ));
                }
                x.checked_div(y)
            }
            BinOp::Rem => {
                if y == 0 {
                    return Err(Exc::Panic(
                        UbKind::PanicDivZero,
                        "attempt to calculate the remainder with a divisor of zero".into(),
                    ));
                }
                x.checked_rem(y)
            }
            BinOp::BitAnd => Some(x & y),
            BinOp::BitOr => Some(x | y),
            BinOp::BitXor => Some(x ^ y),
            BinOp::Shl => {
                if y < 0 || y as u32 >= (t.size() * 8) as u32 {
                    return Err(Exc::Panic(
                        UbKind::PanicOverflow,
                        "attempt to shift left with overflow".into(),
                    ));
                }
                Some(t.wrap(x << y))
            }
            BinOp::Shr => {
                if y < 0 || y as u32 >= (t.size() * 8) as u32 {
                    return Err(Exc::Panic(
                        UbKind::PanicOverflow,
                        "attempt to shift right with overflow".into(),
                    ));
                }
                Some(x >> y)
            }
            _ => unreachable!("comparisons handled above"),
        };
        match r {
            Some(v) if t.in_range(v) => Ok(Value::Int(v, t)),
            Some(v)
                if matches!(
                    op,
                    BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor | BinOp::Shl | BinOp::Shr
                ) =>
            {
                Ok(Value::Int(t.wrap(v), t))
            }
            _ => Err(Exc::Panic(
                UbKind::PanicOverflow,
                format!("attempt to {op:?} with overflow").to_lowercase(),
            )),
        }
    }

    fn compare(&mut self, op: BinOp, a: &Value, b: &Value) -> EvalResult {
        let ord = match (a, b) {
            (Value::Int(x, _), Value::Int(y, _)) => x.partial_cmp(y),
            (Value::Bool(x), Value::Bool(y)) => x.partial_cmp(y),
            (Value::Unit, Value::Unit) => Some(std::cmp::Ordering::Equal),
            _ => match (a.as_pointer(), b.as_pointer()) {
                (Some(p), Some(q)) => {
                    self.observe_addr(p.prov);
                    self.observe_addr(q.prov);
                    p.addr.partial_cmp(&q.addr)
                }
                _ => None,
            },
        };
        let Some(ord) = ord else {
            return Err(Exc::Ub(UbKind::IllFormed, "incomparable values".into()));
        };
        let r = match op {
            BinOp::Eq => ord == std::cmp::Ordering::Equal,
            BinOp::Ne => ord != std::cmp::Ordering::Equal,
            BinOp::Lt => ord == std::cmp::Ordering::Less,
            BinOp::Le => ord != std::cmp::Ordering::Greater,
            BinOp::Gt => ord == std::cmp::Ordering::Greater,
            BinOp::Ge => ord != std::cmp::Ordering::Less,
            _ => unreachable!(),
        };
        Ok(Value::Bool(r))
    }

    fn eval_cast(&mut self, v: Value, to: &Ty) -> EvalResult {
        match (v, to) {
            (Value::Int(x, _), Ty::Int(t)) => Ok(Value::Int(t.wrap(x), *t)),
            (Value::Bool(b), Ty::Int(t)) => Ok(Value::Int(i128::from(b), *t)),
            (Value::Ptr(p) | Value::Ref(p) | Value::Boxed(p), Ty::Int(t)) => {
                self.observe_addr(p.prov);
                Ok(Value::Int(t.wrap(p.addr as i128), *t))
            }
            (Value::FnPtr(idx), Ty::Int(t)) => Ok(Value::Int(
                t.wrap(idx.map_or(0, rb_miri::value::fn_ptr_addr) as i128),
                *t,
            )),
            (Value::Int(x, _), Ty::RawPtr(inner, _)) => {
                Ok(Value::Ptr(Pointer::from_addr(x as u64, (**inner).clone())))
            }
            (Value::Ptr(p), Ty::RawPtr(inner, _)) => Ok(Value::Ptr(p.retype((**inner).clone()))),
            (Value::Ref(p) | Value::Boxed(p), Ty::RawPtr(inner, _)) => {
                if let Some((alloc, tag)) = p.prov {
                    let fresh = self
                        .mem
                        .retag(alloc, tag, RetagKind::Raw)
                        .map_err(|k| self.ub(k, "ref-to-raw cast"))?;
                    Ok(Value::Ptr(Pointer::with_prov(
                        alloc,
                        fresh,
                        p.addr,
                        (**inner).clone(),
                    )))
                } else {
                    Ok(Value::Ptr(p.retype((**inner).clone())))
                }
            }
            (Value::FnPtr(i), Ty::FnPtr(..)) => Ok(Value::FnPtr(i)),
            (v, to) => Err(Exc::Ub(
                UbKind::IllFormed,
                format!(
                    "unsupported cast of {} to {}",
                    v.render(),
                    rb_lang::printer::print_ty(to)
                ),
            )),
        }
    }

    fn call_value(&mut self, callee: Value, args: &[Expr]) -> EvalResult {
        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            vals.push(self.eval(a)?);
        }
        match callee {
            Value::FnPtr(Some(idx)) => {
                let f = &self.prog.funcs[idx];
                if f.params.len() != vals.len()
                    || !f
                        .params
                        .iter()
                        .zip(&vals)
                        .all(|((_, t), v)| value_matches_ty(v, t))
                {
                    return Err(Exc::Ub(
                        UbKind::FnSigMismatch,
                        format!(
                            "calling `{}` through a pointer with mismatched signature",
                            f.name
                        ),
                    ));
                }
                self.call_function(idx, vals)
            }
            Value::FnPtr(None) => Err(Exc::Ub(
                UbKind::InvalidFnPtr,
                "calling a function pointer forged from a non-function address".into(),
            )),
            other => Err(Exc::Ub(
                UbKind::IllFormed,
                format!("cannot call {}", other.render()),
            )),
        }
    }

    fn call_function(&mut self, idx: usize, args: Vec<Value>) -> EvalResult {
        if self.frames.len() >= MAX_CALL_DEPTH {
            return Err(Exc::Stop(
                UbKind::ResourceExhausted,
                "call depth exceeded".into(),
            ));
        }
        let f = &self.prog.funcs[idx];
        if f.params.len() != args.len() {
            return Err(Exc::Ub(
                UbKind::IllFormed,
                format!("`{}` called with wrong arity", f.name),
            ));
        }
        self.frames.push(Frame {
            scopes: vec![Scope::new()],
            fn_idx: idx,
        });
        let params: Vec<(String, Ty)> = f.params.clone();
        let body = f.body.clone();
        let mut result = Ok(Value::Unit);
        for ((name, ty), v) in params.into_iter().zip(args) {
            if let Err(e) = self.declare_local(&name, ty, v) {
                result = Err(e);
                break;
            }
        }
        if result.is_ok() {
            result = match self.exec_fn_body(&body, idx) {
                Ok(Flow::Return(v)) => Ok(v),
                Ok(Flow::Normal) => Ok(Value::Unit),
                Err(e) => Err(e),
            };
        }
        if let Some(frame) = self.frames.pop() {
            for scope in frame.scopes {
                for local in scope.values() {
                    self.mem.kill_stack_slot(local.alloc);
                }
            }
        }
        result
    }

    fn exec_fn_body(&mut self, body: &Block, fn_idx: usize) -> ExecResult {
        for (i, s) in body.stmts.iter().enumerate() {
            self.err_cap_check()?;
            self.current_path = StmtPath::top(fn_idx, i);
            match self.exec_stmt(s) {
                Ok(Flow::Normal) => {}
                Ok(Flow::Return(v)) => return Ok(Flow::Return(v)),
                Err(Exc::Ub(k, m)) => {
                    self.record(k, m);
                }
                Err(Exc::Panic(k, m)) => {
                    self.record(k, m);
                    return Ok(Flow::Normal);
                }
                Err(e @ (Exc::Stop(..) | Exc::Abort)) => return Err(e),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_block(&mut self, b: &Block) -> ExecResult {
        for s in &b.stmts {
            match self.exec_stmt(s)? {
                Flow::Normal => {}
                Flow::Return(v) => return Ok(Flow::Return(v)),
            }
        }
        Ok(Flow::Normal)
    }

    #[allow(clippy::too_many_lines)]
    fn exec_stmt(&mut self, s: &Stmt) -> ExecResult {
        self.step()?;
        match s {
            Stmt::Let { name, ty, init } => {
                let v = self.eval(init)?;
                self.declare_local(name, ty.clone(), v)?;
                Ok(Flow::Normal)
            }
            Stmt::Assign { place, value } => {
                let v = self.eval(value)?;
                let p = self.eval_place(place)?;
                self.typed_write(&p, &v, false)?;
                Ok(Flow::Normal)
            }
            Stmt::Expr(e) => {
                self.eval(e)?;
                Ok(Flow::Normal)
            }
            Stmt::Unsafe(b) | Stmt::Scope(b) => {
                self.push_scope();
                let r = self.exec_block(b);
                self.pop_scope();
                r
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let c = self
                    .eval(cond)?
                    .as_bool()
                    .ok_or_else(|| Exc::Ub(UbKind::IllFormed, "non-bool condition".into()))?;
                if c {
                    self.push_scope();
                    let r = self.exec_block(then_blk);
                    self.pop_scope();
                    r
                } else if let Some(e) = else_blk {
                    self.push_scope();
                    let r = self.exec_block(e);
                    self.pop_scope();
                    r
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::While { cond, body } => {
                loop {
                    self.step()?;
                    let c = self
                        .eval(cond)?
                        .as_bool()
                        .ok_or_else(|| Exc::Ub(UbKind::IllFormed, "non-bool condition".into()))?;
                    if !c {
                        break;
                    }
                    self.push_scope();
                    let r = self.exec_block(body);
                    self.pop_scope();
                    match r? {
                        Flow::Normal => {}
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Assert { cond, msg } => {
                let c = self
                    .eval(cond)?
                    .as_bool()
                    .ok_or_else(|| Exc::Ub(UbKind::IllFormed, "non-bool assertion".into()))?;
                if c {
                    Ok(Flow::Normal)
                } else {
                    Err(Exc::Panic(
                        UbKind::PanicAssert,
                        format!("assertion failed: {msg}"),
                    ))
                }
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e)?,
                    None => Value::Unit,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Spawn(b) => {
                // The oracle snapshots visible locals in hash-map order; the
                // set is deterministic, the order is not. Collect per scope
                // in sorted order (the names, types and values read are the
                // same set either way).
                let mut names: Vec<(String, Ty)> = Vec::new();
                if let Some(f) = self.frames.last() {
                    for s in &f.scopes {
                        let mut entries: Vec<(String, Ty)> =
                            s.iter().map(|(n, l)| (n.clone(), l.ty.clone())).collect();
                        entries.sort_by(|x, y| x.0.cmp(&y.0));
                        names.extend(entries);
                    }
                }
                let mut env = Vec::with_capacity(names.len());
                let mut first_err: Option<Exc> = None;
                let mut err_count = 0usize;
                for (n, t) in names {
                    let r = self
                        .eval_place(&Expr::Var(n.clone()))
                        .and_then(|place| self.typed_read(&place, false));
                    match r {
                        Ok(v) => env.push((n, t, v)),
                        Err(e) => {
                            err_count += 1;
                            if first_err.is_none() {
                                first_err = Some(e);
                            }
                        }
                    }
                }
                if let Some(e) = first_err {
                    // Which failing local the oracle hits first depends on
                    // hash order when several could fail.
                    if err_count > 1 {
                        self.sound = false;
                    }
                    return Err(e);
                }
                self.pending.push(PendingThread {
                    env,
                    body: b.clone(),
                    spawn_path: self.current_path.clone(),
                });
                self.main_concurrent = true;
                Ok(Flow::Normal)
            }
            Stmt::JoinAll => {
                self.join_all()?;
                if self.thread == 0 {
                    self.main_concurrent = false;
                }
                Ok(Flow::Normal)
            }
            Stmt::Lock(id, b) => {
                let newly = self.locks_held.insert(*id);
                self.push_scope();
                let r = self.exec_block(b);
                self.pop_scope();
                if newly {
                    self.locks_held.remove(id);
                }
                r
            }
            Stmt::Print(e) => {
                self.eval(e)?;
                Ok(Flow::Normal)
            }
            Stmt::TailCall(name, args) => {
                let Some(idx) = self.prog.funcs.iter().position(|f| &f.name == name) else {
                    return Err(Exc::Ub(UbKind::IllFormed, format!("unknown fn `{name}`")));
                };
                let cur = self.frames.last().map_or(0, |f| f.fn_idx);
                let cur_f = &self.prog.funcs[cur];
                let tgt = &self.prog.funcs[idx];
                let cur_sig: (Vec<Ty>, Ty) = (
                    cur_f.params.iter().map(|(_, t)| t.clone()).collect(),
                    cur_f.ret.clone(),
                );
                let tgt_sig: (Vec<Ty>, Ty) = (
                    tgt.params.iter().map(|(_, t)| t.clone()).collect(),
                    tgt.ret.clone(),
                );
                if cur_sig != tgt_sig {
                    return Err(Exc::Ub(
                        UbKind::TailCallMismatch,
                        format!(
                            "tail call from `{}` to `{}` with mismatched signature",
                            cur_f.name, tgt.name
                        ),
                    ));
                }
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a)?);
                }
                let v = self.call_function(idx, vals)?;
                Ok(Flow::Return(v))
            }
            Stmt::Nop => Ok(Flow::Normal),
        }
    }

    fn join_all(&mut self) -> Result<(), Exc> {
        while let Some(t) = self.pending.pop() {
            self.err_cap_check()?;
            let id = self.next_thread;
            self.next_thread += 1;
            let saved_thread = self.thread;
            let saved_locks = std::mem::take(&mut self.locks_held);
            self.thread = id;
            self.frames.push(Frame {
                scopes: vec![Scope::new()],
                fn_idx: 0,
            });
            self.current_path = t.spawn_path.clone();
            // From here on, allocation bases depend on the oracle's
            // hash-order declaration of the thread environment.
            if t.env.len() >= 2 {
                self.base_drift = true;
            }
            let mut failed = false;
            for (n, ty, v) in t.env {
                if let Err(e) = self.declare_local(&n, ty, v) {
                    if let Exc::Ub(k, m) | Exc::Panic(k, m) = e {
                        self.record(k, m);
                    }
                    failed = true;
                    break;
                }
            }
            if !failed {
                let body = t.body;
                for s in &body.stmts {
                    match self.exec_stmt(s) {
                        Ok(Flow::Normal) => {}
                        Ok(Flow::Return(_)) => break,
                        Err(Exc::Ub(k, m) | Exc::Panic(k, m)) => {
                            self.record(k, m);
                            break;
                        }
                        Err(e @ (Exc::Stop(..) | Exc::Abort)) => {
                            if let Some(frame) = self.frames.pop() {
                                for scope in frame.scopes {
                                    for local in scope.values() {
                                        self.mem.kill_stack_slot(local.alloc);
                                    }
                                }
                            }
                            self.thread = saved_thread;
                            self.locks_held = saved_locks;
                            return Err(e);
                        }
                    }
                }
            }
            if let Some(frame) = self.frames.pop() {
                for scope in frame.scopes {
                    for local in scope.values() {
                        self.mem.kill_stack_slot(local.alloc);
                    }
                }
            }
            self.thread = saved_thread;
            self.locks_held = saved_locks;
        }
        Ok(())
    }

    // ---- builtins -------------------------------------------------------------

    #[allow(clippy::too_many_lines)]
    fn eval_builtin(&mut self, b: BuiltinKind, tys: &[Ty], args: &[Expr]) -> EvalResult {
        let ty0 = tys.first();
        match b {
            BuiltinKind::Alloc => {
                let size = self.eval_usize(&args[0])?;
                let align = self.eval_usize(&args[1])?;
                if size == 0 || align == 0 || !align.is_power_of_two() {
                    return Err(Exc::Ub(
                        UbKind::Precondition,
                        "alloc with invalid layout (zero size or bad alignment)".into(),
                    ));
                }
                let (id, tag, base) = self.alloc_mem(AllocKind::Heap, size, align);
                Ok(Value::Ptr(Pointer::with_prov(
                    id,
                    tag,
                    base,
                    Ty::Int(rb_lang::IntTy::U8),
                )))
            }
            BuiltinKind::Dealloc => {
                let p = self.eval_ptr(&args[0])?;
                let size = self.eval_usize(&args[1])?;
                let align = self.eval_usize(&args[2])?;
                let Some((alloc, _tag)) = p.prov else {
                    return Err(self.ub(UbKind::NoProvenance, "dealloc"));
                };
                let base = self.mem.alloc(alloc).map_or(0, |a| a.base);
                if p.addr != base {
                    return Err(Exc::Ub(
                        UbKind::BadDealloc,
                        "deallocating with a pointer not at the allocation start".into(),
                    ));
                }
                self.mem
                    .deallocate(alloc, size, align)
                    .map_err(|k| self.ub(k, "dealloc"))?;
                Ok(Value::Unit)
            }
            BuiltinKind::PtrRead => {
                let t = ty0.cloned().unwrap_or(Ty::Int(rb_lang::IntTy::U8));
                let p = self.eval_ptr(&args[0])?;
                let place = self.place_from_pointer(&p.retype(t), "ptr_read")?;
                self.typed_read(&place, false)
            }
            BuiltinKind::PtrWrite => {
                let t = ty0.cloned().unwrap_or(Ty::Int(rb_lang::IntTy::U8));
                let p = self.eval_ptr(&args[0])?;
                let v = self.eval(&args[1])?;
                let place = self.place_from_pointer(&p.retype(t), "ptr_write")?;
                self.typed_write(&place, &v, false)?;
                Ok(Value::Unit)
            }
            BuiltinKind::PtrOffset => {
                let t = ty0.cloned().unwrap_or(Ty::Int(rb_lang::IntTy::U8));
                let p = self.eval_ptr(&args[0])?;
                let n = self
                    .eval(&args[1])?
                    .as_int()
                    .ok_or_else(|| Exc::Ub(UbKind::IllFormed, "non-integer offset".into()))?;
                let es = ty_size(self.prog, &t).unwrap_or(1) as i128;
                let new_addr = (p.addr as i128 + n * es) as u64;
                if let Some((alloc, _)) = p.prov {
                    let a = self
                        .mem
                        .alloc(alloc)
                        .ok_or_else(|| self.ub(UbKind::UseAfterFree, "ptr_offset"))?;
                    let lo = a.base;
                    let hi = a.base + a.size as u64;
                    if new_addr < lo || new_addr > hi {
                        // Whether the escaped address lands in *another*
                        // allocation depends on absolute layout.
                        if self.base_drift {
                            self.sound = false;
                        }
                        return Err(if self.mem.alloc_at(new_addr).is_some() {
                            self.ub(
                                UbKind::CrossAllocation,
                                "ptr_offset into another allocation",
                            )
                        } else {
                            self.ub(UbKind::OutOfBounds, "ptr_offset")
                        });
                    }
                }
                Ok(Value::Ptr(Pointer {
                    prov: p.prov,
                    addr: new_addr,
                    pointee: t,
                }))
            }
            BuiltinKind::Transmute => {
                if tys.len() != 2 {
                    return Err(Exc::Ub(
                        UbKind::IllFormed,
                        "transmute needs two type args".into(),
                    ));
                }
                let (from, to) = (&tys[0], &tys[1]);
                let sf = ty_size(self.prog, from);
                let st = ty_size(self.prog, to);
                if sf != st || sf.is_none() {
                    return Err(Exc::Ub(
                        UbKind::TransmuteSize,
                        format!(
                            "cannot transmute between types of different sizes ({} vs {})",
                            sf.map_or("?".into(), |v| v.to_string()),
                            st.map_or("?".into(), |v| v.to_string())
                        ),
                    ));
                }
                let v = self.eval(&args[0])?;
                self.observe_value(&v);
                let bytes = to_bytes(self.prog, &v, from).map_err(|k| self.ub(k, "transmute"))?;
                from_bytes(self.prog, &bytes, to).map_err(|k| self.ub(k, "transmute"))
            }
            BuiltinKind::BoxNew => {
                let t = ty0.cloned().unwrap_or(Ty::Int(rb_lang::IntTy::I32));
                let v = self.eval(&args[0])?;
                let size = ty_size(self.prog, &t)
                    .ok_or_else(|| self.ub(UbKind::IllFormed, "box_new of unsized type"))?;
                let align = ty_align(self.prog, &t).unwrap_or(1);
                let (id, tag, base) = self.alloc_mem(AllocKind::Heap, size.max(1), align);
                let place = PlaceRef {
                    alloc: id,
                    offset: 0,
                    tag,
                    ty: t.clone(),
                };
                self.typed_write(&place, &v, false)?;
                Ok(Value::Boxed(Pointer::with_prov(id, tag, base, t)))
            }
            BuiltinKind::BoxIntoRaw => {
                let v = self.eval(&args[0])?;
                match v {
                    Value::Boxed(p) => Ok(Value::Ptr(p)),
                    other => Err(Exc::Ub(
                        UbKind::IllFormed,
                        format!("box_into_raw of {}", other.render()),
                    )),
                }
            }
            BuiltinKind::BoxFromRaw => {
                let p = self.eval_ptr(&args[0])?;
                let Some((alloc, _)) = p.prov else {
                    return Err(self.ub(UbKind::NoProvenance, "box_from_raw"));
                };
                let a = self
                    .mem
                    .alloc(alloc)
                    .ok_or_else(|| self.ub(UbKind::UseAfterFree, "box_from_raw"))?;
                if a.kind != AllocKind::Heap {
                    return Err(Exc::Ub(
                        UbKind::Precondition,
                        "box_from_raw of a pointer not from the heap".into(),
                    ));
                }
                if !a.live {
                    return Err(self.ub(UbKind::UseAfterFree, "box_from_raw"));
                }
                if p.addr != a.base {
                    return Err(Exc::Ub(
                        UbKind::Precondition,
                        "box_from_raw of an interior pointer".into(),
                    ));
                }
                Ok(Value::Boxed(p))
            }
            BuiltinKind::DropBox => {
                let v = self.eval(&args[0])?;
                match v {
                    Value::Boxed(p) => {
                        let Some((alloc, _)) = p.prov else {
                            return Err(self.ub(UbKind::NoProvenance, "drop_box"));
                        };
                        let (size, align) = self
                            .mem
                            .alloc(alloc)
                            .map(|a| (a.size, a.align))
                            .ok_or_else(|| self.ub(UbKind::UseAfterFree, "drop_box"))?;
                        self.mem
                            .deallocate(alloc, size, align)
                            .map_err(|k| self.ub(k, "drop_box"))?;
                        Ok(Value::Unit)
                    }
                    other => Err(Exc::Ub(
                        UbKind::IllFormed,
                        format!("drop_box of {}", other.render()),
                    )),
                }
            }
            BuiltinKind::GetUnchecked => {
                let t = ty0.cloned().unwrap_or(Ty::Int(rb_lang::IntTy::I32));
                let base = self.eval(&args[0])?;
                let idx = self
                    .eval(&args[1])?
                    .as_int()
                    .ok_or_else(|| Exc::Ub(UbKind::IllFormed, "non-integer index".into()))?;
                let p = base.as_pointer().cloned().ok_or_else(|| {
                    Exc::Ub(UbKind::IllFormed, "get_unchecked on non-pointer".into())
                })?;
                let es = ty_size(self.prog, &t).unwrap_or(1) as i128;
                let addr = (p.addr as i128 + idx * es) as u64;
                let q = Pointer {
                    prov: p.prov,
                    addr,
                    pointee: t,
                };
                let place = self.place_from_pointer(&q, "get_unchecked")?;
                self.typed_read(&place, false)
            }
            BuiltinKind::UncheckedAdd | BuiltinKind::UncheckedSub | BuiltinKind::UncheckedMul => {
                let (x, t) = self.eval_int(&args[0])?;
                let (y, _) = self.eval_int(&args[1])?;
                let r = match b {
                    BuiltinKind::UncheckedAdd => x.checked_add(y),
                    BuiltinKind::UncheckedSub => x.checked_sub(y),
                    _ => x.checked_mul(y),
                };
                match r {
                    Some(v) if t.in_range(v) => Ok(Value::Int(v, t)),
                    _ => Err(Exc::Ub(
                        UbKind::UncheckedOverflow,
                        format!(
                            "`{}` overflowed: the unsafe precondition was violated",
                            b.name()
                        ),
                    )),
                }
            }
            BuiltinKind::CheckedAdd | BuiltinKind::CheckedSub | BuiltinKind::CheckedMul => {
                let (x, t) = self.eval_int(&args[0])?;
                let (y, _) = self.eval_int(&args[1])?;
                let r = match b {
                    BuiltinKind::CheckedAdd => x.checked_add(y),
                    BuiltinKind::CheckedSub => x.checked_sub(y),
                    _ => x.checked_mul(y),
                };
                match r {
                    Some(v) if t.in_range(v) => Ok(Value::Int(v, t)),
                    _ => Err(Exc::Panic(
                        UbKind::PanicOverflow,
                        format!("checked arithmetic `{}` overflowed", b.name()),
                    )),
                }
            }
            BuiltinKind::AtomicLoad => {
                let place = self.eval_place(&args[0])?;
                self.typed_read(&place, true)
            }
            BuiltinKind::AtomicStore => {
                let v = self.eval(&args[1])?;
                let place = self.eval_place(&args[0])?;
                self.typed_write(&place, &v, true)?;
                Ok(Value::Unit)
            }
            BuiltinKind::FromLeBytes => {
                let t = ty0.cloned().unwrap_or(Ty::Int(rb_lang::IntTy::U32));
                let v = self.eval(&args[0])?;
                let n = ty_size(self.prog, &t).unwrap_or(4);
                let src_ty = Ty::Array(Box::new(Ty::Int(rb_lang::IntTy::U8)), n);
                let bytes =
                    to_bytes(self.prog, &v, &src_ty).map_err(|k| self.ub(k, "from_le_bytes"))?;
                from_bytes(self.prog, &bytes, &t).map_err(|k| self.ub(k, "from_le_bytes"))
            }
            BuiltinKind::ToLeBytes => {
                let v = self.eval(&args[0])?;
                let Value::Int(x, t) = v else {
                    return Err(Exc::Ub(
                        UbKind::IllFormed,
                        "to_le_bytes of non-integer".into(),
                    ));
                };
                let raw = (t.wrap(x) as u128).to_le_bytes();
                Ok(Value::Array(
                    raw.iter()
                        .take(t.size())
                        .map(|b| Value::Int(i128::from(*b), rb_lang::IntTy::U8))
                        .collect(),
                ))
            }
            BuiltinKind::PtrAddr => {
                let p = self.eval_ptr(&args[0])?;
                self.observe_addr(p.prov);
                Ok(Value::Int(p.addr as i128, rb_lang::IntTy::Usize))
            }
            BuiltinKind::CopyNonoverlapping => {
                let t = ty0.cloned().unwrap_or(Ty::Int(rb_lang::IntTy::U8));
                let src = self.eval_ptr(&args[0])?;
                let dst = self.eval_ptr(&args[1])?;
                let n = self.eval_usize(&args[2])?;
                let es = ty_size(self.prog, &t).unwrap_or(1);
                let len = es * n;
                if src.prov.map(|(a, _)| a) != dst.prov.map(|(a, _)| a) {
                    // Overlap of *distinct* allocations depends on layout.
                    self.observe_addr(src.prov);
                    self.observe_addr(dst.prov);
                }
                if src.addr < dst.addr + len as u64 && dst.addr < src.addr + len as u64 {
                    return Err(Exc::Ub(
                        UbKind::Precondition,
                        "copy_nonoverlapping with overlapping ranges".into(),
                    ));
                }
                let sp = self.place_from_pointer(&src, "copy src")?;
                let bytes = self
                    .mem
                    .read_bytes(sp.alloc, sp.tag, sp.offset, len, 1)
                    .map_err(|k| self.ub(k, "copy src"))?;
                self.record_access(sp.alloc, sp.offset, len.max(1), false, false);
                let dp = self.place_from_pointer(&dst, "copy dst")?;
                self.mem
                    .write_bytes(dp.alloc, dp.tag, dp.offset, &bytes, 1)
                    .map_err(|k| self.ub(k, "copy dst"))?;
                self.record_access(dp.alloc, dp.offset, len.max(1), true, false);
                Ok(Value::Unit)
            }
            BuiltinKind::AssumeInitRead => {
                let t = ty0.cloned().unwrap_or(Ty::Int(rb_lang::IntTy::U8));
                let p = self.eval_ptr(&args[0])?;
                let place = self.place_from_pointer(&p.retype(t), "assume_init_read")?;
                match self.typed_read(&place, false) {
                    Err(Exc::Ub(UbKind::UninitRead, _)) => Err(Exc::Ub(
                        UbKind::Precondition,
                        "assume_init_read of uninitialised memory: contract violated".into(),
                    )),
                    other => other,
                }
            }
            BuiltinKind::Abort => Err(Exc::Abort),
        }
    }

    fn eval_usize(&mut self, e: &Expr) -> Result<usize, Exc> {
        let v = self
            .eval(e)?
            .as_int()
            .ok_or_else(|| Exc::Ub(UbKind::IllFormed, "expected integer".into()))?;
        usize::try_from(v).map_err(|_| Exc::Ub(UbKind::IllFormed, "negative size".into()))
    }

    fn eval_int(&mut self, e: &Expr) -> Result<(i128, rb_lang::IntTy), Exc> {
        match self.eval(e)? {
            Value::Int(v, t) => Ok((v, t)),
            other => Err(Exc::Ub(
                UbKind::IllFormed,
                format!("expected integer, got {}", other.render()),
            )),
        }
    }

    fn eval_ptr(&mut self, e: &Expr) -> Result<Pointer, Exc> {
        match self.eval(e)? {
            Value::Ptr(p) | Value::Ref(p) | Value::Boxed(p) => Ok(p),
            other => Err(Exc::Ub(
                UbKind::IllFormed,
                format!("expected pointer, got {}", other.render()),
            )),
        }
    }
}
