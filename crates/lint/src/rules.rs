//! The data-driven lint rule table and its walker matchers.
//!
//! Every lint is registered as data in [`RULES`] — a `(id, class,
//! description, matcher)` row — rather than as ad-hoc code, following the
//! visitor+matcher engine architecture. A rule with a matcher is a *walker*
//! lint: one traversal over [`rb_lang::visit`], purely syntactic, emitting
//! [`Confidence::Heuristic`] findings. Rules without a matcher are
//! *flow-only*: the defect needs value tracking, so only the flow pass can
//! produce it — the row still exists so findings, docs and JSON output all
//! attribute to a registered rule id.

use crate::{Confidence, Finding};
use rb_lang::ast::{BinOp, BuiltinKind, Expr, Lit, Mutability, Stmt, Ty};
use rb_lang::check::ty_size;
use rb_lang::visit::{
    child_block, child_branches, for_each_expr_in_stmt, for_each_stmt, walk_expr,
};
use rb_lang::{Block, Program, StmtPath};
use rb_miri::{UbClass, UbKind};
use std::collections::{HashMap, HashSet};

/// A matcher walks the program and returns heuristic findings.
pub type Matcher = fn(&Program) -> Vec<Finding>;

/// One registered lint rule.
pub struct LintRule {
    /// Stable kebab-case identifier (findings, JSON, docs).
    pub id: &'static str,
    /// The UB class the rule detects.
    pub class: UbClass,
    /// One-line description for docs and `analyze` output.
    pub description: &'static str,
    /// Walker matcher; `None` for flow-only rules.
    pub matcher: Option<Matcher>,
}

/// The rule registry. Walker rules first (in the order they run), then the
/// flow-only rules that exist for attribution.
pub static RULES: &[LintRule] = &[
    LintRule {
        id: "uninit-read",
        class: UbClass::Uninit,
        description: "read of heap memory never written since allocation (def-before-use)",
        matcher: Some(match_uninit_read),
    },
    LintRule {
        id: "dangling-local-escape",
        class: UbClass::DanglingPointer,
        description: "address of a scope-local escapes to an outer binding",
        matcher: Some(match_dangling_local_escape),
    },
    LintRule {
        id: "const-oob-index",
        class: UbClass::Panic,
        description: "array index with a constant out-of-bounds subscript",
        matcher: Some(match_const_oob_index),
    },
    LintRule {
        id: "div-by-zero",
        class: UbClass::Panic,
        description: "division or remainder by a literal zero",
        matcher: Some(match_div_by_zero),
    },
    LintRule {
        id: "double-free",
        class: UbClass::Alloc,
        description: "the same pointer binding is deallocated twice",
        matcher: Some(match_double_free),
    },
    LintRule {
        id: "dealloc-layout-mismatch",
        class: UbClass::Alloc,
        description: "dealloc layout constants differ from the alloc site's",
        matcher: Some(match_layout_mismatch),
    },
    LintRule {
        id: "int-to-ptr",
        class: UbClass::Provenance,
        description: "integer-to-pointer cast forges a pointer without provenance",
        matcher: Some(match_int_to_ptr),
    },
    LintRule {
        id: "conflicting-mut-reborrows",
        class: UbClass::BothBorrow,
        description: "two `&mut` borrows of the same local in one statement",
        matcher: Some(match_conflicting_mut_reborrows),
    },
    LintRule {
        id: "static-race",
        class: UbClass::DataRace,
        description: "unsynchronised static access inside a spawned block",
        matcher: Some(match_static_race),
    },
    LintRule {
        id: "misaligned-cast",
        class: UbClass::Unaligned,
        description: "pointer cast to a type with stricter alignment than its source",
        matcher: Some(match_misaligned_cast),
    },
    LintRule {
        id: "fn-ptr-sig",
        class: UbClass::FuncPointer,
        description: "function pointer bound or transmuted to a mismatched signature",
        matcher: Some(match_fn_ptr_sig),
    },
    LintRule {
        id: "transmute-size",
        class: UbClass::Validity,
        description: "transmute between types of different (or unsized) sizes",
        matcher: Some(match_transmute_size),
    },
    LintRule {
        id: "tail-call-mismatch",
        class: UbClass::TailCall,
        description: "tail call to a function with a different signature",
        matcher: Some(match_tail_call_mismatch),
    },
    LintRule {
        id: "const-unchecked-overflow",
        class: UbClass::FuncCall,
        description: "unchecked arithmetic with constant operands that overflow",
        matcher: Some(match_const_unchecked_overflow),
    },
    LintRule {
        id: "copy-overlap",
        class: UbClass::FuncCall,
        description: "copy_nonoverlapping where source and destination alias",
        matcher: Some(match_copy_overlap),
    },
    // Flow-only rules: these defects need value/borrow tracking.
    LintRule {
        id: "use-after-free",
        class: UbClass::DanglingPointer,
        description: "access through a pointer to a freed or dead allocation",
        matcher: None,
    },
    LintRule {
        id: "oob-pointer-arith",
        class: UbClass::DanglingPointer,
        description: "pointer arithmetic leaves the allocation's bounds",
        matcher: None,
    },
    LintRule {
        id: "cross-allocation",
        class: UbClass::Provenance,
        description: "pointer arithmetic lands inside a different allocation",
        matcher: None,
    },
    LintRule {
        id: "leak",
        class: UbClass::Alloc,
        description: "heap allocation still live at program exit",
        matcher: None,
    },
    LintRule {
        id: "stack-borrow",
        class: UbClass::StackBorrow,
        description:
            "stacked-borrows discipline violated (invalidated tag or write through shared)",
        matcher: None,
    },
    LintRule {
        id: "heap-race",
        class: UbClass::Concurrency,
        description: "data race on shared heap memory",
        matcher: None,
    },
    LintRule {
        id: "invalid-value",
        class: UbClass::Validity,
        description: "constructing an invalid value (bad bool, null/dangling reference)",
        matcher: None,
    },
    LintRule {
        id: "invalid-fn-ptr",
        class: UbClass::FuncPointer,
        description: "calling a function pointer that is not a function",
        matcher: None,
    },
    LintRule {
        id: "precondition",
        class: UbClass::FuncCall,
        description: "unsafe builtin contract violated",
        matcher: None,
    },
    LintRule {
        id: "panic",
        class: UbClass::Panic,
        description: "runtime panic (assert, overflow, index, division)",
        matcher: None,
    },
    LintRule {
        id: "ill-formed",
        class: UbClass::Compile,
        description: "program rejected by the static checker or interpreter limits",
        matcher: None,
    },
];

/// Looks up a registered rule by id.
#[must_use]
pub fn rule_for_id(id: &str) -> Option<&'static LintRule> {
    RULES.iter().find(|r| r.id == id)
}

/// The registered rule id that explains a precise failure kind (used by the
/// flow pass to attribute its findings to the rule table).
#[must_use]
pub fn rule_id_for_kind(kind: UbKind) -> &'static str {
    match kind {
        UbKind::UseAfterFree | UbKind::UseAfterScope => "use-after-free",
        UbKind::OutOfBounds => "oob-pointer-arith",
        UbKind::DoubleFree => "double-free",
        UbKind::BadDealloc => "dealloc-layout-mismatch",
        UbKind::Leak => "leak",
        UbKind::UnalignedAccess => "misaligned-cast",
        UbKind::InvalidValue | UbKind::InvalidRef => "invalid-value",
        UbKind::TransmuteSize => "transmute-size",
        UbKind::UninitRead => "uninit-read",
        UbKind::NoProvenance => "int-to-ptr",
        UbKind::CrossAllocation => "cross-allocation",
        UbKind::StackBorrowViolation | UbKind::WriteThroughShared => "stack-borrow",
        UbKind::ConflictingMutBorrows => "conflicting-mut-reborrows",
        UbKind::RaceOnStatic => "static-race",
        UbKind::RaceOnHeap => "heap-race",
        UbKind::UncheckedOverflow => "const-unchecked-overflow",
        UbKind::Precondition => "precondition",
        UbKind::InvalidFnPtr => "invalid-fn-ptr",
        UbKind::FnSigMismatch => "fn-ptr-sig",
        UbKind::TailCallMismatch => "tail-call-mismatch",
        UbKind::PanicDivZero => "div-by-zero",
        UbKind::PanicIndex => "const-oob-index",
        UbKind::PanicAssert | UbKind::PanicOverflow => "panic",
        UbKind::IllFormed | UbKind::ResourceExhausted => "ill-formed",
    }
}

/// Runs every walker rule over the program, collecting heuristic findings.
#[must_use]
pub fn walk(prog: &Program) -> Vec<Finding> {
    let mut out = Vec::new();
    for rule in RULES {
        if let Some(m) = rule.matcher {
            out.extend(m(prog));
        }
    }
    out
}

fn heuristic(rule: &'static str, kind: UbKind, path: Option<StmtPath>, message: String) -> Finding {
    Finding {
        class: kind.class(),
        kind,
        path,
        confidence: Confidence::Heuristic,
        rule,
        message,
    }
}

/// The variable a pointer-valued argument names, if it is (a cast of) one.
fn root_var(e: &Expr) -> Option<&str> {
    match e {
        Expr::Var(n) => Some(n),
        Expr::Cast(inner, _) => root_var(inner),
        _ => None,
    }
}

/// Whether the expression (or a sub-expression) calls the given builtin.
fn contains_builtin(e: &Expr, b: BuiltinKind) -> bool {
    let mut hit = false;
    walk_expr(e, &mut |x| {
        if let Expr::Builtin(k, ..) = x {
            if *k == b {
                hit = true;
            }
        }
    });
    hit
}

// ---- walker matchers -------------------------------------------------------

/// Heap memory allocated with `alloc` and read (via `ptr_read` /
/// `assume_init_read`) before any write reaches it. Straight-line,
/// per-function, name-based — deliberately simple; the flow pass proves the
/// exact cases.
fn match_uninit_read(prog: &Program) -> Vec<Finding> {
    let mut out = Vec::new();
    for fi in 0..prog.funcs.len() {
        let mut allocd: HashSet<String> = HashSet::new();
        let mut written: HashSet<String> = HashSet::new();
        for_each_stmt(prog, |stmt, path| {
            if path.func != fi {
                return;
            }
            if let Stmt::Let { name, init, .. } = stmt {
                if contains_builtin(init, BuiltinKind::Alloc) {
                    allocd.insert(name.clone());
                    return;
                }
            }
            for_each_expr_in_stmt(stmt, |e| {
                if let Expr::Builtin(k, _, args) = e {
                    match k {
                        BuiltinKind::PtrWrite => {
                            if let Some(n) = args.first().and_then(root_var) {
                                written.insert(n.to_owned());
                            }
                        }
                        BuiltinKind::CopyNonoverlapping => {
                            if let Some(n) = args.get(1).and_then(root_var) {
                                written.insert(n.to_owned());
                            }
                        }
                        BuiltinKind::PtrRead | BuiltinKind::AssumeInitRead => {
                            if let Some(n) = args.first().and_then(root_var) {
                                if allocd.contains(n) && !written.contains(n) {
                                    out.push(heuristic(
                                        "uninit-read",
                                        UbKind::UninitRead,
                                        Some(path.clone()),
                                        format!(
                                            "`{n}` is read before any byte of its allocation \
                                             is written"
                                        ),
                                    ));
                                }
                            }
                        }
                        _ => {}
                    }
                }
            });
        });
    }
    out
}

/// Inside a `Scope` block, `&local` / `&raw local` of a binding declared in
/// that scope assigned to a place that outlives it.
fn match_dangling_local_escape(prog: &Program) -> Vec<Finding> {
    let mut out = Vec::new();
    for_each_stmt(prog, |stmt, path| {
        let Stmt::Scope(b) = stmt else { return };
        let mut declared: HashSet<&str> = HashSet::new();
        for s in &b.stmts {
            if let Stmt::Let { name, .. } = s {
                declared.insert(name);
            }
        }
        for (i, s) in b.stmts.iter().enumerate() {
            let Stmt::Assign { place, value } = s else {
                continue;
            };
            let Expr::Var(target) = place else { continue };
            if declared.contains(target.as_str()) {
                continue;
            }
            let mut escapes = false;
            walk_expr(value, &mut |e| {
                if let Expr::AddrOf(_, inner) | Expr::RawAddrOf(_, inner) = e {
                    if let Expr::Var(n) = inner.as_ref() {
                        if declared.contains(n.as_str()) {
                            escapes = true;
                        }
                    }
                }
            });
            if escapes {
                out.push(heuristic(
                    "dangling-local-escape",
                    UbKind::UseAfterScope,
                    Some(path.child(i, 0)),
                    format!("address of a scope-local escapes into `{target}`"),
                ));
            }
        }
    });
    out
}

/// Declared array types per binding, for constant-index checks.
fn let_types(prog: &Program, fi: usize) -> HashMap<String, Ty> {
    let mut tys = HashMap::new();
    if let Some(f) = prog.funcs.get(fi) {
        for (n, t) in &f.params {
            tys.insert(n.clone(), t.clone());
        }
    }
    for_each_stmt(prog, |stmt, path| {
        if path.func == fi {
            if let Stmt::Let { name, ty, .. } = stmt {
                tys.insert(name.clone(), ty.clone());
            }
        }
    });
    tys
}

fn match_const_oob_index(prog: &Program) -> Vec<Finding> {
    let mut out = Vec::new();
    for fi in 0..prog.funcs.len() {
        let tys = let_types(prog, fi);
        for_each_stmt(prog, |stmt, path| {
            if path.func != fi {
                return;
            }
            for_each_expr_in_stmt(stmt, |e| {
                let Expr::Index(base, idx) = e else { return };
                let Expr::Lit(Lit::Int(iv, _)) = idx.as_ref() else {
                    return;
                };
                let len = match base.as_ref() {
                    Expr::ArrayLit(xs) => Some(xs.len()),
                    Expr::ArrayRepeat(_, n) => Some(*n),
                    Expr::Var(n) => match tys.get(n) {
                        Some(Ty::Array(_, len)) => Some(*len),
                        _ => None,
                    },
                    _ => None,
                };
                if let Some(len) = len {
                    if *iv < 0 || *iv >= len as i128 {
                        out.push(heuristic(
                            "const-oob-index",
                            UbKind::PanicIndex,
                            Some(path.clone()),
                            format!("constant index {iv} out of bounds for length {len}"),
                        ));
                    }
                }
            });
        });
    }
    out
}

fn match_div_by_zero(prog: &Program) -> Vec<Finding> {
    let mut out = Vec::new();
    for_each_stmt(prog, |stmt, path| {
        for_each_expr_in_stmt(stmt, |e| {
            if let Expr::Binary(op @ (BinOp::Div | BinOp::Rem), _, rhs) = e {
                if matches!(rhs.as_ref(), Expr::Lit(Lit::Int(0, _))) {
                    out.push(heuristic(
                        "div-by-zero",
                        UbKind::PanicDivZero,
                        Some(path.clone()),
                        format!("{op:?} by a literal zero"),
                    ));
                }
            }
        });
    });
    out
}

/// Frees (dealloc / drop_box) keyed by the pointer binding they free.
fn match_double_free(prog: &Program) -> Vec<Finding> {
    let mut out = Vec::new();
    for fi in 0..prog.funcs.len() {
        let mut freed: HashMap<String, usize> = HashMap::new();
        for_each_stmt(prog, |stmt, path| {
            if path.func != fi {
                return;
            }
            for_each_expr_in_stmt(stmt, |e| {
                if let Expr::Builtin(BuiltinKind::Dealloc | BuiltinKind::DropBox, _, args) = e {
                    if let Some(n) = args.first().and_then(root_var) {
                        let c = freed.entry(n.to_owned()).or_insert(0);
                        *c += 1;
                        if *c == 2 {
                            out.push(heuristic(
                                "double-free",
                                UbKind::DoubleFree,
                                Some(path.clone()),
                                format!("`{n}` is freed more than once"),
                            ));
                        }
                    }
                }
            });
        });
    }
    out
}

/// Constant alloc/dealloc layout pairs that disagree.
fn match_layout_mismatch(prog: &Program) -> Vec<Finding> {
    let mut out = Vec::new();
    for fi in 0..prog.funcs.len() {
        let mut layouts: HashMap<String, (i128, i128)> = HashMap::new();
        for_each_stmt(prog, |stmt, path| {
            if path.func != fi {
                return;
            }
            if let Stmt::Let { name, init, .. } = stmt {
                let mut found = None;
                walk_expr(init, &mut |e| {
                    if let Expr::Builtin(BuiltinKind::Alloc, _, args) = e {
                        if let (Some(Expr::Lit(Lit::Int(s, _))), Some(Expr::Lit(Lit::Int(a, _)))) =
                            (args.first(), args.get(1))
                        {
                            found = Some((*s, *a));
                        }
                    }
                });
                if let Some(l) = found {
                    layouts.insert(name.clone(), l);
                }
            }
            for_each_expr_in_stmt(stmt, |e| {
                if let Expr::Builtin(BuiltinKind::Dealloc, _, args) = e {
                    let (Some(n), Some(Expr::Lit(Lit::Int(s, _))), Some(Expr::Lit(Lit::Int(a, _)))) =
                        (args.first().and_then(root_var), args.get(1), args.get(2))
                    else {
                        return;
                    };
                    if let Some((als, ala)) = layouts.get(n) {
                        if (als, ala) != (s, a) {
                            out.push(heuristic(
                                "dealloc-layout-mismatch",
                                UbKind::BadDealloc,
                                Some(path.clone()),
                                format!(
                                    "`{n}` allocated with layout ({als}, {ala}) but freed \
                                     with ({s}, {a})"
                                ),
                            ));
                        }
                    }
                }
            });
        });
    }
    out
}

/// Whether an expression is integer-valued on its face (no type inference).
fn looks_integer(e: &Expr) -> bool {
    match e {
        Expr::Lit(Lit::Int(..)) => true,
        Expr::Cast(_, Ty::Int(_)) => true,
        Expr::Builtin(BuiltinKind::PtrAddr, ..) => true,
        Expr::Binary(op, a, b) => !op.is_comparison() && (looks_integer(a) || looks_integer(b)),
        Expr::Unary(_, a) => looks_integer(a),
        _ => false,
    }
}

fn match_int_to_ptr(prog: &Program) -> Vec<Finding> {
    let mut out = Vec::new();
    for_each_stmt(prog, |stmt, path| {
        for_each_expr_in_stmt(stmt, |e| {
            if let Expr::Cast(inner, Ty::RawPtr(..)) = e {
                if looks_integer(inner) {
                    out.push(heuristic(
                        "int-to-ptr",
                        UbKind::NoProvenance,
                        Some(path.clone()),
                        "integer-to-pointer cast produces a pointer without provenance".into(),
                    ));
                }
            }
        });
    });
    out
}

fn match_conflicting_mut_reborrows(prog: &Program) -> Vec<Finding> {
    let mut out = Vec::new();
    for_each_stmt(prog, |stmt, path| {
        let mut counts: HashMap<String, usize> = HashMap::new();
        for_each_expr_in_stmt(stmt, |e| {
            if let Expr::AddrOf(Mutability::Mut, inner) = e {
                if let Expr::Var(n) = inner.as_ref() {
                    *counts.entry(n.clone()).or_insert(0) += 1;
                }
            }
        });
        for (n, c) in counts {
            if c >= 2 {
                out.push(heuristic(
                    "conflicting-mut-reborrows",
                    UbKind::ConflictingMutBorrows,
                    Some(path.clone()),
                    format!("`{n}` is mutably borrowed {c} times in one statement"),
                ));
            }
        }
    });
    out
}

/// Non-atomic static accesses inside a block, skipping `lock` regions and
/// the direct operands of atomic builtins.
fn unsynced_static_access(b: &Block) -> bool {
    fn expr_hits(e: &Expr) -> bool {
        match e {
            Expr::StaticRef(_) => true,
            Expr::Builtin(BuiltinKind::AtomicLoad | BuiltinKind::AtomicStore, _, args) => {
                // The static operand itself is synchronised; nested
                // expressions (value argument) still count.
                args.iter()
                    .skip(1)
                    .any(|a| !matches!(a, Expr::StaticRef(_)) && expr_hits(a))
            }
            Expr::Unary(_, a)
            | Expr::Cast(a, _)
            | Expr::AddrOf(_, a)
            | Expr::RawAddrOf(_, a)
            | Expr::Deref(a)
            | Expr::Field(a, _)
            | Expr::UnionField(a, _)
            | Expr::ArrayRepeat(a, _)
            | Expr::UnionLit(_, _, a) => expr_hits(a),
            Expr::Binary(_, a, b) | Expr::Index(a, b) => expr_hits(a) || expr_hits(b),
            Expr::Tuple(xs) | Expr::ArrayLit(xs) | Expr::Call(_, xs) => xs.iter().any(expr_hits),
            Expr::CallPtr(c, xs) => expr_hits(c) || xs.iter().any(expr_hits),
            Expr::Builtin(_, _, xs) => xs.iter().any(expr_hits),
            Expr::Lit(_) | Expr::Var(_) => false,
        }
    }
    fn stmt_hits(s: &Stmt) -> bool {
        if matches!(s, Stmt::Lock(..)) {
            return false;
        }
        let mut hit = false;
        for_each_expr_in_stmt(s, |e| {
            // for_each_expr_in_stmt visits roots; recurse manually so the
            // atomic-operand exemption can prune.
            hit = hit || expr_hits(e);
        });
        if hit {
            return true;
        }
        for br in 0..=child_branches(s) {
            if let Some(b) = child_block(s, br) {
                if b.stmts.iter().any(stmt_hits) {
                    return true;
                }
            }
        }
        false
    }
    b.stmts.iter().any(stmt_hits)
}

fn match_static_race(prog: &Program) -> Vec<Finding> {
    let mut out = Vec::new();
    for_each_stmt(prog, |stmt, path| {
        if let Stmt::Spawn(b) = stmt {
            if unsynced_static_access(b) {
                out.push(heuristic(
                    "static-race",
                    UbKind::RaceOnStatic,
                    Some(path.clone()),
                    "spawned block accesses a static without a lock or atomics".into(),
                ));
            }
        }
    });
    out
}

fn match_misaligned_cast(prog: &Program) -> Vec<Finding> {
    let mut out = Vec::new();
    for fi in 0..prog.funcs.len() {
        let tys = let_types(prog, fi);
        for_each_stmt(prog, |stmt, path| {
            if path.func != fi {
                return;
            }
            for_each_expr_in_stmt(stmt, |e| {
                let Expr::Cast(inner, Ty::RawPtr(to, _)) = e else {
                    return;
                };
                let Expr::Var(n) = inner.as_ref() else { return };
                let Some(Ty::RawPtr(from, _)) = tys.get(n) else {
                    return;
                };
                if let (Some(fa), Some(ta)) = (from.align(), to.align()) {
                    if ta > fa {
                        out.push(heuristic(
                            "misaligned-cast",
                            UbKind::UnalignedAccess,
                            Some(path.clone()),
                            format!(
                                "`{n}` cast from align-{fa} to align-{ta} pointee; the \
                                 address may not satisfy the stricter alignment"
                            ),
                        ));
                    }
                }
            });
        });
    }
    out
}

fn match_fn_ptr_sig(prog: &Program) -> Vec<Finding> {
    let mut out = Vec::new();
    for_each_stmt(prog, |stmt, path| {
        if let Stmt::Let { ty, init, .. } = stmt {
            if let (Ty::FnPtr(..), Expr::Var(fname)) = (ty, init) {
                if let Some(f) = prog.func(fname) {
                    if &f.fn_ptr_ty() != ty {
                        out.push(heuristic(
                            "fn-ptr-sig",
                            UbKind::FnSigMismatch,
                            Some(path.clone()),
                            format!(
                                "`{fname}` bound to a function-pointer type with a \
                                     different signature"
                            ),
                        ));
                    }
                }
            }
        }
        for_each_expr_in_stmt(stmt, |e| {
            if let Expr::Builtin(BuiltinKind::Transmute, tys, _) = e {
                if let (Some(a @ Ty::FnPtr(..)), Some(b @ Ty::FnPtr(..))) =
                    (tys.first(), tys.get(1))
                {
                    if a != b {
                        out.push(heuristic(
                            "fn-ptr-sig",
                            UbKind::FnSigMismatch,
                            Some(path.clone()),
                            "transmute changes a function pointer's signature".into(),
                        ));
                    }
                }
            }
        });
    });
    out
}

fn match_transmute_size(prog: &Program) -> Vec<Finding> {
    let mut out = Vec::new();
    for_each_stmt(prog, |stmt, path| {
        for_each_expr_in_stmt(stmt, |e| {
            if let Expr::Builtin(BuiltinKind::Transmute, tys, _) = e {
                if tys.len() == 2 {
                    let sf = ty_size(prog, &tys[0]);
                    let st = ty_size(prog, &tys[1]);
                    if sf != st || sf.is_none() {
                        out.push(heuristic(
                            "transmute-size",
                            UbKind::TransmuteSize,
                            Some(path.clone()),
                            format!(
                                "transmute between sizes {} and {}",
                                sf.map_or("?".into(), |v| v.to_string()),
                                st.map_or("?".into(), |v| v.to_string())
                            ),
                        ));
                    }
                }
            }
        });
    });
    out
}

fn match_tail_call_mismatch(prog: &Program) -> Vec<Finding> {
    let mut out = Vec::new();
    for_each_stmt(prog, |stmt, path| {
        let Stmt::TailCall(name, _) = stmt else {
            return;
        };
        let (Some(cur), Some(tgt)) = (prog.funcs.get(path.func), prog.func(name)) else {
            return;
        };
        if cur.fn_ptr_ty() != tgt.fn_ptr_ty() {
            out.push(heuristic(
                "tail-call-mismatch",
                UbKind::TailCallMismatch,
                Some(path.clone()),
                format!(
                    "tail call from `{}` to `{}` with mismatched signature",
                    cur.name, tgt.name
                ),
            ));
        }
    });
    out
}

fn match_const_unchecked_overflow(prog: &Program) -> Vec<Finding> {
    let mut out = Vec::new();
    for_each_stmt(prog, |stmt, path| {
        for_each_expr_in_stmt(stmt, |e| {
            let Expr::Builtin(
                b @ (BuiltinKind::UncheckedAdd
                | BuiltinKind::UncheckedSub
                | BuiltinKind::UncheckedMul),
                _,
                args,
            ) = e
            else {
                return;
            };
            let (Some(Expr::Lit(Lit::Int(x, t))), Some(Expr::Lit(Lit::Int(y, _)))) =
                (args.first(), args.get(1))
            else {
                return;
            };
            let r = match b {
                BuiltinKind::UncheckedAdd => x.checked_add(*y),
                BuiltinKind::UncheckedSub => x.checked_sub(*y),
                _ => x.checked_mul(*y),
            };
            if !r.is_some_and(|v| t.in_range(v)) {
                out.push(heuristic(
                    "const-unchecked-overflow",
                    UbKind::UncheckedOverflow,
                    Some(path.clone()),
                    format!("`{}` of constants overflows {t}", b.name()),
                ));
            }
        });
    });
    out
}

fn match_copy_overlap(prog: &Program) -> Vec<Finding> {
    let mut out = Vec::new();
    for_each_stmt(prog, |stmt, path| {
        for_each_expr_in_stmt(stmt, |e| {
            let Expr::Builtin(BuiltinKind::CopyNonoverlapping, _, args) = e else {
                return;
            };
            let (Some(src), Some(dst)) = (
                args.first().and_then(root_var),
                args.get(1).and_then(root_var),
            ) else {
                return;
            };
            if src == dst {
                out.push(heuristic(
                    "copy-overlap",
                    UbKind::Precondition,
                    Some(path.clone()),
                    format!("`{src}` is both source and destination of copy_nonoverlapping"),
                ));
            }
        });
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_maps_to_registered_rule() {
        // Exhaustive: a new UbKind without a table entry should fail here.
        let kinds = [
            UbKind::UseAfterFree,
            UbKind::UseAfterScope,
            UbKind::OutOfBounds,
            UbKind::DoubleFree,
            UbKind::BadDealloc,
            UbKind::Leak,
            UbKind::UnalignedAccess,
            UbKind::InvalidValue,
            UbKind::InvalidRef,
            UbKind::TransmuteSize,
            UbKind::UninitRead,
            UbKind::NoProvenance,
            UbKind::CrossAllocation,
            UbKind::StackBorrowViolation,
            UbKind::ConflictingMutBorrows,
            UbKind::WriteThroughShared,
            UbKind::RaceOnStatic,
            UbKind::RaceOnHeap,
            UbKind::UncheckedOverflow,
            UbKind::Precondition,
            UbKind::InvalidFnPtr,
            UbKind::FnSigMismatch,
            UbKind::TailCallMismatch,
            UbKind::PanicAssert,
            UbKind::PanicOverflow,
            UbKind::PanicDivZero,
            UbKind::PanicIndex,
            UbKind::IllFormed,
            UbKind::ResourceExhausted,
        ];
        for k in kinds {
            let id = rule_id_for_kind(k);
            assert!(rule_for_id(id).is_some(), "unregistered rule id `{id}`");
        }
    }

    #[test]
    fn rule_ids_unique() {
        let mut seen = HashSet::new();
        for r in RULES {
            assert!(seen.insert(r.id), "duplicate rule id `{}`", r.id);
        }
    }

    #[test]
    fn walker_covers_ten_classes() {
        let classes: HashSet<UbClass> = RULES
            .iter()
            .filter(|r| r.matcher.is_some())
            .map(|r| r.class)
            .collect();
        assert!(classes.len() >= 10, "only {} classes", classes.len());
    }
}
