//! Property suite for the analyzer: on arbitrary template-generated
//! programs — further perturbed by arbitrary repair-rule edits and semantic
//! drift — `analyze` never panics, every finding's path resolves to a real
//! statement, the result is deterministic, and sound findings never
//! contradict the oracle.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rb_dataset::all_templates;
use rb_lang::parser::parse_program;
use rb_lang::visit::get_stmt;
use rb_lang::Program;
use rb_lint::{analyze, Confidence};
use rb_llm::rules::{apply_semantic_drift, RepairRule};
use rb_miri::interp::run_program;

/// Instantiates a template and optionally mutates it with a chain of repair
/// rules (good and hallucinated) — the same program distribution the repair
/// pipeline feeds through the lint.
fn build_program(template: usize, seed: u64, muts: &[u8]) -> Program {
    let templates = all_templates();
    let t = &templates[template % templates.len()];
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let sources = (t.make)(&mut rng);
    let use_gold = seed % 3 == 0;
    let src = if use_gold {
        &sources.gold
    } else {
        &sources.buggy
    };
    let mut prog = parse_program(src).expect("template source parses");
    for &m in muts {
        if m == 255 {
            if let Some(next) = apply_semantic_drift(&prog) {
                prog = next;
            }
            continue;
        }
        let report = run_program(&prog);
        let Some(err) = report.primary() else { break };
        let pool: Vec<RepairRule> = RepairRule::ALL
            .iter()
            .chain(RepairRule::HALLUCINATIONS.iter())
            .copied()
            .collect();
        let rule = pool[m as usize % pool.len()];
        if let Some(next) = rule.apply(&prog, err) {
            prog = next;
        }
    }
    prog
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn analyze_never_panics_and_paths_are_valid(
        template in 0usize..64,
        seed in 0u64..1_000_000,
        muts in prop::collection::vec(any::<u8>(), 0..4),
    ) {
        let prog = build_program(template, seed, &muts);
        let a = analyze(&prog);
        for f in &a.findings {
            if let Some(p) = &f.path {
                prop_assert!(
                    get_stmt(&prog, p).is_some(),
                    "finding path {p} does not resolve: {f:?}"
                );
            }
        }
    }

    #[test]
    fn analyze_is_deterministic(
        template in 0usize..64,
        seed in 0u64..1_000_000,
        muts in prop::collection::vec(any::<u8>(), 0..4),
    ) {
        let prog = build_program(template, seed, &muts);
        prop_assert_eq!(analyze(&prog), analyze(&prog));
    }

    #[test]
    fn sound_findings_never_contradict_oracle(
        template in 0usize..64,
        seed in 0u64..1_000_000,
        muts in prop::collection::vec(any::<u8>(), 0..3),
    ) {
        let prog = build_program(template, seed, &muts);
        let a = analyze(&prog);
        let report = run_program(&prog);
        for f in &a.findings {
            if f.confidence == Confidence::Sound {
                prop_assert!(
                    report.errors.iter().any(|e| e.class() == f.class),
                    "sound {:?} not in oracle {:?}",
                    f.class,
                    report.errors
                );
            }
        }
        if a.complete {
            let mut want = std::collections::BTreeMap::new();
            for e in &report.errors {
                *want.entry(e.class()).or_insert(0usize) += 1;
            }
            prop_assert_eq!(a.sound_class_counts(), want);
        }
    }
}
