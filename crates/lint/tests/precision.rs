//! Precision/recall harness: `rb_lint` vs the miri oracle over the 42-case
//! seed corpus.
//!
//! The invariants this pins down:
//!
//! 1. **Zero sound false positives.** Every `Sound` finding's class appears
//!    in the oracle's error list, on buggy *and* gold programs. Soundness is
//!    the contract the preflight seam relies on, so any violation here is a
//!    release blocker, not a statistic.
//! 2. **Exactness when complete.** When the analysis claims `complete`, its
//!    sound class multiset equals the oracle's error-class multiset exactly.
//! 3. **Coverage.** The corpus exercises ≥ 10 of the 14 UB classes, and the
//!    lint's top finding agrees with the diagnosed class on every covered
//!    bucket (printed as the per-class agreement table).

use rb_dataset::Corpus;
use rb_lint::{analyze, Analysis, Confidence};
use rb_miri::{MiriReport, UbClass};
use std::collections::BTreeMap;

const SEED: u64 = 42;
const PER_CLASS: usize = 3;

fn class_multiset(report: &MiriReport) -> BTreeMap<UbClass, usize> {
    let mut out = BTreeMap::new();
    for e in &report.errors {
        *out.entry(e.class()).or_insert(0) += 1;
    }
    out
}

fn assert_no_sound_fp(id: &str, which: &str, a: &Analysis, report: &MiriReport) {
    for f in &a.findings {
        if f.confidence == Confidence::Sound {
            assert!(
                report.errors.iter().any(|e| e.class() == f.class),
                "{id} ({which}): sound finding {:?} [{}] not in oracle report {:?}",
                f.class,
                f.message,
                report.errors
            );
        }
    }
    if a.complete {
        assert_eq!(
            a.sound_class_counts(),
            class_multiset(report),
            "{id} ({which}): complete analysis disagrees with oracle multiset"
        );
    }
}

#[test]
fn corpus_precision_and_agreement() {
    let corpus = Corpus::generate_full(SEED, PER_CLASS);
    assert_eq!(corpus.cases.len(), 42, "seed corpus must be 42 cases");

    // per class: (cases, top-finding agreements, complete analyses)
    let mut table: BTreeMap<UbClass, (usize, usize, usize)> = BTreeMap::new();
    let mut flagged_classes: BTreeMap<UbClass, usize> = BTreeMap::new();

    for case in &corpus.cases {
        let buggy_report = case.run_buggy();
        let a = analyze(&case.buggy);
        assert_no_sound_fp(&case.id, "buggy", &a, &buggy_report);

        let gold_report = case.run_gold();
        let g = analyze(&case.gold);
        assert_no_sound_fp(&case.id, "gold", &g, &gold_report);

        let entry = table.entry(case.class).or_insert((0, 0, 0));
        entry.0 += 1;
        if a.complete {
            entry.2 += 1;
        }
        let agrees = a.top().is_some_and(|f| f.class == case.class);
        if agrees {
            entry.1 += 1;
        }
        if a.findings.iter().any(|f| f.class == case.class) {
            *flagged_classes.entry(case.class).or_insert(0) += 1;
        }
    }

    println!("per-class agreement (class: cases agree complete):");
    for (class, (cases, agree, complete)) in &table {
        println!(
            "  {:<16} {cases:>2} {agree:>2} {complete:>2}",
            class.label()
        );
    }

    // Tentpole acceptance: at least 10 of 14 buckets flagged by the lint.
    assert!(
        flagged_classes.len() >= 10,
        "lint flags only {} of 14 classes: {flagged_classes:?}",
        flagged_classes.len()
    );

    // The top finding should agree with the diagnosed class on the vast
    // majority of cases; require agreement on at least 10 buckets for every
    // case in the bucket.
    let fully_agreeing = table.iter().filter(|(_, (c, a, _))| a == c).count();
    assert!(
        fully_agreeing >= 10,
        "only {fully_agreeing} classes fully agree: {table:?}"
    );
}

/// The preflight seam analyses *rule-edited candidates*, so soundness must
/// hold on that distribution too: every library rule (good and
/// hallucinated) applied to every case it addresses, checked against the
/// oracle across several corpus seeds.
#[test]
fn sound_on_rule_edited_candidates() {
    use rb_llm::rules::RepairRule;
    for seed in [7, 42] {
        let corpus = Corpus::generate_full(seed, 1);
        for case in &corpus.cases {
            let report = case.run_buggy();
            let Some(primary) = report.primary() else {
                continue;
            };
            let rules = RepairRule::ALL
                .iter()
                .chain(RepairRule::HALLUCINATIONS.iter());
            for rule in rules {
                let Some(candidate) = rule.apply(&case.buggy, primary) else {
                    continue;
                };
                let a = analyze(&candidate);
                let oracle = rb_miri::interp::run_program(&candidate);
                assert_no_sound_fp(
                    &format!("{} + {}", case.id, rule.name()),
                    "candidate",
                    &a,
                    &oracle,
                );
            }
        }
    }
}

#[test]
fn analysis_is_deterministic_on_corpus() {
    let corpus = Corpus::generate_full(SEED, 1);
    for case in &corpus.cases {
        let a = analyze(&case.buggy);
        let b = analyze(&case.buggy);
        assert_eq!(a, b, "{}: analysis not deterministic", case.id);
    }
}
