//! # rb_kb — the durable half of the knowledge base
//!
//! The paper's headline capability is cross-case self-learning: a
//! knowledge base of solved repairs makes later cases cheaper (Fig. 6).
//! `rustbrain::knowledge` holds the *live* half — retrieval, query-cost
//! accounting, delta recording. This crate is the *durable* half:
//!
//! - [`codec`] — a hand-rolled, versioned, length-prefixed binary format
//!   for knowledge entries (magic header, format-version byte, trailing
//!   checksum). No serde dependency, so it works with the vendored
//!   compile-surface stubs.
//! - [`policy`] — a configurable [`MergePolicy`] replacing blind append:
//!   exact duplicates collapse into a weight counter, same-vector
//!   conflicts resolve by weight, near-duplicate vectors coalesce —
//!   bounding entry count and therefore the simulated query-scan cost.
//! - [`index`] — a [`UbClass`]-bucketed retrieval index so a query scans
//!   one bucket instead of the whole base, with the simulated cost model
//!   re-derived from bucket size.
//! - [`store`] — atomic load/save of `.rbkb` files (temp file + rename)
//!   with corruption surfaced as typed errors, never panics — plus the
//!   layout dispatch between the single file and the sharded directory.
//! - [`shard`] — the production-scale `.rbkb.d/` layout: one segment per
//!   [`UbClass`] (mirroring the index), a checksummed manifest,
//!   dirty-shard-only saves, and compaction with atomic swap-in.

#![warn(missing_docs)]

pub mod codec;
pub mod index;
pub mod policy;
pub mod shard;
pub mod store;

use rb_lang::vectorize::AstVector;
use rb_llm::RepairRule;
use rb_miri::UbClass;
use serde::{Deserialize, Serialize};

/// One stored solved case: the embedded shape of the buggy program, the
/// UB class it exhibited, the rule that repaired it, and how many solved
/// cases this entry stands for after merging (exact duplicates and
/// near-duplicates fold their counts in here instead of occupying a slot).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KbEntry {
    /// Embedding of the pruned buggy AST.
    pub vector: AstVector,
    /// UB class of the solved case.
    pub class: UbClass,
    /// The rule that produced the accepted repair.
    pub rule: RepairRule,
    /// Solved cases this entry represents (≥ 1; grows when duplicates or
    /// near-duplicates are merged into it).
    pub weight: u32,
}

impl KbEntry {
    /// A freshly learned entry representing a single solved case.
    #[must_use]
    pub fn new(vector: AstVector, class: UbClass, rule: RepairRule) -> KbEntry {
        KbEntry {
            vector,
            class,
            rule,
            weight: 1,
        }
    }
}

pub use codec::{
    decode_entries, decode_entries_iter, encode_entries, CodecError, EntriesIter, FORMAT_VERSION,
    MAGIC,
};
pub use index::{query_cost_ms, KbIndex, QUERY_BASE_MS, QUERY_PER_ENTRY_MS};
pub use policy::{ConflictResolution, MergePolicy, COMPACTION_COALESCE_THRESHOLD};
pub use shard::{load_sharded, save_sharded, CompactReport, Manifest, ShardMeta, ShardedStore};
pub use store::{
    detect_layout, load, load_any, save, save_any, SaveReport, StoreError, StoreLayout,
};
