//! The merge policy: what happens when learned entries meet.
//!
//! PR 3's recovered batch learning merged knowledge deltas by blind
//! append, so the base — and with it the simulated per-query scan cost —
//! grew without bound: every rediscovery of an already-solved shape
//! occupied a fresh slot. A [`MergePolicy`] replaces that with three
//! independently configurable reductions:
//!
//! 1. **Exact dedup** — entries with identical `(vector, class, rule)`
//!    collapse into one, summing their weights.
//! 2. **Conflict resolution** — entries with identical `(vector, class)`
//!    but different rules are a disagreement about how to fix one shape;
//!    [`ConflictResolution::HighestWeight`] keeps only the most-reinforced
//!    rule (ties break to the lowest wire code, so the outcome never
//!    depends on encounter order).
//! 3. **Near-duplicate coalescing** — same-`(class, rule)` entries whose
//!    vectors are closer than a cosine threshold describe the same shape
//!    up to noise; they fold into one representative, summing weights.
//!
//! [`MergePolicy::normalize`] applies the three in that order as a *pure
//! function of the entry multiset*: any permutation of the same entries
//! normalizes to the identical store (property-tested in
//! `tests/props.rs`). That is a deliberately stronger guarantee than the
//! engine's submission-order merge needs, and it is what makes warm-start
//! chains reproducible: cold → save → load → warm gives the same base no
//! matter how the batch's deltas were ordered.

use crate::codec::{class_code, rule_code};
use crate::KbEntry;

/// How same-`(vector, class)` entries with *different* rules resolve.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ConflictResolution {
    /// Keep every rule (a query ranks them; nothing is lost).
    KeepAll,
    /// Keep only the rule with the highest weight; ties break to the
    /// lowest rule wire code. The winner keeps its own weight — dropped
    /// rules were evidence *against* each other, not reinforcement.
    #[default]
    HighestWeight,
}

/// A configurable merge policy. See the module docs for the semantics of
/// each knob; [`MergePolicy::default`] is the bounded-growth policy the
/// engine and CLI use, [`MergePolicy::append_only`] is PR 3's behaviour.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MergePolicy {
    /// Collapse exact `(vector, class, rule)` duplicates into a weight.
    pub dedup_exact: bool,
    /// How same-shape different-rule disagreements resolve.
    pub conflict: ConflictResolution,
    /// Cosine similarity at or above which same-`(class, rule)` vectors
    /// coalesce into one entry (`None` disables coalescing).
    pub coalesce_threshold: Option<f64>,
}

/// Default cosine threshold for near-duplicate coalescing: tight enough
/// that only noise-level variants of one shape fold together (the
/// retrieval floor is 0.6 — far below).
pub const DEFAULT_COALESCE_THRESHOLD: f64 = 0.995;

/// Tightened coalescing threshold for background compaction: lower than
/// the live-merge default, so shapes the online policy kept distinct fold
/// together when a shard is re-normalized offline — bounding segment
/// growth harder than the per-batch merge does.
pub const COMPACTION_COALESCE_THRESHOLD: f64 = 0.98;

impl Default for MergePolicy {
    fn default() -> MergePolicy {
        MergePolicy {
            dedup_exact: true,
            conflict: ConflictResolution::HighestWeight,
            coalesce_threshold: Some(DEFAULT_COALESCE_THRESHOLD),
        }
    }
}

impl MergePolicy {
    /// PR 3's blind-append behaviour: nothing collapses, order is
    /// preserved, entry count grows with every delta.
    #[must_use]
    pub fn append_only() -> MergePolicy {
        MergePolicy {
            dedup_exact: false,
            conflict: ConflictResolution::KeepAll,
            coalesce_threshold: None,
        }
    }

    /// The compaction policy: exact dedup plus near-duplicate coalescing
    /// at `threshold` (typically the tightened
    /// [`COMPACTION_COALESCE_THRESHOLD`]), with conflict resolution OFF —
    /// compaction only *folds* weight, it never drops a rule, so the
    /// store's total solved-case weight is invariant under it (the
    /// property `kb compact` and the CI smoke assert).
    #[must_use]
    pub fn compaction(threshold: f64) -> MergePolicy {
        MergePolicy {
            dedup_exact: true,
            conflict: ConflictResolution::KeepAll,
            coalesce_threshold: Some(threshold),
        }
    }

    /// Whether this policy performs no reduction at all (normalize is the
    /// identity and preserves insertion order).
    #[must_use]
    pub fn is_append_only(&self) -> bool {
        !self.dedup_exact
            && self.conflict == ConflictResolution::KeepAll
            && self.coalesce_threshold.is_none()
    }

    /// Short human label for banners and `kb inspect`.
    #[must_use]
    pub fn label(&self) -> String {
        if self.is_append_only() {
            return "append-only".to_owned();
        }
        let mut parts = Vec::new();
        if self.dedup_exact {
            parts.push("dedup".to_owned());
        }
        if self.conflict == ConflictResolution::HighestWeight {
            parts.push("highest-weight".to_owned());
        }
        if let Some(t) = self.coalesce_threshold {
            parts.push(format!("coalesce@{t}"));
        }
        parts.join("+")
    }

    /// Reduces an entry multiset to its canonical form under this policy:
    /// exact dedup, then conflict resolution, then near-duplicate
    /// coalescing, returned in canonical `(class, rule, vector)` order.
    ///
    /// Pure in the multiset: permuting `entries` cannot change the result.
    /// For [`MergePolicy::append_only`] this is the identity (insertion
    /// order preserved).
    #[must_use]
    pub fn normalize(&self, entries: Vec<KbEntry>) -> Vec<KbEntry> {
        if self.is_append_only() {
            return entries;
        }
        // Decorate with bit patterns so f64 ordering is total and NaN-safe.
        let mut decorated: Vec<(Vec<u64>, KbEntry)> = entries
            .into_iter()
            .map(|e| {
                let bits = e.vector.components.iter().map(|c| c.to_bits()).collect();
                (bits, e)
            })
            .collect();

        // Pass 1 — exact dedup over (class, rule, vector bits).
        decorated.sort_by(|(ab, a), (bb, b)| {
            (class_code(a.class), rule_code(a.rule))
                .cmp(&(class_code(b.class), rule_code(b.rule)))
                .then_with(|| ab.cmp(bb))
        });
        if self.dedup_exact {
            let mut deduped: Vec<(Vec<u64>, KbEntry)> = Vec::with_capacity(decorated.len());
            for (bits, e) in decorated {
                match deduped.last_mut() {
                    Some((lb, last))
                        if last.class == e.class && last.rule == e.rule && *lb == bits =>
                    {
                        last.weight = last.weight.saturating_add(e.weight);
                    }
                    _ => deduped.push((bits, e)),
                }
            }
            decorated = deduped;
        }

        // Pass 2 — conflict resolution over (class, vector bits).
        if self.conflict == ConflictResolution::HighestWeight {
            decorated.sort_by(|(ab, a), (bb, b)| {
                class_code(a.class)
                    .cmp(&class_code(b.class))
                    .then_with(|| ab.cmp(bb))
                    .then_with(|| rule_code(a.rule).cmp(&rule_code(b.rule)))
            });
            let mut resolved: Vec<(Vec<u64>, KbEntry)> = Vec::with_capacity(decorated.len());
            for (bits, e) in decorated {
                match resolved.last_mut() {
                    Some((lb, last)) if last.class == e.class && *lb == bits => {
                        // Same shape, different rule (exact dups are gone
                        // or, without dedup, identical rules still compete
                        // harmlessly): higher weight wins; the tie falls
                        // to `last`, which has the lower rule code.
                        if e.weight > last.weight {
                            *last = e;
                        }
                    }
                    _ => resolved.push((bits, e)),
                }
            }
            decorated = resolved;
        }

        // Pass 3 — near-duplicate coalescing within (class, rule), greedy
        // in canonical order: each entry folds into the first kept entry
        // of its group within the threshold, else is kept itself.
        decorated.sort_by(|(ab, a), (bb, b)| {
            (class_code(a.class), rule_code(a.rule))
                .cmp(&(class_code(b.class), rule_code(b.rule)))
                .then_with(|| ab.cmp(bb))
        });
        let mut out: Vec<KbEntry> = Vec::with_capacity(decorated.len());
        if let Some(threshold) = self.coalesce_threshold {
            let mut group_start = 0usize; // first kept entry of the current (class, rule) group
            for (_, e) in decorated {
                if out[group_start..]
                    .first()
                    .is_some_and(|k| (k.class, k.rule) != (e.class, e.rule))
                {
                    group_start = out.len();
                }
                let absorbed = out[group_start..]
                    .iter_mut()
                    .find(|k| k.vector.cosine(&e.vector) >= threshold);
                match absorbed {
                    Some(k) => k.weight = k.weight.saturating_add(e.weight),
                    None => out.push(e),
                }
            }
        } else {
            out.extend(decorated.into_iter().map(|(_, e)| e));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_lang::vectorize::AstVector;
    use rb_llm::RepairRule;
    use rb_miri::UbClass;

    fn entry(v: &[f64], class: UbClass, rule: RepairRule, weight: u32) -> KbEntry {
        KbEntry {
            vector: AstVector {
                components: v.to_vec(),
            },
            class,
            rule,
            weight,
        }
    }

    #[test]
    fn exact_duplicates_collapse_into_weight() {
        let policy = MergePolicy {
            dedup_exact: true,
            conflict: ConflictResolution::KeepAll,
            coalesce_threshold: None,
        };
        let out = policy.normalize(vec![
            entry(&[1.0, 0.0], UbClass::Panic, RepairRule::GuardDivision, 1),
            entry(&[1.0, 0.0], UbClass::Panic, RepairRule::GuardDivision, 2),
            entry(&[0.0, 1.0], UbClass::Panic, RepairRule::GuardDivision, 1),
        ]);
        assert_eq!(out.len(), 2);
        assert_eq!(out.iter().map(|e| e.weight).sum::<u32>(), 4);
    }

    #[test]
    fn conflicts_resolve_to_highest_weight_then_lowest_code() {
        let policy = MergePolicy {
            dedup_exact: true,
            conflict: ConflictResolution::HighestWeight,
            coalesce_threshold: None,
        };
        let out = policy.normalize(vec![
            entry(&[1.0], UbClass::Panic, RepairRule::WeakenAssert, 1),
            entry(&[1.0], UbClass::Panic, RepairRule::GuardDivision, 3),
        ]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, RepairRule::GuardDivision);
        assert_eq!(out[0].weight, 3);

        // Equal weights: the lower wire code survives, whatever the order.
        let tie = |a: RepairRule, b: RepairRule| {
            policy.normalize(vec![
                entry(&[1.0], UbClass::Panic, a, 2),
                entry(&[1.0], UbClass::Panic, b, 2),
            ])
        };
        let ab = tie(RepairRule::GuardDivision, RepairRule::WeakenAssert);
        let ba = tie(RepairRule::WeakenAssert, RepairRule::GuardDivision);
        assert_eq!(ab, ba);
        assert_eq!(ab[0].rule, RepairRule::GuardDivision);
    }

    #[test]
    fn near_duplicates_coalesce_and_distinct_shapes_survive() {
        let policy = MergePolicy {
            dedup_exact: false,
            conflict: ConflictResolution::KeepAll,
            coalesce_threshold: Some(0.99),
        };
        let out = policy.normalize(vec![
            entry(&[1.0, 0.001], UbClass::Alloc, RepairRule::AddDealloc, 1),
            entry(&[1.0, 0.002], UbClass::Alloc, RepairRule::AddDealloc, 1),
            entry(&[0.0, 1.0], UbClass::Alloc, RepairRule::AddDealloc, 1),
            // Same vector but another rule: coalescing never crosses rules.
            entry(
                &[1.0, 0.001],
                UbClass::Alloc,
                RepairRule::RemoveDoubleFree,
                1,
            ),
        ]);
        assert_eq!(out.len(), 3);
        let coalesced = out
            .iter()
            .find(|e| e.rule == RepairRule::AddDealloc && e.weight == 2)
            .expect("near-duplicates should have coalesced");
        assert_eq!(coalesced.vector.components[1], 0.001);
    }

    #[test]
    fn append_only_is_identity() {
        let entries = vec![
            entry(&[1.0], UbClass::Panic, RepairRule::GuardDivision, 1),
            entry(&[1.0], UbClass::Panic, RepairRule::GuardDivision, 1),
        ];
        let policy = MergePolicy::append_only();
        assert!(policy.is_append_only());
        assert_eq!(policy.normalize(entries.clone()), entries);
        assert!(!MergePolicy::default().is_append_only());
    }

    #[test]
    fn labels_describe_the_knobs() {
        assert_eq!(MergePolicy::append_only().label(), "append-only");
        let label = MergePolicy::default().label();
        assert!(
            label.contains("dedup") && label.contains("coalesce"),
            "{label}"
        );
    }
}
