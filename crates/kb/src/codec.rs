//! The `.rbkb` binary format: hand-rolled, versioned, length-prefixed,
//! checksummed — and independent of serde, so it works today with the
//! vendored compile-surface stubs.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic            4 bytes   "RBKB"
//! format version   1 byte    currently 1
//! entry count      4 bytes   u32
//! per entry:
//!   vector dim     2 bytes   u16
//!   components     dim × 8   f64 bit patterns (round-trips NaN payloads)
//!   class          1 byte    stable UbClass code
//!   rule           1 byte    stable RepairRule code
//!   weight         4 bytes   u32
//! checksum         8 bytes   FNV-1a 64 over every preceding byte
//! ```
//!
//! The checksum covers the header too, so any single corrupted byte —
//! header, payload or trailer — is guaranteed to surface as a
//! [`CodecError`] rather than decoding into a silently wrong base.

use crate::KbEntry;
use rb_lang::vectorize::AstVector;
use rb_llm::RepairRule;
use rb_miri::UbClass;
use std::fmt;

/// File magic, the first four bytes of every `.rbkb` file.
pub const MAGIC: [u8; 4] = *b"RBKB";

/// Current format version. Bump when the entry layout changes; decoding
/// rejects versions it does not know instead of misreading them.
pub const FORMAT_VERSION: u8 = 1;

/// Why a byte stream failed to decode. Every variant is a refusal — the
/// decoder never panics and never returns a partially decoded base.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The stream does not start with [`MAGIC`].
    BadMagic {
        /// The first bytes actually found (possibly fewer than 4).
        found: Vec<u8>,
    },
    /// The format-version byte is newer (or older) than this decoder.
    UnsupportedVersion(u8),
    /// The stream ended before the announced content did.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// Bytes remain after the checksum — the file was appended to or the
    /// length prefix was corrupted.
    TrailingBytes(usize),
    /// The trailing checksum does not match the content.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum computed over the content.
        computed: u64,
    },
    /// An entry carries a class code this decoder does not know.
    BadClass(u8),
    /// An entry carries a rule code this decoder does not know.
    BadRule(u8),
    /// An entry carries a weight of zero, which no encoder produces.
    ZeroWeight,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic { found } => {
                write!(
                    f,
                    "not an .rbkb file (magic {found:02x?}, want {MAGIC:02x?})"
                )
            }
            CodecError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported format version {v} (decoder knows {FORMAT_VERSION})"
                )
            }
            CodecError::Truncated { needed, have } => {
                write!(f, "truncated: needed {needed} more bytes, have {have}")
            }
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after the checksum"),
            CodecError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:016x}, computed {computed:016x}"
            ),
            CodecError::BadClass(c) => write!(f, "unknown UB-class code {c}"),
            CodecError::BadRule(r) => write!(f, "unknown repair-rule code {r}"),
            CodecError::ZeroWeight => write!(f, "entry with weight 0"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Stable wire code of a UB class. The codes are part of the `.rbkb`
/// format: never renumber, only append.
#[must_use]
pub fn class_code(class: UbClass) -> u8 {
    match class {
        UbClass::Alloc => 0,
        UbClass::DanglingPointer => 1,
        UbClass::Panic => 2,
        UbClass::Provenance => 3,
        UbClass::Uninit => 4,
        UbClass::BothBorrow => 5,
        UbClass::DataRace => 6,
        UbClass::FuncCall => 7,
        UbClass::FuncPointer => 8,
        UbClass::StackBorrow => 9,
        UbClass::Validity => 10,
        UbClass::Unaligned => 11,
        UbClass::TailCall => 12,
        UbClass::Concurrency => 13,
        UbClass::Compile => 14,
    }
}

/// Number of distinct class codes (bucket count for the class index).
pub const NUM_CLASS_CODES: usize = 15;

/// Decodes a wire code back to a UB class.
#[must_use]
pub fn class_from_code(code: u8) -> Option<UbClass> {
    Some(match code {
        0 => UbClass::Alloc,
        1 => UbClass::DanglingPointer,
        2 => UbClass::Panic,
        3 => UbClass::Provenance,
        4 => UbClass::Uninit,
        5 => UbClass::BothBorrow,
        6 => UbClass::DataRace,
        7 => UbClass::FuncCall,
        8 => UbClass::FuncPointer,
        9 => UbClass::StackBorrow,
        10 => UbClass::Validity,
        11 => UbClass::Unaligned,
        12 => UbClass::TailCall,
        13 => UbClass::Concurrency,
        14 => UbClass::Compile,
        _ => return None,
    })
}

/// Stable wire code of a repair rule. Part of the `.rbkb` format: never
/// renumber, only append.
#[must_use]
pub fn rule_code(rule: RepairRule) -> u8 {
    match rule {
        RepairRule::UseDirectPointer => 0,
        RepairRule::BoolFromComparison => 1,
        RepairRule::TransmuteBytesToFromLe => 2,
        RepairRule::BorrowLocalInstead => 3,
        RepairRule::DirectFnUse => 4,
        RepairRule::FixFnPtrSignature => 5,
        RepairRule::UseAtomics => 6,
        RepairRule::WidenArithmetic => 7,
        RepairRule::UseRawMutDirect => 8,
        RepairRule::GuardDivision => 9,
        RepairRule::GuardIndex => 10,
        RepairRule::WeakenAssert => 11,
        RepairRule::AssertNonNull => 12,
        RepairRule::LockSpawnBodies => 13,
        RepairRule::RemoveDoubleFree => 14,
        RepairRule::FixDeallocLayout => 15,
        RepairRule::AddDealloc => 16,
        RepairRule::HoistLocalOut => 17,
        RepairRule::ReorderDeallocAfterUse => 18,
        RepairRule::AlignOffsetDown => 19,
        RepairRule::AlignOffsetUp => 20,
        RepairRule::InitializeBeforeRead => 21,
        RepairRule::UnionUseLargestField => 22,
        RepairRule::RetakePointerAfterWrite => 23,
        RepairRule::SingleMutBorrow => 24,
        RepairRule::MoveReadAfterJoin => 25,
        RepairRule::ReplaceTailCallWithReturn => 26,
        RepairRule::FixLiteralIndex => 27,
        RepairRule::CopyWithoutOverlap => 28,
        RepairRule::DeleteStatement => 29,
        RepairRule::DuplicateStatement => 30,
        RepairRule::PerturbLiteral => 31,
        RepairRule::DisableStatement => 32,
        RepairRule::StripUnsafe => 33,
        RepairRule::BreakBinding => 34,
        RepairRule::BreakTypes => 35,
    }
}

/// Decodes a wire code back to a repair rule.
#[must_use]
pub fn rule_from_code(code: u8) -> Option<RepairRule> {
    Some(match code {
        0 => RepairRule::UseDirectPointer,
        1 => RepairRule::BoolFromComparison,
        2 => RepairRule::TransmuteBytesToFromLe,
        3 => RepairRule::BorrowLocalInstead,
        4 => RepairRule::DirectFnUse,
        5 => RepairRule::FixFnPtrSignature,
        6 => RepairRule::UseAtomics,
        7 => RepairRule::WidenArithmetic,
        8 => RepairRule::UseRawMutDirect,
        9 => RepairRule::GuardDivision,
        10 => RepairRule::GuardIndex,
        11 => RepairRule::WeakenAssert,
        12 => RepairRule::AssertNonNull,
        13 => RepairRule::LockSpawnBodies,
        14 => RepairRule::RemoveDoubleFree,
        15 => RepairRule::FixDeallocLayout,
        16 => RepairRule::AddDealloc,
        17 => RepairRule::HoistLocalOut,
        18 => RepairRule::ReorderDeallocAfterUse,
        19 => RepairRule::AlignOffsetDown,
        20 => RepairRule::AlignOffsetUp,
        21 => RepairRule::InitializeBeforeRead,
        22 => RepairRule::UnionUseLargestField,
        23 => RepairRule::RetakePointerAfterWrite,
        24 => RepairRule::SingleMutBorrow,
        25 => RepairRule::MoveReadAfterJoin,
        26 => RepairRule::ReplaceTailCallWithReturn,
        27 => RepairRule::FixLiteralIndex,
        28 => RepairRule::CopyWithoutOverlap,
        29 => RepairRule::DeleteStatement,
        30 => RepairRule::DuplicateStatement,
        31 => RepairRule::PerturbLiteral,
        32 => RepairRule::DisableStatement,
        33 => RepairRule::StripUnsafe,
        34 => RepairRule::BreakBinding,
        35 => RepairRule::BreakTypes,
        _ => return None,
    })
}

/// FNV-1a 64-bit over a byte slice — the format's checksum. Not
/// cryptographic; it detects corruption, not tampering.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Encodes entries to the `.rbkb` wire format.
#[must_use]
pub fn encode_entries(entries: &[KbEntry]) -> Vec<u8> {
    encode_inner(entries.len(), entries.iter())
}

/// Encodes borrowed entries to the `.rbkb` wire format — what the
/// sharded store uses to write one class's segment out of a larger base
/// without cloning the entries first.
#[must_use]
pub fn encode_entries_refs(entries: &[&KbEntry]) -> Vec<u8> {
    encode_inner(entries.len(), entries.iter().copied())
}

fn encode_inner<'a>(count: usize, entries: impl Iterator<Item = &'a KbEntry>) -> Vec<u8> {
    // The count prefix is u32 (and per-entry dims u16); a base past
    // either bound encodes truncated-but-decodable rather than writing a
    // count the content contradicts (which would checksum fine and then
    // refuse to decode — a save that quietly bricks the store). In
    // practice the merge policy bounds the base far below this.
    debug_assert!(
        u32::try_from(count).is_ok(),
        "encoding truncates a base past u32::MAX entries"
    );
    let count = u32::try_from(count).unwrap_or(u32::MAX);
    let mut out = Vec::with_capacity(9 + count as usize * (8 + 64 * 8));
    out.extend_from_slice(&MAGIC);
    out.push(FORMAT_VERSION);
    out.extend_from_slice(&count.to_le_bytes());
    for e in entries.take(count as usize) {
        let dim = u16::try_from(e.vector.components.len()).unwrap_or(u16::MAX);
        out.extend_from_slice(&dim.to_le_bytes());
        for c in e.vector.components.iter().take(usize::from(dim)) {
            out.extend_from_slice(&c.to_bits().to_le_bytes());
        }
        out.push(class_code(e.class));
        out.push(rule_code(e.rule));
        out.extend_from_slice(&e.weight.to_le_bytes());
    }
    let checksum = fnv1a64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// A cursor over the input with typed truncation errors.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let have = self.bytes.len() - self.pos;
        if have < n {
            return Err(CodecError::Truncated { needed: n, have });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }
}

/// A streaming decoder over a `.rbkb` byte stream: entries materialize
/// one at a time instead of all at once, so a consumer can index, filter
/// or re-encode a large store without ever holding two copies of it.
///
/// Produced by [`decode_entries_iter`], which validates the header and
/// the trailing checksum *up front* — by the time the iterator yields its
/// first entry, the bytes are known to be exactly what an encoder wrote.
/// Per-entry structural validation (codes, weights, the announced count
/// matching the content) still happens lazily; the first failure is
/// yielded as an `Err` and the iterator fuses.
pub struct EntriesIter<'a> {
    /// Reader over the content region only (checksum excluded), so an
    /// overlong entry reads [`CodecError::Truncated`], never the checksum.
    r: Reader<'a>,
    remaining: usize,
    done: bool,
}

impl Iterator for EntriesIter<'_> {
    type Item = Result<KbEntry, CodecError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        if self.remaining == 0 {
            self.done = true;
            let left = self.r.bytes.len() - self.r.pos;
            if left != 0 {
                return Some(Err(CodecError::TrailingBytes(left)));
            }
            return None;
        }
        self.remaining -= 1;
        let entry = self.decode_one();
        if entry.is_err() {
            self.done = true;
        }
        Some(entry)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.done {
            (0, Some(0))
        } else {
            // The announced count bounds the entries, plus one possible
            // final `Err` item (a structural error, or TrailingBytes when
            // the content outruns the count).
            (0, Some(self.remaining + 1))
        }
    }
}

impl EntriesIter<'_> {
    /// Entries the stream still announces (an upper bound once errors are
    /// possible; exact for a well-formed stream).
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    fn decode_one(&mut self) -> Result<KbEntry, CodecError> {
        let r = &mut self.r;
        let dim = usize::from(r.u16()?);
        let mut components = Vec::with_capacity(dim);
        for _ in 0..dim {
            components.push(f64::from_bits(r.u64()?));
        }
        let class = r.u8()?;
        let class = class_from_code(class).ok_or(CodecError::BadClass(class))?;
        let rule = r.u8()?;
        let rule = rule_from_code(rule).ok_or(CodecError::BadRule(rule))?;
        let weight = r.u32()?;
        if weight == 0 {
            return Err(CodecError::ZeroWeight);
        }
        Ok(KbEntry {
            vector: AstVector { components },
            class,
            rule,
            weight,
        })
    }
}

/// Opens a streaming decoder over a `.rbkb` byte stream.
///
/// The magic, format version and trailing checksum are validated here,
/// before any entry is decoded — corruption anywhere in the stream
/// (truncation, bit flips, foreign files) surfaces as an immediate
/// [`CodecError`]. The returned [`EntriesIter`] then yields entries
/// incrementally; per-entry structural problems a checksum cannot rule
/// out (unknown codes in a hand-crafted file, a count that disagrees
/// with the content) are yielded as `Err` items.
pub fn decode_entries_iter(bytes: &[u8]) -> Result<EntriesIter<'_>, CodecError> {
    let mut r = Reader { bytes, pos: 0 };
    let magic = r.take(4).map_err(|_| CodecError::BadMagic {
        found: bytes.to_vec(),
    })?;
    if magic != MAGIC {
        return Err(CodecError::BadMagic {
            found: magic.to_vec(),
        });
    }
    let version = r.u8()?;
    if version != FORMAT_VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let count = r.u32()? as usize;
    let have = bytes.len() - r.pos;
    if have < 8 {
        return Err(CodecError::Truncated { needed: 8, have });
    }
    let content_end = bytes.len() - 8;
    let stored = u64::from_le_bytes(bytes[content_end..].try_into().expect("len 8"));
    let computed = fnv1a64(&bytes[..content_end]);
    if stored != computed {
        return Err(CodecError::ChecksumMismatch { stored, computed });
    }
    Ok(EntriesIter {
        r: Reader {
            bytes: &bytes[..content_end],
            pos: r.pos,
        },
        remaining: count,
        done: false,
    })
}

/// Decodes a `.rbkb` byte stream back into entries.
///
/// Validates the magic, version, per-entry codes, the exact stream length
/// and the trailing checksum; any corruption — truncation, bit flips,
/// foreign files — returns a [`CodecError`] instead of panicking. This is
/// [`decode_entries_iter`] collected; use the iterator directly when the
/// store is large and entries can be consumed incrementally.
pub fn decode_entries(bytes: &[u8]) -> Result<Vec<KbEntry>, CodecError> {
    decode_entries_iter(bytes)?.collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(bits: &[f64], class: UbClass, rule: RepairRule, weight: u32) -> KbEntry {
        KbEntry {
            vector: AstVector {
                components: bits.to_vec(),
            },
            class,
            rule,
            weight,
        }
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let entries = vec![
            entry(
                &[0.5, -1.25, f64::NAN, 0.0],
                UbClass::Alloc,
                RepairRule::AddDealloc,
                3,
            ),
            entry(&[], UbClass::Compile, RepairRule::BreakTypes, 1),
            entry(
                &[1e300, -0.0],
                UbClass::DataRace,
                RepairRule::UseAtomics,
                u32::MAX,
            ),
        ];
        let decoded = decode_entries(&encode_entries(&entries)).unwrap();
        assert_eq!(decoded.len(), entries.len());
        for (d, e) in decoded.iter().zip(&entries) {
            assert_eq!((d.class, d.rule, d.weight), (e.class, e.rule, e.weight));
            // Bit-level comparison so NaN and -0.0 count as preserved.
            let db: Vec<u64> = d.vector.components.iter().map(|c| c.to_bits()).collect();
            let eb: Vec<u64> = e.vector.components.iter().map(|c| c.to_bits()).collect();
            assert_eq!(db, eb);
        }
    }

    #[test]
    fn class_and_rule_codes_are_total_and_stable() {
        for class in UbClass::ALL.into_iter().chain([UbClass::Compile]) {
            assert_eq!(class_from_code(class_code(class)), Some(class));
        }
        assert!(usize::from(class_code(UbClass::Compile)) < NUM_CLASS_CODES);
        let mut seen = std::collections::HashSet::new();
        for code in 0..=u8::MAX {
            if let Some(rule) = rule_from_code(code) {
                assert_eq!(rule_code(rule), code);
                assert!(seen.insert(rule), "code {code} duplicates {rule:?}");
            }
        }
        assert_eq!(seen.len(), 36, "every RepairRule variant needs a code");
    }

    #[test]
    fn rejects_foreign_magic_and_versions() {
        assert!(matches!(
            decode_entries(b"JSON{}"),
            Err(CodecError::BadMagic { .. })
        ));
        let mut bytes = encode_entries(&[]);
        bytes[4] = 99;
        assert!(matches!(
            decode_entries(&bytes),
            Err(CodecError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn any_truncation_is_an_error() {
        let entries = vec![entry(
            &[1.0, 2.0],
            UbClass::Panic,
            RepairRule::GuardDivision,
            2,
        )];
        let bytes = encode_entries(&entries);
        for len in 0..bytes.len() {
            assert!(
                decode_entries(&bytes[..len]).is_err(),
                "prefix of {len} bytes decoded"
            );
        }
    }

    #[test]
    fn any_single_byte_flip_is_an_error() {
        let entries = vec![entry(
            &[0.25],
            UbClass::Uninit,
            RepairRule::InitializeBeforeRead,
            1,
        )];
        let bytes = encode_entries(&entries);
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            assert!(
                decode_entries(&corrupt).is_err(),
                "flip at byte {i} decoded"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        // A blind append lands after the checksum: the checksum (computed
        // over everything but the trailing 8 bytes) no longer lines up.
        let mut bytes = encode_entries(&[]);
        bytes.push(0);
        assert!(matches!(
            decode_entries(&bytes),
            Err(CodecError::ChecksumMismatch { .. })
        ));
        // Junk *inside* a checksum-valid stream — content beyond the
        // announced entry count — is the TrailingBytes refusal.
        let mut bytes = encode_entries(&[]);
        bytes.truncate(bytes.len() - 8); // drop the checksum
        bytes.push(0xAB); // junk the count does not announce
        let checksum = fnv1a64(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        assert!(matches!(
            decode_entries(&bytes),
            Err(CodecError::TrailingBytes(1))
        ));
    }

    #[test]
    fn streaming_decode_yields_entries_incrementally() {
        let entries = vec![
            entry(&[1.0, 2.0], UbClass::Panic, RepairRule::GuardDivision, 2),
            entry(&[0.5], UbClass::Alloc, RepairRule::AddDealloc, 1),
            entry(&[], UbClass::Compile, RepairRule::BreakTypes, 7),
        ];
        let bytes = encode_entries(&entries);
        let mut it = decode_entries_iter(&bytes).unwrap();
        assert_eq!(it.remaining(), 3);
        assert_eq!(it.next().unwrap().unwrap(), entries[0]);
        assert_eq!(it.remaining(), 2);
        let rest: Result<Vec<KbEntry>, CodecError> = it.collect();
        assert_eq!(rest.unwrap(), entries[1..]);
    }

    #[test]
    fn streaming_decode_rejects_corruption_before_the_first_entry() {
        let entries = vec![entry(&[0.25], UbClass::Uninit, RepairRule::GuardIndex, 1)];
        let mut bytes = encode_entries(&entries);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        // The checksum is verified when the iterator is opened, so the
        // consumer can never stream entries out of a corrupt file.
        assert!(matches!(
            decode_entries_iter(&bytes),
            Err(CodecError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn streaming_decode_fuses_after_a_structural_error() {
        // A hand-crafted stream with a valid checksum but an unknown class
        // code: the iterator yields the typed error once, then fuses.
        let good = entry(&[1.0], UbClass::Panic, RepairRule::GuardDivision, 1);
        let mut bytes = encode_entries(&[good.clone(), good]);
        bytes.truncate(bytes.len() - 8);
        let class_at = 4 + 1 + 4 + 2 + 8; // header, dim, one component
        bytes[class_at] = 200; // no such class code
        let checksum = fnv1a64(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        let mut it = decode_entries_iter(&bytes).unwrap();
        assert!(matches!(it.next(), Some(Err(CodecError::BadClass(200)))));
        assert!(it.next().is_none(), "iterator must fuse after an error");
    }
}
