//! The class-bucketed retrieval index and the simulated query-cost model
//! derived from it.
//!
//! Retrieval always asks for "entries like this *within this UB class*"
//! (the pre-index scorer awarded a same-class bonus for exactly that
//! reason), so the index buckets entry positions by [`UbClass`]: a query
//! scans one bucket instead of the whole base. The simulated cost model
//! follows the scan honestly — a fixed per-query base plus a per-entry
//! charge over the *bucket*, not the base — which keeps the paper's
//! knowledge-overhead trend truthful as the store grows: overhead grows
//! with how much knowledge is *relevant*, not with how much is stored.

use crate::codec::{class_code, NUM_CLASS_CODES};
use crate::KbEntry;
use rb_miri::UbClass;

/// Fixed per-query cost in simulated milliseconds (the embedding and
/// retrieval round-trip of the abstract reasoning agent).
pub const QUERY_BASE_MS: f64 = 9_000.0;

/// Per-scanned-entry cost in simulated milliseconds.
pub const QUERY_PER_ENTRY_MS: f64 = 60.0;

/// Simulated cost of one query that scans `scanned` entries.
#[must_use]
pub fn query_cost_ms(scanned: usize) -> f64 {
    QUERY_BASE_MS + QUERY_PER_ENTRY_MS * scanned as f64
}

/// Positions of a knowledge base's entries, bucketed by UB class.
///
/// The index stores positions into the owner's entry vector (not copies),
/// so it must be rebuilt when the entry vector is reordered (e.g. by a
/// policy merge) and extended via [`KbIndex::note_insert`] on appends.
/// Owners can (and in debug builds should) check that contract with
/// [`KbIndex::is_consistent`].
///
/// Positions are `u64` on the wire-facing side: a store past `u32::MAX`
/// entries keeps indexing correctly instead of aborting mid-batch (the
/// pre-fix index `expect`ed the narrowing and panicked).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KbIndex {
    buckets: Vec<Vec<u64>>,
}

impl KbIndex {
    /// An index over no entries.
    #[must_use]
    pub fn new() -> KbIndex {
        KbIndex {
            buckets: vec![Vec::new(); NUM_CLASS_CODES],
        }
    }

    /// Builds the index for an entry slice.
    #[must_use]
    pub fn build(entries: &[KbEntry]) -> KbIndex {
        let mut index = KbIndex::new();
        for (i, e) in entries.iter().enumerate() {
            index.note_insert(i, e.class);
        }
        index
    }

    /// Records that an entry of `class` was appended at `position`.
    ///
    /// Positions widen losslessly into `u64`: a base that outgrows
    /// `u32::MAX` entries degrades into more memory, not a panic.
    pub fn note_insert(&mut self, position: usize, class: UbClass) {
        if self.buckets.is_empty() {
            self.buckets = vec![Vec::new(); NUM_CLASS_CODES];
        }
        self.buckets[usize::from(class_code(class))].push(position as u64);
    }

    /// Entry positions holding `class` entries, in insertion order.
    #[must_use]
    pub fn bucket(&self, class: UbClass) -> &[u64] {
        self.buckets
            .get(usize::from(class_code(class)))
            .map_or(&[], Vec::as_slice)
    }

    /// Whether this index faithfully describes `entries`: every position
    /// is in range, points at an entry of the bucket's class, and every
    /// entry is indexed exactly once. This is the staleness invariant a
    /// reorder (e.g. a policy merge) breaks unless the owner rebuilds —
    /// owners `debug_assert!` it at their read and merge boundaries.
    #[must_use]
    pub fn is_consistent(&self, entries: &[KbEntry]) -> bool {
        if self.len() != entries.len() {
            return false;
        }
        // With bucket sizes summing to entries.len(), "each entry indexed
        // exactly once" reduces to "no position indexed twice".
        let mut seen = vec![false; entries.len()];
        self.buckets.iter().enumerate().all(|(code, bucket)| {
            bucket.iter().all(|&p| {
                let Some(e) = usize::try_from(p).ok().and_then(|p| entries.get(p)) else {
                    return false;
                };
                let fresh = !std::mem::replace(&mut seen[p as usize], true);
                fresh && u8::try_from(code).is_ok_and(|code| class_code(e.class) == code)
            })
        })
    }

    /// Number of entries a query for `class` will scan.
    #[must_use]
    pub fn bucket_len(&self, class: UbClass) -> usize {
        self.bucket(class).len()
    }

    /// Entry count across all buckets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum()
    }

    /// Whether the index covers no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(Vec::is_empty)
    }

    /// `(class, bucket size)` pairs for non-empty buckets, in wire-code
    /// order (the `kb inspect` histogram).
    #[must_use]
    pub fn histogram(&self) -> Vec<(UbClass, usize)> {
        use crate::codec::class_from_code;
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, b)| !b.is_empty())
            .filter_map(|(code, b)| class_from_code(u8::try_from(code).ok()?).map(|c| (c, b.len())))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_lang::vectorize::AstVector;
    use rb_llm::RepairRule;

    fn entry(class: UbClass) -> KbEntry {
        KbEntry::new(
            AstVector {
                components: vec![1.0],
            },
            class,
            RepairRule::GuardDivision,
        )
    }

    #[test]
    fn buckets_partition_positions_by_class() {
        let entries = vec![
            entry(UbClass::Panic),
            entry(UbClass::Alloc),
            entry(UbClass::Panic),
        ];
        let index = KbIndex::build(&entries);
        assert_eq!(index.bucket(UbClass::Panic), &[0, 2]);
        assert_eq!(index.bucket(UbClass::Alloc), &[1]);
        assert_eq!(index.bucket_len(UbClass::DataRace), 0);
        assert_eq!(index.len(), 3);
        assert!(!index.is_empty());
        assert_eq!(
            index.histogram(),
            vec![(UbClass::Alloc, 1), (UbClass::Panic, 2)]
        );
    }

    #[test]
    fn note_insert_extends_a_default_index() {
        let mut index = KbIndex::default();
        assert!(index.is_empty());
        index.note_insert(0, UbClass::Uninit);
        assert_eq!(index.bucket(UbClass::Uninit), &[0]);
    }

    #[test]
    fn positions_past_u32_index_without_panicking() {
        // Regression: the pre-fix index narrowed positions to u32 with an
        // `expect`, so entry 4_294_967_296 of a huge store aborted the
        // whole batch. Widened positions just keep counting.
        let mut index = KbIndex::new();
        let huge = u32::MAX as usize + 1;
        index.note_insert(huge, UbClass::Alloc);
        assert_eq!(index.bucket(UbClass::Alloc), &[huge as u64]);
        assert_eq!(index.len(), 1);
    }

    #[test]
    fn consistency_detects_stale_positions() {
        let entries = vec![
            entry(UbClass::Panic),
            entry(UbClass::Alloc),
            entry(UbClass::Panic),
        ];
        let index = KbIndex::build(&entries);
        assert!(index.is_consistent(&entries));
        // A reorder without a rebuild is exactly the staleness bug.
        let mut reordered = entries.clone();
        reordered.swap(0, 1);
        assert!(!index.is_consistent(&reordered));
        // So is an index that covers fewer entries than exist…
        assert!(!index.is_consistent(&[entries[0].clone()]));
        // …and a stale out-of-range position.
        assert!(!KbIndex::build(&entries).is_consistent(&entries[..2]));
        // A duplicated position hides an unindexed entry even though the
        // totals match: "exactly once" must actually mean exactly once.
        let mut duplicated = KbIndex::new();
        duplicated.note_insert(0, UbClass::Panic);
        duplicated.note_insert(0, UbClass::Panic);
        duplicated.note_insert(1, UbClass::Alloc);
        assert!(!duplicated.is_consistent(&entries));
    }

    #[test]
    fn cost_scales_with_scanned_entries_only() {
        assert_eq!(query_cost_ms(0), QUERY_BASE_MS);
        assert!(query_cost_ms(10) < query_cost_ms(1000));
        assert_eq!(query_cost_ms(7), QUERY_BASE_MS + 7.0 * QUERY_PER_ENTRY_MS);
    }
}
