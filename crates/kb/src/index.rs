//! The class-bucketed retrieval index and the simulated query-cost model
//! derived from it.
//!
//! Retrieval always asks for "entries like this *within this UB class*"
//! (the pre-index scorer awarded a same-class bonus for exactly that
//! reason), so the index buckets entry positions by [`UbClass`]: a query
//! scans one bucket instead of the whole base. The simulated cost model
//! follows the scan honestly — a fixed per-query base plus a per-entry
//! charge over the *bucket*, not the base — which keeps the paper's
//! knowledge-overhead trend truthful as the store grows: overhead grows
//! with how much knowledge is *relevant*, not with how much is stored.

use crate::codec::{class_code, NUM_CLASS_CODES};
use crate::KbEntry;
use rb_miri::UbClass;

/// Fixed per-query cost in simulated milliseconds (the embedding and
/// retrieval round-trip of the abstract reasoning agent).
pub const QUERY_BASE_MS: f64 = 9_000.0;

/// Per-scanned-entry cost in simulated milliseconds.
pub const QUERY_PER_ENTRY_MS: f64 = 60.0;

/// Simulated cost of one query that scans `scanned` entries.
#[must_use]
pub fn query_cost_ms(scanned: usize) -> f64 {
    QUERY_BASE_MS + QUERY_PER_ENTRY_MS * scanned as f64
}

/// Positions of a knowledge base's entries, bucketed by UB class.
///
/// The index stores positions into the owner's entry vector (not copies),
/// so it must be rebuilt when the entry vector is reordered (e.g. by a
/// policy merge) and extended via [`KbIndex::note_insert`] on appends.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KbIndex {
    buckets: Vec<Vec<u32>>,
}

impl KbIndex {
    /// An index over no entries.
    #[must_use]
    pub fn new() -> KbIndex {
        KbIndex {
            buckets: vec![Vec::new(); NUM_CLASS_CODES],
        }
    }

    /// Builds the index for an entry slice.
    #[must_use]
    pub fn build(entries: &[KbEntry]) -> KbIndex {
        let mut index = KbIndex::new();
        for (i, e) in entries.iter().enumerate() {
            index.note_insert(i, e.class);
        }
        index
    }

    /// Records that an entry of `class` was appended at `position`.
    pub fn note_insert(&mut self, position: usize, class: UbClass) {
        if self.buckets.is_empty() {
            self.buckets = vec![Vec::new(); NUM_CLASS_CODES];
        }
        self.buckets[usize::from(class_code(class))]
            .push(u32::try_from(position).expect("kb larger than u32 positions"));
    }

    /// Entry positions holding `class` entries, in insertion order.
    #[must_use]
    pub fn bucket(&self, class: UbClass) -> &[u32] {
        self.buckets
            .get(usize::from(class_code(class)))
            .map_or(&[], Vec::as_slice)
    }

    /// Number of entries a query for `class` will scan.
    #[must_use]
    pub fn bucket_len(&self, class: UbClass) -> usize {
        self.bucket(class).len()
    }

    /// Entry count across all buckets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum()
    }

    /// Whether the index covers no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(Vec::is_empty)
    }

    /// `(class, bucket size)` pairs for non-empty buckets, in wire-code
    /// order (the `kb inspect` histogram).
    #[must_use]
    pub fn histogram(&self) -> Vec<(UbClass, usize)> {
        use crate::codec::class_from_code;
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, b)| !b.is_empty())
            .filter_map(|(code, b)| class_from_code(u8::try_from(code).ok()?).map(|c| (c, b.len())))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_lang::vectorize::AstVector;
    use rb_llm::RepairRule;

    fn entry(class: UbClass) -> KbEntry {
        KbEntry::new(
            AstVector {
                components: vec![1.0],
            },
            class,
            RepairRule::GuardDivision,
        )
    }

    #[test]
    fn buckets_partition_positions_by_class() {
        let entries = vec![
            entry(UbClass::Panic),
            entry(UbClass::Alloc),
            entry(UbClass::Panic),
        ];
        let index = KbIndex::build(&entries);
        assert_eq!(index.bucket(UbClass::Panic), &[0, 2]);
        assert_eq!(index.bucket(UbClass::Alloc), &[1]);
        assert_eq!(index.bucket_len(UbClass::DataRace), 0);
        assert_eq!(index.len(), 3);
        assert!(!index.is_empty());
        assert_eq!(
            index.histogram(),
            vec![(UbClass::Alloc, 1), (UbClass::Panic, 2)]
        );
    }

    #[test]
    fn note_insert_extends_a_default_index() {
        let mut index = KbIndex::default();
        assert!(index.is_empty());
        index.note_insert(0, UbClass::Uninit);
        assert_eq!(index.bucket(UbClass::Uninit), &[0]);
    }

    #[test]
    fn cost_scales_with_scanned_entries_only() {
        assert_eq!(query_cost_ms(0), QUERY_BASE_MS);
        assert!(query_cost_ms(10) < query_cost_ms(1000));
        assert_eq!(query_cost_ms(7), QUERY_BASE_MS + 7.0 * QUERY_PER_ENTRY_MS);
    }
}
