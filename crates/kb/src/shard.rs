//! The sharded `.rbkb.d/` store layout: one segment file per
//! [`UbClass`], a checksummed manifest, and background-friendly
//! compaction with atomic swap-in.
//!
//! The single-file `.rbkb` store loads every entry to answer any
//! question. At production scale (the roadmap's millions of entries) that
//! is the wrong shape: retrieval is class-scoped — the [`crate::index`]
//! buckets by [`UbClass`] for exactly that reason — so the durable layout
//! should mirror it. A sharded store is a directory:
//!
//! ```text
//! store.rbkb.d/
//!   MANIFEST.rbkbm            checksummed manifest (see below)
//!   shard-00-90f3….rbkb       Alloc segment    — a complete .rbkb file
//!   shard-02-55a1….rbkb       Panic segment    — a complete .rbkb file
//!   …                         (only non-empty classes have segments)
//! ```
//!
//! Every segment is itself a valid single-file `.rbkb` stream (same
//! codec, same checksums), so any tool that reads the old format can read
//! one shard — migration needs no second decoder. Segment names carry the
//! FNV-64 of their content: a writer never modifies a live segment, it
//! writes the replacement under a new name, atomically renames the new
//! manifest into place, and only then deletes segments referenced by
//! neither its own manifest nor the one currently on disk. A crash at
//! any step leaves the previous manifest pointing at intact files.
//! Concurrent in-process saves are serialized whole (segment writes →
//! manifest rename → cleanup) under a process-global lock and resolve
//! last-writer-wins, like the single-file layout's atomic rename;
//! concurrent writers in separate processes are not supported (readers
//! are always safe).
//!
//! Manifest wire format (all integers little-endian):
//!
//! ```text
//! magic            4 bytes   "RBKM"
//! format version   1 byte    currently 1
//! shard count      1 byte    ≤ NUM_CLASS_CODES
//! per shard (ascending class code):
//!   class          1 byte    stable UbClass wire code
//!   entries        8 bytes   u64
//!   weight         8 bytes   u64 (sum of entry weights)
//!   bytes          8 bytes   u64 (segment file length)
//!   checksum       8 bytes   FNV-1a 64 over the segment file's bytes
//! checksum         8 bytes   FNV-1a 64 over every preceding byte
//! ```
//!
//! Loads are incremental twice over: a query for one class opens only
//! that class's segment ([`ShardedStore::load_class`], counted per shard
//! so tests can assert nothing else was touched), and each segment
//! decodes through the streaming [`crate::codec::decode_entries_iter`]
//! rather than materializing before validating.

use crate::codec::{
    class_code, class_from_code, decode_entries_iter, encode_entries_refs, fnv1a64, CodecError,
    NUM_CLASS_CODES,
};
use crate::policy::MergePolicy;
use crate::store::{io_err, write_atomic, SaveReport, StoreError};
use crate::KbEntry;
use rb_miri::UbClass;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Serializes whole sharded-save critical sections (segment writes →
/// manifest rename → cleanup) within this process. Without it, writer
/// A's cleanup could delete writer B's freshly written segments in the
/// window before B renames its manifest — bricking the store even
/// though every individual file operation is atomic. Saves are rare
/// (once per batch), so a process-global lock costs nothing measurable.
/// Concurrent writers in *separate processes* remain unsupported (the
/// conservative manifest-union cleanup narrows but cannot close that
/// window); readers are always safe.
static SAVE_LOCK: Mutex<()> = Mutex::new(());

/// File name of the manifest inside a `.rbkb.d/` directory.
pub const MANIFEST_NAME: &str = "MANIFEST.rbkbm";

/// Manifest magic, the first four bytes of every `MANIFEST.rbkbm`.
pub const MANIFEST_MAGIC: [u8; 4] = *b"RBKM";

/// Current manifest format version, versioned independently of (but
/// alongside) the segment codec's [`crate::codec::FORMAT_VERSION`].
pub const MANIFEST_VERSION: u8 = 1;

/// One segment's record in the manifest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardMeta {
    /// UB class this segment holds.
    pub class: UbClass,
    /// Entries stored in the segment.
    pub entries: u64,
    /// Sum of the segment's entry weights (solved cases represented).
    pub weight: u64,
    /// Segment file length in bytes.
    pub bytes: u64,
    /// FNV-1a 64 over the segment file's contents — also the suffix of
    /// the segment's file name, which is what makes swaps atomic.
    pub checksum: u64,
}

impl ShardMeta {
    /// The segment's content-addressed file name.
    #[must_use]
    pub fn file_name(&self) -> String {
        segment_file_name(self.class, self.checksum)
    }
}

/// Content-addressed segment file name for `class` with `checksum`.
#[must_use]
pub fn segment_file_name(class: UbClass, checksum: u64) -> String {
    format!("shard-{:02}-{:016x}.rbkb", class_code(class), checksum)
}

/// The decoded manifest: segment records in ascending class-code order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Per-segment records, ascending by class wire code.
    pub shards: Vec<ShardMeta>,
}

impl Manifest {
    /// The record for `class`, if the class has a segment.
    #[must_use]
    pub fn shard(&self, class: UbClass) -> Option<&ShardMeta> {
        self.shards.iter().find(|m| m.class == class)
    }

    /// Total entries across all segments.
    #[must_use]
    pub fn total_entries(&self) -> u64 {
        self.shards.iter().map(|m| m.entries).sum()
    }

    /// Total solved-case weight across all segments.
    #[must_use]
    pub fn total_weight(&self) -> u64 {
        self.shards.iter().map(|m| m.weight).sum()
    }

    /// Encodes the manifest to its wire format. The count byte and the
    /// records written always agree: a manifest somehow holding more
    /// than [`NUM_CLASS_CODES`] records (impossible via the store, but
    /// `shards` is a public field) encodes truncated-but-decodable
    /// rather than writing a count its body contradicts.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        debug_assert!(
            self.shards.len() <= NUM_CLASS_CODES,
            "manifest with more records than UB classes"
        );
        let count = self.shards.len().min(NUM_CLASS_CODES);
        let mut out = Vec::with_capacity(6 + count * 33 + 8);
        out.extend_from_slice(&MANIFEST_MAGIC);
        out.push(MANIFEST_VERSION);
        out.push(u8::try_from(count).expect("count <= 15"));
        for m in &self.shards[..count] {
            out.push(class_code(m.class));
            out.extend_from_slice(&m.entries.to_le_bytes());
            out.extend_from_slice(&m.weight.to_le_bytes());
            out.extend_from_slice(&m.bytes.to_le_bytes());
            out.extend_from_slice(&m.checksum.to_le_bytes());
        }
        let checksum = fnv1a64(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Decodes a manifest, validating magic, version, structure and the
    /// trailing checksum — corruption is a typed [`CodecError`].
    pub fn decode(bytes: &[u8]) -> Result<Manifest, CodecError> {
        let header = 6usize;
        if bytes.len() < header + 8 {
            return Err(CodecError::Truncated {
                needed: header + 8,
                have: bytes.len(),
            });
        }
        if bytes[..4] != MANIFEST_MAGIC {
            return Err(CodecError::BadMagic {
                found: bytes[..4].to_vec(),
            });
        }
        if bytes[4] != MANIFEST_VERSION {
            return Err(CodecError::UnsupportedVersion(bytes[4]));
        }
        let count = usize::from(bytes[5]);
        let content_end = bytes.len() - 8;
        let stored = u64::from_le_bytes(bytes[content_end..].try_into().expect("len 8"));
        let computed = fnv1a64(&bytes[..content_end]);
        if stored != computed {
            return Err(CodecError::ChecksumMismatch { stored, computed });
        }
        let body = &bytes[header..content_end];
        if body.len() != count * 33 {
            return Err(CodecError::Truncated {
                needed: count * 33,
                have: body.len(),
            });
        }
        let mut shards = Vec::with_capacity(count);
        let u64_at = |rec: &[u8], off: usize| {
            u64::from_le_bytes(rec[off..off + 8].try_into().expect("len 8"))
        };
        for rec in body.chunks_exact(33) {
            let class = class_from_code(rec[0]).ok_or(CodecError::BadClass(rec[0]))?;
            shards.push(ShardMeta {
                class,
                entries: u64_at(rec, 1),
                weight: u64_at(rec, 9),
                bytes: u64_at(rec, 17),
                checksum: u64_at(rec, 25),
            });
        }
        Ok(Manifest { shards })
    }
}

/// What a [`ShardedStore::compact`] pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactReport {
    /// Segments whose content changed and were rewritten.
    pub shards_compacted: usize,
    /// Entries across the store before compaction.
    pub entries_before: u64,
    /// Entries after compaction (≤ before; the policy only folds).
    pub entries_after: u64,
    /// Total solved-case weight before compaction.
    pub weight_before: u64,
    /// Total solved-case weight after (equal to before under a
    /// weight-preserving policy like [`MergePolicy::compaction`]).
    pub weight_after: u64,
}

/// A handle on a `.rbkb.d/` sharded store: the verified manifest plus
/// per-shard load counters, so callers — and the acceptance tests — can
/// prove a single-class query touched exactly one segment file.
#[derive(Debug)]
pub struct ShardedStore {
    dir: PathBuf,
    manifest: Manifest,
    /// Segment reads per class wire code since this handle was opened.
    loads: [u64; NUM_CLASS_CODES],
}

impl ShardedStore {
    /// Opens an existing sharded store, reading and verifying the
    /// manifest (segments are verified lazily, when loaded).
    pub fn open(dir: &Path) -> Result<ShardedStore, StoreError> {
        let manifest_path = dir.join(MANIFEST_NAME);
        let bytes = std::fs::read(&manifest_path).map_err(|e| io_err(&manifest_path, e))?;
        let manifest = Manifest::decode(&bytes).map_err(|source| StoreError::Corrupt {
            path: manifest_path,
            source,
        })?;
        Ok(ShardedStore {
            dir: dir.to_path_buf(),
            manifest,
            loads: [0; NUM_CLASS_CODES],
        })
    }

    /// Creates an empty sharded store at `dir` (directory and manifest).
    pub fn create(dir: &Path) -> Result<ShardedStore, StoreError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        let store = ShardedStore {
            dir: dir.to_path_buf(),
            manifest: Manifest::default(),
            loads: [0; NUM_CLASS_CODES],
        };
        write_atomic(&dir.join(MANIFEST_NAME), &store.manifest.encode())?;
        Ok(store)
    }

    /// Opens `dir` if it already holds a manifest, otherwise creates an
    /// empty store there.
    pub fn open_or_create(dir: &Path) -> Result<ShardedStore, StoreError> {
        if dir.join(MANIFEST_NAME).is_file() {
            ShardedStore::open(dir)
        } else {
            ShardedStore::create(dir)
        }
    }

    /// The store's directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The verified manifest.
    #[must_use]
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Segment reads performed for `class` through this handle.
    #[must_use]
    pub fn loads(&self, class: UbClass) -> u64 {
        self.loads[usize::from(class_code(class))]
    }

    /// Segment reads across all classes through this handle.
    #[must_use]
    pub fn total_loads(&self) -> u64 {
        self.loads.iter().sum()
    }

    /// Loads one class's entries, touching only that class's segment
    /// file (no segment: empty vec, no read counted). This is the
    /// sharding contract: a single-class query costs one shard.
    pub fn load_class(&mut self, class: UbClass) -> Result<Vec<KbEntry>, StoreError> {
        let Some(meta) = self.manifest.shard(class).copied() else {
            return Ok(Vec::new());
        };
        self.loads[usize::from(class_code(class))] += 1;
        read_segment(&self.dir, &meta)
    }

    /// Loads every entry, one segment at a time in manifest (class-code)
    /// order. Entries arrive grouped by class — the canonical order any
    /// reducing [`MergePolicy`] normalizes to.
    pub fn load_all(&mut self) -> Result<Vec<KbEntry>, StoreError> {
        let mut out = Vec::new();
        for meta in self.manifest.shards.clone() {
            self.loads[usize::from(class_code(meta.class))] += 1;
            out.extend(read_segment(&self.dir, &meta)?);
        }
        Ok(out)
    }

    /// Saves `entries` into the sharded layout, rewriting **only the
    /// segments whose content changed**: each class's entries are encoded
    /// and checksummed, and a segment whose checksum matches the manifest
    /// is left untouched on disk. New segments are written under
    /// content-addressed names, the manifest is swapped in atomically,
    /// and only then are unreferenced segments deleted — a crash at any
    /// point leaves a consistent store.
    pub fn save(&mut self, entries: &[KbEntry]) -> Result<SaveReport, StoreError> {
        let _guard = SAVE_LOCK.lock().expect("sharded save lock poisoned");
        let mut groups: Vec<Vec<&KbEntry>> = vec![Vec::new(); NUM_CLASS_CODES];
        for e in entries {
            groups[usize::from(class_code(e.class))].push(e);
        }
        let mut report = SaveReport::default();
        let mut shards = Vec::new();
        for (code, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let class = class_from_code(u8::try_from(code).expect("code < 15"))
                .expect("codes 0..NUM_CLASS_CODES are total");
            let bytes = encode_entries_refs(group);
            let checksum = fnv1a64(&bytes);
            let meta = ShardMeta {
                class,
                entries: group.len() as u64,
                weight: group.iter().map(|e| u64::from(e.weight)).sum(),
                bytes: bytes.len() as u64,
                checksum,
            };
            let path = self.dir.join(meta.file_name());
            let clean = self.manifest.shard(class).is_some_and(|old| {
                old.checksum == checksum && old.bytes == meta.bytes && path.is_file()
            });
            if clean {
                report.shards_skipped += 1;
            } else {
                write_atomic(&path, &bytes)?;
                report.shards_written += 1;
            }
            shards.push(meta);
        }
        let manifest = Manifest { shards };
        write_atomic(&self.dir.join(MANIFEST_NAME), &manifest.encode())?;
        self.manifest = manifest;
        report.shards_removed = self.remove_unreferenced_segments();
        Ok(report)
    }

    /// Re-normalizes every segment under `policy` — typically
    /// [`MergePolicy::compaction`] with a tightened coalescing threshold
    /// — and swaps the results in atomically. Segments are independent,
    /// so the pass fans out over background threads (one slot per shard,
    /// capped at `workers`); the store stays readable throughout because
    /// live segments are never modified, only superseded.
    pub fn compact(
        &mut self,
        policy: &MergePolicy,
        workers: usize,
    ) -> Result<CompactReport, StoreError> {
        let shards = self.manifest.shards.clone();
        let workers = workers.max(1).min(shards.len().max(1));
        let next = AtomicUsize::new(0);
        let compacted: Mutex<Vec<(usize, Vec<KbEntry>)>> = Mutex::new(Vec::new());
        let failure: Mutex<Option<StoreError>> = Mutex::new(None);
        let failed = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    // One corrupt segment dooms the whole pass: stop
                    // claiming shards instead of normalizing work that
                    // will be discarded.
                    if failed.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(meta) = shards.get(i) else { break };
                    match read_segment(&self.dir, meta) {
                        Ok(entries) => {
                            let normalized = policy.normalize(entries);
                            compacted.lock().expect("poisoned").push((i, normalized));
                        }
                        Err(e) => {
                            failed.store(true, Ordering::Relaxed);
                            *failure.lock().expect("poisoned") = Some(e);
                            break;
                        }
                    }
                });
            }
        });
        if let Some(e) = failure.into_inner().expect("poisoned") {
            return Err(e);
        }
        for meta in &shards {
            self.loads[usize::from(class_code(meta.class))] += 1;
        }
        let mut by_index = compacted.into_inner().expect("poisoned");
        by_index.sort_by_key(|(i, _)| *i);
        let entries: Vec<KbEntry> = by_index.into_iter().flat_map(|(_, e)| e).collect();
        let before = (self.manifest.total_entries(), self.manifest.total_weight());
        let save = self.save(&entries)?;
        Ok(CompactReport {
            shards_compacted: save.shards_written,
            entries_before: before.0,
            entries_after: self.manifest.total_entries(),
            weight_before: before.1,
            weight_after: self.manifest.total_weight(),
        })
    }

    /// Deletes `shard-*.rbkb` files that neither this handle's manifest
    /// nor the manifest currently on disk references. Re-reading the
    /// on-disk manifest matters when two writers race on one store: the
    /// loser's cleanup must not delete segments the winner's manifest
    /// just started referencing (manifest renames are atomic, so whoever
    /// renamed last owns the store — last-writer-wins, like the
    /// single-file layout — and a conservative union keeps every segment
    /// either manifest needs). Best-effort; a file another process
    /// already opened still reads fine on Unix. Returns how many were
    /// removed.
    fn remove_unreferenced_segments(&self) -> usize {
        let mut live: Vec<String> = self
            .manifest
            .shards
            .iter()
            .map(ShardMeta::file_name)
            .collect();
        if let Ok(bytes) = std::fs::read(self.dir.join(MANIFEST_NAME)) {
            if let Ok(current) = Manifest::decode(&bytes) {
                live.extend(current.shards.iter().map(ShardMeta::file_name));
            }
        }
        let Ok(dir) = std::fs::read_dir(&self.dir) else {
            return 0;
        };
        let mut removed = 0usize;
        for entry in dir.filter_map(Result::ok) {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with("shard-")
                && name.ends_with(".rbkb")
                && !live.iter().any(|l| l == &name)
                && std::fs::remove_file(entry.path()).is_ok()
            {
                removed += 1;
            }
        }
        removed
    }
}

/// Reads and fully verifies one segment: length and checksum against the
/// manifest record, then a streaming decode (structure and the segment's
/// own trailing checksum).
fn read_segment(dir: &Path, meta: &ShardMeta) -> Result<Vec<KbEntry>, StoreError> {
    let path = dir.join(meta.file_name());
    let bytes = std::fs::read(&path).map_err(|e| io_err(&path, e))?;
    let computed = fnv1a64(&bytes);
    if bytes.len() as u64 != meta.bytes || computed != meta.checksum {
        return Err(StoreError::Corrupt {
            path,
            source: CodecError::ChecksumMismatch {
                stored: meta.checksum,
                computed,
            },
        });
    }
    let corrupt = |source: CodecError| StoreError::Corrupt {
        path: path.clone(),
        source,
    };
    let iter = decode_entries_iter(&bytes).map_err(corrupt)?;
    let mut entries = Vec::with_capacity(iter.remaining().min(bytes.len() / 8));
    for entry in iter {
        let entry = entry.map_err(corrupt)?;
        debug_assert_eq!(entry.class, meta.class, "segment holds a foreign class");
        entries.push(entry);
    }
    Ok(entries)
}

/// Saves `entries` to the sharded layout at `dir` (creating it if
/// needed); see [`ShardedStore::save`].
pub fn save_sharded(dir: &Path, entries: &[KbEntry]) -> Result<SaveReport, StoreError> {
    ShardedStore::open_or_create(dir)?.save(entries)
}

/// Loads every entry of the sharded store at `dir`.
pub fn load_sharded(dir: &Path) -> Result<Vec<KbEntry>, StoreError> {
    ShardedStore::open(dir)?.load_all()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_lang::vectorize::AstVector;
    use rb_llm::RepairRule;
    use std::sync::atomic::AtomicU32;

    fn scratch(name: &str) -> PathBuf {
        static UNIQUE: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "rb_kb_shard_{}_{}",
            std::process::id(),
            UNIQUE.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn entry(v: &[f64], class: UbClass, rule: RepairRule, weight: u32) -> KbEntry {
        KbEntry {
            vector: AstVector {
                components: v.to_vec(),
            },
            class,
            rule,
            weight,
        }
    }

    fn mixed_entries() -> Vec<KbEntry> {
        vec![
            entry(&[1.0, 0.0], UbClass::Panic, RepairRule::GuardDivision, 2),
            entry(&[0.0, 1.0], UbClass::Alloc, RepairRule::AddDealloc, 1),
            entry(&[0.5, 0.5], UbClass::Panic, RepairRule::GuardIndex, 3),
            entry(&[1.0, 1.0], UbClass::DataRace, RepairRule::UseAtomics, 4),
        ]
    }

    #[test]
    fn manifest_round_trips_and_rejects_corruption() {
        let manifest = Manifest {
            shards: vec![
                ShardMeta {
                    class: UbClass::Alloc,
                    entries: 3,
                    weight: 9,
                    bytes: 120,
                    checksum: 0xdead_beef,
                },
                ShardMeta {
                    class: UbClass::Panic,
                    entries: 1,
                    weight: 1,
                    bytes: 40,
                    checksum: 7,
                },
            ],
        };
        let bytes = manifest.encode();
        assert_eq!(Manifest::decode(&bytes).unwrap(), manifest);
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x20;
            assert!(Manifest::decode(&corrupt).is_err(), "flip at {i} decoded");
        }
        for len in 0..bytes.len() {
            assert!(Manifest::decode(&bytes[..len]).is_err());
        }
    }

    #[test]
    fn sharded_round_trip_groups_by_class() {
        let dir = scratch("round.rbkb.d");
        let entries = mixed_entries();
        let report = save_sharded(&dir, &entries).unwrap();
        assert_eq!(report.shards_written, 3, "three classes, three segments");
        let loaded = load_sharded(&dir).unwrap();
        // Same multiset, grouped by ascending class code with the
        // original relative order preserved inside each class.
        assert_eq!(loaded.len(), entries.len());
        assert_eq!(loaded[0], entries[1]); // Alloc (code 0)
        assert_eq!(loaded[1], entries[0]); // Panic (code 2), first
        assert_eq!(loaded[2], entries[2]); // Panic, second
        assert_eq!(loaded[3], entries[3]); // DataRace (code 6)
        let _ = std::fs::remove_dir_all(dir.parent().unwrap());
    }

    #[test]
    fn single_class_load_touches_only_that_shard() {
        let dir = scratch("counters.rbkb.d");
        save_sharded(&dir, &mixed_entries()).unwrap();
        let mut store = ShardedStore::open(&dir).unwrap();
        let panic_entries = store.load_class(UbClass::Panic).unwrap();
        assert_eq!(panic_entries.len(), 2);
        // The acceptance contract: exactly one segment read, and it is
        // the queried class's.
        assert_eq!(store.loads(UbClass::Panic), 1);
        assert_eq!(store.total_loads(), 1);
        assert_eq!(store.loads(UbClass::Alloc), 0);
        // A class with no segment costs zero reads.
        assert!(store.load_class(UbClass::Uninit).unwrap().is_empty());
        assert_eq!(store.total_loads(), 1);
        let _ = std::fs::remove_dir_all(dir.parent().unwrap());
    }

    #[test]
    fn resave_skips_clean_shards_and_rewrites_dirty_ones() {
        let dir = scratch("dirty.rbkb.d");
        let mut entries = mixed_entries();
        save_sharded(&dir, &entries).unwrap();
        // Identical content: nothing is rewritten.
        let mut store = ShardedStore::open(&dir).unwrap();
        let report = store.save(&entries).unwrap();
        assert_eq!((report.shards_written, report.shards_skipped), (0, 3));
        // Dirty one class: exactly that segment is rewritten and its old
        // generation is removed.
        entries[0].weight += 1; // Panic shard
        let report = store.save(&entries).unwrap();
        assert_eq!((report.shards_written, report.shards_skipped), (1, 2));
        assert_eq!(report.shards_removed, 1);
        // Dropping a class removes its segment from manifest and disk.
        let no_race: Vec<KbEntry> = entries
            .iter()
            .filter(|e| e.class != UbClass::DataRace)
            .cloned()
            .collect();
        let report = store.save(&no_race).unwrap();
        assert_eq!(report.shards_removed, 1);
        assert!(store.manifest().shard(UbClass::DataRace).is_none());
        assert_eq!(load_sharded(&dir).unwrap().len(), 3);
        let _ = std::fs::remove_dir_all(dir.parent().unwrap());
    }

    #[test]
    fn corrupt_segment_and_manifest_are_typed_errors() {
        let dir = scratch("corrupt.rbkb.d");
        save_sharded(&dir, &mixed_entries()).unwrap();
        // Flip a byte inside a segment: the manifest checksum refuses it.
        let store = ShardedStore::open(&dir).unwrap();
        let seg = dir.join(store.manifest().shards[0].file_name());
        let mut bytes = std::fs::read(&seg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&seg, &bytes).unwrap();
        let err = ShardedStore::open(&dir).unwrap().load_all().unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
        // A truncated manifest is refused at open.
        let manifest_path = dir.join(MANIFEST_NAME);
        let bytes = std::fs::read(&manifest_path).unwrap();
        std::fs::write(&manifest_path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(
            ShardedStore::open(&dir),
            Err(StoreError::Corrupt { .. })
        ));
        // A missing manifest is an I/O error, not a panic.
        std::fs::remove_file(&manifest_path).unwrap();
        assert!(matches!(
            ShardedStore::open(&dir),
            Err(StoreError::Io { .. })
        ));
        let _ = std::fs::remove_dir_all(dir.parent().unwrap());
    }

    #[test]
    fn concurrent_sharded_saves_never_brick_the_store() {
        // Regression for the cleanup race: without whole-save
        // serialization, writer A's unreferenced-segment cleanup could
        // delete writer B's freshly written segments before B renamed
        // its manifest — leaving a manifest pointing at deleted files.
        // Serialized saves are last-writer-wins: the store must always
        // load and equal one writer's complete entry set.
        let dir = scratch("save_race.rbkb.d");
        ShardedStore::create(&dir).unwrap();
        let a = mixed_entries();
        let b: Vec<KbEntry> = mixed_entries()
            .into_iter()
            .map(|mut e| {
                e.weight += 10;
                e
            })
            .collect();
        std::thread::scope(|scope| {
            for set in [&a, &b] {
                let dir = &dir;
                scope.spawn(move || {
                    let mut store = ShardedStore::open(dir).unwrap();
                    for _ in 0..25 {
                        store.save(set).unwrap();
                    }
                });
            }
        });
        let survivor = load_sharded(&dir).unwrap();
        let grouped = |entries: &[KbEntry]| {
            let mut g = entries.to_vec();
            g.sort_by_key(|e| class_code(e.class));
            g
        };
        assert!(
            survivor == grouped(&a) || survivor == grouped(&b),
            "torn sharded store: {survivor:?}"
        );
        let _ = std::fs::remove_dir_all(dir.parent().unwrap());
    }

    #[test]
    fn compaction_folds_near_duplicates_and_preserves_weight() {
        let dir = scratch("compact.rbkb.d");
        // Two near-duplicate Panic shapes (cosine ≈ 0.990 — the default
        // 0.995 store threshold keeps them distinct, the tightened
        // compaction threshold folds them) plus an untouched Alloc shard.
        let entries = vec![
            entry(&[1.0, 0.0], UbClass::Panic, RepairRule::GuardDivision, 2),
            entry(&[1.0, 0.141], UbClass::Panic, RepairRule::GuardDivision, 3),
            entry(&[0.0, 1.0], UbClass::Alloc, RepairRule::AddDealloc, 1),
        ];
        save_sharded(&dir, &entries).unwrap();
        let mut store = ShardedStore::open(&dir).unwrap();
        let report = store.compact(&MergePolicy::compaction(0.98), 4).unwrap();
        assert_eq!(report.entries_before, 3);
        assert_eq!(report.entries_after, 2, "near-duplicates must fold");
        assert_eq!(report.weight_before, 6);
        assert_eq!(report.weight_after, 6, "compaction must preserve weight");
        assert_eq!(report.shards_compacted, 1, "only the Panic shard changed");
        // Compaction is a fixpoint: a second pass changes nothing.
        let again = store.compact(&MergePolicy::compaction(0.98), 4).unwrap();
        assert_eq!(again.shards_compacted, 0);
        assert_eq!(again.entries_after, 2);
        let _ = std::fs::remove_dir_all(dir.parent().unwrap());
    }
}
