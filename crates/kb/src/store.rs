//! Atomic `.rbkb` file persistence, and the layout dispatch between the
//! single-file format and the sharded [`crate::shard`] directory layout.
//!
//! [`save`] writes to a temporary sibling file and renames it into place,
//! so a crash mid-write can never leave a half-written store where a
//! readable one used to be — the reader sees either the old file or the
//! new one. Temp names carry the process id *and* a process-global
//! counter: two threads saving the same store concurrently each write
//! their own temp file and the last rename wins whole, instead of racing
//! on one shared temp path and renaming each other's half-written bytes
//! into place. [`load`] surfaces I/O problems and corruption (via the
//! codec's checksum and structural validation) as typed [`StoreError`]s;
//! it never panics on hostile bytes.
//!
//! [`load_any`] and [`save_any`] accept either layout — a `.rbkb` file or
//! a `.rbkb.d/` shard directory — resolved by [`detect_layout`], so every
//! caller (engine `--kb-in/--kb-out`, `kb inspect`, migration) works on
//! both without caring which one it was handed.

use crate::codec::{decode_entries, encode_entries, CodecError};
use crate::KbEntry;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// The filesystem said no.
    Io {
        /// File the operation was about.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The file's bytes are not a valid `.rbkb` stream.
    Corrupt {
        /// File the bytes came from.
        path: PathBuf,
        /// What the codec rejected.
        source: CodecError,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            StoreError::Corrupt { path, source } => {
                write!(f, "{}: corrupt knowledge store: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Corrupt { source, .. } => Some(source),
        }
    }
}

pub(crate) fn io_err(path: &Path, source: std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        source,
    }
}

/// Process-global counter distinguishing concurrent temp files. The pid
/// alone is not enough: two *threads* of one process saving the same
/// store would share a temp path, clobber each other's partial writes,
/// and rename a torn file into place.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Writes `bytes` to `path` atomically: a uniquely named temp sibling in
/// the same directory (so the rename cannot cross filesystems), then a
/// rename over the destination. Shared by the single-file store and the
/// shard layer's segment and manifest writes.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(
        ".tmp.{}.{}",
        std::process::id(),
        TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, bytes).map_err(|e| io_err(&tmp, e))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        // Leave no droppings behind a failed rename.
        let _ = std::fs::remove_file(&tmp);
        io_err(path, e)
    })
}

/// Saves entries to `path` atomically (temp file + rename in the same
/// directory; concurrent saves each use a distinct temp file, so the
/// destination is always one save's complete bytes).
pub fn save(path: &Path, entries: &[KbEntry]) -> Result<(), StoreError> {
    write_atomic(path, &encode_entries(entries))
}

/// Loads entries from an `.rbkb` file, validating structure and checksum.
pub fn load(path: &Path) -> Result<Vec<KbEntry>, StoreError> {
    let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
    decode_entries(&bytes).map_err(|source| StoreError::Corrupt {
        path: path.to_path_buf(),
        source,
    })
}

/// The two on-disk layouts a knowledge store path can resolve to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreLayout {
    /// One `.rbkb` file holding every entry.
    SingleFile,
    /// A `.rbkb.d/` directory: one segment file per [`rb_miri::UbClass`]
    /// plus a checksummed manifest (see [`crate::shard`]).
    Sharded,
}

/// Resolves which layout `path` refers to: an existing directory — or any
/// path spelled with a `.d` extension (the `.rbkb.d` convention) — is
/// sharded; everything else is a single file.
#[must_use]
pub fn detect_layout(path: &Path) -> StoreLayout {
    if path.is_dir() || path.extension().is_some_and(|e| e == "d") {
        StoreLayout::Sharded
    } else {
        StoreLayout::SingleFile
    }
}

/// How a layout-dispatched save touched the disk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SaveReport {
    /// Segment files written (1 for a single-file store).
    pub shards_written: usize,
    /// Segment files whose content was already up to date and were left
    /// untouched (always 0 for a single-file store).
    pub shards_skipped: usize,
    /// Stale segment files removed (classes that emptied out, or old
    /// generations replaced by a compaction swap).
    pub shards_removed: usize,
}

/// Loads a store in either layout (see [`detect_layout`]).
pub fn load_any(path: &Path) -> Result<Vec<KbEntry>, StoreError> {
    match detect_layout(path) {
        StoreLayout::SingleFile => load(path),
        StoreLayout::Sharded => crate::shard::ShardedStore::open(path)?.load_all(),
    }
}

/// Saves a store in the layout `path` implies (see [`detect_layout`]):
/// a single atomic file write, or a sharded save that rewrites only the
/// segments whose content changed.
pub fn save_any(path: &Path, entries: &[KbEntry]) -> Result<SaveReport, StoreError> {
    match detect_layout(path) {
        StoreLayout::SingleFile => {
            save(path, entries)?;
            Ok(SaveReport {
                shards_written: 1,
                ..SaveReport::default()
            })
        }
        StoreLayout::Sharded => crate::shard::ShardedStore::open_or_create(path)?.save(entries),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_lang::vectorize::AstVector;
    use rb_llm::RepairRule;
    use rb_miri::UbClass;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rb_kb_store_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn entries() -> Vec<KbEntry> {
        vec![KbEntry {
            vector: AstVector {
                components: vec![0.5, 2.0, -1.0],
            },
            class: UbClass::Alloc,
            rule: RepairRule::RemoveDoubleFree,
            weight: 4,
        }]
    }

    #[test]
    fn save_load_round_trips() {
        let path = scratch("round_trip.rbkb");
        let original = entries();
        save(&path, &original).unwrap();
        assert_eq!(load(&path).unwrap(), original);
        // Overwrite in place: the rename replaces the old content whole.
        save(&path, &[]).unwrap();
        assert!(load(&path).unwrap().is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn save_leaves_no_temp_files() {
        let path = scratch("no_droppings.rbkb");
        save(&path, &entries()).unwrap();
        let dir = path.parent().unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn concurrent_saves_to_one_path_never_tear() {
        // Regression: the temp suffix used to be the pid alone, so two
        // threads saving the same store shared one temp path — one
        // thread's rename could promote the other's half-written bytes.
        // With the counter suffix every save is privately staged; the
        // destination is always some save's complete, decodable bytes.
        let path = scratch("race.rbkb");
        let a: Vec<KbEntry> = entries();
        let b: Vec<KbEntry> = {
            let mut b = entries();
            b[0].weight = 9;
            b[0].class = UbClass::DataRace;
            b
        };
        std::thread::scope(|scope| {
            for set in [&a, &b] {
                let path = &path;
                scope.spawn(move || {
                    for _ in 0..50 {
                        save(path, set).unwrap();
                    }
                });
            }
        });
        let survivor = load(&path).unwrap();
        assert!(survivor == a || survivor == b, "torn store: {survivor:?}");
        let dir = path.parent().unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains("race.rbkb.tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn layout_detection_follows_the_rbkb_d_convention() {
        assert_eq!(
            detect_layout(Path::new("store.rbkb")),
            StoreLayout::SingleFile
        );
        assert_eq!(
            detect_layout(Path::new("store.rbkb.d")),
            StoreLayout::Sharded
        );
        // An existing directory is sharded whatever it is called.
        let dir = scratch("plain_dir");
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(detect_layout(&dir), StoreLayout::Sharded);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_any_and_load_any_round_trip_both_layouts() {
        let original = entries();
        let file = scratch("any_single.rbkb");
        let report = save_any(&file, &original).unwrap();
        assert_eq!(report.shards_written, 1);
        assert_eq!(load_any(&file).unwrap(), original);
        let dir = scratch("any_sharded.rbkb.d");
        let report = save_any(&dir, &original).unwrap();
        assert_eq!(report.shards_written, 1, "one class, one segment");
        assert_eq!(load_any(&dir).unwrap(), original);
        let _ = std::fs::remove_file(&file);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load(Path::new("/nonexistent/definitely/not_here.rbkb")).unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }));
        assert!(err.to_string().contains("not_here.rbkb"));
    }

    #[test]
    fn corrupt_file_is_typed_not_a_panic() {
        let path = scratch("corrupt.rbkb");
        save(&path, &entries()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let err = load(&path).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
        // And a truncated file too.
        std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        assert!(matches!(
            load(&path).unwrap_err(),
            StoreError::Corrupt { .. }
        ));
        let _ = std::fs::remove_file(&path);
    }
}
