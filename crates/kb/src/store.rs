//! Atomic `.rbkb` file persistence.
//!
//! [`save`] writes to a temporary sibling file and renames it into place,
//! so a crash mid-write can never leave a half-written store where a
//! readable one used to be — the reader sees either the old file or the
//! new one. [`load`] surfaces I/O problems and corruption (via the
//! codec's checksum and structural validation) as typed [`StoreError`]s;
//! it never panics on hostile bytes.

use crate::codec::{decode_entries, encode_entries, CodecError};
use crate::KbEntry;
use std::fmt;
use std::path::{Path, PathBuf};

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// The filesystem said no.
    Io {
        /// File the operation was about.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The file's bytes are not a valid `.rbkb` stream.
    Corrupt {
        /// File the bytes came from.
        path: PathBuf,
        /// What the codec rejected.
        source: CodecError,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            StoreError::Corrupt { path, source } => {
                write!(f, "{}: corrupt knowledge store: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Corrupt { source, .. } => Some(source),
        }
    }
}

fn io_err(path: &Path, source: std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        source,
    }
}

/// Saves entries to `path` atomically (temp file + rename in the same
/// directory, so the rename cannot cross filesystems).
pub fn save(path: &Path, entries: &[KbEntry]) -> Result<(), StoreError> {
    let bytes = encode_entries(entries);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, &bytes).map_err(|e| io_err(&tmp, e))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        // Leave no droppings behind a failed rename.
        let _ = std::fs::remove_file(&tmp);
        io_err(path, e)
    })
}

/// Loads entries from an `.rbkb` file, validating structure and checksum.
pub fn load(path: &Path) -> Result<Vec<KbEntry>, StoreError> {
    let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
    decode_entries(&bytes).map_err(|source| StoreError::Corrupt {
        path: path.to_path_buf(),
        source,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_lang::vectorize::AstVector;
    use rb_llm::RepairRule;
    use rb_miri::UbClass;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rb_kb_store_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn entries() -> Vec<KbEntry> {
        vec![KbEntry {
            vector: AstVector {
                components: vec![0.5, 2.0, -1.0],
            },
            class: UbClass::Alloc,
            rule: RepairRule::RemoveDoubleFree,
            weight: 4,
        }]
    }

    #[test]
    fn save_load_round_trips() {
        let path = scratch("round_trip.rbkb");
        let original = entries();
        save(&path, &original).unwrap();
        assert_eq!(load(&path).unwrap(), original);
        // Overwrite in place: the rename replaces the old content whole.
        save(&path, &[]).unwrap();
        assert!(load(&path).unwrap().is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn save_leaves_no_temp_files() {
        let path = scratch("no_droppings.rbkb");
        save(&path, &entries()).unwrap();
        let dir = path.parent().unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load(Path::new("/nonexistent/definitely/not_here.rbkb")).unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }));
        assert!(err.to_string().contains("not_here.rbkb"));
    }

    #[test]
    fn corrupt_file_is_typed_not_a_panic() {
        let path = scratch("corrupt.rbkb");
        save(&path, &entries()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let err = load(&path).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
        // And a truncated file too.
        std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        assert!(matches!(
            load(&path).unwrap_err(),
            StoreError::Corrupt { .. }
        ));
        let _ = std::fs::remove_file(&path);
    }
}
