//! Property suite for the durable knowledge store: the codec round-trips
//! bit-for-bit (weights included), policy normalization is a pure
//! function of the entry multiset (any permutation yields the identical
//! store), and corrupted or truncated byte streams decode to typed
//! errors, never panics or silently wrong bases.

use proptest::prelude::*;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rb_kb::codec::{class_code, class_from_code, rule_from_code};
use rb_kb::{
    decode_entries, encode_entries, ConflictResolution, KbEntry, MergePolicy, ShardedStore,
};
use rb_lang::vectorize::AstVector;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

/// One arbitrary entry: a small vector with coarse components (collisions
/// and near-duplicates must actually occur for the policy passes to have
/// work), any class, any rule, a small weight.
fn entry_strategy() -> impl Strategy<Value = KbEntry> {
    (
        prop::collection::vec(0u32..8, 2..5),
        0u8..15,
        0u8..36,
        1u32..5,
    )
        .prop_map(|(raw, class, rule, weight)| KbEntry {
            vector: AstVector {
                components: raw.into_iter().map(|c| f64::from(c) / 4.0).collect(),
            },
            class: class_from_code(class).expect("codes 0..15 are total"),
            rule: rule_from_code(rule).expect("codes 0..36 are total"),
            weight,
        })
}

fn entries_strategy() -> impl Strategy<Value = Vec<KbEntry>> {
    prop::collection::vec(entry_strategy(), 0..24)
}

/// The policy grid the determinism property sweeps: every reduction knob
/// on its own and the default all-on policy.
fn policy(selector: u8) -> MergePolicy {
    match selector % 4 {
        0 => MergePolicy {
            dedup_exact: true,
            conflict: ConflictResolution::KeepAll,
            coalesce_threshold: None,
        },
        1 => MergePolicy {
            dedup_exact: false,
            conflict: ConflictResolution::HighestWeight,
            coalesce_threshold: None,
        },
        2 => MergePolicy {
            dedup_exact: false,
            conflict: ConflictResolution::KeepAll,
            coalesce_threshold: Some(0.98),
        },
        _ => MergePolicy::default(),
    }
}

/// A scratch directory unique to this process *and* proptest case, so
/// cases never see each other's segment files.
fn scratch_dir() -> PathBuf {
    static UNIQUE: AtomicU32 = AtomicU32::new(0);
    std::env::temp_dir().join(format!(
        "rb_kb_props_{}_{}.rbkb.d",
        std::process::id(),
        UNIQUE.fetch_add(1, Ordering::Relaxed)
    ))
}

/// The order a sharded store returns entries in: grouped by ascending
/// class wire code, input order preserved inside each class.
fn class_grouped(entries: &[KbEntry]) -> Vec<KbEntry> {
    let mut grouped = entries.to_vec();
    grouped.sort_by_key(|e| class_code(e.class)); // stable: keeps in-class order
    grouped
}

fn shuffled(mut entries: Vec<KbEntry>, seed: u64) -> Vec<KbEntry> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for i in (1..entries.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        entries.swap(i, j);
    }
    entries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn codec_round_trips_bit_for_bit(entries in entries_strategy()) {
        let decoded = decode_entries(&encode_entries(&entries));
        prop_assert_eq!(decoded.as_ref().ok(), Some(&entries));
        // Weights survive explicitly (the merge counters must persist).
        let weights: Vec<u32> = decoded.unwrap().iter().map(|e| e.weight).collect();
        let expected: Vec<u32> = entries.iter().map(|e| e.weight).collect();
        prop_assert_eq!(weights, expected);
    }

    #[test]
    fn normalization_ignores_submission_order(
        entries in entries_strategy(),
        shuffle_seed in 0u64..1_000_000,
        policy_selector in 0u8..4,
    ) {
        let policy = policy(policy_selector);
        let canonical = policy.normalize(entries.clone());
        let permuted = policy.normalize(shuffled(entries, shuffle_seed));
        prop_assert_eq!(&canonical, &permuted, "policy {}", policy.label());
        // Normalization is idempotent: the canonical store is a fixpoint.
        prop_assert_eq!(&policy.normalize(canonical.clone()), &canonical);
    }

    #[test]
    fn normalization_preserves_total_weight_unless_conflicts_drop(
        entries in entries_strategy(),
    ) {
        // With conflict resolution off, dedup and coalescing only move
        // weight between entries — the solved-case count is conserved.
        let policy = MergePolicy {
            dedup_exact: true,
            conflict: ConflictResolution::KeepAll,
            coalesce_threshold: Some(0.98),
        };
        let before: u64 = entries.iter().map(|e| u64::from(e.weight)).sum();
        let out = policy.normalize(entries);
        let after: u64 = out.iter().map(|e| u64::from(e.weight)).sum();
        prop_assert_eq!(before, after);
    }

    #[test]
    fn sharded_store_round_trips_against_the_single_file_codec(
        entries in entries_strategy(),
    ) {
        // The same multiset through both layouts: the single-file codec
        // (bit-exact, order-preserving) and the sharded store (segments
        // per class). Sharded load must equal the single-file round trip
        // entry for entry, up to the layout's documented class grouping —
        // and for a policy-normalized base (already in canonical class
        // order) the two must be *identical*.
        let dir = scratch_dir();
        let mut store = ShardedStore::open_or_create(&dir).unwrap();
        store.save(&entries).unwrap();
        let sharded = store.load_all().unwrap();
        let single = decode_entries(&encode_entries(&entries)).unwrap();
        prop_assert_eq!(&sharded, &class_grouped(&single));

        let canonical = MergePolicy::default().normalize(entries);
        store.save(&canonical).unwrap();
        let sharded = store.load_all().unwrap();
        let single = decode_entries(&encode_entries(&canonical)).unwrap();
        prop_assert_eq!(&sharded, &single);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_is_a_fixpoint_and_preserves_weight(
        entries in entries_strategy(),
        threshold_percent in 90u8..100,
    ) {
        let policy = MergePolicy::compaction(f64::from(threshold_percent) / 100.0);
        let dir = scratch_dir();
        let mut store = ShardedStore::open_or_create(&dir).unwrap();
        store.save(&entries).unwrap();
        let weight_before: u64 = entries.iter().map(|e| u64::from(e.weight)).sum();

        let first = store.compact(&policy, 4).unwrap();
        prop_assert_eq!(first.entries_before as usize, entries.len());
        prop_assert!(first.entries_after <= first.entries_before);
        prop_assert_eq!(first.weight_after, weight_before,
            "compaction must only fold weight, never drop it");
        let after_first = store.load_all().unwrap();

        // Compacting twice changes nothing: no shard is rewritten, the
        // content is byte-stable.
        let second = store.compact(&policy, 4).unwrap();
        prop_assert_eq!(second.shards_compacted, 0, "second pass rewrote a shard");
        prop_assert_eq!(second.entries_after, first.entries_after);
        prop_assert_eq!(&store.load_all().unwrap(), &after_first);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_streams_error_not_panic(
        entries in entries_strategy(),
        cut in 0u32..10_000,
    ) {
        let bytes = encode_entries(&entries);
        let cut = (cut as usize) % bytes.len();
        prop_assert!(decode_entries(&bytes[..cut]).is_err());
    }

    #[test]
    fn corrupted_streams_error_not_panic(
        entries in entries_strategy(),
        position in 0u32..10_000,
        mask in 1u8..255,
    ) {
        let mut bytes = encode_entries(&entries);
        let position = (position as usize) % bytes.len();
        bytes[position] ^= mask;
        prop_assert!(
            decode_entries(&bytes).is_err(),
            "flipping byte {} with {:#04x} still decoded", position, mask
        );
    }
}
