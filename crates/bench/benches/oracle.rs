//! Criterion microbenchmarks of the UB oracle (the substrate the whole
//! repair loop spins on).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rb_dataset::Corpus;
use rb_lang::parser::parse_program;
use rb_miri::run_program;

fn bench_oracle(c: &mut Criterion) {
    let clean = parse_program(
        "fn fib(n: i32) -> i32 { if n < 2 { return n; } return fib(n - 1) + fib(n - 2); } \
         fn main() { print(fib(12)); }",
    )
    .unwrap();
    c.bench_function("oracle/clean_fib12", |b| {
        b.iter(|| black_box(run_program(black_box(&clean))))
    });

    let corpus = Corpus::generate_full(7, 1);
    c.bench_function("oracle/full_corpus_buggy", |b| {
        b.iter(|| {
            for case in &corpus.cases {
                black_box(run_program(black_box(&case.buggy)));
            }
        })
    });
    c.bench_function("oracle/full_corpus_gold", |b| {
        b.iter(|| {
            for case in &corpus.cases {
                black_box(run_program(black_box(&case.gold)));
            }
        })
    });

    let threads = parse_program(
        "static mut G: i32 = 0; fn main() { \
         spawn { lock(1) { unsafe { G = G + 1; } } } \
         spawn { lock(1) { unsafe { G = G + 1; } } } \
         join; unsafe { print(G); } }",
    )
    .unwrap();
    c.bench_function("oracle/threads_with_race_scan", |b| {
        b.iter(|| black_box(run_program(black_box(&threads))))
    });
}

criterion_group!(benches, bench_oracle);
criterion_main!(benches);
