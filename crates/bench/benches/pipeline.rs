//! Criterion benchmarks of the end-to-end repair pipelines on one
//! representative case per system.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rb_baselines::{LlmOnly, RustAssistant};
use rb_dataset::Corpus;
use rb_llm::ModelId;
use rb_miri::UbClass;
use rustbrain::{RustBrain, RustBrainConfig};

fn bench_pipeline(c: &mut Criterion) {
    let corpus = Corpus::generate(5, 1, &[UbClass::DanglingPointer]);
    let case = &corpus.cases[0];
    let gold = case.gold_outputs();

    c.bench_function("pipeline/rustbrain_repair", |b| {
        b.iter(|| {
            let mut brain = RustBrain::new(RustBrainConfig::for_model(ModelId::Gpt4, 1));
            black_box(brain.repair(black_box(&case.buggy), &gold))
        })
    });
    c.bench_function("pipeline/llm_only_repair", |b| {
        b.iter(|| {
            let mut fixer = LlmOnly::new(ModelId::Gpt4, 0.5, 1);
            black_box(fixer.repair(black_box(&case.buggy), &gold))
        })
    });
    c.bench_function("pipeline/rust_assistant_repair", |b| {
        b.iter(|| {
            let mut ra = RustAssistant::new(ModelId::Gpt4, 0.5, 1);
            black_box(ra.repair(black_box(&case.buggy), &gold))
        })
    });
    c.bench_function("pipeline/corpus_generation", |b| {
        b.iter(|| black_box(Corpus::generate(9, 1, &[UbClass::Alloc, UbClass::Panic])))
    });
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
