//! Criterion microbenchmarks of the knowledge base: insertion and
//! similarity queries at several sizes (the Algorithm 1 index).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rb_dataset::Corpus;
use rb_lang::prune::prune_program;
use rb_lang::vectorize::AstVector;
use rb_llm::RepairRule;
use rb_miri::UbClass;
use rustbrain::KnowledgeBase;

fn bench_kb(c: &mut Criterion) {
    let corpus = Corpus::generate_full(3, 2);
    let vectors: Vec<(AstVector, UbClass)> = corpus
        .cases
        .iter()
        .map(|case| {
            let (p, _) = prune_program(&case.buggy);
            (AstVector::embed(&p), case.class)
        })
        .collect();

    let mut group = c.benchmark_group("knowledge/query");
    for &size in &[16usize, 128, 1024] {
        let mut kb = KnowledgeBase::new();
        for i in 0..size {
            let (v, class) = &vectors[i % vectors.len()];
            kb.insert(v.clone(), *class, RepairRule::HoistLocalOut);
        }
        let (qv, qc) = &vectors[0];
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| black_box(kb.query(black_box(qv), *qc, 2)))
        });
    }
    group.finish();

    c.bench_function("knowledge/cosine", |b| {
        let a = &vectors[0].0;
        let d = &vectors[1].0;
        b.iter(|| black_box(a.cosine(black_box(d))))
    });
}

criterion_group!(benches, bench_kb);
criterion_main!(benches);
