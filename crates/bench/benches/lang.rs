//! Criterion microbenchmarks of the language substrate: parsing, printing,
//! pruning (Algorithm 1) and vectorisation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rb_dataset::Corpus;
use rb_lang::parser::parse_program;
use rb_lang::printer::print_program;
use rb_lang::prune::prune_program;
use rb_lang::vectorize::AstVector;

fn bench_lang(c: &mut Criterion) {
    let corpus = Corpus::generate_full(11, 1);
    let sources: Vec<String> = corpus
        .cases
        .iter()
        .map(|x| print_program(&x.buggy))
        .collect();

    c.bench_function("lang/parse_corpus", |b| {
        b.iter(|| {
            for s in &sources {
                black_box(parse_program(black_box(s)).unwrap());
            }
        })
    });
    c.bench_function("lang/print_corpus", |b| {
        b.iter(|| {
            for case in &corpus.cases {
                black_box(print_program(black_box(&case.buggy)));
            }
        })
    });
    c.bench_function("lang/prune_corpus", |b| {
        b.iter(|| {
            for case in &corpus.cases {
                black_box(prune_program(black_box(&case.buggy)));
            }
        })
    });
    c.bench_function("lang/vectorize_corpus", |b| {
        b.iter(|| {
            for case in &corpus.cases {
                black_box(AstVector::embed(black_box(&case.buggy)));
            }
        })
    });
}

criterion_group!(benches, bench_lang);
criterion_main!(benches);
