//! Benchmarks of the batch-repair engine: 1-worker vs N-worker wall
//! clock on the same corpus (the speedup series of `BENCH_engine.json`),
//! plus the cost of a warm oracle-cache sweep.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rb_dataset::Corpus;
use rb_engine::{Engine, OracleCache, SystemSpec};
use rb_llm::ModelId;
use rustbrain::RustBrainConfig;
use std::sync::Arc;

fn bench_engine(c: &mut Criterion) {
    let corpus = Corpus::generate_full(7, 1);
    let spec = SystemSpec::brain(RustBrainConfig::for_model(ModelId::Gpt4, 0));
    let parallelism = std::thread::available_parallelism()
        .map_or(4, usize::from)
        .max(4);

    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    for workers in [1usize, parallelism] {
        // One shared cache per variant: after the first iteration both
        // variants run fully warm, so the series isolates scheduling.
        let engine = Engine::new(workers);
        group.bench_with_input(
            BenchmarkId::new("corpus_sweep", workers),
            &workers,
            |b, _| b.iter(|| black_box(engine.run_batch(&spec, &corpus.cases, 42))),
        );
    }
    group.finish();

    let cache = Arc::new(OracleCache::new());
    for case in &corpus.cases {
        let _ = cache.outputs(&case.gold); // pre-warm
    }
    c.bench_function("engine/warm_cache_gold_lookups", |b| {
        b.iter(|| {
            for case in &corpus.cases {
                black_box(cache.outputs(&case.gold));
            }
        })
    });
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
