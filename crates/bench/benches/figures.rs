//! Criterion wrappers around each paper-figure experiment, so
//! `cargo bench` exercises every table/figure end-to-end (small corpora;
//! the binaries regenerate the full-size artefacts).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rb_bench::experiments::{
    ablation_prune, ablation_rollback, fig10, fig11, fig12, fig7, rq2, table1,
};

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig7_flexibility", |b| b.iter(|| black_box(fig7::run(1))));
    g.bench_function("fig8_fig9_grid", |b| b.iter(|| black_box(rq2::run(1, 1))));
    g.bench_function("fig10_o1", |b| b.iter(|| black_box(fig10::run(1, 1))));
    g.bench_function("fig11_temperature", |b| {
        b.iter(|| black_box(fig11::run(1, 1, 1)))
    });
    g.bench_function("fig12_rustassistant", |b| {
        b.iter(|| black_box(fig12::run(1, 1)))
    });
    g.bench_function("table1_speedup", |b| {
        b.iter(|| black_box(table1::run(1, 1)))
    });
    g.bench_function("ablation_rollback", |b| {
        b.iter(|| black_box(ablation_rollback::run(1, 1)))
    });
    g.bench_function("ablation_prune", |b| {
        b.iter(|| black_box(ablation_prune::run(1)))
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
