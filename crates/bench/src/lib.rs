//! # rb-bench — experiment harness
//!
//! Regenerates every table and figure of the RustBrain paper's evaluation
//! over the reproduction stack. Each experiment is a library function
//! returning a structured result (so tests can assert the paper's *shape*
//! claims) plus a `render()` for the command-line binaries:
//!
//! | binary | paper artefact |
//! |---|---|
//! | `fig7` | Fig. 7 — RQ1 flexibility matrix |
//! | `fig8` | Fig. 8 — pass-by-Miri grid |
//! | `fig9` | Fig. 9 — execution (acceptability) grid |
//! | `fig10` | Fig. 10 — GPT-4 vs GPT-O1 under RustBrain |
//! | `fig11` | Fig. 11 — temperature sweep with CIs |
//! | `fig12` | Fig. 12 — RustBrain vs RustAssistant |
//! | `table1` | Table I — repair time vs human experts |
//! | `ablation_rollback` | Fig. 5 mechanisms |
//! | `ablation_prune` | Algorithm 1 retrieval ablation |
//! | `all_experiments` | everything above, sequentially |

#![warn(missing_docs)]

pub mod experiments;
pub mod runner;
pub mod stats;

pub use runner::{overall_rates, rates_by_class, CaseResult, System};
pub use stats::Rate;
