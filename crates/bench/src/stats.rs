//! Small statistics helpers: rates, means and the Wilson confidence
//! interval the paper's RQ3 uses to report temperature stability.

use serde::{Deserialize, Serialize};

/// A success rate with its sample size.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Rate {
    /// Successes.
    pub hits: usize,
    /// Trials.
    pub n: usize,
}

impl Rate {
    /// Creates a rate.
    #[must_use]
    pub fn new(hits: usize, n: usize) -> Rate {
        Rate { hits, n }
    }

    /// Point estimate in `[0, 1]` (0 for empty samples).
    #[must_use]
    pub fn value(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.hits as f64 / self.n as f64
        }
    }

    /// Point estimate as a percentage.
    #[must_use]
    pub fn percent(&self) -> f64 {
        self.value() * 100.0
    }

    /// Records one trial.
    pub fn record(&mut self, hit: bool) {
        self.n += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// Wilson score interval at confidence `z` (1.96 ≈ 95 %).
    #[must_use]
    pub fn wilson_ci(&self, z: f64) -> (f64, f64) {
        if self.n == 0 {
            return (0.0, 1.0);
        }
        let n = self.n as f64;
        let p = self.value();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let centre = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * ((p * (1.0 - p) / n) + z2 / (4.0 * n * n)).sqrt();
        ((centre - half).max(0.0), (centre + half).min(1.0))
    }
}

/// Mean of a slice (0 for empty).
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (0 for fewer than two points).
#[must_use]
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_accumulates() {
        let mut r = Rate::default();
        r.record(true);
        r.record(false);
        r.record(true);
        assert_eq!(r.hits, 2);
        assert_eq!(r.n, 3);
        assert!((r.value() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn wilson_brackets_point_estimate() {
        let r = Rate::new(80, 100);
        let (lo, hi) = r.wilson_ci(1.96);
        assert!(lo < 0.8 && 0.8 < hi);
        assert!(lo > 0.70 && hi < 0.88, "({lo}, {hi})");
    }

    #[test]
    fn wilson_tightens_with_n() {
        let small = Rate::new(8, 10).wilson_ci(1.96);
        let large = Rate::new(800, 1000).wilson_ci(1.96);
        assert!((large.1 - large.0) < (small.1 - small.0));
    }

    #[test]
    fn wilson_edges() {
        let r = Rate::new(0, 10);
        let (lo, _) = r.wilson_ci(1.96);
        assert_eq!(lo, 0.0);
        let r = Rate::new(10, 10);
        let (_, hi) = r.wilson_ci(1.96);
        assert!(hi <= 1.0);
        assert_eq!(Rate::new(0, 0).wilson_ci(1.96), (0.0, 1.0));
    }

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert!((stddev(&[2.0, 4.0]) - std::f64::consts::SQRT_2).abs() < 1e-9);
        assert_eq!(stddev(&[1.0]), 0.0);
    }
}
