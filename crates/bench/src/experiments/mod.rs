//! One module per paper table/figure, each regenerating the corresponding
//! rows/series. See `DESIGN.md` §3 for the experiment index.

pub mod ablation_prune;
pub mod ablation_rollback;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig7;
pub mod rq2;
pub mod table1;

/// Default corpus seed used by all experiments (override via each
/// experiment's `run` parameters).
pub const DEFAULT_SEED: u64 = 42;

/// Default cases per class for the grid experiments.
pub const DEFAULT_PER_CLASS: usize = 8;
