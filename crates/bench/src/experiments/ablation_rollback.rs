//! Rollback ablation (paper Fig. 5): adaptive rollback vs restart-from-
//! initial vs no rollback, measured on pass rate, discarded thoughts (the
//! paper's `c·Tₙ` vs `c·Tₙ₋ₐ` overhead argument) and oracle iterations.

use crate::runner::{overall_rates, System};
use crate::stats::Rate;
use rb_dataset::Corpus;
use rb_llm::ModelId;
use rb_miri::UbClass;
use rustbrain::{RollbackPolicy, RustBrain, RustBrainConfig};
use serde::{Deserialize, Serialize};

/// Results for one policy.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PolicyResult {
    /// The policy.
    pub policy: String,
    /// Pass rate.
    pub pass: Rate,
    /// Exec rate.
    pub exec: Rate,
    /// Total rollbacks across the corpus.
    pub rollbacks: usize,
    /// Mean simulated seconds per case.
    pub mean_time_s: f64,
}

/// Experiment output.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RollbackAblation {
    /// One row per policy.
    pub rows: Vec<PolicyResult>,
}

impl RollbackAblation {
    /// Renders the ablation table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from("Rollback ablation (paper Fig. 5 mechanisms)\n");
        out.push_str(&format!(
            "{:<12}{:>8}{:>8}{:>11}{:>12}\n",
            "policy", "pass", "exec", "rollbacks", "time/case"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<12}{:>7.1}%{:>7.1}%{:>11}{:>11.1}s\n",
                r.policy,
                r.pass.percent(),
                r.exec.percent(),
                r.rollbacks,
                r.mean_time_s
            ));
        }
        out
    }

    /// Row accessor by policy name.
    #[must_use]
    pub fn row(&self, policy: &str) -> &PolicyResult {
        self.rows
            .iter()
            .find(|r| r.policy == policy)
            .unwrap_or_else(|| panic!("no row {policy}"))
    }
}

/// Runs the ablation over a hallucination-prone model (GPT-3.5, where
/// rollback matters most).
#[must_use]
pub fn run(seed: u64, per_class: usize) -> RollbackAblation {
    let classes: Vec<UbClass> = UbClass::FIG12.to_vec();
    let corpus = Corpus::generate(seed, per_class, &classes);
    let mut rows = Vec::new();
    for (label, policy) in [
        ("adaptive", RollbackPolicy::Adaptive),
        ("to-initial", RollbackPolicy::ToInitial),
        ("none", RollbackPolicy::None),
    ] {
        let mut cfg = RustBrainConfig::for_model(ModelId::Gpt35, seed);
        cfg.rollback = policy;
        // Count rollbacks via direct pipeline access.
        let mut brain = RustBrain::new(cfg.clone());
        let mut rollbacks = 0usize;
        let mut times = Vec::new();
        let mut results = Vec::new();
        for case in &corpus.cases {
            let out = brain.repair(&case.buggy, &case.gold_outputs());
            rollbacks += out.rollbacks;
            times.push(out.overhead_ms / 1000.0);
            results.push(crate::runner::CaseResult {
                case_id: case.id.clone(),
                class: case.class,
                passed: out.passed,
                acceptable: out.acceptable,
                overhead_ms: out.overhead_ms,
                kb_queries: out.kb_queries,
                kb_query_ms: out.kb_query_time_ms,
            });
        }
        let (pass, exec) = overall_rates(&results);
        rows.push(PolicyResult {
            policy: label.to_owned(),
            pass,
            exec,
            rollbacks,
            mean_time_s: crate::stats::mean(&times),
        });
        // Silence unused warning for the System import used by siblings.
        let _ = System::llm;
    }
    RollbackAblation { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_not_worse_than_alternatives() {
        let a = run(31, 3);
        let adaptive = a.row("adaptive");
        let none = a.row("none");
        let initial = a.row("to-initial");
        // Adaptive must not lose to no-rollback on pass rate, and should
        // not be slower than restart-from-scratch.
        assert!(
            adaptive.pass.value() + 1e-9 >= none.pass.value() - 0.1,
            "adaptive {} vs none {}",
            adaptive.pass.percent(),
            none.pass.percent()
        );
        assert!(
            adaptive.mean_time_s <= initial.mean_time_s * 1.35,
            "adaptive slower than restart: {} vs {}",
            adaptive.mean_time_s,
            initial.mean_time_s
        );
    }

    #[test]
    fn render_lists_policies() {
        let text = run(1, 1).render();
        assert!(text.contains("adaptive"));
        assert!(text.contains("to-initial"));
        assert!(text.contains("none"));
    }
}
