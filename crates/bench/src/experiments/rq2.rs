//! RQ2 (Figs. 8 and 9): pass-by-Miri rate and execution (semantic
//! acceptability) rate per UB class, across the paper's seven
//! configurations: three standalone models, the three +RustBrain variants
//! and GPT-4+RustBrain without the knowledge base.

use crate::runner::{rates_by_class, System};
use crate::stats::Rate;
use rb_dataset::Corpus;
use rb_llm::ModelId;
use rb_miri::UbClass;
use rustbrain::RustBrainConfig;
use serde::{Deserialize, Serialize};

/// The seven configurations of Figs. 8/9, in the paper's legend order.
pub const CONFIG_LABELS: [&str; 7] = [
    "GPT-3.5",
    "Claude-3.5",
    "GPT-4",
    "GPT-3.5+RustBrain",
    "Claude-3.5+RustBrain",
    "GPT-4+RustBrain(non knowledge)",
    "GPT-4+RustBrain",
];

/// One grid row's cells: per class, its (pass, exec) rates.
pub type ClassRates = Vec<(UbClass, Rate, Rate)>;

/// Result grid: per configuration, per class, (pass, exec) rates.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Rq2Grid {
    /// Classes in display order.
    pub classes: Vec<UbClass>,
    /// Rows: `(config label, per-class (class, pass, exec))`.
    pub rows: Vec<(String, ClassRates)>,
}

impl Rq2Grid {
    /// Overall pass rate of a configuration.
    #[must_use]
    pub fn overall_pass(&self, label: &str) -> f64 {
        self.overall(label, false)
    }

    /// Overall exec rate of a configuration.
    #[must_use]
    pub fn overall_exec(&self, label: &str) -> f64 {
        self.overall(label, true)
    }

    fn overall(&self, label: &str, exec: bool) -> f64 {
        let row = self
            .rows
            .iter()
            .find(|(l, _)| l == label)
            .unwrap_or_else(|| panic!("unknown config {label}"));
        let (mut hits, mut n) = (0usize, 0usize);
        for (_, pass, ex) in &row.1 {
            let r = if exec { ex } else { pass };
            hits += r.hits;
            n += r.n;
        }
        if n == 0 {
            0.0
        } else {
            100.0 * hits as f64 / n as f64
        }
    }

    /// Renders one of the two figures as an aligned text table.
    #[must_use]
    pub fn render(&self, exec: bool) -> String {
        let title = if exec {
            "Fig. 9: RustBrain fixes UBs — semantic acceptability (execution) rate (%)"
        } else {
            "Fig. 8: RustBrain fixes UBs — pass-by-Miri rate (%)"
        };
        let mut out = format!("{title}\n");
        out.push_str(&format!("{:<32}", "config"));
        for c in &self.classes {
            out.push_str(&format!("{:>16}", c.label()));
        }
        out.push_str(&format!("{:>9}\n", "avg"));
        for (label, cells) in &self.rows {
            out.push_str(&format!("{label:<32}"));
            for (_, pass, ex) in cells {
                let r = if exec { ex } else { pass };
                out.push_str(&format!("{:>15.1}%", r.percent()));
            }
            out.push_str(&format!("{:>8.1}%\n", self.overall(label, exec)));
        }
        out
    }
}

/// Runs the full RQ2 grid.
#[must_use]
pub fn run(seed: u64, per_class: usize) -> Rq2Grid {
    let classes: Vec<UbClass> = UbClass::FIG8.to_vec();
    let corpus = Corpus::generate(seed, per_class, &classes);
    let mut rows = Vec::new();
    let systems: Vec<(String, System)> = vec![
        ("GPT-3.5".into(), System::llm(ModelId::Gpt35, seed)),
        ("Claude-3.5".into(), System::llm(ModelId::Claude35, seed)),
        ("GPT-4".into(), System::llm(ModelId::Gpt4, seed)),
        (
            "GPT-3.5+RustBrain".into(),
            System::brain(RustBrainConfig::for_model(ModelId::Gpt35, seed)),
        ),
        (
            "Claude-3.5+RustBrain".into(),
            System::brain(RustBrainConfig::for_model(ModelId::Claude35, seed)),
        ),
        (
            "GPT-4+RustBrain(non knowledge)".into(),
            System::brain(RustBrainConfig::without_knowledge(ModelId::Gpt4, seed)),
        ),
        (
            "GPT-4+RustBrain".into(),
            System::brain(RustBrainConfig::for_model(ModelId::Gpt4, seed)),
        ),
    ];
    for (label, mut system) in systems {
        let results = system.run_corpus(&corpus.cases);
        rows.push((label, rates_by_class(&results, &classes)));
    }
    Rq2Grid { classes, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shape_and_paper_orderings() {
        let grid = run(7, 3);
        assert_eq!(grid.rows.len(), 7);
        assert_eq!(grid.classes.len(), 11);

        // The headline orderings of the paper's RQ2 must hold:
        // RustBrain lifts every base model substantially,
        let g4 = grid.overall_pass("GPT-4");
        let g4_rb = grid.overall_pass("GPT-4+RustBrain");
        assert!(
            g4_rb >= g4 + 15.0,
            "RustBrain lift too small: {g4} -> {g4_rb}"
        );
        // the knowledge base does not hurt pass rate,
        let no_kb = grid.overall_pass("GPT-4+RustBrain(non knowledge)");
        assert!(
            g4_rb + 10.0 >= no_kb,
            "KB config collapsed: {g4_rb} vs {no_kb}"
        );
        // GPT-3.5+RustBrain reaches at least standalone GPT-4 level,
        let g35_rb = grid.overall_pass("GPT-3.5+RustBrain");
        assert!(g35_rb >= g4, "GPT-3.5+RB ({g35_rb}) < GPT-4 alone ({g4})");
        // and execution rate never exceeds pass rate anywhere.
        for label in CONFIG_LABELS {
            assert!(
                grid.overall_exec(label) <= grid.overall_pass(label) + 1e-9,
                "{label}: exec > pass"
            );
        }
    }

    #[test]
    fn render_contains_all_rows() {
        let grid = run(3, 2);
        let fig8 = grid.render(false);
        let fig9 = grid.render(true);
        for label in CONFIG_LABELS {
            assert!(fig8.contains(label));
            assert!(fig9.contains(label));
        }
        assert!(fig8.contains("danglingpointer"));
    }
}
