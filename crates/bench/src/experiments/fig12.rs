//! RQ4 (Fig. 12): RustBrain vs RustAssistant per class, pass and exec,
//! plus the no-knowledge exec series. The paper reports +33 % pass and
//! +41 % exec for RustBrain.

use crate::runner::{rates_by_class, System};
use crate::stats::Rate;
use rb_dataset::Corpus;
use rb_llm::ModelId;
use rb_miri::UbClass;
use rustbrain::RustBrainConfig;
use serde::{Deserialize, Serialize};

/// Experiment output.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig12Result {
    /// Classes (Fig. 8's plus `uninit`).
    pub classes: Vec<UbClass>,
    /// GPT-4+RustBrain per-class rates.
    pub rustbrain: Vec<(UbClass, Rate, Rate)>,
    /// RustAssistant per-class rates.
    pub rust_assistant: Vec<(UbClass, Rate, Rate)>,
    /// GPT-4+RustBrain without knowledge, per-class rates.
    pub rustbrain_no_kb: Vec<(UbClass, Rate, Rate)>,
}

fn overall(rows: &[(UbClass, Rate, Rate)], exec: bool) -> f64 {
    let (mut h, mut n) = (0usize, 0usize);
    for (_, p, e) in rows {
        let r = if exec { e } else { p };
        h += r.hits;
        n += r.n;
    }
    100.0 * h as f64 / n.max(1) as f64
}

impl Fig12Result {
    /// RustBrain's pass-rate advantage in percentage points.
    #[must_use]
    pub fn pass_advantage(&self) -> f64 {
        overall(&self.rustbrain, false) - overall(&self.rust_assistant, false)
    }

    /// RustBrain's exec-rate advantage in percentage points.
    #[must_use]
    pub fn exec_advantage(&self) -> f64 {
        overall(&self.rustbrain, true) - overall(&self.rust_assistant, true)
    }

    /// Renders the comparison table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from("Fig. 12: RustBrain vs RustAssistant on UB repair (%)\n");
        out.push_str(&format!(
            "{:<18}{:>10}{:>10}{:>10}{:>10}{:>14}\n",
            "class", "RB pass", "RA pass", "RB exec", "RA exec", "RB noKB exec"
        ));
        for (((c, rbp, rbe), (_, rap, rae)), (_, _, nke)) in self
            .rustbrain
            .iter()
            .zip(&self.rust_assistant)
            .zip(&self.rustbrain_no_kb)
        {
            out.push_str(&format!(
                "{:<18}{:>9.1}%{:>9.1}%{:>9.1}%{:>9.1}%{:>13.1}%\n",
                c.label(),
                rbp.percent(),
                rap.percent(),
                rbe.percent(),
                rae.percent(),
                nke.percent()
            ));
        }
        out.push_str(&format!(
            "overall: RustBrain pass {:.1}% / exec {:.1}%; RustAssistant pass {:.1}% / exec {:.1}%; \
             advantage +{:.1} / +{:.1} points\n",
            overall(&self.rustbrain, false),
            overall(&self.rustbrain, true),
            overall(&self.rust_assistant, false),
            overall(&self.rust_assistant, true),
            self.pass_advantage(),
            self.exec_advantage()
        ));
        out
    }
}

/// Runs Fig. 12.
#[must_use]
pub fn run(seed: u64, per_class: usize) -> Fig12Result {
    let classes: Vec<UbClass> = UbClass::FIG12.to_vec();
    let corpus = Corpus::generate(seed, per_class, &classes);
    let mut rb = System::brain(RustBrainConfig::for_model(ModelId::Gpt4, seed));
    let mut ra = System::rust_assistant(seed);
    let mut nk = System::brain(RustBrainConfig::without_knowledge(ModelId::Gpt4, seed));
    let rb_r = rb.run_corpus(&corpus.cases);
    let ra_r = ra.run_corpus(&corpus.cases);
    let nk_r = nk.run_corpus(&corpus.cases);
    Fig12Result {
        classes: classes.clone(),
        rustbrain: rates_by_class(&rb_r, &classes),
        rust_assistant: rates_by_class(&ra_r, &classes),
        rustbrain_no_kb: rates_by_class(&nk_r, &classes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rustbrain_dominates_fixed_pipeline() {
        let r = run(13, 4);
        assert_eq!(r.classes.len(), 12);
        assert!(
            r.pass_advantage() > 5.0,
            "pass advantage only {:.1} points",
            r.pass_advantage()
        );
        assert!(
            r.exec_advantage() > 10.0,
            "exec advantage only {:.1} points",
            r.exec_advantage()
        );
    }

    #[test]
    fn render_summarises_advantage() {
        let text = run(2, 2).render();
        assert!(text.contains("advantage"));
        assert!(text.contains("uninit"));
    }
}
