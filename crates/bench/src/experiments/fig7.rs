//! RQ1 (Fig. 7): flexibility. One UB case requiring semantic modification
//! is given to fast thinking; the ten generated solutions are each executed
//! by slow thinking, recording which agents ran (and in which order),
//! whether the result passes Miri, whether it is semantically acceptable,
//! and the simulated overhead — the paper's enable/disable agent matrix.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rb_dataset::{templates_for, UbCase};
use rb_engine::CachedOracle;
use rb_llm::ModelId;
use rb_miri::{Oracle, UbClass};
use rustbrain::{AgentKind, RustBrain, RustBrainConfig};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One row of the Fig. 7 matrix.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SolutionRow {
    /// Solution index (1-based, as in the figure).
    pub group: usize,
    /// The agent sequence (the figure's serial numbers).
    pub agents: Vec<AgentKind>,
    /// Whether the knowledge base was consulted.
    pub used_knowledge: bool,
    /// Passes Miri (the figure's blue).
    pub passed: bool,
    /// Semantically acceptable (the figure's red).
    pub acceptable: bool,
    /// Simulated seconds.
    pub overhead_s: f64,
}

/// The full experiment output.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig7Result {
    /// Case the solutions repaired.
    pub case_id: String,
    /// Rows, one per generated solution.
    pub rows: Vec<SolutionRow>,
}

impl Fig7Result {
    /// Renders the matrix as text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "Fig. 7: RustBrain flexibly fixes UBs — case {} (semantic modification)\n\
             {:<6}{:<44}{:>5}{:>7}{:>9}{:>11}\n",
            self.case_id, "group", "agents (execution order)", "KB", "pass", "accept", "time(s)"
        );
        for r in &self.rows {
            let agents: Vec<&str> = r.agents.iter().map(|a| a.label()).collect();
            out.push_str(&format!(
                "{:<6}{:<44}{:>5}{:>7}{:>9}{:>10.1}\n",
                r.group,
                agents.join(" -> "),
                if r.used_knowledge { "[x]" } else { "[ ]" },
                if r.passed { "yes" } else { "no" },
                if r.acceptable { "yes" } else { "no" },
                r.overhead_s,
            ));
        }
        out
    }

    /// Mean overhead of knowledge-base solutions over non-KB ones.
    #[must_use]
    pub fn kb_overhead_factor(&self) -> Option<f64> {
        let kb: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.used_knowledge)
            .map(|r| r.overhead_s)
            .collect();
        let no: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| !r.used_knowledge)
            .map(|r| r.overhead_s)
            .collect();
        if kb.is_empty() || no.is_empty() {
            return None;
        }
        Some(crate::stats::mean(&kb) / crate::stats::mean(&no).max(1e-9))
    }
}

/// Runs Fig. 7: ten fast-thinking solutions for one semantic-modification
/// UB (a dangling pointer whose repair requires restructuring the code),
/// each executed and evaluated independently.
#[must_use]
pub fn run(seed: u64) -> Fig7Result {
    // A scope-escape dangling pointer: the class the paper calls
    // "requiring semantic modification".
    let template = templates_for(UbClass::DanglingPointer)
        .into_iter()
        .find(|t| t.name == "scope_escape")
        .expect("template exists");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let sources = (template.make)(&mut rng);
    let case = UbCase::from_sources(
        format!(
            "{}/{}/fig7",
            UbClass::DanglingPointer.label(),
            template.name
        ),
        UbClass::DanglingPointer,
        template.name,
        &sources.buggy,
        &sources.gold,
        &sources.description,
    );
    case.validate().expect("fig7 case valid");
    // Judge through the process-wide verdict cache: the same case is
    // instantiated across seeds and sibling experiments, and the ten
    // slow-thinking executions below re-verify many identical candidates.
    let oracle: Arc<dyn Oracle> = Arc::new(CachedOracle::global());
    let reference = oracle.judge(&case.gold).outputs.clone();
    let report = oracle.judge(&case.buggy);

    // Seed a small knowledge base so abstract-reasoning solutions have
    // something to retrieve (the paper's KB-backed groups).
    let mut brain = RustBrain::with_oracle(
        RustBrainConfig::for_model(ModelId::Gpt4, seed),
        Arc::clone(&oracle),
    );
    brain.seed_knowledge(
        &case.buggy,
        UbClass::DanglingPointer,
        rb_llm::RepairRule::HoistLocalOut,
    );

    let solutions = brain.generate_solutions(&case.buggy, &report);
    let mut rows = Vec::new();
    for (i, solution) in solutions.iter().enumerate() {
        let outcome = brain.execute_one(&case.buggy, &report, solution, &reference, 6);
        rows.push(SolutionRow {
            group: i + 1,
            agents: solution.steps.clone(),
            used_knowledge: solution.uses_knowledge(),
            passed: outcome.eval.accuracy,
            acceptable: outcome.eval.acceptability,
            overhead_s: outcome.overhead_ms / 1000.0,
        });
    }
    Fig7Result {
        case_id: case.id,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_ten_diverse_solutions() {
        let r = run(11);
        assert_eq!(r.rows.len(), 10);
        // Diversity: more than two distinct agent sequences.
        let mut seqs: Vec<Vec<AgentKind>> = r.rows.iter().map(|x| x.agents.clone()).collect();
        seqs.sort();
        seqs.dedup();
        assert!(seqs.len() > 2, "only {} distinct solutions", seqs.len());
        // At least one solution repairs the case.
        assert!(r.rows.iter().any(|x| x.passed));
    }

    #[test]
    fn kb_solutions_cost_more() {
        // Average over seeds to smooth sampling noise.
        let mut factors = Vec::new();
        for seed in [1u64, 2, 3, 5, 8] {
            if let Some(f) = run(seed).kb_overhead_factor() {
                factors.push(f);
            }
        }
        assert!(!factors.is_empty());
        let mean = crate::stats::mean(&factors);
        assert!(mean > 1.0, "knowledge overhead factor {mean} <= 1");
    }

    #[test]
    fn render_is_a_matrix() {
        let text = run(4).render();
        assert!(text.contains("group"));
        assert!(text.contains("[x]") || text.contains("[ ]"));
    }
}
