//! RQ3 (Fig. 11): sensitivity of GPT-4+RustBrain to sampling temperature.
//! Pass and exec rates with 95 % Wilson confidence intervals across
//! temperatures 0.1–0.9; the paper finds the optimum near 0.5, with high
//! temperatures trading semantic integrity for flexibility.

use crate::runner::{overall_rates, System};
use crate::stats::Rate;
use rb_dataset::Corpus;
use rb_llm::ModelId;
use rb_miri::UbClass;
use rustbrain::RustBrainConfig;
use serde::{Deserialize, Serialize};

/// One temperature point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TempPoint {
    /// Sampling temperature.
    pub temperature: f64,
    /// Pass rate with sample size.
    pub pass: Rate,
    /// Exec rate with sample size.
    pub exec: Rate,
}

impl TempPoint {
    /// 95 % Wilson CI of the pass rate.
    #[must_use]
    pub fn pass_ci(&self) -> (f64, f64) {
        self.pass.wilson_ci(1.96)
    }

    /// 95 % Wilson CI of the exec rate.
    #[must_use]
    pub fn exec_ci(&self) -> (f64, f64) {
        self.exec.wilson_ci(1.96)
    }
}

/// Experiment output.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig11Result {
    /// Points, ascending in temperature.
    pub points: Vec<TempPoint>,
}

impl Fig11Result {
    /// Renders the sweep as a table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out =
            String::from("Fig. 11: temperature sensitivity of GPT-4+RustBrain (95% CI)\n");
        out.push_str(&format!(
            "{:<6}{:>8}{:>19}{:>8}{:>19}\n",
            "temp", "pass", "pass CI", "exec", "exec CI"
        ));
        for p in &self.points {
            let (pl, ph) = p.pass_ci();
            let (el, eh) = p.exec_ci();
            out.push_str(&format!(
                "{:<6.1}{:>7.1}%  [{:>5.1}%, {:>5.1}%]{:>7.1}%  [{:>5.1}%, {:>5.1}%]\n",
                p.temperature,
                p.pass.percent(),
                pl * 100.0,
                ph * 100.0,
                p.exec.percent(),
                el * 100.0,
                eh * 100.0
            ));
        }
        out
    }

    /// Temperature with the best exec rate.
    #[must_use]
    pub fn best_exec_temperature(&self) -> f64 {
        self.points
            .iter()
            .max_by(|a, b| {
                a.exec
                    .value()
                    .partial_cmp(&b.exec.value())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map_or(0.5, |p| p.temperature)
    }
}

/// Runs the sweep: `reps` corpora per temperature, aggregated.
#[must_use]
pub fn run(seed: u64, per_class: usize, reps: usize) -> Fig11Result {
    let temps = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
    let classes: Vec<UbClass> = UbClass::FIG8.to_vec();
    let mut points = Vec::new();
    for (ti, &temperature) in temps.iter().enumerate() {
        let mut pass = Rate::default();
        let mut exec = Rate::default();
        for rep in 0..reps {
            let corpus_seed = seed.wrapping_add(rep as u64 * 101);
            let corpus = Corpus::generate(corpus_seed, per_class, &classes);
            let mut cfg =
                RustBrainConfig::for_model(ModelId::Gpt4, seed + ti as u64 + rep as u64 * 7);
            cfg.temperature = temperature;
            let mut system = System::brain(cfg);
            let results = system.run_corpus(&corpus.cases);
            let (p, e) = overall_rates(&results);
            pass.hits += p.hits;
            pass.n += p.n;
            exec.hits += e.hits;
            exec.n += e.n;
        }
        points.push(TempPoint {
            temperature,
            pass,
            exec,
        });
    }
    Fig11Result { points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_nine_points() {
        let r = run(3, 1, 1);
        assert_eq!(r.points.len(), 9);
        assert!(r.points.iter().all(|p| p.pass.n > 0));
        for p in &r.points {
            let (lo, hi) = p.pass_ci();
            assert!(lo <= p.pass.value() && p.pass.value() <= hi);
        }
    }

    #[test]
    fn mid_temperatures_not_dominated_by_extremes() {
        // The shape claim: the best exec temperature is interior (not 0.9),
        // i.e. excessive flexibility costs semantic integrity.
        let r = run(9, 2, 2);
        let best = r.best_exec_temperature();
        assert!(
            (0.1..=0.8).contains(&best),
            "best exec temperature {best} at the hot extreme"
        );
        let exec_09 = r.points.last().unwrap().exec.value();
        let exec_best = r
            .points
            .iter()
            .map(|p| p.exec.value())
            .fold(0.0f64, f64::max);
        assert!(exec_best >= exec_09);
    }
}
