//! Table I (RQ4): repair time of GPT-4+RustBrain — with and without the
//! knowledge base — against human experts, per UB class, with the speedup
//! column. The paper reports a 7.4× average speedup, up to 18× on
//! func.calls, and that the feedback mechanism lets repeated similar UBs
//! bypass the knowledge base (the table's red sections).

use crate::runner::System;
use crate::stats::mean;
use rb_baselines::human::HumanExpert;
use rb_dataset::Corpus;
use rb_llm::ModelId;
use rb_miri::UbClass;
use rustbrain::RustBrainConfig;
use serde::{Deserialize, Serialize};

/// One row of Table I.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table1Row {
    /// UB class.
    pub class: UbClass,
    /// Mean GPT-4+RustBrain time without knowledge (s).
    pub no_knowledge_s: f64,
    /// Mean GPT-4+RustBrain time with knowledge (s).
    pub knowledge_s: f64,
    /// Mean human-expert time (s).
    pub human_s: f64,
    /// Human time / no-knowledge time.
    pub speedup: f64,
}

/// Experiment output.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table1Result {
    /// Rows in the paper's class order.
    pub rows: Vec<Table1Row>,
}

impl Table1Result {
    /// Average row (the paper's last line).
    #[must_use]
    pub fn averages(&self) -> (f64, f64, f64, f64) {
        let nk = mean(
            &self
                .rows
                .iter()
                .map(|r| r.no_knowledge_s)
                .collect::<Vec<_>>(),
        );
        let k = mean(&self.rows.iter().map(|r| r.knowledge_s).collect::<Vec<_>>());
        let h = mean(&self.rows.iter().map(|r| r.human_s).collect::<Vec<_>>());
        (nk, k, h, h / nk.max(1e-9))
    }

    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out =
            String::from("Table I: Execution time of RustBrain (GPT-4) against human experts\n");
        out.push_str(&format!(
            "{:<18}{:>14}{:>14}{:>10}{:>10}\n",
            "type", "no knowl. (s)", "knowledge (s)", "human (s)", "speedup"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<18}{:>14.1}{:>14.1}{:>10.0}{:>9.2}x\n",
                r.class.label(),
                r.no_knowledge_s,
                r.knowledge_s,
                r.human_s,
                r.speedup
            ));
        }
        let (nk, k, h, s) = self.averages();
        out.push_str(&format!(
            "{:<18}{:>14.1}{:>14.1}{:>10.0}{:>9.2}x\n",
            "Average", nk, k, h, s
        ));
        out
    }
}

/// Runs Table I over `per_class` cases per class.
#[must_use]
pub fn run(seed: u64, per_class: usize) -> Table1Result {
    let classes: Vec<UbClass> = UbClass::TABLE1.to_vec();
    let corpus = Corpus::generate(seed, per_class, &classes);
    let mut human = HumanExpert::new(seed);
    let mut no_kb = System::brain(RustBrainConfig::without_knowledge(ModelId::Gpt4, seed));
    let mut kb = System::brain(RustBrainConfig::for_model(ModelId::Gpt4, seed));

    let nk_results = no_kb.run_corpus(&corpus.cases);
    let kb_results = kb.run_corpus(&corpus.cases);

    let mut rows = Vec::new();
    for &class in &classes {
        let nk_times: Vec<f64> = nk_results
            .iter()
            .filter(|r| r.class == class)
            .map(|r| r.overhead_ms / 1000.0)
            .collect();
        let kb_times: Vec<f64> = kb_results
            .iter()
            .filter(|r| r.class == class)
            .map(|r| r.overhead_ms / 1000.0)
            .collect();
        let human_s = human.mean_time_s(class, per_class.max(4));
        let no_knowledge_s = mean(&nk_times);
        rows.push(Table1Row {
            class,
            no_knowledge_s,
            knowledge_s: mean(&kb_times),
            human_s,
            speedup: human_s / no_knowledge_s.max(1e-9),
        });
    }
    Table1Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_baselines::human::human_time_s;

    #[test]
    fn speedups_substantial_and_knowledge_costs_time() {
        let t = run(21, 4);
        assert_eq!(t.rows.len(), 12);
        let (nk, k, h, speedup) = t.averages();
        // The paper's mean speedup is 7.4x; the shape claim is that the
        // framework is several-fold faster than humans.
        assert!(speedup > 3.0, "mean speedup only {speedup:.2}x");
        assert!(h > nk, "humans should be slower on average");
        // Knowledge adds retrieval overhead on average.
        assert!(
            k > nk * 0.9,
            "knowledge config unexpectedly cheap: {k} vs {nk}"
        );
    }

    #[test]
    fn human_column_matches_reference() {
        let t = run(3, 2);
        for row in &t.rows {
            let expected = human_time_s(row.class);
            assert!(
                (row.human_s - expected).abs() / expected < 0.35,
                "{}: sampled {} vs nominal {}",
                row.class,
                row.human_s,
                expected
            );
        }
    }

    #[test]
    fn render_has_average_line() {
        let text = run(2, 2).render();
        assert!(text.contains("Average"));
        assert!(text.contains("func.call"));
    }
}
