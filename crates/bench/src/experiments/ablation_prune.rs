//! Algorithm 1 ablation: does pruning the AST before vectorisation improve
//! knowledge-base retrieval? We index solved cases with pruned vs unpruned
//! embeddings and measure whether the nearest neighbour of a fresh query
//! carries the *correct* repair rule, plus the query-cost growth with base
//! size.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rb_dataset::{all_templates, CaseSources};
use rb_lang::parser::parse_program;
use rb_lang::prune::prune_program;
use rb_lang::vectorize::AstVector;
use rb_llm::RepairRule;
use rb_miri::UbClass;
use rustbrain::KnowledgeBase;
use serde::{Deserialize, Serialize};

/// Experiment output.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PruneAblation {
    /// Retrieval accuracy with Algorithm 1 pruning (clean queries).
    pub pruned_accuracy: f64,
    /// Retrieval accuracy on raw embeddings (clean queries).
    pub unpruned_accuracy: f64,
    /// Retrieval accuracy with pruning when queries carry irrelevant
    /// statements — the noise Algorithm 1 exists to remove.
    pub pruned_noisy_accuracy: f64,
    /// Retrieval accuracy without pruning on the same noisy queries.
    pub unpruned_noisy_accuracy: f64,
    /// Mean statements removed by pruning per noisy program.
    pub mean_removed: f64,
    /// Query cost (simulated ms) at knowledge-base sizes 10/100/1000.
    pub query_cost_ms: [f64; 3],
}

impl PruneAblation {
    /// Renders the ablation summary.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "Algorithm 1 (AST pruning) ablation\n\
             clean queries  — pruned: {:.1}%   unpruned: {:.1}%\n\
             noisy queries  — pruned: {:.1}%   unpruned: {:.1}%\n\
             mean statements pruned per noisy program: {:.1}\n\
             KB query cost at size 10/100/1000: {:.0} / {:.0} / {:.0} ms\n",
            self.pruned_accuracy * 100.0,
            self.unpruned_accuracy * 100.0,
            self.pruned_noisy_accuracy * 100.0,
            self.unpruned_noisy_accuracy * 100.0,
            self.mean_removed,
            self.query_cost_ms[0],
            self.query_cost_ms[1],
            self.query_cost_ms[2],
        )
    }
}

/// The canonical rule for each template family (what a correct retrieval
/// should surface).
fn canonical_rule(template: &str) -> RepairRule {
    match template {
        "double_free" => RepairRule::RemoveDoubleFree,
        "layout_mismatch" => RepairRule::FixDeallocLayout,
        "leak" => RepairRule::AddDealloc,
        "scope_escape" => RepairRule::HoistLocalOut,
        "use_after_free" => RepairRule::ReorderDeallocAfterUse,
        "oob_offset" => RepairRule::AlignOffsetDown,
        "read_before_write" => RepairRule::InitializeBeforeRead,
        "union_tail" => RepairRule::UnionUseLargestField,
        "int_roundtrip" | "transmute_ref" | "addr_arith" => RepairRule::UseDirectPointer,
        "odd_offset" => RepairRule::AlignOffsetDown,
        "array_cast" => RepairRule::AlignOffsetUp,
        "bool_transmute" => RepairRule::BoolFromComparison,
        "transmute_size" => RepairRule::TransmuteBytesToFromLe,
        "int_to_ref" => RepairRule::BorrowLocalInstead,
        "write_invalidates" => RepairRule::RetakePointerAfterWrite,
        "shared_write" => RepairRule::UseRawMutDirect,
        "two_mut" | "cross_fn" => RepairRule::SingleMutBorrow,
        "two_writers" | "heap_writers" | "reader_writer" => RepairRule::LockSpawnBodies,
        "increment" => RepairRule::UseAtomics,
        "main_read" => RepairRule::MoveReadAfterJoin,
        "unchecked_add" => RepairRule::WidenArithmetic,
        "assume_init" => RepairRule::InitializeBeforeRead,
        "copy_overlap" => RepairRule::CopyWithoutOverlap,
        "forged" => RepairRule::DirectFnUse,
        "wrong_sig" => RepairRule::FixFnPtrSignature,
        "arity" | "ret_mismatch" => RepairRule::ReplaceTailCallWithReturn,
        "assert_threshold" => RepairRule::WeakenAssert,
        "div_zero" => RepairRule::GuardDivision,
        "index_literal" => RepairRule::FixLiteralIndex,
        "overflow" => RepairRule::WidenArithmetic,
        "ref_invalidated" => RepairRule::RetakePointerAfterWrite,
        "three_writers" => RepairRule::LockSpawnBodies,
        "callee_unchecked" => RepairRule::WidenArithmetic,
        "helper_writer" => RepairRule::LockSpawnBodies,
        "callee_transmute" => RepairRule::BoolFromComparison,
        other => panic!("unknown template {other}"),
    }
}

fn embed(src: &str, pruned: bool) -> (AstVector, usize) {
    let prog = parse_program(src).expect("template parses");
    if pruned {
        let (p, removed) = prune_program(&prog);
        (AstVector::embed(&p), removed)
    } else {
        (AstVector::embed(&prog), 0)
    }
}

/// Prepends `n` irrelevant-but-plausible statements to `main` — the noise
/// real projects surround their unsafe cores with.
fn inject_noise(src: &str, n: usize, seed: u64) -> String {
    let mut noise = String::new();
    for i in 0..n {
        let v = (seed as usize).wrapping_mul(31).wrapping_add(i * 7) % 90 + 1;
        noise.push_str(&format!(
            "let aux_{i}: i32 = {v}; if aux_{i} > 0 {{ print(aux_{i}); }} "
        ));
    }
    // Insert right after `fn main() {`.
    src.replacen("fn main() { ", &format!("fn main() {{ {noise}"), 1)
}

fn retrieval_accuracy(seed: u64, pruned: bool, noisy: bool, removed_acc: &mut Vec<f64>) -> f64 {
    let templates = all_templates();
    // Index one instance per template; query with a fresh instance.
    let mut kb = KnowledgeBase::new();
    let mut index_rng = ChaCha8Rng::seed_from_u64(seed);
    for t in &templates {
        let CaseSources { buggy, .. } = (t.make)(&mut index_rng);
        let (v, _) = embed(&buggy, pruned);
        kb.insert(v, t.class, canonical_rule(t.name));
    }
    let mut query_rng = ChaCha8Rng::seed_from_u64(seed ^ 0xDEAD_BEEF);
    let mut hits = 0usize;
    for (i, t) in templates.iter().enumerate() {
        let CaseSources { buggy, .. } = (t.make)(&mut query_rng);
        let query_src = if noisy {
            inject_noise(&buggy, 6, seed.wrapping_add(i as u64))
        } else {
            buggy
        };
        let (v, removed) = embed(&query_src, pruned);
        if pruned && noisy {
            removed_acc.push(removed as f64);
        }
        let shots = kb.query(&v, t.class, 1);
        if shots.first().map(|s| s.rule) == Some(canonical_rule(t.name)) {
            hits += 1;
        }
    }
    hits as f64 / templates.len() as f64
}

/// Runs the ablation.
#[must_use]
pub fn run(seed: u64) -> PruneAblation {
    let mut removed = Vec::new();
    let pruned_accuracy = retrieval_accuracy(seed, true, false, &mut Vec::new());
    let unpruned_accuracy = retrieval_accuracy(seed, false, false, &mut Vec::new());
    let pruned_noisy_accuracy = retrieval_accuracy(seed, true, true, &mut removed);
    let unpruned_noisy_accuracy = retrieval_accuracy(seed, false, true, &mut Vec::new());
    let probe = AstVector::embed(&parse_program("fn main() { }").unwrap());
    let cost = |n: usize| {
        let mut kb = KnowledgeBase::new();
        for _ in 0..n {
            kb.insert(probe.clone(), UbClass::Panic, RepairRule::GuardDivision);
        }
        kb.query_cost_ms(UbClass::Panic)
    };
    PruneAblation {
        pruned_accuracy,
        unpruned_accuracy,
        pruned_noisy_accuracy,
        unpruned_noisy_accuracy,
        mean_removed: crate::stats::mean(&removed),
        query_cost_ms: [cost(10), cost(100), cost(1000)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pruning_does_not_hurt_clean_retrieval() {
        let a = run(17);
        assert!(
            a.pruned_accuracy + 1e-9 >= a.unpruned_accuracy - 0.15,
            "pruned {} vs unpruned {}",
            a.pruned_accuracy,
            a.unpruned_accuracy
        );
        assert!(
            a.pruned_accuracy > 0.6,
            "retrieval accuracy {}",
            a.pruned_accuracy
        );
    }

    #[test]
    fn pruning_wins_under_noise() {
        // The paper's claim for Algorithm 1: irrelevant code distracts
        // retrieval; pruning removes it.
        let a = run(17);
        assert!(
            a.pruned_noisy_accuracy > a.unpruned_noisy_accuracy,
            "pruned {} vs unpruned {} on noisy queries",
            a.pruned_noisy_accuracy,
            a.unpruned_noisy_accuracy
        );
        assert!(
            a.mean_removed >= 3.0,
            "noise was not pruned: {}",
            a.mean_removed
        );
    }

    #[test]
    fn query_cost_monotonic_in_size() {
        let a = run(1);
        assert!(a.query_cost_ms[0] < a.query_cost_ms[1]);
        assert!(a.query_cost_ms[1] < a.query_cost_ms[2]);
    }

    #[test]
    fn render_has_percentages() {
        let text = run(2).render();
        assert!(text.contains("noisy queries"));
    }
}
