//! Fig. 10: GPT-4+RustBrain vs GPT-O1+RustBrain on the subset of classes
//! the paper could afford to run O1 on (alloc, tailcall, dangling pointer,
//! func.pointer, panic, unaligned, func.call). The paper's observation:
//! despite O1's reasoning strength, RustBrain+GPT-4 beats it on uncommon
//! errors such as panics.

use crate::runner::{rates_by_class, System};
use crate::stats::Rate;
use rb_dataset::Corpus;
use rb_llm::ModelId;
use rb_miri::UbClass;
use rustbrain::RustBrainConfig;
use serde::{Deserialize, Serialize};

/// Experiment output.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig10Result {
    /// Classes in the paper's order.
    pub classes: Vec<UbClass>,
    /// GPT-4+RustBrain per-class (pass, exec).
    pub gpt4: Vec<(UbClass, Rate, Rate)>,
    /// GPT-O1+RustBrain per-class (pass, exec).
    pub o1: Vec<(UbClass, Rate, Rate)>,
}

impl Fig10Result {
    /// Renders the comparison table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out =
            String::from("Fig. 10: RustBrain with GPT-4 vs GPT-O1 on UB repair (subset, %)\n");
        out.push_str(&format!(
            "{:<18}{:>14}{:>14}{:>14}{:>14}\n",
            "class", "GPT4+RB pass", "O1+RB pass", "GPT4+RB exec", "O1+RB exec"
        ));
        for ((c, g4p, g4e), (_, o1p, o1e)) in self.gpt4.iter().zip(&self.o1) {
            out.push_str(&format!(
                "{:<18}{:>13.1}%{:>13.1}%{:>13.1}%{:>13.1}%\n",
                c.label(),
                g4p.percent(),
                o1p.percent(),
                g4e.percent(),
                o1e.percent()
            ));
        }
        out
    }

    fn overall(rows: &[(UbClass, Rate, Rate)], exec: bool) -> f64 {
        let (mut h, mut n) = (0usize, 0usize);
        for (_, p, e) in rows {
            let r = if exec { e } else { p };
            h += r.hits;
            n += r.n;
        }
        100.0 * h as f64 / n.max(1) as f64
    }

    /// Overall GPT-4+RB exec rate.
    #[must_use]
    pub fn gpt4_exec(&self) -> f64 {
        Self::overall(&self.gpt4, true)
    }

    /// Overall O1+RB exec rate.
    #[must_use]
    pub fn o1_exec(&self) -> f64 {
        Self::overall(&self.o1, true)
    }

    /// GPT-4+RB exec on panics minus O1+RB exec on panics (the paper's
    /// "+35.6 % on uncommon errors" observation).
    #[must_use]
    pub fn panic_exec_gap(&self) -> f64 {
        let find = |rows: &[(UbClass, Rate, Rate)]| {
            rows.iter()
                .find(|(c, ..)| *c == UbClass::Panic)
                .map_or(0.0, |(_, _, e)| e.percent())
        };
        find(&self.gpt4) - find(&self.o1)
    }
}

/// Runs Fig. 10.
#[must_use]
pub fn run(seed: u64, per_class: usize) -> Fig10Result {
    let classes: Vec<UbClass> = UbClass::FIG10.to_vec();
    let corpus = Corpus::generate(seed, per_class, &classes);
    let mut gpt4 = System::brain(RustBrainConfig::for_model(ModelId::Gpt4, seed));
    let mut o1 = System::brain(RustBrainConfig::for_model(ModelId::GptO1, seed));
    let g4_results = gpt4.run_corpus(&corpus.cases);
    let o1_results = o1.run_corpus(&corpus.cases);
    Fig10Result {
        classes: classes.clone(),
        gpt4: rates_by_class(&g4_results, &classes),
        o1: rates_by_class(&o1_results, &classes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_classes_and_panic_gap() {
        let r = run(5, 4);
        assert_eq!(r.classes.len(), 7);
        assert!(r.classes.contains(&UbClass::TailCall));
        // The paper's headline: GPT-4+RB is at least competitive with
        // O1+RB on panics despite O1's raw strength. Aggregate over seeds
        // to smooth small-sample noise.
        let gap: f64 = [5u64, 6, 7]
            .iter()
            .map(|&s| run(s, 4).panic_exec_gap())
            .sum::<f64>()
            / 3.0;
        assert!(gap >= 0.0, "O1 beat GPT-4 on panics by {:.1} points", -gap);
    }

    #[test]
    fn render_has_both_columns() {
        let text = run(2, 2).render();
        assert!(text.contains("O1+RB pass"));
        assert!(text.contains("tailcall"));
    }
}
