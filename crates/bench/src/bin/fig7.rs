//! Regenerates the paper's Fig. 7 (RQ1 flexibility matrix).
fn main() {
    let result = rb_bench::experiments::fig7::run(rb_bench::experiments::DEFAULT_SEED);
    print!("{}", result.render());
    if let Some(f) = result.kb_overhead_factor() {
        println!("knowledge-base overhead factor: {f:.2}x");
    }
}
