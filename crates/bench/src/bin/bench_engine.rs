//! Engine throughput benchmark: times a full-corpus RustBrain sweep at 1
//! worker and at N workers on a *pre-warmed* shared oracle cache (so the
//! series isolates scheduling from caching), checks the two result
//! streams are byte-identical, and writes the numbers to
//! `BENCH_engine.json` — the engine's perf trajectory across PRs. Since
//! PR 3 the file also carries per-UbClass throughput and the
//! executed-vs-cached oracle split (the whole stack judges through the
//! shared cache now, so the split is the honest measure of how much
//! interpreter work the cache actually saves). Since PR 4 it also
//! carries a warm-vs-cold knowledge comparison: the cold sweep's learned
//! base is saved to an `.rbkb` file, reloaded, and the sweep rerun warm
//! — reporting repair-rate and kb-query-cost deltas plus the entry count
//! before/after the merge policy's coalescing (versus the unbounded
//! append-only alternative).
//!
//! Since PR 7 the file flags `speedup_degraded` when the requested
//! worker count exceeds the machine's cores (the speedup number is then
//! a fact about the host, not the scheduler — CI skips its speedup gate
//! on that flag), and `--trace-out` writes a structured JSONL span
//! trace of the timed parallel sweep.
//!
//! Since PR 8 the bench compares the engine's scheduling policies (FIFO
//! baseline, cost-ordered LPT, work-stealing) on the same warm cache:
//! the `sched.policies` rows carry each policy's measured wall speedup
//! *and* a `modeled_speedup` — a deterministic virtual-clock replay of
//! the policy's dispatch over the serial sweep's measured per-job wall
//! times, which is the honest scheduler comparison when the host lacks a
//! core per worker. `sched.cost_model` reports predicted vs observed
//! per-class milliseconds, `--repeat N` amplifies the corpus (N clones
//! of the 42 templates with varied case ids/sizes) so the signal beats
//! wall-clock noise, and `--cost-table PATH` seeds the cost model from a
//! persisted table and rewrites it from this run's observations.
//!
//! Since PR 9 a traced run re-reads its own flushed trace through
//! `rb_obs::analyze` and writes a `critical_path` section: the
//! per-worker lane bound on achievable speedup, printed and gated next
//! to `model_schedule`'s modeled stealing speedup (the two independent
//! estimates must agree within 10% when the host has a core per
//! worker). Every run also appends one compact row — date, corpus
//! size, policy, speedup, hit rate — to `BENCH_history.jsonl` beside
//! the output file, so the perf trajectory accumulates across PRs
//! without diffing full BENCH files.
//!
//! ```text
//! USAGE: bench_engine [--jobs N] [--per-class N] [--repeat N]
//!                     [--out PATH] [--trace-out PATH]
//!                     [--cost-table PATH]
//! ```

use rb_bench::overall_rates;
use rb_dataset::Corpus;
use rb_engine::{
    model_schedule, BatchOutcome, CostModel, Engine, OracleCache, SchedPolicy, SystemSpec,
};
use rb_llm::ModelId;
use rb_miri::UbClass;
use rustbrain::{KnowledgeBase, MergePolicy, RustBrainConfig};
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    jobs: usize,
    per_class: usize,
    repeat: usize,
    out: String,
    trace_out: Option<String>,
    cost_table: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        jobs: std::thread::available_parallelism().map_or(4, usize::from),
        per_class: 3,
        repeat: 1,
        out: "BENCH_engine.json".to_owned(),
        trace_out: None,
        cost_table: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--jobs" => {
                args.jobs = value("--jobs")?.parse().map_err(|_| "bad --jobs")?;
            }
            "--per-class" => {
                args.per_class = value("--per-class")?
                    .parse()
                    .map_err(|_| "bad --per-class")?;
            }
            "--repeat" => {
                args.repeat = value("--repeat")?.parse().map_err(|_| "bad --repeat")?;
            }
            "--out" => args.out = value("--out")?,
            "--trace-out" => args.trace_out = Some(value("--trace-out")?),
            "--cost-table" => args.cost_table = Some(value("--cost-table")?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.jobs == 0 || args.per_class == 0 || args.repeat == 0 {
        return Err("--jobs, --per-class and --repeat must be positive".into());
    }
    Ok(args)
}

fn sweep(
    workers: usize,
    policy: SchedPolicy,
    model: &CostModel,
    cache: &Arc<OracleCache>,
    spec: &SystemSpec,
    corpus: &Corpus,
    tracer: Option<&rb_obs::Tracer>,
) -> BatchOutcome {
    let mut engine = Engine::with_cache(workers, Arc::clone(cache))
        .with_policy(policy)
        .with_cost_model(model.clone());
    if let Some(tracer) = tracer {
        engine = engine.with_tracer(tracer.clone());
    }
    engine.run_batch(spec, &corpus.cases, corpus.seed)
}

/// Per-UbClass rows of the parallel sweep: case count, pass/exec rates,
/// real wall time spent on the class across all workers (and the derived
/// per-class throughput), and the class's executed-vs-cached oracle
/// split. Rows appear in first-encounter (submission) order.
fn class_rows_json(outcome: &BatchOutcome) -> String {
    let mut classes: Vec<UbClass> = Vec::new();
    for r in &outcome.results {
        if !classes.contains(&r.class) {
            classes.push(r.class);
        }
    }
    let rows: Vec<String> = classes
        .iter()
        .map(|&class| {
            let mut cases = 0usize;
            let mut passed = 0usize;
            let mut acceptable = 0usize;
            let mut wall_ms = 0.0f64;
            let mut executed = 0usize;
            let mut cached = 0usize;
            for j in &outcome.jobs {
                if j.result.class != class {
                    continue;
                }
                cases += 1;
                passed += usize::from(j.result.passed);
                acceptable += usize::from(j.result.acceptable);
                wall_ms += j.wall_ms;
                executed += j.oracle_use.executed;
                cached += j.oracle_use.cached;
            }
            let cases_per_sec = if wall_ms > 0.0 {
                cases as f64 / (wall_ms / 1e3)
            } else {
                0.0
            };
            format!(
                concat!(
                    "{{\"class\":\"{}\",\"cases\":{},\"passed\":{},",
                    "\"acceptable\":{},\"wall_ms\":{:.4},",
                    "\"cases_per_sec\":{:.4},",
                    "\"oracle\":{{\"executed\":{},\"cached\":{}}}}}"
                ),
                class.label(),
                cases,
                passed,
                acceptable,
                wall_ms,
                cases_per_sec,
                executed,
                cached,
            )
        })
        .collect();
    format!("[{}]", rows.join(",\n  "))
}

/// The preflight on-vs-off comparison: rerun the stealing sweep with the
/// static repair preflight disabled, on the same warm cache, and
/// quantify what the `rb_lint` veto saves the oracle. The contract half
/// of the section: the two result documents must be byte-identical —
/// the veto only relabels judgements, it never changes a trajectory.
fn preflight_json(
    jobs: usize,
    model: &CostModel,
    cache: &Arc<OracleCache>,
    corpus: &Corpus,
    on: &BatchOutcome,
) -> (String, String, bool) {
    let mut config = RustBrainConfig::for_model(ModelId::Gpt4, 0);
    config.preflight = false;
    let off_spec = SystemSpec::brain(config);
    let off = sweep(
        jobs,
        SchedPolicy::Stealing,
        model,
        cache,
        &off_spec,
        corpus,
        None,
    );
    let identical = off.results == on.results;
    let json = format!(
        concat!(
            "{{\"oracle_prevetoed\":{},\"identical_results\":{},\n",
            "  \"with\":{{\"executed\":{},\"cached\":{}}},",
            "\"without\":{{\"executed\":{},\"cached\":{}}}}}"
        ),
        on.stats.oracle_prevetoed,
        identical,
        on.stats.oracle_executed,
        on.stats.oracle_cached,
        off.stats.oracle_executed,
        off.stats.oracle_cached,
    );
    let line = format!(
        "preflight: {} judgements vetoed on static evidence ({} -> {} judged by the oracle) | results identical: {identical}",
        on.stats.oracle_prevetoed,
        off.stats.oracle_executed + off.stats.oracle_cached,
        on.stats.oracle_executed + on.stats.oracle_cached,
    );
    (json, line, identical)
}

/// The warm-vs-cold knowledge comparison: saves the cold sweep's learned
/// base through a real `.rbkb` file, reruns the sweep warm from the
/// reloaded store, and runs the append-only alternative to quantify what
/// coalescing bounds. Returns the JSON section and a console summary.
fn warm_start_json(
    jobs: usize,
    cache: &Arc<OracleCache>,
    spec: &SystemSpec,
    corpus: &Corpus,
    cold: &BatchOutcome,
) -> (String, String) {
    // Chained through the sharded production layout: the save reports
    // per-class segmentation and the reload proves the round trip.
    let kb_path = std::env::temp_dir().join(format!("bench_engine_{}.rbkb.d", std::process::id()));
    let save = cold
        .knowledge
        .save_reported(&kb_path)
        .expect("saving the cold knowledge store");
    let snapshot = KnowledgeBase::load(&kb_path).expect("reloading the knowledge store");
    let _ = std::fs::remove_dir_all(&kb_path);

    let warm = Engine::with_cache(jobs, Arc::clone(cache)).run_batch_learned(
        spec,
        &corpus.cases,
        corpus.seed,
        &snapshot,
    );
    // The unbounded alternative the merge policy replaces: blind append.
    let append = Engine::with_cache(jobs, Arc::clone(cache))
        .with_merge_policy(MergePolicy::append_only())
        .run_batch_learned(spec, &corpus.cases, corpus.seed, &snapshot);

    let run_json = |o: &BatchOutcome| {
        let (pass, exec) = overall_rates(&o.results);
        format!(
            concat!(
                "{{\"pass_rate\":{:.4},\"exec_rate\":{:.4},",
                "\"simulated_overhead_ms\":{:.4},\"kb_query_ms\":{:.4}}}"
            ),
            pass.value(),
            exec.value(),
            o.stats.simulated_overhead_ms,
            o.stats.kb_query_ms,
        )
    };
    let (cold_pass, cold_exec) = overall_rates(&cold.results);
    let (warm_pass, warm_exec) = overall_rates(&warm.results);
    let json = format!(
        concat!(
            "{{\"cold\":{},\n   \"warm\":{},\n   ",
            "\"delta\":{{\"pass_rate\":{:.4},\"exec_rate\":{:.4},",
            "\"simulated_overhead_ms\":{:.4},\"kb_query_ms\":{:.4}}},\n   ",
            "\"kb_entries\":{{\"seeded\":{},\"before_coalescing\":{},",
            "\"after_coalescing\":{},\"append_only_final\":{},\"store_shards\":{}}}}}"
        ),
        run_json(cold),
        run_json(&warm),
        warm_pass.value() - cold_pass.value(),
        warm_exec.value() - cold_exec.value(),
        warm.stats.simulated_overhead_ms - cold.stats.simulated_overhead_ms,
        warm.stats.kb_query_ms - cold.stats.kb_query_ms,
        warm.stats.kb.seeded_entries,
        warm.stats.kb.seeded_entries + warm.stats.kb.merged_inserts,
        warm.stats.kb.final_entries,
        append.stats.kb.final_entries,
        save.shards_written + save.shards_skipped,
    );
    let summary = format!(
        "warm start: exec rate {:.1}% -> {:.1}% | overhead {:.0} -> {:.0} ms | kb entries {} coalesced to {} (append-only would hold {})",
        cold_exec.percent(),
        warm_exec.percent(),
        cold.stats.simulated_overhead_ms,
        warm.stats.simulated_overhead_ms,
        warm.stats.kb.seeded_entries + warm.stats.kb.merged_inserts,
        warm.stats.kb.final_entries,
        append.stats.kb.final_entries,
    );
    (json, summary)
}

/// Today's UTC civil date as `YYYY-MM-DD`, from the epoch second count
/// alone (no date dependency in the tree). Days-to-civil conversion per
/// Howard Hinnant's `civil_from_days`.
fn utc_date() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

/// The trace-side critical path of the stealing sweep: re-reads the
/// flushed trace through the analysis layer and bounds the achievable
/// speedup from the per-worker lanes. The consistency comparison is
/// apples-to-apples with `rustbrain trace critical-path`: the modeled
/// side replays the trace's own *simulated* per-job charges (which are
/// deterministic) through the virtual clock, so the only noise in the
/// divergence is the live dispatcher's placement, not host wall-time
/// jitter. Returns the JSON section, a console line, the sim-side
/// speedup bound, and whether the bound agrees with the modeled speedup
/// within 10% (the CI consistency gate when the host isn't
/// oversubscribed).
fn critical_path_json(trace_path: &str) -> Result<(String, String, f64, bool), String> {
    let spans = rb_obs::analyze::read_file(std::path::Path::new(trace_path))
        .map_err(|e| format!("trace {trace_path}: {e}"))?;
    let tree =
        rb_obs::analyze::SpanTree::build(spans).map_err(|e| format!("trace {trace_path}: {e}"))?;
    let cp = rb_obs::analyze::critical_path(&tree);
    if cp.lanes.is_empty() {
        return Err(format!("trace {trace_path}: no engine.job spans"));
    }
    let sims: Vec<f64> = tree
        .spans()
        .iter()
        .filter(|s| s.name == "engine.job")
        .map(|s| s.sim_ms)
        .collect();
    let modeled_speedup =
        model_schedule(SchedPolicy::Stealing, &sims, &sims, cp.lanes.len()).speedup();
    let bound = cp.speedup_bound_sim();
    let divergence = if modeled_speedup > 0.0 {
        (bound - modeled_speedup).abs() / modeled_speedup
    } else {
        0.0
    };
    let within = divergence <= 0.10;
    let json = format!(
        concat!(
            "{{\"lanes\":{},\"jobs\":{},\"stolen\":{},",
            "\"total_sim_ms\":{:.4},\"busiest_lane_sim_ms\":{:.4},",
            "\"speedup_bound_sim\":{:.4},\"speedup_bound_wall\":{:.4},",
            "\"modeled_speedup\":{:.4},\"divergence\":{:.4},",
            "\"bound_matches_model\":{}}}"
        ),
        cp.lanes.len(),
        cp.jobs,
        cp.stolen,
        cp.total_sim_ms,
        cp.critical_sim_ms,
        bound,
        cp.speedup_bound_wall(),
        modeled_speedup,
        divergence,
        within,
    );
    let line = format!(
        "critical path: {} lanes | bound {:.2}x (sim) {:.2}x (wall) | modeled {:.2}x | {}",
        cp.lanes.len(),
        bound,
        cp.speedup_bound_wall(),
        modeled_speedup,
        if within {
            "agrees within 10%".to_owned()
        } else {
            format!("diverges {:.0}%", divergence * 100.0)
        },
    );
    Ok((json, line, bound, within))
}

/// Per-class mean *measured* wall milliseconds of a sweep's jobs.
fn observed_class_ms(outcome: &BatchOutcome) -> BTreeMap<UbClass, f64> {
    let mut sums: BTreeMap<UbClass, (f64, usize)> = BTreeMap::new();
    for j in &outcome.jobs {
        let entry = sums.entry(j.result.class).or_insert((0.0, 0));
        entry.0 += j.wall_ms;
        entry.1 += 1;
    }
    sums.into_iter()
        .map(|(class, (sum, n))| (class, sum / n as f64))
        .collect()
}

/// One measured policy run plus its virtual-clock replay.
struct PolicyRun {
    policy: SchedPolicy,
    outcome: BatchOutcome,
    modeled_speedup: f64,
    modeled_steals: u64,
}

/// The `sched.policies` rows: measured wall speedup vs the serial sweep
/// alongside the modeled (virtual-clock) speedup, per policy.
fn policy_rows_json(runs: &[PolicyRun], serial_wall_ms: f64) -> String {
    let rows: Vec<String> = runs
        .iter()
        .map(|run| {
            let s = &run.outcome.stats;
            let wall_speedup = if s.wall_ms > 0.0 {
                serial_wall_ms / s.wall_ms
            } else {
                0.0
            };
            format!(
                concat!(
                    "{{\"policy\":\"{}\",\"wall_ms\":{:.4},\"speedup\":{:.4},",
                    "\"modeled_speedup\":{:.4},\"modeled_steals\":{},",
                    "\"steals\":{},\"max_queue_depth\":{},\"imbalance\":{}}}"
                ),
                run.policy.label(),
                s.wall_ms,
                wall_speedup,
                run.modeled_speedup,
                run.modeled_steals,
                s.sched.steals,
                s.sched.max_queue_depth,
                s.imbalance
                    .map_or_else(|| "null".to_owned(), |r| format!("{r:.4}")),
            )
        })
        .collect();
    format!("[{}]", rows.join(",\n  "))
}

/// The `sched.cost_model` rows: what the dispatch predicted per class vs
/// what the serial sweep measured (scheduling-independent ground truth).
fn cost_model_rows_json(
    predicted: &BTreeMap<UbClass, f64>,
    observed: &BTreeMap<UbClass, f64>,
) -> String {
    let rows: Vec<String> = observed
        .iter()
        .map(|(class, &obs_ms)| {
            let pred_ms = predicted
                .get(class)
                .copied()
                .unwrap_or(rb_engine::sched::DEFAULT_COST_MS);
            let ratio = if obs_ms > 0.0 { pred_ms / obs_ms } else { 0.0 };
            format!(
                concat!(
                    "{{\"class\":\"{}\",\"predicted_ms\":{:.4},",
                    "\"observed_ms\":{:.4},\"ratio\":{:.4}}}"
                ),
                class.label(),
                pred_ms,
                obs_ms,
                ratio,
            )
        })
        .collect();
    format!("[{}]", rows.join(",\n  "))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    // --repeat amplifies the corpus: the generator cycles each class's
    // template families with seed-derived size/id variation, so N
    // repeats yield N× structurally distinct cases per class.
    let corpus = Corpus::generate_full(42, args.per_class * args.repeat);
    let spec = SystemSpec::brain(RustBrainConfig::for_model(ModelId::Gpt4, 0));
    let cache = Arc::new(OracleCache::new());

    // The cost model: persisted table if given and present, static
    // defaults otherwise; either way the warmup sweep below fills the
    // wall-time histograms the live refinement reads.
    let table_path = args.cost_table.as_ref().map(std::path::PathBuf::from);
    let mut cost_model = match &table_path {
        Some(path) if path.exists() => match CostModel::load(path) {
            Ok(model) => model,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        },
        _ => CostModel::defaults(),
    };

    let tracer = match &args.trace_out {
        Some(path) => match rb_obs::Tracer::to_file(std::path::Path::new(path)) {
            Ok(tracer) => Some(tracer),
            Err(e) => {
                eprintln!("error: cannot open trace file {path}: {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };

    // Warm-up sweep (untimed): populates the oracle cache so all timed
    // sweeps run under identical, fully-warm cache conditions — and
    // fills the per-class wall-time histograms the cost model's live
    // refinement learns from.
    let warmup = sweep(
        args.jobs,
        SchedPolicy::Stealing,
        &cost_model,
        &cache,
        &spec,
        &corpus,
        None,
    );

    // The serial reference is FIFO by construction (one worker drains
    // in submission order); it doubles as the ground truth for per-job
    // durations and per-class observed costs.
    let serial = sweep(
        1,
        SchedPolicy::Fifo,
        &cost_model,
        &cache,
        &spec,
        &corpus,
        None,
    );

    // One timed parallel sweep per policy, all on the same warm cache.
    // Only the stealing sweep (the headline) is traced — spans on the
    // others would skew exactly the comparison the bench exists for.
    let predicted_table = cost_model.effective();
    let durations: Vec<f64> = serial.jobs.iter().map(|j| j.wall_ms).collect();
    let predicted_per_job: Vec<f64> = serial
        .jobs
        .iter()
        .map(|j| {
            predicted_table
                .get(&j.result.class)
                .copied()
                .unwrap_or(rb_engine::sched::DEFAULT_COST_MS)
        })
        .collect();
    let mut runs: Vec<PolicyRun> = Vec::new();
    let mut identical = warmup.results == serial.results;
    for policy in SchedPolicy::ALL {
        let traced = if policy == SchedPolicy::Stealing {
            tracer.as_ref()
        } else {
            None
        };
        let outcome = sweep(
            args.jobs,
            policy,
            &cost_model,
            &cache,
            &spec,
            &corpus,
            traced,
        );
        identical = identical && outcome.results == serial.results;
        let modeled = model_schedule(policy, &predicted_per_job, &durations, args.jobs);
        runs.push(PolicyRun {
            policy,
            outcome,
            modeled_speedup: modeled.speedup(),
            modeled_steals: modeled.steals,
        });
    }
    if let Some(tracer) = &tracer {
        tracer.flush();
    }
    let parallel = &runs
        .iter()
        .find(|r| r.policy == SchedPolicy::Stealing)
        .expect("stealing run present")
        .outcome;

    // An honest speedup needs a core per worker: oversubscribed runs
    // time-slice, and the ratio stops measuring the scheduler (the
    // modeled_speedup rows carry the virtual-clock comparison instead).
    let speedup_degraded = args.jobs > cores;

    let speedup = if parallel.stats.wall_ms > 0.0 {
        serial.stats.wall_ms / parallel.stats.wall_ms
    } else {
        0.0
    };
    let modeled_speedup = runs
        .iter()
        .find(|r| r.policy == SchedPolicy::Stealing)
        .map_or(0.0, |r| r.modeled_speedup);
    // The trace-side view of the same stealing sweep: lanes read back
    // from the flushed spans must bound speedup consistently with the
    // virtual-clock model fed the same batch.
    let critical_path = match args.trace_out.as_deref() {
        Some(path) => match critical_path_json(path) {
            Ok(cp) => Some(cp),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let observed = observed_class_ms(&serial);
    // Persist what this run learned: blend the serial sweep's per-class
    // means into the table and rewrite it for the next run.
    if let Some(path) = &table_path {
        for (&class, &ms) in &observed {
            cost_model.observe(class, ms);
        }
        if let Err(e) = cost_model.save(path) {
            eprintln!("error: cannot write cost table {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    let cache_stats = cache.stats();
    let (pass, exec) = overall_rates(&parallel.results);
    let (warm_json, warm_summary) = warm_start_json(args.jobs, &cache, &spec, &corpus, parallel);
    let (preflight_json, preflight_line, preflight_identical) =
        preflight_json(args.jobs, &cost_model, &cache, &corpus, parallel);

    let json = format!(
        concat!(
            "{{\"bench\":\"engine\",\"cases\":{},\"available_cores\":{},",
            "\"requested_jobs\":{},\"repeat\":{},\n",
            " \"identical_results\":{},\n",
            " \"pass_rate\":{:.4},\"exec_rate\":{:.4},\n",
            " \"serial\":{},\n",
            " \"parallel\":{},\n",
            " \"speedup\":{:.4},\"speedup_degraded\":{},",
            "\"modeled_speedup\":{:.4},\n",
            " \"critical_path\":{},\n",
            " \"sched\":{{\"policies\":{},\n",
            "  \"cost_model\":{}}},\n",
            " \"per_class\":{},\n",
            " \"preflight\":{},\n",
            " \"warm_start\":{},\n",
            " \"cache\":{{\"hits\":{},\"misses\":{},\"entries\":{},",
            "\"evictions\":{},\"capacity\":{},\"hit_rate\":{:.4}}}}}\n"
        ),
        corpus.len(),
        cores,
        args.jobs,
        args.repeat,
        identical,
        pass.value(),
        exec.value(),
        serial.stats.to_json(),
        parallel.stats.to_json(),
        speedup,
        speedup_degraded,
        modeled_speedup,
        critical_path
            .as_ref()
            .map_or_else(|| "null".to_owned(), |(json, ..)| json.clone()),
        policy_rows_json(&runs, serial.stats.wall_ms),
        cost_model_rows_json(&predicted_table, &observed),
        class_rows_json(parallel),
        preflight_json,
        warm_json,
        cache_stats.hits,
        cache_stats.misses,
        cache_stats.entries,
        cache_stats.evictions,
        cache_stats.capacity,
        cache_stats.hit_rate(),
    );
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("error: cannot write {}: {e}", args.out);
        return ExitCode::from(2);
    }

    println!(
        "engine bench: {} cases (repeat {}) | {} cores | 1 worker: {:.0} ms ({:.1} cases/s) | {} workers: {:.0} ms ({:.1} cases/s) | speedup {speedup:.2}x",
        corpus.len(),
        args.repeat,
        cores,
        serial.stats.wall_ms,
        serial.stats.cases_per_sec,
        args.jobs,
        parallel.stats.wall_ms,
        parallel.stats.cases_per_sec,
    );
    for run in &runs {
        let s = &run.outcome.stats;
        println!(
            "  sched {:>12}: wall {:>7.1} ms | speedup {:.2}x (modeled {:.2}x) | steals {} | imbalance {}",
            run.policy.label(),
            s.wall_ms,
            if s.wall_ms > 0.0 {
                serial.stats.wall_ms / s.wall_ms
            } else {
                0.0
            },
            run.modeled_speedup,
            s.sched.steals,
            s.imbalance
                .map_or_else(|| "n/a".to_owned(), |r| format!("{r:.2}")),
        );
    }
    if let Some((_, line, ..)) = &critical_path {
        println!("{line}");
    }
    if speedup_degraded {
        println!(
            "note: {} workers on {cores} core(s) — wall speedup is degraded by oversubscription and not gated; modeled_speedup carries the scheduler comparison",
            args.jobs,
        );
    }
    if let Some(path) = &table_path {
        println!("cost table written to {}", path.display());
    }
    println!(
        "oracle cache: {} hits / {} misses ({:.1}% hit rate) | parallel sweep: {} executed / {} cached / {} prevetoed | results identical: {identical} | wrote {}",
        cache_stats.hits,
        cache_stats.misses,
        cache_stats.hit_rate() * 100.0,
        parallel.stats.oracle_executed,
        parallel.stats.oracle_cached,
        parallel.stats.oracle_prevetoed,
        args.out,
    );
    println!("{preflight_line}");
    println!("{warm_summary}");

    // The running history: one compact JSONL row per invocation, beside
    // the full output file, so the speedup/hit-rate trajectory across
    // PRs reads off one file without diffing BENCH snapshots.
    let history_path = std::path::Path::new(&args.out).with_file_name("BENCH_history.jsonl");
    let history_row = format!(
        concat!(
            "{{\"date\":\"{}\",\"cases\":{},\"jobs\":{},\"repeat\":{},",
            "\"policy\":\"{}\",\"speedup\":{:.4},\"modeled_speedup\":{:.4},",
            "\"speedup_bound_sim\":{},\"cache_hit_rate\":{:.4},",
            "\"exec_rate\":{:.4},\"speedup_degraded\":{}}}\n"
        ),
        utc_date(),
        corpus.len(),
        args.jobs,
        args.repeat,
        SchedPolicy::Stealing.label(),
        speedup,
        modeled_speedup,
        critical_path.as_ref().map_or_else(
            || "null".to_owned(),
            |(_, _, bound, _)| format!("{bound:.4}")
        ),
        cache_stats.hit_rate(),
        exec.value(),
        speedup_degraded,
    );
    let append = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&history_path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, history_row.as_bytes()));
    if let Err(e) = append {
        eprintln!("error: cannot append to {}: {e}", history_path.display());
        return ExitCode::from(2);
    }
    println!("history row appended to {}", history_path.display());
    if !preflight_identical {
        eprintln!("error: disabling the preflight changed batch results");
        return ExitCode::FAILURE;
    }
    if identical {
        ExitCode::SUCCESS
    } else {
        eprintln!("error: parallel results diverged from the serial sweep");
        ExitCode::FAILURE
    }
}
