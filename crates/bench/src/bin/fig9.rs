//! Regenerates the paper's Fig. 9 (execution / acceptability rate grid).
use rb_bench::experiments::{rq2, DEFAULT_PER_CLASS, DEFAULT_SEED};
fn main() {
    let grid = rq2::run(DEFAULT_SEED, DEFAULT_PER_CLASS);
    print!("{}", grid.render(true));
}
