//! Runs every experiment sequentially — the full reproduction of the
//! paper's evaluation section.
use rb_bench::experiments::*;
fn main() {
    let seed = DEFAULT_SEED;
    println!("== RQ1 ==");
    let f7 = fig7::run(seed);
    print!("{}", f7.render());
    if let Some(f) = f7.kb_overhead_factor() {
        println!("knowledge-base overhead factor: {f:.2}x");
    }
    println!("\n== RQ2 ==");
    let grid = rq2::run(seed, DEFAULT_PER_CLASS);
    print!("{}", grid.render(false));
    println!();
    print!("{}", grid.render(true));
    println!();
    print!("{}", fig10::run(seed, DEFAULT_PER_CLASS).render());
    println!("\n== RQ3 ==");
    print!("{}", fig11::run(seed, 4, 3).render());
    println!("\n== RQ4 ==");
    print!("{}", fig12::run(seed, DEFAULT_PER_CLASS).render());
    println!();
    print!("{}", table1::run(seed, DEFAULT_PER_CLASS).render());
    println!("\n== Ablations ==");
    print!("{}", ablation_rollback::run(seed, 4).render());
    println!();
    print!("{}", ablation_prune::run(seed).render());
}
