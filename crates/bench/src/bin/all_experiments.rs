//! Runs every experiment — the full reproduction of the paper's
//! evaluation section — on the engine: the experiment computations fan
//! out across a scoped thread pool (each experiment is internally
//! sequential, as the paper's stateful runs require), every corpus sweep
//! shares the engine's process-wide oracle cache, and the renders are
//! printed in the fixed section order once everything has joined.
//!
//! `--jobs 1` forces the old fully-serial execution; `--jobs N` caps how
//! many experiments compute at once.

use rb_bench::experiments::*;
use rb_engine::OracleCache;
use std::sync::{Condvar, Mutex};

fn parse_jobs() -> usize {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => std::thread::available_parallelism().map_or(1, usize::from),
        [flag, value] if flag == "--jobs" => {
            value.parse().ok().filter(|&n| n >= 1).unwrap_or_else(|| {
                eprintln!("error: --jobs needs a positive integer");
                std::process::exit(2);
            })
        }
        _ => {
            eprintln!("error: expected no arguments or `--jobs N`, got {args:?}");
            std::process::exit(2);
        }
    }
}

/// A counting semaphore bounding how many experiments run concurrently
/// (std has no semaphore; Mutex + Condvar is the textbook stand-in).
struct Gate {
    permits: Mutex<usize>,
    freed: Condvar,
}

impl Gate {
    fn new(permits: usize) -> Gate {
        Gate {
            permits: Mutex::new(permits),
            freed: Condvar::new(),
        }
    }

    fn run<T>(&self, f: impl FnOnce() -> T) -> T {
        let mut permits = self.permits.lock().expect("gate poisoned");
        while *permits == 0 {
            permits = self.freed.wait(permits).expect("gate poisoned");
        }
        *permits -= 1;
        drop(permits);
        // RAII so a panicking experiment restores its permit while
        // unwinding: the siblings finish and the join propagates the
        // panic, instead of everyone deadlocking in `wait`.
        struct Permit<'a>(&'a Gate);
        impl Drop for Permit<'_> {
            fn drop(&mut self) {
                *self.0.permits.lock().expect("gate poisoned") += 1;
                self.0.freed.notify_one();
            }
        }
        let _permit = Permit(self);
        f()
    }
}

fn main() {
    let seed = DEFAULT_SEED;
    let jobs = parse_jobs();
    let started = std::time::Instant::now();

    // Each closure is one independent experiment; with jobs > 1 up to
    // `jobs` of them compute concurrently (gated by the semaphore), and
    // the deterministic per-experiment seeds keep every rendered number
    // identical to the serial schedule.
    let (f7, grid, f10, f11, f12, t1, ar, ap) = if jobs > 1 {
        let gate = &Gate::new(jobs);
        std::thread::scope(|s| {
            let f7 = s.spawn(|| gate.run(|| fig7::run(seed)));
            let grid = s.spawn(|| gate.run(|| rq2::run(seed, DEFAULT_PER_CLASS)));
            let f10 = s.spawn(|| gate.run(|| fig10::run(seed, DEFAULT_PER_CLASS)));
            let f11 = s.spawn(|| gate.run(|| fig11::run(seed, 4, 3)));
            let f12 = s.spawn(|| gate.run(|| fig12::run(seed, DEFAULT_PER_CLASS)));
            let t1 = s.spawn(|| gate.run(|| table1::run(seed, DEFAULT_PER_CLASS)));
            let ar = s.spawn(|| gate.run(|| ablation_rollback::run(seed, 4)));
            let ap = s.spawn(|| gate.run(|| ablation_prune::run(seed)));
            (
                f7.join().expect("fig7 panicked"),
                grid.join().expect("rq2 panicked"),
                f10.join().expect("fig10 panicked"),
                f11.join().expect("fig11 panicked"),
                f12.join().expect("fig12 panicked"),
                t1.join().expect("table1 panicked"),
                ar.join().expect("ablation_rollback panicked"),
                ap.join().expect("ablation_prune panicked"),
            )
        })
    } else {
        (
            fig7::run(seed),
            rq2::run(seed, DEFAULT_PER_CLASS),
            fig10::run(seed, DEFAULT_PER_CLASS),
            fig11::run(seed, 4, 3),
            fig12::run(seed, DEFAULT_PER_CLASS),
            table1::run(seed, DEFAULT_PER_CLASS),
            ablation_rollback::run(seed, 4),
            ablation_prune::run(seed),
        )
    };

    println!("== RQ1 ==");
    print!("{}", f7.render());
    if let Some(f) = f7.kb_overhead_factor() {
        println!("knowledge-base overhead factor: {f:.2}x");
    }
    println!("\n== RQ2 ==");
    print!("{}", grid.render(false));
    println!();
    print!("{}", grid.render(true));
    println!();
    print!("{}", f10.render());
    println!("\n== RQ3 ==");
    print!("{}", f11.render());
    println!("\n== RQ4 ==");
    print!("{}", f12.render());
    println!();
    print!("{}", t1.render());
    println!("\n== Ablations ==");
    print!("{}", ar.render());
    println!();
    print!("{}", ap.render());

    let cache = OracleCache::global().stats();
    println!(
        "\n== engine ==\njobs: {jobs} | wall: {:.1}s | oracle cache: {} hits / {} misses ({:.1}% hit rate, {} programs)",
        started.elapsed().as_secs_f64(),
        cache.hits,
        cache.misses,
        cache.hit_rate() * 100.0,
        cache.entries,
    );
}
