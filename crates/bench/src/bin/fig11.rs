//! Regenerates the paper's Fig. 11 (temperature sensitivity with CIs).
use rb_bench::experiments::{fig11, DEFAULT_SEED};
fn main() {
    let r = fig11::run(DEFAULT_SEED, 4, 3);
    print!("{}", r.render());
    println!("best exec temperature: {:.1}", r.best_exec_temperature());
}
