//! Algorithm 1 (AST pruning) retrieval ablation.
use rb_bench::experiments::{ablation_prune, DEFAULT_SEED};
fn main() {
    let a = ablation_prune::run(DEFAULT_SEED);
    print!("{}", a.render());
}
