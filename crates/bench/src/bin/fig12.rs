//! Regenerates the paper's Fig. 12 (RustBrain vs RustAssistant).
use rb_bench::experiments::{fig12, DEFAULT_PER_CLASS, DEFAULT_SEED};
fn main() {
    let r = fig12::run(DEFAULT_SEED, DEFAULT_PER_CLASS);
    print!("{}", r.render());
}
