//! Regenerates the paper's Table I (repair time vs human experts).
use rb_bench::experiments::{table1, DEFAULT_PER_CLASS, DEFAULT_SEED};
fn main() {
    let t = table1::run(DEFAULT_SEED, DEFAULT_PER_CLASS);
    print!("{}", t.render());
}
