//! Regenerates the paper's Fig. 10 (GPT-4 vs GPT-O1 under RustBrain).
use rb_bench::experiments::{fig10, DEFAULT_PER_CLASS, DEFAULT_SEED};
fn main() {
    let r = fig10::run(DEFAULT_SEED, DEFAULT_PER_CLASS);
    print!("{}", r.render());
    println!(
        "overall exec: GPT-4+RB {:.1}% vs O1+RB {:.1}%; panic exec gap +{:.1} points",
        r.gpt4_exec(),
        r.o1_exec(),
        r.panic_exec_gap()
    );
}
