//! Rollback-policy ablation (the paper's Fig. 5 mechanisms).
use rb_bench::experiments::{ablation_rollback, DEFAULT_SEED};
fn main() {
    let a = ablation_rollback::run(DEFAULT_SEED, 4);
    print!("{}", a.render());
}
