//! Uniform driver over the repair systems under comparison, so every
//! experiment iterates a corpus the same way.

use rb_baselines::{LlmOnly, RustAssistant};
use rb_dataset::UbCase;
use rb_llm::ModelId;
use rustbrain::{RustBrain, RustBrainConfig};
use serde::{Deserialize, Serialize};

/// Result of one case repair, system-agnostic.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CaseResult {
    /// Case id.
    pub case_id: String,
    /// UB class.
    pub class: rb_miri::UbClass,
    /// Passed the oracle.
    pub passed: bool,
    /// Semantically acceptable.
    pub acceptable: bool,
    /// Simulated time in milliseconds.
    pub overhead_ms: f64,
}

/// A repair system under test.
pub enum System {
    /// Standalone model.
    Llm(LlmOnly),
    /// RustAssistant fixed pipeline.
    RustAssistant(RustAssistant),
    /// The RustBrain framework.
    Brain(Box<RustBrain>),
}

impl System {
    /// A standalone model at the paper's default temperature.
    #[must_use]
    pub fn llm(model: ModelId, seed: u64) -> System {
        System::Llm(LlmOnly::new(model, 0.5, seed))
    }

    /// The RustAssistant baseline (GPT-4-backed, as in the paper).
    #[must_use]
    pub fn rust_assistant(seed: u64) -> System {
        System::RustAssistant(RustAssistant::new(ModelId::Gpt4, 0.5, seed))
    }

    /// A RustBrain instance.
    #[must_use]
    pub fn brain(config: RustBrainConfig) -> System {
        System::Brain(Box::new(RustBrain::new(config)))
    }

    /// Repairs one corpus case.
    pub fn repair_case(&mut self, case: &UbCase) -> CaseResult {
        let reference = case.gold_outputs();
        let (passed, acceptable, overhead_ms) = match self {
            System::Llm(s) => {
                let o = s.repair(&case.buggy, &reference);
                (o.passed, o.acceptable, o.overhead_ms)
            }
            System::RustAssistant(s) => {
                let o = s.repair(&case.buggy, &reference);
                (o.passed, o.acceptable, o.overhead_ms)
            }
            System::Brain(s) => {
                let o = s.repair(&case.buggy, &reference);
                (o.passed, o.acceptable, o.overhead_ms)
            }
        };
        CaseResult {
            case_id: case.id.clone(),
            class: case.class,
            passed,
            acceptable,
            overhead_ms,
        }
    }

    /// Repairs every case of a corpus in order (order matters: stateful
    /// systems learn across cases, as in the paper's sequential runs).
    pub fn run_corpus(&mut self, cases: &[UbCase]) -> Vec<CaseResult> {
        cases.iter().map(|c| self.repair_case(c)).collect()
    }
}

/// Aggregates results per class into (pass %, exec %) pairs.
#[must_use]
pub fn rates_by_class(
    results: &[CaseResult],
    classes: &[rb_miri::UbClass],
) -> Vec<(rb_miri::UbClass, crate::stats::Rate, crate::stats::Rate)> {
    classes
        .iter()
        .map(|&class| {
            let mut pass = crate::stats::Rate::default();
            let mut exec = crate::stats::Rate::default();
            for r in results.iter().filter(|r| r.class == class) {
                pass.record(r.passed);
                exec.record(r.acceptable);
            }
            (class, pass, exec)
        })
        .collect()
}

/// Overall (pass, exec) rates.
#[must_use]
pub fn overall_rates(results: &[CaseResult]) -> (crate::stats::Rate, crate::stats::Rate) {
    let mut pass = crate::stats::Rate::default();
    let mut exec = crate::stats::Rate::default();
    for r in results {
        pass.record(r.passed);
        exec.record(r.acceptable);
    }
    (pass, exec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_dataset::Corpus;
    use rb_miri::UbClass;

    #[test]
    fn all_systems_run_a_small_corpus() {
        let corpus = Corpus::generate(1, 2, &[UbClass::Alloc]);
        for mut sys in [
            System::llm(ModelId::Gpt4, 1),
            System::rust_assistant(1),
            System::brain(RustBrainConfig::for_model(ModelId::Gpt4, 1)),
        ] {
            let results = sys.run_corpus(&corpus.cases);
            assert_eq!(results.len(), 2);
            let (pass, exec) = overall_rates(&results);
            assert_eq!(pass.n, 2);
            assert!(exec.hits <= pass.hits, "exec cannot exceed pass");
        }
    }

    #[test]
    fn rates_by_class_partitions() {
        let corpus = Corpus::generate(2, 2, &[UbClass::Alloc, UbClass::Panic]);
        let mut sys = System::brain(RustBrainConfig::for_model(ModelId::GptO1, 3));
        let results = sys.run_corpus(&corpus.cases);
        let rows = rates_by_class(&results, &[UbClass::Alloc, UbClass::Panic]);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|(_, p, _)| p.n == 2));
    }
}
