//! Uniform driver over the repair systems under comparison, so every
//! experiment iterates a corpus the same way.
//!
//! The system abstraction and per-case execution moved into
//! [`rb_engine`] (the parallel batch-repair engine); this module
//! re-exports them and keeps the aggregation helpers, so experiments keep
//! their `rb_bench::runner::System` imports while corpus sweeps execute
//! on the engine — sequential stateful runs go through the engine's
//! sequential lane and share its process-wide oracle cache, and batch
//! sweeps ([`rb_engine::Engine::run_batch`]) fan out across workers.

pub use rb_engine::{CaseResult, System, SystemSpec};

/// Aggregates results per class into (pass %, exec %) pairs.
#[must_use]
pub fn rates_by_class(
    results: &[CaseResult],
    classes: &[rb_miri::UbClass],
) -> Vec<(rb_miri::UbClass, crate::stats::Rate, crate::stats::Rate)> {
    classes
        .iter()
        .map(|&class| {
            let mut pass = crate::stats::Rate::default();
            let mut exec = crate::stats::Rate::default();
            for r in results.iter().filter(|r| r.class == class) {
                pass.record(r.passed);
                exec.record(r.acceptable);
            }
            (class, pass, exec)
        })
        .collect()
}

/// Overall (pass, exec) rates.
#[must_use]
pub fn overall_rates(results: &[CaseResult]) -> (crate::stats::Rate, crate::stats::Rate) {
    let mut pass = crate::stats::Rate::default();
    let mut exec = crate::stats::Rate::default();
    for r in results {
        pass.record(r.passed);
        exec.record(r.acceptable);
    }
    (pass, exec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_dataset::Corpus;
    use rb_llm::ModelId;
    use rb_miri::UbClass;
    use rustbrain::RustBrainConfig;

    #[test]
    fn all_systems_run_a_small_corpus() {
        let corpus = Corpus::generate(1, 2, &[UbClass::Alloc]);
        for mut sys in [
            System::llm(ModelId::Gpt4, 1),
            System::rust_assistant(1),
            System::brain(RustBrainConfig::for_model(ModelId::Gpt4, 1)),
        ] {
            let results = sys.run_corpus(&corpus.cases);
            assert_eq!(results.len(), 2);
            let (pass, exec) = overall_rates(&results);
            assert_eq!(pass.n, 2);
            assert!(exec.hits <= pass.hits, "exec cannot exceed pass");
        }
    }

    #[test]
    fn rates_by_class_partitions() {
        let corpus = Corpus::generate(2, 2, &[UbClass::Alloc, UbClass::Panic]);
        let mut sys = System::brain(RustBrainConfig::for_model(ModelId::GptO1, 3));
        let results = sys.run_corpus(&corpus.cases);
        let rows = rates_by_class(&results, &[UbClass::Alloc, UbClass::Panic]);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|(_, p, _)| p.n == 2));
    }
}
