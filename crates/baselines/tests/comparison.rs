//! Cross-system comparisons: the orderings between baselines that the
//! paper's figures rely on must hold on a shared corpus.

use rb_baselines::{HumanExpert, LlmOnly, RustAssistant};
use rb_dataset::Corpus;
use rb_llm::ModelId;
use rb_miri::UbClass;

fn corpus() -> Corpus {
    Corpus::generate(77, 3, &UbClass::FIG12)
}

#[test]
fn rust_assistant_at_least_matches_llm_only() {
    // The fixed pipeline iterates with restart rollback; it should not be
    // *worse* than a raw 3-shot model on pass rate.
    let c = corpus();
    let mut ra = RustAssistant::new(ModelId::Gpt4, 0.5, 1);
    let mut alone = LlmOnly::new(ModelId::Gpt4, 0.5, 1);
    let (mut ra_pass, mut alone_pass) = (0, 0);
    for case in &c.cases {
        let gold = case.gold_outputs();
        ra_pass += usize::from(ra.repair(&case.buggy, &gold).passed);
        alone_pass += usize::from(alone.repair(&case.buggy, &gold).passed);
    }
    assert!(
        ra_pass + 2 >= alone_pass,
        "RustAssistant {ra_pass} far below LlmOnly {alone_pass}"
    );
}

#[test]
fn humans_are_slow_but_reliable() {
    let mut human = HumanExpert::new(3);
    let mut pass = 0usize;
    let mut total_time = 0.0f64;
    let n = 200;
    for i in 0..n {
        let class = UbClass::ALL[i % UbClass::ALL.len()];
        let o = human.repair(class);
        pass += usize::from(o.passed);
        total_time += o.time_s;
    }
    assert!(pass as f64 / n as f64 > 0.92, "human pass rate {pass}/{n}");
    // Mean human time across classes lands near the paper's 442 s.
    let mean = total_time / n as f64;
    assert!((250.0..650.0).contains(&mean), "mean human time {mean}");
}

#[test]
fn stronger_models_help_every_baseline() {
    let c = Corpus::generate(5, 2, &UbClass::FIG8);
    let pass_with = |model: ModelId| {
        let mut fixer = LlmOnly::new(model, 0.5, 9);
        c.cases
            .iter()
            .filter(|case| fixer.repair(&case.buggy, &case.gold_outputs()).passed)
            .count()
    };
    let weak = pass_with(ModelId::Gpt35);
    let strong = pass_with(ModelId::GptO1);
    assert!(strong > weak, "O1 {strong} <= GPT-3.5 {weak}");
}

#[test]
fn baseline_outcomes_are_internally_consistent() {
    let c = Corpus::generate(13, 1, &UbClass::FIG10);
    let mut ra = RustAssistant::new(ModelId::Claude35, 0.5, 2);
    let mut alone = LlmOnly::new(ModelId::Claude35, 0.5, 2);
    for case in &c.cases {
        let gold = case.gold_outputs();
        for o in [
            ra.repair(&case.buggy, &gold),
            alone.repair(&case.buggy, &gold),
        ] {
            assert!(
                !o.acceptable || o.passed,
                "{}: acceptable without pass",
                case.id
            );
            if o.passed {
                assert!(
                    rb_miri::run_program(&o.final_program).passes(),
                    "{}: claimed pass not backed by oracle",
                    case.id
                );
            }
            assert!(o.overhead_ms >= 0.0 && o.overhead_ms.is_finite());
        }
    }
}

#[test]
fn baselines_deterministic_per_seed() {
    let c = Corpus::generate(21, 1, &[UbClass::Validity, UbClass::Panic]);
    let run = || {
        let mut ra = RustAssistant::new(ModelId::Gpt4, 0.5, 4);
        c.cases
            .iter()
            .map(|case| {
                let o = ra.repair(&case.buggy, &case.gold_outputs());
                (o.passed, o.acceptable, o.iterations)
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
