//! Standalone-model repair: the model is asked to fix the program with a
//! generic prompt and its best proposal is applied, for a handful of
//! iterations, with no rollback — whatever the model does is kept, so
//! hallucinations compound exactly as in the paper's Fig. 5a.

use crate::BaselineOutcome;
use rb_lang::Program;
use rb_llm::{LanguageModel, ModelId, PromptStrategy, RepairContext, SimulatedModel};
use rb_miri::{DirectOracle, Oracle, OracleUse};
use rustbrain::slow::ORACLE_RUN_MS;
use std::sync::Arc;

/// The standalone-LLM repair loop.
pub struct LlmOnly {
    oracle: Arc<dyn Oracle>,
    model: SimulatedModel,
    max_iterations: usize,
}

impl LlmOnly {
    /// Creates a standalone repair loop around a model, judging programs
    /// with the zero-cost [`DirectOracle`].
    #[must_use]
    pub fn new(model: ModelId, temperature: f64, seed: u64) -> LlmOnly {
        LlmOnly::with_oracle(model, temperature, seed, Arc::new(DirectOracle))
    }

    /// Creates the loop with an injected oracle (the batch engine passes
    /// its process-wide verdict cache through here).
    #[must_use]
    pub fn with_oracle(
        model: ModelId,
        temperature: f64,
        seed: u64,
        oracle: Arc<dyn Oracle>,
    ) -> LlmOnly {
        LlmOnly {
            oracle,
            model: SimulatedModel::new(model, temperature, seed),
            max_iterations: 3,
        }
    }

    /// Overrides the iteration budget.
    #[must_use]
    pub fn with_iterations(mut self, n: usize) -> LlmOnly {
        self.max_iterations = n;
        self
    }

    /// Attempts to repair `program`; `reference` is the gold output used
    /// for the acceptability judgement.
    pub fn repair(&mut self, program: &Program, reference: &[String]) -> BaselineOutcome {
        let mut current = program.clone();
        let mut oracle_use = OracleUse::default();
        let mut report = self.oracle.judge_recording(&current, &mut oracle_use);
        let mut overhead = 0.0f64;
        let mut iterations = 0usize;

        while !report.passes() && iterations < self.max_iterations {
            let Some(primary) = report.primary().cloned() else {
                break;
            };
            let ctx = RepairContext::new(&current, &primary, PromptStrategy::Freeform);
            let resp = self.model.propose(&ctx);
            overhead += resp.latency_ms;
            let mut applied = false;
            for proposal in &resp.proposals {
                if let Some(mut candidate) = proposal.rule.apply(&current, &primary) {
                    if resp.drift {
                        if let Some(drifted) = rb_llm::rules::apply_semantic_drift(&candidate) {
                            candidate = drifted;
                        }
                    }
                    // No rollback: the model's output replaces the program.
                    current = candidate;
                    applied = true;
                    break;
                }
            }
            report = self.oracle.judge_recording(&current, &mut oracle_use);
            overhead += ORACLE_RUN_MS;
            iterations += 1;
            if !applied {
                break; // the model had nothing; give up
            }
        }
        BaselineOutcome {
            passed: report.passes(),
            acceptable: report.passes() && report.outputs == reference,
            overhead_ms: overhead,
            iterations,
            oracle_use,
            final_program: current,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_dataset::Corpus;
    use rb_miri::UbClass;

    #[test]
    fn fixes_some_simple_cases() {
        let corpus = Corpus::generate(3, 4, &[UbClass::Alloc]);
        let mut fixer = LlmOnly::new(ModelId::Gpt4, 0.5, 1);
        let fixed = corpus
            .cases
            .iter()
            .filter(|c| fixer.repair(&c.buggy, &c.gold_outputs()).passed)
            .count();
        assert!(fixed >= 1, "GPT-4 alone should fix at least one alloc case");
    }

    #[test]
    fn leaves_program_unchanged_when_clean() {
        let p = rb_lang::parser::parse_program("fn main() { print(1i32); }").unwrap();
        let mut fixer = LlmOnly::new(ModelId::Gpt35, 0.5, 2);
        let out = fixer.repair(&p, &["1".to_owned()]);
        assert!(out.passed && out.acceptable);
        assert_eq!(out.iterations, 0);
    }

    #[test]
    fn respects_iteration_budget() {
        // A hard case the weak model likely cannot fix in 2 tries.
        let corpus = Corpus::generate(9, 1, &[UbClass::StackBorrow]);
        let case = &corpus.cases[0];
        let mut fixer = LlmOnly::new(ModelId::Gpt35, 0.9, 3).with_iterations(2);
        let out = fixer.repair(&case.buggy, &case.gold_outputs());
        assert!(out.iterations <= 2);
    }
}
