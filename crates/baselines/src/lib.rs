//! # rb-baselines — comparison systems
//!
//! The three comparators the paper evaluates RustBrain against:
//!
//! - [`llm_only`]: a standalone model iteratively rewriting the program
//!   with a generic "fix this" prompt — no agents, no rollback, no
//!   knowledge (the "GPT-x alone" series in Figs. 8/9);
//! - [`rust_assistant`]: a re-implementation of RustAssistant's fixed
//!   pipeline (ICSE 2025): error-driven prompting, iterate-until-clean,
//!   restart-from-scratch on regression, fixed generic steps;
//! - [`human`]: the human-expert timing/success model behind Table I.

#![warn(missing_docs)]

pub mod human;
pub mod llm_only;
pub mod rust_assistant;

pub use human::HumanExpert;
pub use llm_only::LlmOnly;
pub use rust_assistant::RustAssistant;

use rb_lang::Program;
use rb_miri::OracleUse;
use serde::{Deserialize, Serialize};

/// Result shape shared by all repair systems.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BaselineOutcome {
    /// Final program passes the oracle.
    pub passed: bool,
    /// Outputs match the reference.
    pub acceptable: bool,
    /// Simulated repair time in milliseconds.
    pub overhead_ms: f64,
    /// Oracle iterations used.
    pub iterations: usize,
    /// Executed-vs-cached split of every oracle judgement the repair made
    /// (telemetry only — identical repairs under a caching and a direct
    /// oracle differ in nothing but this field).
    pub oracle_use: OracleUse,
    /// The final program state.
    pub final_program: Program,
}
