//! A RustAssistant-style fixed repair pipeline (Deligiannis et al., ICSE
//! 2025), as characterised in the paper's comparison: a *fixed* sequence of
//! generic steps driven by the error message, iterated until the oracle is
//! clean, with restart-from-scratch on regression — no targeted agents, no
//! adaptive rollback, no knowledge base, no feedback. The fixed generic
//! steps add constant per-iteration overhead ("numerous generic steps ...
//! unnecessary complexity and overhead", paper RQ1 (iii)).

use crate::BaselineOutcome;
use rb_lang::Program;
use rb_llm::{LanguageModel, ModelId, PromptStrategy, RepairContext, SimulatedModel};
use rb_miri::{DirectOracle, Oracle, OracleUse};
use rustbrain::slow::ORACLE_RUN_MS;
use std::sync::Arc;

/// Per-iteration cost of the fixed pipeline's generic steps (error
/// parsing, diff formatting, re-prompt assembly) in simulated ms.
const GENERIC_STEP_MS: f64 = 2_200.0;

/// The fixed-pipeline repairer.
pub struct RustAssistant {
    oracle: Arc<dyn Oracle>,
    model: SimulatedModel,
    max_iterations: usize,
}

impl RustAssistant {
    /// Creates the pipeline around a model (the original uses GPT-4),
    /// judging programs with the zero-cost [`DirectOracle`].
    #[must_use]
    pub fn new(model: ModelId, temperature: f64, seed: u64) -> RustAssistant {
        RustAssistant::with_oracle(model, temperature, seed, Arc::new(DirectOracle))
    }

    /// Creates the pipeline with an injected oracle (the batch engine
    /// passes its process-wide verdict cache through here).
    #[must_use]
    pub fn with_oracle(
        model: ModelId,
        temperature: f64,
        seed: u64,
        oracle: Arc<dyn Oracle>,
    ) -> RustAssistant {
        RustAssistant {
            oracle,
            model: SimulatedModel::new(model, temperature, seed),
            max_iterations: 2,
        }
    }

    /// The fixed prompt schedule: RustAssistant always asks for a direct
    /// code modification based on the error text; every other iteration it
    /// falls back to a generic retry. There is no per-error specialisation.
    fn strategy_for(_iteration: usize) -> PromptStrategy {
        // The fixed pipeline has no per-error agent specialisation: every
        // prompt is the same generic repair request.
        PromptStrategy::Freeform
    }

    /// Attempts to repair `program` against the `reference` gold outputs.
    pub fn repair(&mut self, program: &Program, reference: &[String]) -> BaselineOutcome {
        let initial = program.clone();
        let mut oracle_use = OracleUse::default();
        let initial_report = self.oracle.judge_recording(&initial, &mut oracle_use);
        let mut current = initial.clone();
        let mut errors = initial_report.error_count();
        let mut report = initial_report;
        let mut overhead = 0.0f64;
        let mut iterations = 0usize;

        while !report.passes() && iterations < self.max_iterations {
            let Some(primary) = report.primary().cloned() else {
                break;
            };
            let ctx = RepairContext::new(&current, &primary, Self::strategy_for(iterations));
            let resp = self.model.propose(&ctx);
            overhead += resp.latency_ms + GENERIC_STEP_MS;
            let mut next = current.clone();
            for proposal in &resp.proposals {
                if let Some(mut candidate) = proposal.rule.apply(&current, &primary) {
                    if resp.drift {
                        if let Some(drifted) = rb_llm::rules::apply_semantic_drift(&candidate) {
                            candidate = drifted;
                        }
                    }
                    next = candidate;
                    break;
                }
            }
            let next_report = self.oracle.judge_recording(&next, &mut oracle_use);
            overhead += ORACLE_RUN_MS;
            iterations += 1;
            if next_report.error_count() > errors {
                // Fixed pipelines roll back to the *initial* state,
                // discarding all partial progress (cost c·Tₙ).
                current = initial.clone();
                report = self.oracle.judge_recording(&current, &mut oracle_use);
                errors = report.error_count();
            } else {
                errors = next_report.error_count();
                current = next;
                report = next_report;
            }
        }
        BaselineOutcome {
            passed: report.passes(),
            acceptable: report.passes() && report.outputs == reference,
            overhead_ms: overhead,
            iterations,
            oracle_use,
            final_program: current,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_dataset::Corpus;
    use rb_miri::UbClass;

    #[test]
    fn fixes_easy_classes() {
        let corpus = Corpus::generate(5, 4, &[UbClass::Alloc]);
        let mut ra = RustAssistant::new(ModelId::Gpt4, 0.5, 1);
        let fixed = corpus
            .cases
            .iter()
            .filter(|c| ra.repair(&c.buggy, &c.gold_outputs()).passed)
            .count();
        assert!(fixed >= 2, "fixed {fixed}/4");
    }

    #[test]
    fn generic_steps_cost_time() {
        let corpus = Corpus::generate(6, 1, &[UbClass::Panic]);
        let case = &corpus.cases[0];
        let mut ra = RustAssistant::new(ModelId::Gpt4, 0.5, 2);
        let out = ra.repair(&case.buggy, &case.gold_outputs());
        if out.iterations > 0 {
            assert!(out.overhead_ms >= GENERIC_STEP_MS * out.iterations as f64);
        }
    }

    #[test]
    fn strategy_schedule_is_fixed() {
        assert_eq!(RustAssistant::strategy_for(0), PromptStrategy::Freeform);
        assert_eq!(RustAssistant::strategy_for(1), PromptStrategy::Freeform);
    }
}
