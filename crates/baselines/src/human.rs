//! The human-expert comparator behind Table I: per-class repair-time
//! distributions (centred on the paper's measured "Human" column) and a
//! near-certain success rate. Experts are slow but reliable.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rb_miri::UbClass;
use serde::{Deserialize, Serialize};

/// The paper's Table I "Human" column, in seconds.
#[must_use]
pub fn human_time_s(class: UbClass) -> f64 {
    match class {
        UbClass::StackBorrow => 366.0,
        UbClass::Unaligned => 222.0,
        UbClass::Validity => 678.0,
        UbClass::Alloc => 450.0,
        UbClass::FuncPointer => 480.0,
        UbClass::Provenance => 240.0,
        UbClass::Panic => 336.0,
        UbClass::FuncCall => 1_176.0,
        UbClass::DanglingPointer => 114.0,
        UbClass::BothBorrow => 762.0,
        UbClass::Concurrency => 144.0,
        UbClass::DataRace => 336.0,
        UbClass::Uninit => 300.0,
        UbClass::TailCall => 540.0,
        UbClass::Compile => 60.0,
    }
}

/// One simulated expert repair.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HumanOutcome {
    /// Whether the expert succeeded (they nearly always do).
    pub passed: bool,
    /// Whether the repair preserved semantics (experts rarely slip).
    pub acceptable: bool,
    /// Wall-clock seconds spent.
    pub time_s: f64,
}

/// The expert model.
#[derive(Clone, Debug)]
pub struct HumanExpert {
    rng: ChaCha8Rng,
    /// Probability of a passing repair.
    pub pass_rate: f64,
    /// Probability that a passing repair is also semantically acceptable.
    pub exec_given_pass: f64,
}

impl HumanExpert {
    /// Creates an expert with the paper-calibrated reliability.
    #[must_use]
    pub fn new(seed: u64) -> HumanExpert {
        HumanExpert {
            rng: ChaCha8Rng::seed_from_u64(seed),
            pass_rate: 0.98,
            exec_given_pass: 0.97,
        }
    }

    /// Simulates one repair of a case of the given class.
    pub fn repair(&mut self, class: UbClass) -> HumanOutcome {
        let base = human_time_s(class);
        // Humans vary: ±30 % around the measured mean.
        let time_s = base * (0.7 + self.rng.gen::<f64>() * 0.6);
        let passed = self.rng.gen::<f64>() < self.pass_rate;
        let acceptable = passed && self.rng.gen::<f64>() < self.exec_given_pass;
        HumanOutcome {
            passed,
            acceptable,
            time_s,
        }
    }

    /// Mean repair time over `n` simulated repairs of a class.
    pub fn mean_time_s(&mut self, class: UbClass, n: usize) -> f64 {
        let total: f64 = (0..n).map(|_| self.repair(class).time_s).sum();
        total / n.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_column_values() {
        assert_eq!(human_time_s(UbClass::FuncCall), 1_176.0);
        assert_eq!(human_time_s(UbClass::DanglingPointer), 114.0);
        assert_eq!(human_time_s(UbClass::Concurrency), 144.0);
    }

    #[test]
    fn sampled_times_bracket_the_mean() {
        let mut h = HumanExpert::new(4);
        let mean = h.mean_time_s(UbClass::Alloc, 500);
        let expected = human_time_s(UbClass::Alloc);
        assert!((mean - expected).abs() / expected < 0.08, "mean {mean}");
    }

    #[test]
    fn experts_almost_always_succeed() {
        let mut h = HumanExpert::new(5);
        let ok = (0..500)
            .filter(|_| h.repair(UbClass::Validity).passed)
            .count();
        assert!(ok > 460);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = HumanExpert::new(7);
        let mut b = HumanExpert::new(7);
        assert_eq!(a.repair(UbClass::Panic), b.repair(UbClass::Panic));
    }
}
