//! The engine's central contract, property-tested: for any corpus, any
//! base seed, any worker count in {1, 2, 4, 8} and any scheduling policy
//! (FIFO, cost-ordered, work-stealing), the parallel engine produces the
//! same aggregate `CaseResult` vector — byte for byte — as the plain
//! serial reference loop (fresh per-case systems, direct oracle, no
//! threads, no cache), and merges the same knowledge base.

use proptest::prelude::*;
use rb_dataset::Corpus;
use rb_engine::{run_serial_reference, Engine, OracleCache, SchedPolicy, SystemSpec};
use rb_llm::ModelId;
use rb_miri::UbClass;
use rustbrain::RustBrainConfig;
use std::sync::Arc;

/// Classes sampled by the property (kept small: every proptest case runs
/// 4 worker counts × 3 policies of engine sweeps + 1 serial sweep).
const CLASS_POOL: [UbClass; 4] = [
    UbClass::Alloc,
    UbClass::Panic,
    UbClass::DanglingPointer,
    UbClass::DataRace,
];

fn spec_strategy() -> impl Strategy<Value = SystemSpec> {
    (0usize..3).prop_map(|i| match i {
        0 => SystemSpec::llm(ModelId::Gpt35),
        1 => SystemSpec::rust_assistant(),
        _ => SystemSpec::brain(RustBrainConfig::for_model(ModelId::Gpt4, 0)),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn engine_matches_serial_runner_for_any_worker_count(
        corpus_seed in 0u64..1_000,
        base_seed in 0u64..1_000,
        per_class in 1usize..3,
        spec in spec_strategy(),
    ) {
        // Pick 1–2 classes out of the pool from the corpus seed, so the
        // class mix varies without spending strategy slots on it (the
        // vendored proptest samples at most 4-tuples).
        let class_a = (corpus_seed % CLASS_POOL.len() as u64) as usize;
        let class_b = ((corpus_seed / 7) % CLASS_POOL.len() as u64) as usize;
        let classes: Vec<UbClass> = if class_a == class_b {
            vec![CLASS_POOL[class_a]]
        } else {
            vec![CLASS_POOL[class_a], CLASS_POOL[class_b]]
        };
        let corpus = Corpus::generate(corpus_seed, per_class, &classes);
        let serial = run_serial_reference(&spec, &corpus.cases, base_seed);
        // The 1-worker FIFO run is the reference for the merged KB:
        // scheduling must not change what a batch learns either.
        let kb_reference = Engine::new(1)
            .with_policy(SchedPolicy::Fifo)
            .run_batch(&spec, &corpus.cases, base_seed);
        prop_assert_eq!(&kb_reference.results, &serial);
        for jobs in [1usize, 2, 4, 8] {
            for policy in SchedPolicy::ALL {
                let out = Engine::new(jobs)
                    .with_policy(policy)
                    .run_batch(&spec, &corpus.cases, base_seed);
                prop_assert_eq!(
                    &out.results, &serial,
                    "{} workers under {} diverged from the serial runner (spec {})",
                    jobs, policy, spec.label()
                );
                prop_assert_eq!(
                    format!("{:?}", out.knowledge),
                    format!("{:?}", kb_reference.knowledge),
                    "{} workers under {} merged a different knowledge base (spec {})",
                    jobs, policy, spec.label()
                );
            }
        }
    }
}

/// The 4-worker full-corpus determinism check CI runs in release mode, so
/// scheduling races are exercised under optimization. `Debug` formatting
/// includes every bit of every float, so string equality here is the
/// "byte-identical" claim of the acceptance criteria.
#[test]
fn four_workers_match_serial_on_full_corpus() {
    let corpus = Corpus::generate_full(42, 2);
    let spec = SystemSpec::brain(RustBrainConfig::for_model(ModelId::Gpt4, 0));
    let serial = run_serial_reference(&spec, &corpus.cases, 42);
    let engine = Engine::new(4);
    let parallel = engine.run_batch(&spec, &corpus.cases, 42);
    assert_eq!(parallel.results, serial);
    assert_eq!(format!("{:?}", parallel.results), format!("{serial:?}"));
    // Repeating the sweep on the now-warm cache must not change a single
    // bit either, and must no longer touch the oracle for gold references.
    let again = engine.run_batch(&spec, &corpus.cases, 42);
    assert_eq!(again.results, serial);
    assert_eq!(again.stats.cache.misses, 0);
}

/// Scheduling freedom must also hold when several engines share one cache
/// concurrently (the all_experiments fan-out shape).
#[test]
fn concurrent_engines_sharing_a_cache_stay_deterministic() {
    let corpus = Corpus::generate(9, 2, &[UbClass::Alloc, UbClass::Panic]);
    let spec = SystemSpec::rust_assistant();
    let serial = run_serial_reference(&spec, &corpus.cases, 7);
    let cache = Arc::new(OracleCache::new());
    std::thread::scope(|s| {
        for _ in 0..3 {
            let cache = Arc::clone(&cache);
            let corpus = &corpus;
            let spec = &spec;
            let serial = &serial;
            s.spawn(move || {
                let out = Engine::with_cache(2, cache).run_batch(spec, &corpus.cases, 7);
                assert_eq!(&out.results, serial);
            });
        }
    });
    // The whole stack judges through the shared cache now (gold
    // references *and* the repair loops' inner verifications), so the
    // cache holds at least one entry per case — buggy, gold and candidate
    // programs — and exactly one per structurally distinct program no
    // matter how many engines raced.
    let stats = cache.stats();
    assert!(stats.entries as usize >= corpus.len());
    assert!(stats.hits > 0, "three identical sweeps shared no verdicts");
}

/// The recovered cross-case learning must not cost determinism: for any
/// worker count, a batch seeded with the same knowledge snapshot produces
/// the same results and — merged in submission order — the same final
/// knowledge base.
#[test]
fn shared_kb_merge_is_identical_for_any_worker_count() {
    let corpus = Corpus::generate(21, 2, &[UbClass::Alloc, UbClass::Panic, UbClass::DataRace]);
    let spec = SystemSpec::brain(RustBrainConfig::for_model(ModelId::Gpt4, 0));

    // Pre-seed a snapshot by learning from a first batch.
    let seeded = Engine::new(2).run_batch(&spec, &corpus.cases, 3);
    let snapshot = seeded.knowledge.clone();
    assert!(
        !snapshot.is_empty(),
        "corpus produced no learnable repairs; the merge test would be vacuous"
    );

    let reference = Engine::new(1).run_batch_learned(&spec, &corpus.cases, 9, &snapshot);
    assert_eq!(reference.stats.kb.seeded_entries, snapshot.len());
    // The bounded-growth policy books every absorbed entry: final size is
    // seeded + merged minus what dedup/conflict/coalescing folded away.
    assert_eq!(
        reference.stats.kb.final_entries,
        snapshot.len() + reference.stats.kb.merged_inserts - reference.stats.kb.coalesced
    );
    assert!(
        reference.stats.kb.coalesced > 0,
        "re-sweeping the same corpus must rediscover shapes the policy collapses"
    );
    for jobs in [2usize, 4] {
        let out = Engine::new(jobs).run_batch_learned(&spec, &corpus.cases, 9, &snapshot);
        assert_eq!(out.results, reference.results, "{jobs} workers diverged");
        assert_eq!(
            format!("{:?}", out.knowledge),
            format!("{:?}", reference.knowledge),
            "{jobs} workers merged a different knowledge base"
        );
        assert_eq!(out.stats.kb, reference.stats.kb);
    }
}
