//! The trace-analysis layer against the real engine: a traced batch
//! must parse cleanly through `rb_obs::analyze`, its `engine.job` spans
//! must carry the scheduler's placement tags, and the critical-path
//! speedup bound extracted from the trace must agree with
//! `model_schedule`'s modeled speedup when both see the same durations.

use rb_dataset::Corpus;
use rb_engine::{model_schedule, Engine, SchedPolicy, SystemSpec};
use rb_miri::UbClass;
use rb_obs::analyze::{self, CheckOptions, SpanTree};
use rb_obs::Tracer;
use rustbrain::RustBrainConfig;

fn brain_spec() -> SystemSpec {
    SystemSpec::brain(RustBrainConfig::for_model(rb_llm::ModelId::Gpt4, 0))
}

#[test]
fn traced_batch_parses_checks_and_exposes_placement() {
    let corpus = Corpus::generate(7, 3, &[UbClass::Alloc, UbClass::Panic, UbClass::DataRace]);
    let tracer = Tracer::in_memory();
    let spec = brain_spec();
    let outcome = Engine::new(4)
        .with_tracer(tracer.clone())
        .run_batch(&spec, &corpus.cases, 42);
    assert_eq!(outcome.results.len(), corpus.cases.len());

    let text = tracer.lines().join("\n");
    let spans = analyze::read_str(&text).expect("engine trace must parse");
    let report = analyze::check(
        &spans,
        &CheckOptions {
            require_names: vec!["engine.job".into(), "repair".into(), "fast".into()],
            ..CheckOptions::default()
        },
    );
    assert!(report.ok(), "violations: {:?}", report.violations);

    let tree = SpanTree::build(spans).expect("engine trace must form a tree");
    let cp = analyze::critical_path(&tree);
    assert_eq!(cp.jobs as usize, corpus.cases.len());
    // Every job span carries a worker lane and a stolen flag.
    for s in tree.spans().iter().filter(|s| s.name == "engine.job") {
        let worker: usize = s
            .tag("worker")
            .expect("engine.job missing worker tag")
            .parse()
            .expect("worker tag must be numeric");
        assert!(worker < 4);
        assert!(matches!(s.tag("stolen"), Some("true" | "false")));
    }
    // Job sim totals in the trace reconcile with the batch's results —
    // the analysis reads the same numbers the engine reported.
    // (The wire rounds sim_ms to 4 decimals, so reconciliation is to
    // within half a unit in the last place per job.)
    let total_overhead: f64 = outcome.results.iter().map(|r| r.overhead_ms).sum();
    assert!(
        (cp.total_sim_ms - total_overhead).abs() < 1e-3 * cp.jobs as f64,
        "trace sim {} != results overhead {}",
        cp.total_sim_ms,
        total_overhead
    );
    // The flamegraph's engine.job root row sees every job.
    let aggs = analyze::flamegraph(&tree);
    let job_row = aggs
        .iter()
        .find(|a| a.path == "engine.job")
        .expect("engine.job path missing from flamegraph");
    assert_eq!(job_row.count, cp.jobs);
}

/// On a shape where the stealing dispatcher's placement is forced (its
/// virtual replay and the analysis lane math both reduce to the same
/// arithmetic), the trace-side bound and the model's speedup agree
/// exactly; on the engine's real skewed corpus they agree within the
/// 10% tolerance the bench gate enforces.
#[test]
fn critical_path_bound_agrees_with_modeled_speedup() {
    // Synthetic forced shape: 16 equal jobs on 4 workers. LPT deals 4
    // per lane, nobody steals, makespan = total/4 — the modeled speedup
    // is exactly 4 and so is the lane bound from a trace of the same
    // placement.
    let durations = vec![10.0f64; 16];
    let modeled = model_schedule(SchedPolicy::Stealing, &durations, &durations, 4);
    assert!((modeled.speedup() - 4.0).abs() < 1e-9);

    let mut lines = Vec::new();
    for (i, d) in durations.iter().enumerate() {
        lines.push(format!(
            "{{\"id\":{},\"parent\":null,\"name\":\"engine.job\",\"t_us\":0,\"wall_us\":{},\"sim_ms\":{:.4},\"tags\":{{\"worker\":\"{}\",\"stolen\":\"false\"}}}}",
            i + 1,
            (d * 1000.0) as u64,
            d,
            i % 4
        ));
    }
    let spans = analyze::read_str(&lines.join("\n")).unwrap();
    let cp = analyze::critical_path(&SpanTree::build(spans).unwrap());
    let bound = cp.speedup_bound_sim();
    assert!(
        (bound - modeled.speedup()).abs() / modeled.speedup() < 0.10,
        "trace bound {bound} vs modeled {} diverged beyond 10%",
        modeled.speedup()
    );

    // Real engine placement on a skewed corpus: the achieved lane
    // balance (read from the trace) must track the idealized replay fed
    // the same simulated durations. Live stealing is paced by *wall*
    // progress while the bound sums *sim* charges, so on a small batch
    // run by a time-sliced host the two can drift — the batch is sized
    // so the agreement the bench gate enforces at --repeat 8 holds here
    // too, with headroom for host noise.
    let corpus = Corpus::generate(
        11,
        30,
        &[
            UbClass::Alloc,
            UbClass::Panic,
            UbClass::DataRace,
            UbClass::Validity,
        ],
    );
    let tracer = Tracer::in_memory();
    let spec = brain_spec();
    let outcome = Engine::new(4)
        .with_tracer(tracer.clone())
        .run_batch(&spec, &corpus.cases, 42);
    let sims: Vec<f64> = outcome.results.iter().map(|r| r.overhead_ms).collect();
    let modeled = model_schedule(SchedPolicy::Stealing, &sims, &sims, 4);
    let spans = analyze::read_str(&tracer.lines().join("\n")).unwrap();
    let cp = analyze::critical_path(&SpanTree::build(spans).unwrap());
    let bound = cp.speedup_bound_sim();
    assert!(
        bound > 1.0 && bound <= 4.0 + 1e-9,
        "bound {bound} outside (1, workers]"
    );
    assert!(
        (bound - modeled.speedup()).abs() / modeled.speedup() < 0.25,
        "real-batch bound {bound} vs modeled {} diverged beyond 25%",
        modeled.speedup()
    );
}
