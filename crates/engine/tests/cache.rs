//! Coverage of the content-addressed oracle cache: key semantics
//! (structure, not strings), hit behaviour, and the guarantee that
//! caching never changes reported results — including `overhead_ms`.

use rb_dataset::Corpus;
use rb_engine::{program_key, Engine, OracleCache, SystemSpec};
use rb_lang::parser::parse_program;
use rb_lang::printer::print_program;
use rb_lang::Program;
use rb_miri::UbClass;
use std::sync::Arc;

fn program(src: &str) -> Program {
    parse_program(src).unwrap()
}

#[test]
fn identical_programs_hash_equal() {
    let a = program("fn main() { print(1i32); }");
    let b = program("fn main() { print(1i32); }");
    assert_eq!(program_key(&a), program_key(&b));
    // Whitespace is not structure: the key addresses the AST.
    let c = program("fn main()    {\n\n  print(1i32);\n }");
    assert_eq!(program_key(&a), program_key(&c));
}

#[test]
fn printer_round_trip_preserves_the_key() {
    // Every buggy and gold program of a mixed corpus must key identically
    // after printing and re-parsing: the cache address survives any
    // source-level detour.
    let corpus = Corpus::generate(
        3,
        2,
        &[UbClass::Alloc, UbClass::DataRace, UbClass::Validity],
    );
    for case in &corpus.cases {
        for p in [&case.buggy, &case.gold] {
            let reparsed = parse_program(&print_program(p)).unwrap();
            assert_eq!(
                &reparsed, p,
                "{}: printer round trip changed the AST",
                case.id
            );
            assert_eq!(
                program_key(&reparsed),
                program_key(p),
                "{}: printer round trip changed the key",
                case.id
            );
        }
    }
}

#[test]
fn semantically_different_programs_hash_differently() {
    let base = program("fn main() { print(1i32); }");
    let different_literal = program("fn main() { print(2i32); }");
    let different_shape = program("fn main() { let x: i32 = 1; print(x); }");
    assert_ne!(program_key(&base), program_key(&different_literal));
    assert_ne!(program_key(&base), program_key(&different_shape));
    // Buggy and gold sides of a case are semantically different programs.
    let corpus = Corpus::generate(5, 2, &[UbClass::Panic]);
    for case in &corpus.cases {
        assert_ne!(
            program_key(&case.buggy),
            program_key(&case.gold),
            "{}: buggy and gold share a key",
            case.id
        );
    }
}

#[test]
fn hits_skip_oracle_execution() {
    let cache = OracleCache::new();
    let p = program("fn main() { print(3i32); }");
    let first = cache.report(&p);
    assert_eq!(cache.stats().misses, 1);
    // Same structure through a printing round trip: served from cache.
    let round_tripped = parse_program(&print_program(&p)).unwrap();
    let second = cache.report(&round_tripped);
    let stats = cache.stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    // Not merely an equal verdict — the *same* verdict allocation, which
    // is only possible if the oracle did not run again.
    assert!(Arc::ptr_eq(&first, &second));
}

#[test]
fn cache_hits_preserve_overhead_ms_semantics() {
    // Two sweeps on one engine: the second is served from a warm cache
    // yet must report the exact same simulated overhead_ms per case —
    // the cache dodges real oracle executions, never simulated time.
    let corpus = Corpus::generate(11, 2, &[UbClass::Alloc, UbClass::Uninit]);
    let spec = SystemSpec::brain(rustbrain::RustBrainConfig::for_model(
        rb_llm::ModelId::Gpt4,
        0,
    ));
    let engine = Engine::new(2);
    let cold = engine.run_batch(&spec, &corpus.cases, 1);
    let warm = engine.run_batch(&spec, &corpus.cases, 1);
    assert!(cold.stats.cache.misses > 0);
    assert_eq!(warm.stats.cache.misses, 0, "warm sweep re-ran the oracle");
    assert!(warm.stats.cache.hits > 0);
    for (c, w) in cold.results.iter().zip(&warm.results) {
        assert_eq!(c.case_id, w.case_id);
        assert_eq!(
            c.overhead_ms.to_bits(),
            w.overhead_ms.to_bits(),
            "{}: cache hit changed overhead_ms",
            c.case_id
        );
    }
    assert_eq!(cold.results, warm.results);
}
