//! The preflight seam's core contract, property-tested: a batch run with
//! the static repair preflight enabled produces byte-identical results to
//! the same run with it disabled — same final programs, same pass rates,
//! same per-case documents — across worker counts. The veto is only
//! allowed to move judgements between the `executed`/`cached` and
//! `prevetoed` columns of the oracle telemetry split: a vetoed candidate
//! receives exactly the verdict the oracle would have handed it, derived
//! from `rb_lint`'s sound findings instead of an interpreter run.

use proptest::prelude::*;
use rb_dataset::Corpus;
use rb_engine::{results_to_json, Engine, OracleCache, SystemSpec};
use rb_llm::ModelId;
use rb_miri::UbClass;
use rustbrain::RustBrainConfig;
use std::sync::Arc;

const JOBS: [usize; 3] = [1, 2, 4];

const CLASS_POOL: [UbClass; 6] = [
    UbClass::Alloc,
    UbClass::Panic,
    UbClass::DanglingPointer,
    UbClass::DataRace,
    UbClass::Uninit,
    UbClass::StackBorrow,
];

fn spec(seed: u64, preflight: bool) -> SystemSpec {
    let mut config = RustBrainConfig::for_model(ModelId::Gpt4, seed);
    config.preflight = preflight;
    SystemSpec::brain(config)
}

/// One batch on a fresh cache; returns the deterministic results document
/// and the oracle telemetry split (executed, cached, prevetoed).
fn run(jobs: usize, corpus: &Corpus, seed: u64, preflight: bool) -> (String, (u64, u64, u64)) {
    let engine = Engine::with_cache(jobs, Arc::new(OracleCache::new()));
    let outcome = engine.run_batch(&spec(seed, preflight), &corpus.cases, corpus.seed);
    (
        results_to_json(&outcome.results),
        (
            outcome.stats.oracle_executed,
            outcome.stats.oracle_cached,
            outcome.stats.oracle_prevetoed,
        ),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn preflight_on_and_off_are_bit_identical(
        corpus_seed in 0u64..500,
        brain_seed in 0u64..500,
        class_pick in 0usize..CLASS_POOL.len(),
    ) {
        let classes = vec![
            CLASS_POOL[class_pick],
            CLASS_POOL[(class_pick + corpus_seed as usize) % CLASS_POOL.len()],
        ];
        let corpus = Corpus::generate(corpus_seed, 1, &classes);
        for jobs in JOBS {
            let (on_results, (on_x, on_c, on_p)) = run(jobs, &corpus, brain_seed, true);
            let (off_results, (off_x, off_c, off_p)) = run(jobs, &corpus, brain_seed, false);
            prop_assert_eq!(&on_results, &off_results, "jobs={}", jobs);
            // With the preflight off, nothing may be vetoed; with it on,
            // the total judgement count is conserved — vetoes relabel
            // judgements, they never add or remove any.
            prop_assert_eq!(off_p, 0, "jobs={}", jobs);
            prop_assert_eq!(on_x + on_c + on_p, off_x + off_c, "jobs={}", jobs);
        }
    }
}

/// The full seed corpus at the CI seed: identical results at every worker
/// count, and the preflight must actually fire somewhere — a veto count
/// of zero would mean the whole seam is dead code.
#[test]
fn preflight_fires_and_preserves_results_on_the_seed_corpus() {
    let corpus = Corpus::generate_full(42, 2);
    let mut vetoed_total = 0u64;
    let mut documents = Vec::new();
    for jobs in JOBS {
        let (on_results, (on_x, on_c, on_p)) = run(jobs, &corpus, 42, true);
        let (off_results, (off_x, off_c, off_p)) = run(jobs, &corpus, 42, false);
        assert_eq!(on_results, off_results, "jobs={jobs}");
        assert_eq!(off_p, 0, "jobs={jobs}");
        assert_eq!(on_x + on_c + on_p, off_x + off_c, "jobs={jobs}");
        vetoed_total += on_p;
        documents.push(on_results);
    }
    // Worker count must not change the documents either (the existing
    // determinism contract), nor the veto set (it is decided statically
    // per candidate, independent of scheduling).
    assert!(documents.windows(2).all(|w| w[0] == w[1]));
    assert!(
        vetoed_total > 0,
        "the preflight never vetoed a candidate on the seed corpus"
    );
}
