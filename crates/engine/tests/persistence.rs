//! The durable warm-start contract: a batch that chains its knowledge
//! base through an `.rbkb` file must (a) round-trip the base exactly,
//! (b) measurably benefit from the loaded learning, and (c) keep the
//! bounded-growth guarantee across repeated chaining.

use rb_dataset::Corpus;
use rb_engine::{BatchOutcome, Engine, SystemSpec};
use rb_llm::ModelId;
use rustbrain::{KnowledgeBase, RustBrainConfig};
use std::path::PathBuf;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rb_engine_persistence_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn rates(outcome: &BatchOutcome) -> (f64, f64) {
    let n = outcome.results.len().max(1) as f64;
    let pass = outcome.results.iter().filter(|r| r.passed).count() as f64 / n;
    let acc = outcome.results.iter().filter(|r| r.acceptable).count() as f64 / n;
    (pass, acc)
}

#[test]
fn warm_start_through_a_file_improves_on_cold() {
    let corpus = Corpus::generate_full(42, 2);
    let spec = SystemSpec::brain(RustBrainConfig::for_model(ModelId::Gpt4, 0));
    let engine = Engine::new(4);
    let kb_path = scratch("warm_start.rbkb");

    // Invocation 1: cold start, save the learned base.
    let cold = engine
        .run_batch_stored(&spec, &corpus.cases, 42, None, Some(&kb_path))
        .unwrap();
    assert!(cold.stats.kb.final_entries > 0, "nothing was learned");

    // The saved file is byte-faithful to the merged base.
    let revived = KnowledgeBase::load(&kb_path).unwrap();
    assert_eq!(revived.entries(), cold.knowledge.entries());

    // Invocation 2: warm start from the file.
    let warm = engine
        .run_batch_stored(&spec, &corpus.cases, 42, Some(&kb_path), Some(&kb_path))
        .unwrap();
    assert_eq!(warm.stats.kb.seeded_entries, cold.stats.kb.final_entries);

    let (cold_pass, cold_acc) = rates(&cold);
    let (warm_pass, warm_acc) = rates(&warm);
    println!(
        "cold: pass {cold_pass:.4} acc {cold_acc:.4} overhead {:.0} kb_query {:.0} entries {}",
        cold.stats.simulated_overhead_ms, cold.stats.kb_query_ms, cold.stats.kb.final_entries
    );
    println!(
        "warm: pass {warm_pass:.4} acc {warm_acc:.4} overhead {:.0} kb_query {:.0} entries {}",
        warm.stats.simulated_overhead_ms, warm.stats.kb_query_ms, warm.stats.kb.final_entries
    );

    // The paper's self-learning claim, end to end through the store: the
    // warm run must not repair worse, and must improve at least one
    // repair metric.
    assert!(warm_pass >= cold_pass, "warm pass rate regressed");
    assert!(warm_acc >= cold_acc, "warm acceptability regressed");
    assert!(
        warm_pass > cold_pass
            || warm_acc > cold_acc
            || warm.stats.simulated_overhead_ms < cold.stats.simulated_overhead_ms,
        "warm start improved nothing: pass {cold_pass}->{warm_pass}, acc {cold_acc}->{warm_acc}, \
         overhead {}->{}",
        cold.stats.simulated_overhead_ms,
        warm.stats.simulated_overhead_ms,
    );

    // Chaining again must stay bounded: the policy keeps collapsing
    // rediscoveries instead of growing without limit.
    let third = engine
        .run_batch_stored(&spec, &corpus.cases, 42, Some(&kb_path), Some(&kb_path))
        .unwrap();
    assert!(third.stats.kb.coalesced > 0);
    assert!(
        third.stats.kb.final_entries <= warm.stats.kb.final_entries + third.stats.kb.merged_inserts
    );
    let _ = std::fs::remove_file(&kb_path);
}

#[test]
fn sharded_store_chains_batches_and_rewrites_only_dirty_shards() {
    let corpus = Corpus::generate_full(42, 2);
    let spec = SystemSpec::brain(RustBrainConfig::for_model(ModelId::Gpt4, 0));
    let engine = Engine::new(4);
    let single = scratch("layout.rbkb");
    let sharded = scratch("layout.rbkb.d");

    // One batch saved into both layouts: identical learning, and the
    // sharded store reports one written segment per learned class.
    let cold = engine
        .run_batch_stored(&spec, &corpus.cases, 42, None, Some(&single))
        .unwrap();
    assert_eq!(cold.stats.kb.shards_written, 1, "single file = one segment");
    let cold_sharded = engine
        .run_batch_stored(&spec, &corpus.cases, 42, None, Some(&sharded))
        .unwrap();
    assert_eq!(cold_sharded.results, cold.results);
    let classes: std::collections::BTreeSet<_> = cold_sharded
        .knowledge
        .entries()
        .iter()
        .map(|e| e.class)
        .collect();
    assert_eq!(cold_sharded.stats.kb.shards_written, classes.len());
    assert_eq!(cold_sharded.stats.kb.shards_skipped, 0);

    // Warm-starting from the sharded store is byte-faithful: the loaded
    // base equals the canonical (class-grouped) merged base.
    let revived = KnowledgeBase::load(&sharded).unwrap();
    assert_eq!(revived.entries(), cold_sharded.knowledge.entries());

    // Chaining through the sharded store only rewrites dirty shards: a
    // class whose knowledge did not change keeps its segment untouched.
    let warm = engine
        .run_batch_stored(&spec, &corpus.cases, 42, Some(&sharded), Some(&sharded))
        .unwrap();
    assert_eq!(
        warm.stats.kb.seeded_entries,
        cold_sharded.stats.kb.final_entries
    );
    assert_eq!(
        warm.stats.kb.shards_written + warm.stats.kb.shards_skipped,
        warm.knowledge
            .entries()
            .iter()
            .map(|e| e.class)
            .collect::<std::collections::BTreeSet<_>>()
            .len(),
        "every class's segment is either rewritten or skipped, never lost"
    );

    // A fixed-point save (same base in, same base out) skips everything.
    let report = warm.knowledge.save_reported(&sharded).unwrap();
    assert_eq!(report.shards_written, 0, "clean shards were rewritten");
    assert_eq!(
        report.shards_skipped,
        warm.stats.kb.shards_written + warm.stats.kb.shards_skipped
    );
    let _ = std::fs::remove_file(&single);
    let _ = std::fs::remove_dir_all(&sharded);
}

#[test]
fn missing_and_corrupt_inputs_are_typed_errors() {
    let corpus = Corpus::generate(5, 1, &[rb_miri::UbClass::Panic]);
    let spec = SystemSpec::rust_assistant();
    let engine = Engine::new(1);
    let missing = scratch("does_not_exist.rbkb");
    let err = engine
        .run_batch_stored(&spec, &corpus.cases, 1, Some(&missing), None)
        .unwrap_err();
    assert!(err.to_string().contains("does_not_exist.rbkb"), "{err}");

    let corrupt = scratch("corrupt.rbkb");
    std::fs::write(&corrupt, b"RBKB\x01not really").unwrap();
    let err = engine
        .run_batch_stored(&spec, &corpus.cases, 1, Some(&corrupt), None)
        .unwrap_err();
    assert!(err.to_string().contains("corrupt"), "{err}");
    let _ = std::fs::remove_file(&corrupt);
}
