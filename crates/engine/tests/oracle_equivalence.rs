//! The oracle seam's core contract, property-tested: a full `RustBrain`
//! pipeline run judging through a `CachedOracle` produces a bit-identical
//! `RepairOutcome` to the same run judging through `DirectOracle` — the
//! cache may change *when* the interpreter executes, never *what* any
//! part of the outcome looks like.
//!
//! The single sanctioned exception is the `oracle_executed`/
//! `oracle_cached` telemetry split (that difference is the cache's entire
//! point); the comparison checks its invariant — `executed + cached +
//! prevetoed >= oracle_runs`, since the split also covers the initial
//! detection and rollback re-verifications that `oracle_runs` excludes,
//! with the total itself oracle-independent — and then normalizes the
//! executed/cached halves away. `oracle_prevetoed` is NOT normalized:
//! the static preflight veto decides on `rb_lint` evidence alone, so it
//! must land on exactly the same judgements under either oracle.

use proptest::prelude::*;
use rb_dataset::Corpus;
use rb_engine::{CachedOracle, OracleCache};
use rb_llm::ModelId;
use rb_miri::{DirectOracle, Oracle, UbClass};
use rustbrain::{RepairOutcome, RustBrain, RustBrainConfig};
use std::sync::Arc;

const CLASS_POOL: [UbClass; 6] = [
    UbClass::Alloc,
    UbClass::Panic,
    UbClass::DanglingPointer,
    UbClass::DataRace,
    UbClass::Uninit,
    UbClass::StackBorrow,
];

/// The outcome with the telemetry split checked and folded out: what is
/// left must match to the last bit (floats compared via `Debug`, which
/// prints every significant digit). The *total* judgement count is kept
/// in the comparison — the cache may only relabel judgements as cached,
/// never add or remove any.
fn normalized(out: &RepairOutcome) -> String {
    assert!(
        out.oracle_executed + out.oracle_cached + out.oracle_prevetoed >= out.oracle_runs,
        "telemetry split lost budget-counted oracle runs"
    );
    format!(
        "judgements={:?} prevetoed={:?} passed={:?} acceptable={:?} overhead_ms={:?} \
         oracle_runs={:?} solutions_tried={:?} final={:?} history={:?} rules={:?} \
         rollbacks={:?} best={:?} class={:?} lint_class={:?} lint_agrees={:?}",
        out.oracle_executed + out.oracle_cached + out.oracle_prevetoed,
        out.oracle_prevetoed,
        out.passed,
        out.acceptable,
        out.overhead_ms,
        out.oracle_runs,
        out.solutions_tried,
        out.final_program,
        out.error_history,
        out.rules_applied,
        out.rollbacks,
        out.best_solution,
        out.class,
        out.lint_class,
        out.lint_agrees,
    )
}

fn repair_with(oracle: Arc<dyn Oracle>, seed: u64, corpus: &Corpus) -> Vec<RepairOutcome> {
    // One stateful brain across the whole corpus: knowledge-base inserts
    // and prior updates from earlier cases steer later ones, so a verdict
    // divergence anywhere would snowball into a visible difference.
    let mut brain = RustBrain::with_oracle(RustBrainConfig::for_model(ModelId::Gpt4, seed), oracle);
    corpus
        .cases
        .iter()
        .map(|case| brain.repair(&case.buggy, &case.gold_outputs()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn cached_and_direct_pipelines_are_bit_identical(
        corpus_seed in 0u64..1_000,
        brain_seed in 0u64..1_000,
        class_pick in 0usize..CLASS_POOL.len(),
    ) {
        let classes = vec![
            CLASS_POOL[class_pick],
            CLASS_POOL[(class_pick + corpus_seed as usize) % CLASS_POOL.len()],
        ];
        let corpus = Corpus::generate(corpus_seed, 1, &classes);

        let direct = repair_with(Arc::new(DirectOracle), brain_seed, &corpus);
        let cache = Arc::new(OracleCache::new());
        let cached = repair_with(
            Arc::new(CachedOracle::new(Arc::clone(&cache))),
            brain_seed,
            &corpus,
        );

        prop_assert_eq!(direct.len(), cached.len());
        let mut cache_served = 0usize;
        for (d, c) in direct.iter().zip(&cached) {
            prop_assert_eq!(normalized(d), normalized(c));
            prop_assert_eq!(d.oracle_cached, 0, "DirectOracle reported cache hits");
            cache_served += c.oracle_cached;
        }
        // The attribution must agree with the cache's own counters.
        prop_assert_eq!(cache_served as u64, cache.stats().hits);
    }

    /// A minimum-size bounded cache — `bounded(1)` rounds up to one entry
    /// per shard, 16 total, the smallest enforceable ceiling — evicts
    /// constantly under a whole-corpus repair, and still must not change
    /// a single bit of any outcome.
    #[test]
    fn eviction_thrash_preserves_outcomes(
        corpus_seed in 0u64..500,
        class_pick in 0usize..CLASS_POOL.len(),
    ) {
        let corpus = Corpus::generate(corpus_seed, 1, &[CLASS_POOL[class_pick]]);
        let direct = repair_with(Arc::new(DirectOracle), 7, &corpus);
        let tiny = Arc::new(OracleCache::bounded(1));
        let thrashed = repair_with(Arc::new(CachedOracle::new(Arc::clone(&tiny))), 7, &corpus);
        for (d, t) in direct.iter().zip(&thrashed) {
            prop_assert_eq!(normalized(d), normalized(t));
        }
        let stats = tiny.stats();
        prop_assert!(stats.entries <= stats.capacity);
        prop_assert_eq!(stats.capacity, 16);
    }
}
