//! The repair systems under comparison and their results, plus the
//! buildable [`SystemSpec`] the engine ships to worker threads.
//!
//! [`System`] and [`CaseResult`] used to live in `rb_bench::runner`; they
//! moved here so the engine (which `rb_bench` builds on) can execute jobs
//! for any system without a dependency cycle. `rb_bench::runner`
//! re-exports both, so existing imports keep compiling.

use crate::cache::OracleCache;
use crate::engine::Engine;
use rb_baselines::{LlmOnly, RustAssistant};
use rb_dataset::UbCase;
use rb_llm::ModelId;
use rb_miri::{DirectOracle, Oracle, OracleUse};
use rustbrain::{KbDelta, KnowledgeBase, RustBrain, RustBrainConfig};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Result of one case repair, system-agnostic.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CaseResult {
    /// Case id.
    pub case_id: String,
    /// UB class.
    pub class: rb_miri::UbClass,
    /// Passed the oracle.
    pub passed: bool,
    /// Semantically acceptable.
    pub acceptable: bool,
    /// Simulated time in milliseconds.
    pub overhead_ms: f64,
    /// Knowledge-base retrievals the repair made (0 for systems without
    /// a knowledge base).
    pub kb_queries: u64,
    /// Simulated milliseconds those retrievals accrued (bucket-indexed
    /// scan cost; deterministic, so it belongs in the result rather than
    /// the telemetry).
    pub kb_query_ms: f64,
}

/// A repair system under test.
pub enum System {
    /// Standalone model.
    Llm(LlmOnly),
    /// RustAssistant fixed pipeline.
    RustAssistant(RustAssistant),
    /// The RustBrain framework.
    Brain(Box<RustBrain>),
}

impl System {
    /// A standalone model at the paper's default temperature.
    #[must_use]
    pub fn llm(model: ModelId, seed: u64) -> System {
        System::Llm(LlmOnly::new(model, 0.5, seed))
    }

    /// The RustAssistant baseline (GPT-4-backed, as in the paper).
    #[must_use]
    pub fn rust_assistant(seed: u64) -> System {
        System::RustAssistant(RustAssistant::new(ModelId::Gpt4, 0.5, seed))
    }

    /// A RustBrain instance.
    #[must_use]
    pub fn brain(config: RustBrainConfig) -> System {
        System::Brain(Box::new(RustBrain::new(config)))
    }

    /// Repairs one corpus case against an explicit gold reference (the
    /// engine path: the reference comes out of the shared oracle cache).
    pub fn repair_case_with(&mut self, case: &UbCase, reference: &[String]) -> CaseResult {
        self.repair_case_instrumented(case, reference).0
    }

    /// Like [`repair_case_with`], additionally reporting the repair's
    /// executed-vs-cached oracle split for the engine's telemetry. The
    /// split never feeds back into the [`CaseResult`], which stays
    /// byte-identical across caching and direct oracles.
    ///
    /// [`repair_case_with`]: System::repair_case_with
    pub fn repair_case_instrumented(
        &mut self,
        case: &UbCase,
        reference: &[String],
    ) -> (CaseResult, OracleUse) {
        let (passed, acceptable, overhead_ms, oracle_use, kb_queries, kb_query_ms) = match self {
            System::Llm(s) => {
                let o = s.repair(&case.buggy, reference);
                (o.passed, o.acceptable, o.overhead_ms, o.oracle_use, 0, 0.0)
            }
            System::RustAssistant(s) => {
                let o = s.repair(&case.buggy, reference);
                (o.passed, o.acceptable, o.overhead_ms, o.oracle_use, 0, 0.0)
            }
            System::Brain(s) => {
                let o = s.repair(&case.buggy, reference);
                let used = OracleUse {
                    executed: o.oracle_executed,
                    cached: o.oracle_cached,
                    prevetoed: o.oracle_prevetoed,
                };
                (
                    o.passed,
                    o.acceptable,
                    o.overhead_ms,
                    used,
                    o.kb_queries,
                    o.kb_query_time_ms,
                )
            }
        };
        (
            CaseResult {
                case_id: case.id.clone(),
                class: case.class,
                passed,
                acceptable,
                overhead_ms,
                kb_queries,
                kb_query_ms,
            },
            oracle_use,
        )
    }

    /// The knowledge-base inserts this system recorded beyond `baseline`
    /// entries (the shared snapshot's size), or `None` for systems without
    /// a knowledge base.
    #[must_use]
    pub fn kb_delta(&self, baseline: usize) -> Option<KbDelta> {
        match self {
            System::Brain(s) => Some(s.knowledge().delta_since(baseline)),
            System::Llm(_) | System::RustAssistant(_) => None,
        }
    }

    /// Repairs one corpus case, resolving the gold reference through the
    /// process-wide oracle cache.
    pub fn repair_case(&mut self, case: &UbCase) -> CaseResult {
        let reference = OracleCache::global().outputs(&case.gold);
        self.repair_case_with(case, &reference)
    }

    /// Repairs every case of a corpus in order (order matters: stateful
    /// systems learn across cases, as in the paper's sequential runs).
    /// Executes on the engine's sequential lane so gold references are
    /// served from the shared oracle cache.
    pub fn run_corpus(&mut self, cases: &[UbCase]) -> Vec<CaseResult> {
        Engine::with_global_cache(1).run_stateful(self, cases)
    }
}

/// A cloneable, thread-shippable recipe for building a [`System`].
///
/// Batch jobs carry a spec rather than a live system: each worker builds
/// a fresh instance with the job's derived seed, which is what makes the
/// aggregate result stream independent of scheduling.
#[derive(Clone, Debug, PartialEq)]
pub enum SystemSpec {
    /// Standalone model.
    Llm {
        /// Backing model.
        model: ModelId,
        /// Sampling temperature.
        temperature: f64,
    },
    /// RustAssistant fixed pipeline.
    RustAssistant {
        /// Backing model.
        model: ModelId,
        /// Sampling temperature.
        temperature: f64,
    },
    /// The RustBrain framework (the spec's `seed` field is overridden per
    /// job).
    Brain(RustBrainConfig),
}

impl SystemSpec {
    /// The paper's default standalone-LLM spec.
    #[must_use]
    pub fn llm(model: ModelId) -> SystemSpec {
        SystemSpec::Llm {
            model,
            temperature: 0.5,
        }
    }

    /// The paper's RustAssistant baseline spec.
    #[must_use]
    pub fn rust_assistant() -> SystemSpec {
        SystemSpec::RustAssistant {
            model: ModelId::Gpt4,
            temperature: 0.5,
        }
    }

    /// A RustBrain spec from a pipeline configuration.
    #[must_use]
    pub fn brain(config: RustBrainConfig) -> SystemSpec {
        SystemSpec::Brain(config)
    }

    /// Short label for telemetry and CLI output.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            SystemSpec::Llm { .. } => "llm-only",
            SystemSpec::RustAssistant { .. } => "rust-assistant",
            SystemSpec::Brain(_) => "rustbrain",
        }
    }

    /// Instantiates the system with a per-job seed, a direct oracle and an
    /// empty knowledge base (a thin wrapper over [`build_with`]).
    ///
    /// [`build_with`]: SystemSpec::build_with
    #[must_use]
    pub fn build(&self, seed: u64) -> System {
        self.build_with(seed, Arc::new(DirectOracle), &KnowledgeBase::new())
    }

    /// Instantiates the system with a per-job seed, an injected oracle
    /// (the engine passes its shared verdict cache here) and a pre-seeded
    /// knowledge-base snapshot the instance starts from (cloned; ignored
    /// by systems without a knowledge base).
    #[must_use]
    pub fn build_with(
        &self,
        seed: u64,
        oracle: Arc<dyn Oracle>,
        knowledge: &KnowledgeBase,
    ) -> System {
        match self {
            SystemSpec::Llm { model, temperature } => {
                System::Llm(LlmOnly::with_oracle(*model, *temperature, seed, oracle))
            }
            SystemSpec::RustAssistant { model, temperature } => System::RustAssistant(
                RustAssistant::with_oracle(*model, *temperature, seed, oracle),
            ),
            SystemSpec::Brain(config) => {
                let mut config = config.clone();
                config.seed = seed;
                System::Brain(Box::new(
                    RustBrain::with_oracle(config, oracle).with_knowledge_base(knowledge.clone()),
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The engine ships specs and cases to worker threads; keep that
    // compiling-in-the-type-system rather than discovered at spawn time.
    const fn assert_send<T: Send>() {}
    const _: () = assert_send::<SystemSpec>();
    const _: () = assert_send::<UbCase>();
    const _: () = assert_send::<System>();
    const _: () = assert_send::<CaseResult>();

    #[test]
    fn specs_build_the_matching_system() {
        let pairs: [(SystemSpec, &str); 3] = [
            (SystemSpec::llm(ModelId::Gpt4), "llm-only"),
            (SystemSpec::rust_assistant(), "rust-assistant"),
            (
                SystemSpec::brain(RustBrainConfig::for_model(ModelId::Gpt4, 0)),
                "rustbrain",
            ),
        ];
        for (spec, label) in pairs {
            assert_eq!(spec.label(), label);
            match (spec.build(9), &spec) {
                (System::Llm(_), SystemSpec::Llm { .. })
                | (System::RustAssistant(_), SystemSpec::RustAssistant { .. })
                | (System::Brain(_), SystemSpec::Brain(_)) => {}
                _ => panic!("spec {label} built the wrong system"),
            }
        }
    }

    #[test]
    fn build_with_adopts_snapshot_and_reports_deltas() {
        let mut donor = RustBrain::new(RustBrainConfig::for_model(ModelId::Gpt4, 0));
        let p = rb_lang::parser::parse_program("fn main() { print(1i32); }").unwrap();
        donor.seed_knowledge(
            &p,
            rb_miri::UbClass::Panic,
            rb_llm::RepairRule::GuardDivision,
        );
        let snapshot = donor.knowledge().clone();

        let spec = SystemSpec::brain(RustBrainConfig::for_model(ModelId::Gpt4, 1));
        let sys = spec.build_with(7, Arc::new(DirectOracle), &snapshot);
        let System::Brain(b) = &sys else {
            panic!("expected a brain");
        };
        assert_eq!(b.knowledge().len(), snapshot.len());
        // Nothing learned yet: the delta over the snapshot is empty.
        assert!(sys.kb_delta(snapshot.len()).unwrap().is_empty());
        // Knowledge-free systems have no delta at all.
        assert!(SystemSpec::rust_assistant().build(1).kb_delta(0).is_none());
    }

    #[test]
    fn brain_spec_build_overrides_seed() {
        let spec = SystemSpec::brain(RustBrainConfig::for_model(ModelId::Gpt4, 1));
        let System::Brain(b) = spec.build(77) else {
            panic!("expected a brain");
        };
        assert_eq!(b.config().seed, 77);
    }
}
